"""Section 5.3 / Theorem 4.3.4.1 — verification with variable k.

A control-transfer instruction creates annulled delay slots, so k varies
during execution.  The paper verifies the control-transfer instruction
at every one of the k instruction slots (k * z simulations for z kinds
of control transfer); this benchmark runs those passes for the VSM and
confirms that a broken annulment is caught.
"""

import pytest

from repro.core import SimulationInfo, VSMArchitecture, control_at, verify_beta_relation
from repro.strings import CONTROL, NORMAL

from _bench_utils import record_paper_comparison


@pytest.mark.parametrize("position", [0, 1, 2, 3])
def test_control_transfer_at_each_slot(benchmark, position):
    architecture = VSMArchitecture()
    siminfo = control_at(4, position)

    def run():
        return verify_beta_relation(architecture, siminfo)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed, report.summary()
    assert report.implementation_cycles == 9  # one delay slot inserted
    record_paper_comparison(
        benchmark,
        experiment=f"Section 5.3 (branch in slot {position + 1} of {4})",
        paper="k*z simulations cover every control-transfer placement",
        measured="PASSED with the delay slot annulled and smoothed",
    )


def test_broken_annulment_detected_by_variable_k_run(benchmark):
    architecture = VSMArchitecture()
    siminfo = SimulationInfo(slots=(CONTROL, NORMAL))

    def run():
        return verify_beta_relation(architecture, siminfo, impl_kwargs={"bug": "no_annul"})

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not report.passed
    record_paper_comparison(
        benchmark,
        experiment="Theorem 4.3.4.1 (annulment failure)",
        paper="any incorrect change in state from a non-annulled slot is detected",
        measured=f"{len(report.mismatches)} mismatching observables reported",
    )
