"""Section 5.3 / Theorem 4.3.4.1 — verification with variable k.

A control-transfer instruction creates annulled delay slots, so k varies
during execution.  The paper verifies the control-transfer instruction
at every one of the k instruction slots (k * z simulations for z kinds
of control transfer); this benchmark runs those passes as a single
engine campaign over :func:`repro.engine.variable_k_scenarios` and
confirms that a broken annulment is caught.
"""

import pytest

from repro.engine import Scenario, variable_k_scenarios
from repro.strings import CONTROL, NORMAL

from _bench_utils import campaign_runner, record_paper_comparison


def test_control_transfer_at_each_slot(benchmark):
    runner = campaign_runner()
    scenarios = variable_k_scenarios(k=4)

    def run():
        runner.clear_memo()
        return runner.run(scenarios)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed, report.summary()
    for outcome in report.outcomes:
        assert outcome.structure["implementation_cycles"] == 9  # one delay slot
    record_paper_comparison(
        benchmark,
        experiment="Section 5.3 (branch in each of the 4 slots, one campaign)",
        paper="k*z simulations cover every control-transfer placement",
        measured="4 placements PASSED with the delay slot annulled and smoothed",
    )


def test_broken_annulment_detected_by_variable_k_run(benchmark):
    runner = campaign_runner()
    scenario = Scenario(
        name="variable-k/no_annul", slots=(CONTROL, NORMAL), bug="no_annul"
    )

    def run():
        runner.clear_memo()
        return runner.run_one(scenario)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not outcome.passed
    record_paper_comparison(
        benchmark,
        experiment="Theorem 4.3.4.1 (annulment failure)",
        paper="any incorrect change in state from a non-annulled slot is detected",
        measured=f"{len(outcome.mismatches)} mismatching observables reported",
    )


@pytest.mark.bench_smoke
def test_smoke_variable_k():
    """Fast tier: branch-first placement at k=2 verifies; annulment bug fails."""
    runner = campaign_runner()
    report = runner.run(
        [
            Scenario(name="smoke/k2-branch-first", slots=(CONTROL, NORMAL)),
            Scenario(name="smoke/k2-no-annul", slots=(CONTROL, NORMAL), bug="no_annul"),
        ]
    )
    good, bad = report.outcomes
    assert good.passed and not bad.passed
    assert report.pool["reuses"] == 1  # both placements share one manager
