"""Section 5.5 — interrupts and exceptions via the dynamic beta-relation.

An external event forces a trap into the pipeline; the output filtering
function is edited on the fly so the squashed slot is irrelevant, and
the sampled observations must still match the specification (which takes
the trap atomically).  The sweep runs as an engine campaign of EVENTS
scenarios.
"""

import pytest

from repro.engine import Scenario, vsm_verification_scenario
from repro.strings import NORMAL

from _bench_utils import campaign_runner, record_paper_comparison


def _event_scenario(slot, slots=(NORMAL,) * 4, broken=False, name=None):
    return Scenario(
        name=name or f"event/slot{slot}" + ("/broken" if broken else ""),
        kind="events",
        slots=slots,
        event_slots=(slot,),
        break_event_link=broken,
    )


@pytest.mark.parametrize("slot", [0, 1, 3])
def test_event_at_each_instruction_slot(benchmark, slot):
    runner = campaign_runner()
    scenario = _event_scenario(slot)

    def run():
        runner.clear_memo()
        return runner.run_one(scenario)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.passed, outcome.mismatches
    assert outcome.structure["extra"] == {"event_slots": [slot]}
    record_paper_comparison(
        benchmark,
        experiment=f"Section 5.5 (event during instruction {slot + 1})",
        paper="the event is simulated in each of the k instruction sequences",
        measured="dynamic beta-relation holds; squashed slot filtered out",
    )


def test_event_combined_with_branch_slot(benchmark):
    runner = campaign_runner()
    scenario = _event_scenario(
        1, slots=vsm_verification_scenario().slots, name="event/with-branch"
    )

    def run():
        runner.clear_memo()
        return runner.run_one(scenario)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.passed
    record_paper_comparison(
        benchmark,
        experiment="Section 5.5 (event plus control transfer in one window)",
        paper="events coexist with branch delay-slot annulment",
        measured="PASSED",
    )


def test_broken_interrupt_link_detected(benchmark):
    runner = campaign_runner()
    scenario = _event_scenario(2, broken=True)

    def run():
        runner.clear_memo()
        return runner.run_one(scenario)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not outcome.passed
    record_paper_comparison(
        benchmark,
        experiment="Section 5.5 (interrupt handling bug)",
        paper="incorrect pipeline-state saving is detected",
        measured="failure to save the interrupted PC reported as a mismatch",
    )


@pytest.mark.bench_smoke
def test_smoke_interrupts():
    """Fast tier: a two-slot event scenario passes; the broken link fails.

    The event hits slot 1 (not 0): the interrupted PC must be non-zero
    for the forgotten link write to be observable.
    """
    runner = campaign_runner()
    report = runner.run(
        [
            _event_scenario(1, slots=(NORMAL, NORMAL), name="smoke/event"),
            _event_scenario(
                1, slots=(NORMAL, NORMAL), broken=True, name="smoke/event-broken"
            ),
        ]
    )
    good, bad = report.outcomes
    assert good.passed and not bad.passed
    assert bad.mismatches
