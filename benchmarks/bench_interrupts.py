"""Section 5.5 — interrupts and exceptions via the dynamic beta-relation.

An external event forces a trap into the pipeline; the output filtering
function is edited on the fly so the squashed slot is irrelevant, and
the sampled observations must still match the specification (which takes
the trap atomically).
"""

import pytest

from repro.core import all_normal, verify_with_events, vsm_default

from _bench_utils import record_paper_comparison


@pytest.mark.parametrize("slot", [0, 1, 3])
def test_event_at_each_instruction_slot(benchmark, slot):
    def run():
        return verify_with_events(all_normal(4), event_slots=[slot])

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed, report.summary()
    record_paper_comparison(
        benchmark,
        experiment=f"Section 5.5 (event during instruction {slot + 1})",
        paper="the event is simulated in each of the k instruction sequences",
        measured="dynamic beta-relation holds; squashed slot filtered out",
    )


def test_event_combined_with_branch_slot(benchmark):
    def run():
        return verify_with_events(vsm_default(), event_slots=[1])

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed
    record_paper_comparison(
        benchmark,
        experiment="Section 5.5 (event plus control transfer in one window)",
        paper="events coexist with branch delay-slot annulment",
        measured="PASSED",
    )


def test_broken_interrupt_link_detected(benchmark):
    def run():
        return verify_with_events(
            all_normal(4), event_slots=[2], impl_kwargs={"break_event_link": True}
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not report.passed
    record_paper_comparison(
        benchmark,
        experiment="Section 5.5 (interrupt handling bug)",
        paper="incorrect pipeline-state saving is detected",
        measured="failure to save the interrupted PC reported as a mismatch",
    )
