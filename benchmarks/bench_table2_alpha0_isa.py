"""Table 2 — the Alpha0 instruction set.

Regenerates the Alpha0 instruction table as executable semantics and
cross-checks the symbolic ALU against the reference executor, then
measures reference-executor throughput.
"""

import pytest

import random

from repro.bdd import BDDManager
from repro.isa import Alpha0Config, Alpha0Instruction
from repro.isa import alpha0 as isa
from repro.logic import BitVec
from repro.processors import EXACT_OPTIONS
from repro.processors.sym_alpha0 import alu_result, decode_fields

from _bench_utils import record_paper_comparison

CONFIG = Alpha0Config(data_width=4, memory_words=8)


def regenerate_table2():
    """One row per Table-2 instruction: (mnemonic, opcode, function, format)."""
    rows = []
    for spec in sorted(isa.SPECS.values(), key=lambda item: item.mnemonic):
        rows.append((spec.mnemonic, spec.opcode, spec.function, spec.format))
    return rows


def test_table2_rows(benchmark):
    rows = benchmark(regenerate_table2)
    assert len(rows) == 16
    catalogue = {row[0]: row for row in rows}
    # Spot-check the encodings printed in Table 2.
    assert catalogue["add"][1:3] == (0x10, 0x20)
    assert catalogue["and"][1:3] == (0x11, 0x00)
    assert catalogue["cmpeq"][1:3] == (0x10, 0x2D)
    assert catalogue["ld"][1] == 0x29 and catalogue["st"][1] == 0x2D
    assert catalogue["br"][1] == 0x30 and catalogue["bt"][1] == 0x3D
    assert catalogue["jmp"][1] == 0x36
    record_paper_comparison(
        benchmark,
        experiment="Table 2 (Alpha0 instruction set)",
        paper="16 instructions, 32-bit formats (operate / memory / branch)",
        measured=f"{len(rows)} instructions regenerated with matching encodings",
    )


def test_table2_execution_semantics(benchmark):
    """Every Table-2 instruction class executes per its description."""

    def run_examples():
        registers = [(3 * i + 1) % 16 for i in range(32)]
        memory = [(5 * i + 2) % 16 for i in range(8)]
        results = {}
        examples = {
            "add": Alpha0Instruction("add", ra=1, rb=2, rc=3),
            "cmpeq": Alpha0Instruction("cmpeq", ra=1, rb=1, rc=4),
            "ld": Alpha0Instruction("ld", ra=5, rb=0, displacement=8),
            "st": Alpha0Instruction("st", ra=1, rb=0, displacement=4),
            "br": Alpha0Instruction("br", ra=26, displacement=2),
            "bt": Alpha0Instruction("bt", ra=1, displacement=1),
            "jmp": Alpha0Instruction("jmp", ra=26, rb=2),
        }
        for name, instruction in examples.items():
            results[name] = isa.execute(instruction, registers, 8, memory, CONFIG)
        return results

    results = benchmark(run_examples)
    registers = [(3 * i + 1) % 16 for i in range(32)]
    memory = [(5 * i + 2) % 16 for i in range(8)]
    assert results["add"][0][3] == (registers[1] + registers[2]) % 16
    assert results["cmpeq"][0][4] == 1
    assert results["ld"][0][5] == memory[((registers[0] + 8) % 16) >> 2]
    assert results["st"][2][((registers[0] + 4) % 16) >> 2] == registers[1]
    assert results["br"][1] == (12 + 8) % 32
    assert results["jmp"][1] == registers[2] & ~0b11 & 0x1F
    record_paper_comparison(
        benchmark,
        experiment="Table 2 (execution semantics)",
        paper="operate / memory / branch behaviour per Table 2",
        measured="7 representative instructions executed with matching effects",
    )


def test_table2_symbolic_alu_matches_reference(benchmark):
    """Symbolic ALU agrees with the reference executor over the full operand space."""

    def check():
        manager = BDDManager()
        mismatches = 0
        for mnemonic in ("add", "sub", "and", "or", "xor", "cmpeq", "cmplt", "cmple"):
            instruction = Alpha0Instruction(mnemonic, ra=0, rb=0, rc=0)
            fields = decode_fields(
                BitVec.constant(manager, instruction.encode(), isa.INSTRUCTION_WIDTH)
            )
            for a in range(0, 16, 3):
                for b in range(0, 16, 5):
                    symbolic = alu_result(
                        manager,
                        fields,
                        BitVec.constant(manager, a, 4),
                        BitVec.constant(manager, b, 4),
                        EXACT_OPTIONS,
                    ).as_constant()
                    if symbolic != isa.alu_operation(mnemonic, a, b, CONFIG):
                        mismatches += 1
        return mismatches

    assert benchmark(check) == 0
    record_paper_comparison(
        benchmark,
        experiment="Table 2 (symbolic datapath cross-check)",
        paper="condensed 4-bit ALU (Section 6.3)",
        measured="8 operate instructions cross-checked, 0 mismatches",
    )


def test_table2_executor_throughput(benchmark):
    rng = random.Random(2)
    program = [isa.random_instruction(rng, config=CONFIG).encode() for _ in range(400)]

    def run():
        registers = [0] * 32
        memory = [0] * 8
        pc = 0
        for word in program:
            registers, pc, memory = isa.execute(isa.decode(word), registers, pc, memory, CONFIG)
        return pc

    benchmark(run)
    record_paper_comparison(
        benchmark,
        experiment="Table 2 (reference executor)",
        paper="(not reported; substrate only)",
        measured="400-instruction random workload per round",
    )


@pytest.mark.bench_smoke
def test_smoke_table2():
    """Fast tier: Table-2 encodings regenerate."""
    rows = regenerate_table2()
    assert len(rows) == 16
    assert {row[0] for row in rows} >= {"add", "ld", "st", "br", "jmp"}
