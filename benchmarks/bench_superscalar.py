"""Sections 5.6 and 5.7 — dynamic scheduling and superscalar pipelines.

The dynamic beta-relation compares the implementation only at points
where its completed instructions form an in-order prefix.  For the
dual-issue VSM that is every retirement cycle; for the scoreboarded VSM
it can degenerate to the end of the program, exactly as the paper notes.
"""

import pytest

import random

from repro.core import verify_superscalar_schedule
from repro.isa import vsm as isa
from repro.processors.scoreboard import ScoreboardVSM
from repro.processors.vsm_unpipelined import UnpipelinedVSM

from _bench_utils import record_paper_comparison


def test_superscalar_dynamic_beta(benchmark):
    rng = random.Random(42)
    program = isa.random_program(rng, 40, allow_control_transfer=False)

    def run():
        return verify_superscalar_schedule(program, issue_width=2)

    result = benchmark(run)
    assert result.passed, result.mismatches
    assert 1.0 < result.speedup <= 2.0
    record_paper_comparison(
        benchmark,
        experiment="Section 5.7 (dual-issue VSM)",
        paper="q instructions per cycle; k*q sequences needed in the symbolic flow",
        measured=f"40 instructions in {result.implementation_cycles} cycles "
        f"(IPC {result.speedup:.2f}); dynamic beta holds at every retirement group",
    )


def test_superscalar_with_branches(benchmark):
    rng = random.Random(7)
    program = isa.random_program(rng, 30, allow_control_transfer=True)

    def run():
        return verify_superscalar_schedule(program, issue_width=2)

    result = benchmark(run)
    assert result.passed, result.mismatches
    record_paper_comparison(
        benchmark,
        experiment="Section 5.7 (dual issue with control transfers)",
        paper="only the first instruction of a dependent group issues",
        measured=f"IPC {result.speedup:.2f} with branches ending their groups",
    )


def test_scoreboard_dynamic_beta_points(benchmark):
    rng = random.Random(3)
    programs = [isa.random_program(rng, 16, allow_control_transfer=False) for _ in range(10)]

    def run():
        comparable_points = 0
        mismatches = 0
        for program in programs:
            scoreboard = ScoreboardVSM(functional_units=3)
            trace = scoreboard.run(program)
            specification = UnpipelinedVSM()
            spec_states = [specification.observe()]
            for instruction in program:
                spec_states.append(specification.execute_instruction(instruction.encode()))
            for cycle, completed in trace.in_order_points():
                comparable_points += 1
                impl_obs = trace.observations[cycle]
                spec_obs = spec_states[completed]
                for name, value in spec_obs.items():
                    if name.startswith("reg") or name == "pc_next":
                        if impl_obs[name] != value:
                            mismatches += 1
        return comparable_points, mismatches

    comparable_points, mismatches = benchmark(run)
    assert mismatches == 0
    assert comparable_points >= 10  # at least the end of every program
    record_paper_comparison(
        benchmark,
        experiment="Section 5.6 (scoreboarded / out-of-order completion VSM)",
        paper="state compared only when completed instructions are in program order",
        measured=f"{comparable_points} comparable points across 10 programs, 0 mismatches",
    )


@pytest.mark.bench_smoke
def test_smoke_superscalar():
    """Fast tier: a short program through the engine's superscalar path."""
    from repro.engine import execute_scenario, superscalar_scenario

    rng = random.Random(11)
    program = isa.random_program(rng, 10, allow_control_transfer=False)
    outcome = execute_scenario(superscalar_scenario(program, name="smoke/ss"))
    assert outcome.passed
    assert 1.0 <= outcome.structure["speedup"] <= 2.0
