"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md).  Paper-reported quantities are
recorded next to the measured ones in ``benchmark.extra_info``.

Smoke tier
----------
Every ``bench_*.py`` also carries at least one fast ``bench_smoke``
test: a sub-second pass over the same code path the full benchmark
measures, so the perf scripts cannot silently rot.  Run the tier with::

    PYTHONPATH=src python -m pytest benchmarks -m bench_smoke -q
"""

import pytest

from repro.core import VSMArchitecture

from _bench_utils import condensed_alpha0_architecture

# (The bench_smoke marker is registered once, in the root pytest.ini.)


@pytest.fixture()
def vsm_architecture():
    return VSMArchitecture()


@pytest.fixture()
def alpha0_architecture():
    return condensed_alpha0_architecture()
