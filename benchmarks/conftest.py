"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md).  Paper-reported quantities are
recorded next to the measured ones in ``benchmark.extra_info``.
"""

import pytest

from repro.core import VSMArchitecture

from _bench_utils import condensed_alpha0_architecture


@pytest.fixture()
def vsm_architecture():
    return VSMArchitecture()


@pytest.fixture()
def alpha0_architecture():
    return condensed_alpha0_architecture()
