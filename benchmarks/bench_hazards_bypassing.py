"""Section 4.3.5 / Theorem 4.3.5.1 — data hazards and bypassing.

Pipelines with bypassing still fit the definite-machine model; removing
the bypass path is a classic RAW-hazard bug that the beta-relation
check catches.  Two back-to-back ordinary slots exercise the distance-1
hazard for every instruction encoding at once.
"""

import pytest

from repro.core import VSMArchitecture, all_normal, verify_beta_relation

from _bench_utils import condensed_alpha0_architecture, record_paper_comparison


def test_bypassed_vsm_verifies(benchmark):
    def run():
        return verify_beta_relation(VSMArchitecture(), all_normal(2))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed
    record_paper_comparison(
        benchmark,
        experiment="Theorem 4.3.5.1 (bypassing preserved)",
        paper="bypass paths do not alter the definite-machine model",
        measured="back-to-back symbolic instructions verify",
    )


def test_missing_bypass_detected_on_vsm(benchmark):
    def run():
        return verify_beta_relation(
            VSMArchitecture(), all_normal(2), impl_kwargs={"bug": "no_bypass"}
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not report.passed
    witnesses = report.mismatches[0].decoded_instructions
    record_paper_comparison(
        benchmark,
        experiment="RAW hazard with the bypass removed (VSM)",
        paper="(implicit) the relation fails without correct operand forwarding",
        measured=f"counterexample: {witnesses.get('instr0')} ; {witnesses.get('instr1')}",
    )


def test_missing_bypass_detected_on_alpha0(benchmark):
    architecture = condensed_alpha0_architecture()

    def run():
        return verify_beta_relation(
            architecture, all_normal(2), impl_kwargs={"bug": "no_bypass"}
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not report.passed
    record_paper_comparison(
        benchmark,
        experiment="RAW hazard with the bypass removed (Alpha0)",
        paper="(implicit) same failure mode on the deeper pipeline",
        measured=f"{len(report.mismatches)} mismatching observables",
    )


@pytest.mark.bench_smoke
def test_smoke_hazards_bypassing():
    """Fast tier: the RAW-hazard pair through the engine — golden passes,
    missing bypass fails — on one shared pooled manager."""
    from repro.engine import CampaignRunner, Scenario

    report = CampaignRunner().run(
        [
            Scenario(name="smoke/bypassed", slots=("normal", "normal")),
            Scenario(name="smoke/no-bypass", slots=("normal", "normal"), bug="no_bypass"),
        ]
    )
    good, bad = report.outcomes
    assert good.passed and not bad.passed
    assert report.pool["reuses"] == 1
