"""Table 1 — the VSM instruction set.

Regenerates the VSM instruction-set table: for every opcode and operand
form, the architectural executor is exercised and the symbolic ALU is
checked against it, so the "table" is reproduced as executable
semantics.  The benchmark measures decode+execute throughput of the
reference executor (the substrate every other experiment rests on).
"""

import pytest

import random

from repro.bdd import BDDManager
from repro.isa import VSMInstruction
from repro.isa import vsm as isa
from repro.logic import BitVec
from repro.processors.sym_vsm import alu_result, decode_fields

from _bench_utils import record_paper_comparison


def regenerate_table1():
    """One row per Table-1 instruction: (mnemonic, opcode, example result)."""
    rows = []
    registers = [0, 1, 2, 3, 4, 5, 6, 7]
    for mnemonic, opcode in sorted(isa.OPCODES.items(), key=lambda item: item[1]):
        instruction = VSMInstruction(mnemonic, ra=2, rb=5, rc=1)
        new_registers, new_pc = isa.execute(instruction, registers, pc=6)
        rows.append((mnemonic, format(opcode, "03b"), new_registers[1], new_pc))
    return rows


def test_table1_rows(benchmark):
    rows = benchmark(regenerate_table1)
    # Table 1 semantics: add/xor/and/or compute on registers, br links the PC.
    by_mnemonic = {row[0]: row for row in rows}
    assert by_mnemonic["add"][2] == (2 + 5) % 8
    assert by_mnemonic["xor"][2] == 2 ^ 5
    assert by_mnemonic["and"][2] == 2 & 5
    assert by_mnemonic["or"][2] == 2 | 5
    assert by_mnemonic["br"][2] == 6  # Rc <- PC
    assert by_mnemonic["br"][3] == 6 + 2  # PC <- PC + Disp
    record_paper_comparison(
        benchmark,
        experiment="Table 1 (VSM instruction set)",
        paper="5 instructions: add, xor, and, or, br (13-bit format)",
        measured=f"{len(rows)} instructions regenerated with matching semantics",
    )


def test_table1_symbolic_alu_matches_reference(benchmark):
    """The symbolic datapath implements exactly the Table-1 ALU semantics."""

    def check_all():
        manager = BDDManager()
        mismatches = 0
        for mnemonic in ("add", "xor", "and", "or"):
            instruction = VSMInstruction(mnemonic, ra=0, rb=0, rc=0)
            fields = decode_fields(
                BitVec.constant(manager, instruction.encode(), isa.INSTRUCTION_WIDTH)
            )
            for a in range(8):
                for b in range(8):
                    symbolic = alu_result(
                        fields,
                        BitVec.constant(manager, a, 3),
                        BitVec.constant(manager, b, 3),
                    ).as_constant()
                    if symbolic != isa.alu_operation(mnemonic, a, b):
                        mismatches += 1
        return mismatches

    mismatches = benchmark(check_all)
    assert mismatches == 0
    record_paper_comparison(
        benchmark,
        experiment="Table 1 (symbolic datapath cross-check)",
        paper="ALU semantics per Table 1",
        measured="256 operand pairs x 4 ALU ops, 0 mismatches",
    )


def test_table1_executor_throughput(benchmark):
    """Decode + execute throughput of the reference executor."""
    rng = random.Random(1)
    program = [isa.random_instruction(rng).encode() for _ in range(500)]

    def run():
        registers = [0] * 8
        pc = 0
        for word in program:
            registers, pc = isa.execute(isa.decode(word), registers, pc)
        return pc

    benchmark(run)
    record_paper_comparison(
        benchmark,
        experiment="Table 1 (reference executor)",
        paper="(not reported; substrate only)",
        measured="500-instruction random workload per round",
    )


@pytest.mark.bench_smoke
def test_smoke_table1():
    """Fast tier: Table-1 semantics regenerate."""
    rows = regenerate_table1()
    assert [row[0] for row in rows] == ["add", "xor", "and", "or", "br"]
