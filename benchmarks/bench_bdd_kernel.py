"""Array-kernel acceptance benchmark: the new integer-handle BDD kernel
vs. the object-graph kernel it replaced.

The PR-4 tentpole rewrote ``src/repro/bdd`` as a struct-of-arrays
kernel (integer handles, one iterative ITE core with standard-triple
normalisation and native XOR/XNOR, shared int-tuple-keyed op caches,
mark-and-sweep arena GC with a free-list, array-native level swaps).
This benchmark measures that representation change in isolation: a
faithful, self-contained copy of the seed *object-graph* kernel (heap
``BDDNode`` objects, recursive apply walkers, per-call restrict/compose
caches, object-relink level swaps) is embedded below as the baseline,
and both kernels run identical operation workloads.

Measured regimes (each engine-derived):

* ``cold_apply``    — fresh-manager mixed AND/OR/XOR/ITE accumulation
                      (model construction from nothing);
* ``warm_apply``    — repeated re-derivation on one manager (the pooled
                      campaign regime);
* ``compare``       — XNOR/AND vector-equality chains (the verifier's
                      sample comparison; exercises the native XOR core);
* ``advance``       — restrict + support-limited compose over a shared
                      register-file DAG (the relational stepper's
                      per-cycle product);
* ``quantify``      — existential smoothing sweeps;
* ``big_build``     — a block-ordered comparator driven to ~10^5 nodes
                      (allocation-heavy regime).

plus the **fat-level swap latency** on the comparator's exponential
boundary levels, and an **arena/GC** session loop the object-graph
kernel cannot run at all (it has no collector — its table only grows).

Results are written to ``BENCH_kernel.json`` next to this file (CI
uploads it as an artifact): per-regime ops/sec for both kernels, the
speedup per regime and their geometric mean, swap latencies, and the
arena's live/capacity/free/reclaimed accounting.

Honesty note: both kernels bottom out in the same CPython dict
operations per node (one cache probe, one cache store, one unique-table
probe per constructed node), so regimes dominated by cold allocation
cannot improve much; the wins come where object allocation, complement
materialisation (XOR/XNOR), per-call (vs shared) memo caches or table
garbage dominated.  PR 5 attacked the PR-4 cold-chain negative (~0.65x)
with bounded-depth recursive fast paths in the ITE/AND/OR/XOR cores
(one cheap frame per expanded node, explicit stack only past the depth
budget) plus cheaper wrapper interning; cold recovered to ~0.90x on the
dev box.  PR 9 re-profiled the residual for the vectorized-backend
work: manager construction is ~1.5% of the regime and suppressing
wrapper interning entirely moves the needle by under 1% — the remaining
gap lives *inside* the memoized cores (standard-triple normalisation
and GC-capable bookkeeping per constructed node, which buy the
compare/advance/swap wins), so the >=1.0x target stays a recorded
near-miss at ~0.90-0.93x.  The ``backends`` regimes added by PR 9
measure the vector backend's bulk restore and (forced-on) swap planner
against the dict backend; their floors track the measured numbers,
including the honest negatives.  The asserted bars below are measured
floors; ROADMAP records the headline numbers and the misses alongside
the wins.
"""

import contextlib
import gc
import json
import math
import pathlib
import time
from typing import Dict, Iterable

import pytest

from repro.bdd import BDDManager, create_manager
from repro.bdd import vector as vector_backend
from repro.bdd.reorder import _swap_levels
from repro.bdd.vector import numpy_available

from _bench_utils import record_paper_comparison

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_kernel.json"

_TERMINAL_LEVEL = 1 << 60


# ======================================================================
# The baseline: a faithful copy of the seed object-graph kernel
# ======================================================================
class _LegacyNode:
    """Seed-era heap node (one Python object per BDD node)."""

    __slots__ = ("level", "low", "high", "value", "node_id")

    def __init__(self, level, low, high, value, node_id):
        self.level = level
        self.low = low
        self.high = high
        self.value = value
        self.node_id = node_id

    @property
    def is_terminal(self):
        return self.value is not None


class LegacyManager:
    """The seed ``BDDManager`` reduced to the operations measured here.

    Algorithms and data structures are copied from the pre-refactor
    module: hash-consed ``_mk`` over object children, recursive ``ite``
    with ``_cofactors_at``, XOR/XNOR through materialised negation,
    per-call dict caches for restrict/compose, a shared quantify cache,
    a per-level node index and the object-relinking level swap.
    """

    def __init__(self, variables=None):
        self._level_of = {}
        self._name_of = []
        self._unique = {}
        self._level_index = {}
        self._ite_cache = {}
        self._quant_cache = {}
        self._next_id = 2
        self.zero = _LegacyNode(_TERMINAL_LEVEL, None, None, 0, 0)
        self.one = _LegacyNode(_TERMINAL_LEVEL, None, None, 1, 1)
        if variables:
            for name in variables:
                self.declare(name)

    def declare(self, name):
        if name in self._level_of:
            return
        self._level_of[name] = len(self._name_of)
        self._name_of.append(name)

    def level(self, name):
        return self._level_of[name]

    def size(self):
        return len(self._unique)

    def level_population(self):
        return {
            level: len(bucket)
            for level, bucket in self._level_index.items()
            if bucket
        }

    def _mk(self, level, low, high):
        if low is high:
            return low
        key = (level, low.node_id, high.node_id)
        node = self._unique.get(key)
        if node is None:
            node = _LegacyNode(level, low, high, None, self._next_id)
            self._next_id += 1
            self._unique[key] = node
            bucket = self._level_index.get(level)
            if bucket is None:
                bucket = self._level_index[level] = {}
            bucket[node.node_id] = node
        return node

    def var(self, name):
        if name not in self._level_of:
            self.declare(name)
        return self._mk(self._level_of[name], self.zero, self.one)

    @staticmethod
    def _cofactors_at(node, level):
        if node.level == level:
            return node.low, node.high
        return node, node

    def ite(self, f, g, h):
        if f is self.one:
            return g
        if f is self.zero:
            return h
        if g is h:
            return g
        if g is self.one and h is self.zero:
            return f
        key = (f.node_id, g.node_id, h.node_id)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(f.level, g.level, h.level)
        f0, f1 = self._cofactors_at(f, level)
        g0, g1 = self._cofactors_at(g, level)
        h0, h1 = self._cofactors_at(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    def apply_not(self, f):
        return self.ite(f, self.zero, self.one)

    def apply_and(self, f, g):
        return self.ite(f, g, self.zero)

    def apply_or(self, f, g):
        return self.ite(f, self.one, g)

    def apply_xor(self, f, g):
        return self.ite(f, self.apply_not(g), g)

    def apply_xnor(self, f, g):
        return self.ite(f, g, self.apply_not(g))

    def restrict(self, f, assignment):
        if not assignment:
            return f
        levels = {self.level(name): bool(value) for name, value in assignment.items()}
        cache = {}

        def walk(node):
            if node.is_terminal:
                return node
            hit = cache.get(node.node_id)
            if hit is not None:
                return hit
            if node.level in levels:
                result = walk(node.high if levels[node.level] else node.low)
            else:
                result = self._mk(node.level, walk(node.low), walk(node.high))
            cache[node.node_id] = result
            return result

        return walk(f)

    def exists(self, names, f):
        levels = frozenset(self.level(name) for name in names)
        if not levels:
            return f
        max_level = max(levels)
        memo = {}
        shared = self._quant_cache

        def walk(node):
            if node.is_terminal or node.level > max_level:
                return node
            hit = memo.get(node.node_id)
            if hit is None:
                hit = shared.get(("exists", node.node_id, levels))
                if hit is not None:
                    memo[node.node_id] = hit
            if hit is not None:
                return hit
            low = walk(node.low)
            high = walk(node.high)
            if node.level in levels:
                result = self.apply_or(low, high)
            else:
                result = self._mk(node.level, low, high)
            memo[node.node_id] = result
            shared[("exists", node.node_id, levels)] = result
            return result

        return walk(f)

    def compose(self, f, substitution):
        if not substitution:
            return f
        by_level = {self.level(name): g for name, g in substitution.items()}
        cache = {}

        def walk(node):
            if node.is_terminal:
                return node
            hit = cache.get(node.node_id)
            if hit is not None:
                return hit
            low = walk(node.low)
            high = walk(node.high)
            replacement = by_level.get(node.level)
            if replacement is None:
                var_fn = self._mk(node.level, self.zero, self.one)
            else:
                var_fn = replacement
            result = self.ite(var_fn, high, low)
            cache[node.node_id] = result
            return result

        return walk(f)

    def count_nodes(self, f):
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            if not node.is_terminal:
                stack.append(node.low)
                stack.append(node.high)
        return len(seen)

    def swap_levels(self, level):
        """The seed object-relink level swap (reorder.py, pre-refactor)."""
        unique = self._unique
        x_nodes = list((self._level_index.get(level) or {}).values())
        y_nodes = list((self._level_index.get(level + 1) or {}).values())
        y_ids = {node.node_id for node in y_nodes}
        independent = []
        rebuilds = []
        for node in x_nodes:
            low, high = node.low, node.high
            low_tests_y = low.node_id in y_ids
            high_tests_y = high.node_id in y_ids
            if not low_tests_y and not high_tests_y:
                independent.append(node)
                continue
            f00, f01 = (low.low, low.high) if low_tests_y else (low, low)
            f10, f11 = (high.low, high.high) if high_tests_y else (high, high)
            rebuilds.append((node, f00, f01, f10, f11))
        for node in x_nodes:
            unique.pop((level, node.low.node_id, node.high.node_id), None)
        for node in y_nodes:
            unique.pop((level + 1, node.low.node_id, node.high.node_id), None)
        for node in y_nodes:
            node.level = level
            unique[(level, node.low.node_id, node.high.node_id)] = node
        for node in independent:
            node.level = level + 1
            unique[(level + 1, node.low.node_id, node.high.node_id)] = node
        self._level_index[level] = {node.node_id: node for node in y_nodes}
        self._level_index[level + 1] = {node.node_id: node for node in independent}
        for node, f00, f01, f10, f11 in rebuilds:
            new_low = self._mk(level + 1, f00, f10)
            new_high = self._mk(level + 1, f01, f11)
            node.low = new_low
            node.high = new_high
            unique[(level, new_low.node_id, new_high.node_id)] = node
            self._level_index[level][node.node_id] = node
        names = self._name_of
        names[level], names[level + 1] = names[level + 1], names[level]
        self._level_of[names[level]] = level
        self._level_of[names[level + 1]] = level + 1
        self._ite_cache.clear()
        self._quant_cache.clear()


# ======================================================================
# Operation workloads (identical code for both kernels)
# ======================================================================
def _cold_apply(make_manager, iterations, width=18):
    """Fresh-manager mixed accumulation: model building from nothing."""
    ops = 0
    check = 0
    started = time.perf_counter()
    for _ in range(iterations):
        m = make_manager([f"v{i}" for i in range(width)])
        fs = [m.var(f"v{i}") for i in range(width)]
        acc = m.zero
        for i, f in enumerate(fs):
            if i % 3 == 0:
                acc = m.apply_xor(acc, f)
            elif i % 3 == 1:
                acc = m.apply_or(acc, m.apply_and(f, fs[i - 1]))
            else:
                acc = m.ite(f, acc, fs[i - 2])
            ops += 2
        check += m.count_nodes(acc)
    return time.perf_counter() - started, ops, check


def _warm_apply(make_manager, iterations, width=20):
    """One manager, repeated re-derivation: the pooled campaign regime."""
    m = make_manager([f"v{i}" for i in range(width)])
    fs = [m.var(f"v{i}") for i in range(width)]
    ops = 0
    check = 0
    started = time.perf_counter()
    for _ in range(iterations):
        acc = m.one
        for i, f in enumerate(fs):
            if i % 4 == 0:
                acc = m.apply_and(acc, m.apply_or(f, fs[(i + 3) % width]))
            elif i % 4 == 1:
                acc = m.apply_xor(acc, f)
            elif i % 4 == 2:
                acc = m.ite(f, acc, m.apply_not(fs[(i + 1) % width]))
            else:
                acc = m.apply_xnor(acc, fs[(i + 5) % width])
            ops += 2
        check += m.count_nodes(acc)
    return time.perf_counter() - started, ops, check


def _build_vector(m, nvars, width, stride=7):
    vs = [m.var(f"v{i}") for i in range(nvars)]
    bits = []
    carry = m.zero
    for i in range(width):
        a = vs[i % nvars]
        b = vs[(i * stride + 3) % nvars]
        s = m.apply_xor(m.apply_xor(a, b), carry)
        carry = m.apply_or(
            m.apply_and(a, b), m.apply_and(carry, m.apply_xor(a, b))
        )
        bits.append(s)
    return bits


def _compare(make_manager, iterations, nvars=28, width=24):
    """XNOR/AND vector-equality chains: the verifier's sample compare."""
    m = make_manager([f"v{i}" for i in range(nvars)])
    left = _build_vector(m, nvars, width, 5)
    right = _build_vector(m, nvars, width, 11)
    ops = 0
    check = 0
    started = time.perf_counter()
    for _ in range(iterations):
        acc = m.one
        for a, b in zip(left, right):
            acc = m.apply_and(acc, m.apply_xnor(a, b))
            ops += 2
        check += m.count_nodes(acc)
    return time.perf_counter() - started, ops, check


def _advance(make_manager, iterations, nreg=8, width=8, sel=3):
    """Register-file relation advance: restrict + support-limited compose.

    The next-state functions mirror the beta stepper's: each latch bit
    is a mux tree over the *whole* write port (selector decode, write
    data, old value), so every per-bit product walks a shared DAG of
    real size — which is where the shared (cross-call) restrict/compose
    caches of the array kernel pay, exactly as in
    :meth:`repro.relational.beta.MachineStepper.advance`.
    """
    names = (
        [f"sel[{i}]" for i in range(sel)]
        + ["wen"]
        + [f"wd[{i}]" for i in range(width)]
        + [f"r{r}[{b}]" for r in range(nreg) for b in range(width)]
    )
    m = make_manager(names)
    sel_vars = [m.var(f"sel[{i}]") for i in range(sel)]
    wen = m.var("wen")
    # Write data with real cones: an adder chain over two registers.
    wdata = []
    carry = m.var("wen")
    for b in range(width):
        a_bit = m.var(f"r0[{b}]")
        b_bit = m.var(f"r1[{b}]")
        wdata.append(m.apply_xor(m.apply_xor(a_bit, b_bit), carry))
        carry = m.apply_or(
            m.apply_and(a_bit, b_bit), m.apply_and(carry, m.apply_xor(a_bit, b_bit))
        )
    nxt = {}
    for r in range(nreg):
        dec = m.one
        for i in range(sel):
            bit = sel_vars[i] if (r >> i) & 1 else m.apply_not(sel_vars[i])
            dec = m.apply_and(dec, bit)
        gate = m.apply_and(dec, wen)
        for b in range(width):
            nxt[(r, b)] = m.ite(gate, wdata[b], m.var(f"r{r}[{b}]"))
    substitution = {
        f"r{r}[{b}]": m.apply_xor(
            m.var(f"r{(r + 1) % nreg}[{b}]"),
            m.apply_and(
                m.var(f"r{(r + 2) % nreg}[{(b + 1) % width}]"),
                m.var(f"r{(r + 3) % nreg}[{(b + 2) % width}]"),
            ),
        )
        for r in range(nreg)
        for b in range(width)
    }
    ops = 0
    check = 0
    started = time.perf_counter()
    for round_index in range(iterations):
        fixed = {f"sel[{i}]": bool((round_index >> i) & 1) for i in range(sel)}
        fixed["wen"] = True
        for fn in nxt.values():
            g = m.restrict(fn, fixed)
            g = m.compose(g, substitution)
            ops += 2
            check += 0 if g is m.zero else 1
    return time.perf_counter() - started, ops, check


def _quantify(make_manager, iterations, nvars=22, width=18):
    """Existential smoothing sweeps over shared-DAG vectors."""
    m = make_manager([f"v{i}" for i in range(nvars)])
    bits = _build_vector(m, nvars, width)
    ops = 0
    check = 0
    started = time.perf_counter()
    for round_index in range(iterations):
        names = [f"v{i}" for i in range(round_index % 5, nvars, 5)]
        for bit in bits[::2]:
            q = m.exists(names, bit)
            ops += 1
            check += m.count_nodes(q)
    return time.perf_counter() - started, ops, check


def _comparator(m, width):
    f = m.one
    for i in range(width):
        f = m.apply_and(f, m.apply_xnor(m.var(f"a{i}"), m.var(f"b{i}")))
    return f


def _big_build(make_manager, iterations, width=12):
    """Block-ordered comparator: exponential allocation-heavy regime."""
    ops = 0
    check = 0
    started = time.perf_counter()
    for _ in range(iterations):
        m = make_manager(
            [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
        )
        f = _comparator(m, width)
        ops += 2 * width
        check += m.size()
    return time.perf_counter() - started, ops, check


REGIMES = {
    "cold_apply": _cold_apply,
    "warm_apply": _warm_apply,
    "compare": _compare,
    "advance": _advance,
    "quantify": _quantify,
    "big_build": _big_build,
}

#: Iteration counts per tier.
FULL_ITERATIONS = {
    "cold_apply": 300,
    "warm_apply": 400,
    "compare": 30,
    "advance": 8,
    "quantify": 80,
    "big_build": 4,
}
SMOKE_ITERATIONS = {
    "cold_apply": 12,
    "warm_apply": 20,
    "compare": 4,
    "advance": 1,
    "quantify": 4,
    "big_build": 1,
}

#: Timed repetitions per regime (best-of, to shave scheduler noise).
FULL_REPEATS = 2
SMOKE_REPEATS = 1


def _best_of(workload, factory, count, repeats):
    best = None
    for _ in range(repeats):
        gc.collect()
        seconds, ops, check = workload(factory, count)
        if best is None or seconds < best[0]:
            best = (seconds, ops, check)
    return best


def _run_regimes(
    iterations: Dict[str, int], repeats: int = 1
) -> Dict[str, Dict[str, float]]:
    """Run every regime on both kernels; return the per-regime record."""
    results: Dict[str, Dict[str, float]] = {}
    for name, workload in REGIMES.items():
        count = iterations[name]
        legacy_seconds, ops, legacy_check = _best_of(
            workload, LegacyManager, count, repeats
        )
        kernel_seconds, kernel_ops, kernel_check = _best_of(
            workload, BDDManager, count, repeats
        )
        assert ops == kernel_ops
        # ``check`` sums structure sizes where comparable; the native
        # XOR path allocates fewer dead intermediates, so table sizes
        # may differ while every counted *function* is identical — the
        # differential suites pin semantic identity, this pins apples
        # against apples per regime.
        if name in ("cold_apply", "warm_apply", "compare", "advance"):
            assert legacy_check == kernel_check, name
        results[name] = {
            "ops": ops,
            "legacy_seconds": round(legacy_seconds, 4),
            "kernel_seconds": round(kernel_seconds, 4),
            "legacy_ops_per_s": round(ops / max(legacy_seconds, 1e-9)),
            "kernel_ops_per_s": round(ops / max(kernel_seconds, 1e-9)),
            "speedup": round(legacy_seconds / max(kernel_seconds, 1e-9), 3),
        }
    return results


def _swap_latency(width: int, swaps: int) -> Dict[str, object]:
    """Fat-boundary swap latency on the block-ordered comparator.

    Each measured swap runs on a pristine, freshly built table (a swap
    mutates the very structure it is measured on, so back-to-back swaps
    at one boundary are not comparable); best-of over ``swaps`` builds.
    """
    names = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    boundary = width - 1
    legacy_times = []
    kernel_times = []
    table_nodes = 0
    boundary_population = 0
    for _ in range(swaps):
        gc.collect()
        legacy = LegacyManager(names)
        _comparator(legacy, width)
        started = time.perf_counter()
        legacy.swap_levels(boundary)
        legacy_times.append(time.perf_counter() - started)
        gc.collect()
        kernel = BDDManager(names)
        _comparator(kernel, width)
        table_nodes = kernel.size()
        boundary_population = sum(
            kernel.level_population().get(level, 0)
            for level in (boundary, boundary + 1)
        )
        started = time.perf_counter()
        _swap_levels(kernel, boundary)
        kernel_times.append(time.perf_counter() - started)

    legacy_best = min(legacy_times)
    kernel_best = min(kernel_times)
    return {
        "table_nodes": table_nodes,
        "boundary_population": boundary_population,
        "legacy_ms": round(legacy_best * 1000, 3),
        "kernel_ms": round(kernel_best * 1000, 3),
        "speedup": round(legacy_best / max(kernel_best, 1e-9), 3),
    }


def _arena_sessions(sessions: int, width: int) -> Dict[str, object]:
    """Repeated build/drop/collect sessions: the arena must stay flat.

    The object-graph kernel has no collector, so this regime is
    kernel-only: it demonstrates that the free-list actually bounds the
    arena across campaign-session-like churn.
    """
    m = BDDManager([f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)])
    capacities = []
    reclaimed_total = 0
    for _ in range(sessions):
        f = _comparator(m, width)
        del f
        reclaimed_total += m.collect()
        capacities.append(m.arena_statistics()["capacity"])
    stats = m.arena_statistics()
    return {
        "sessions": sessions,
        "capacity_first": capacities[0],
        "capacity_last": capacities[-1],
        "capacity_max": max(capacities),
        "reclaimed_total": reclaimed_total,
        "live_after": stats["live"],
        "free_after": stats["free"],
        "allocated_total": stats["allocated_total"],
    }


@contextlib.contextmanager
def _force_vector_paths():
    """Run the vector paths regardless of the production thresholds.

    The backend regimes measure the vectorized paths *themselves*; the
    production thresholds (``VECTOR_RESTORE_MIN``/``VECTOR_SWAP_MIN``)
    encode where those paths win and would otherwise route the smaller
    bench sizes to the scalar fallback, silently measuring dict vs.
    dict.
    """
    saved = (vector_backend.VECTOR_RESTORE_MIN, vector_backend.VECTOR_SWAP_MIN)
    vector_backend.VECTOR_RESTORE_MIN = 1
    vector_backend.VECTOR_SWAP_MIN = 1
    try:
        yield
    finally:
        vector_backend.VECTOR_RESTORE_MIN, vector_backend.VECTOR_SWAP_MIN = saved


def _backend_restore(width: int, repeats: int) -> Dict[str, object]:
    """Dict vs. vector backend on the snapshot restore path.

    ``build_seconds`` rebuilds the snapshot's content from scratch — the
    honest stand-in for relation extraction — so ``restore_ratio`` is
    "cold rehydration cost as a fraction of recomputation cost", the
    number the store's snapshot rehydration pitch rests on.  (The
    engine-level ratio against *real* relation extraction is measured
    in ``bench_campaign_throughput.py``; there JSON decode dominates
    rehydration, see the honest negatives in ``repro/bdd/vector.py``.)
    """
    names = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    gc.collect()
    started = time.perf_counter()
    source = BDDManager(names)
    root = _comparator(source, width)
    build_seconds = time.perf_counter() - started
    payload = source.snapshot([root], declares=source.variables)
    nodes = len(payload["levels"])

    def cold(backend):
        best, manager = None, None
        for _ in range(repeats):
            gc.collect()
            m = create_manager(backend=backend)
            t0 = time.perf_counter()
            m.restore(payload)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best, manager = elapsed, m
        return best, manager

    def warm(manager):
        best = None
        for _ in range(repeats):
            gc.collect()
            t0 = time.perf_counter()
            manager.restore(payload)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None or elapsed < best else best
        return best

    with _force_vector_paths():
        dict_cold, dict_mgr = cold("dict")
        vector_cold, vector_mgr = cold("vector")
        dict_warm = warm(dict_mgr)
        vector_warm = warm(vector_mgr)
    return {
        "numpy": numpy_available(),
        "snapshot_nodes": nodes,
        "build_seconds": round(build_seconds, 4),
        "cold_dict_ms": round(dict_cold * 1000, 3),
        "cold_vector_ms": round(vector_cold * 1000, 3),
        "warm_dict_ms": round(dict_warm * 1000, 3),
        "warm_vector_ms": round(vector_warm * 1000, 3),
        "cold_speedup": round(dict_cold / max(vector_cold, 1e-9), 3),
        "warm_speedup": round(dict_warm / max(vector_warm, 1e-9), 3),
        "restore_ratio": round(vector_cold / max(build_seconds, 1e-9), 4),
        "vector_stats": dict(vector_mgr._vector_stats),
    }


def _backend_swap(width: int, swaps: int) -> Dict[str, object]:
    """Dict vs. vector backend on the fat-boundary level swap.

    This measures the vectorized swap *planner* (forced on — the
    production default disables it at every size), so the recorded
    speedup is the honest negative the module docstring of
    ``repro/bdd/vector.py`` describes, not what a production swap pays
    (production swaps take the scalar plan on both backends).
    """
    names = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    boundary = width - 1
    times = {"dict": [], "vector": []}
    stats = {}
    with _force_vector_paths():
        for _ in range(swaps):
            for backend in ("dict", "vector"):
                gc.collect()
                m = create_manager(names, backend=backend)
                _comparator(m, width)
                started = time.perf_counter()
                _swap_levels(m, boundary)
                times[backend].append(time.perf_counter() - started)
                if backend == "vector":
                    stats = dict(getattr(m, "_vector_stats", {}))
    dict_best = min(times["dict"])
    vector_best = min(times["vector"])
    return {
        "numpy": numpy_available(),
        "dict_ms": round(dict_best * 1000, 3),
        "vector_ms": round(vector_best * 1000, 3),
        "speedup": round(dict_best / max(vector_best, 1e-9), 3),
        "vector_stats": stats,
    }


def _geomean(values: Iterable[float]) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _write_json(payload: Dict[str, object]) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _payload(tier: str, regimes, swap, arena, backends=None) -> Dict[str, object]:
    speedups = [entry["speedup"] for entry in regimes.values()]
    payload = {
        "tier": tier,
        "op_throughput": regimes,
        "aggregate_speedup_geomean": round(_geomean(speedups), 3),
        "best_regime_speedup": round(max(speedups), 3),
        "swap_latency": swap,
        "arena": arena,
    }
    if backends is not None:
        payload["backends"] = backends
    return payload


# ======================================================================
# Tiers
# ======================================================================
@pytest.mark.bench_smoke
def test_kernel_bench_smoke(benchmark):
    """Sub-minute pass over every regime; emits BENCH_kernel.json."""

    def run():
        regimes = _run_regimes(SMOKE_ITERATIONS, repeats=SMOKE_REPEATS)
        swap = _swap_latency(width=10, swaps=2)
        arena = _arena_sessions(sessions=4, width=10)
        backends = {
            "restore": _backend_restore(width=10, repeats=2),
            "swap": _backend_swap(width=10, swaps=2),
        }
        return regimes, swap, arena, backends

    regimes, swap, arena, backends = benchmark.pedantic(run, rounds=1, iterations=1)
    payload = _payload("smoke", regimes, swap, arena, backends)
    _write_json(payload)
    # Smoke bars are correctness-of-harness, not performance claims.
    assert swap["kernel_ms"] > 0 and swap["legacy_ms"] > 0
    assert arena["capacity_last"] <= arena["capacity_max"]
    assert arena["reclaimed_total"] > 0
    if backends["restore"]["numpy"]:
        # The vector leg actually vectorized (no silent fallback) and
        # rehydration stays well under recomputation cost.
        assert backends["restore"]["vector_stats"]["bulk_restores"] >= 1
        assert backends["restore"]["restore_ratio"] <= 0.6
    record_paper_comparison(
        benchmark,
        experiment="array kernel vs object-graph kernel (smoke)",
        paper="Section 3.2: ROBDD operations dominate verification cost",
        measured=(
            f"geomean speedup {payload['aggregate_speedup_geomean']}x, "
            f"swap {swap['legacy_ms']}ms -> {swap['kernel_ms']}ms"
        ),
    )


def test_kernel_op_throughput_and_swap(benchmark):
    """Full tier: measured speedups with the acceptance floors asserted."""

    def run():
        regimes = _run_regimes(FULL_ITERATIONS, repeats=FULL_REPEATS)
        swap = _swap_latency(width=14, swaps=3)
        arena = _arena_sessions(sessions=8, width=12)
        backends = {
            "restore": _backend_restore(width=14, repeats=3),
            "swap": _backend_swap(width=12, swaps=3),
        }
        return regimes, swap, arena, backends

    regimes, swap, arena, backends = benchmark.pedantic(run, rounds=1, iterations=1)
    payload = _payload("full", regimes, swap, arena, backends)
    _write_json(payload)

    # The arena stays flat across sessions (free-list reuse works)...
    assert arena["capacity_last"] <= arena["capacity_first"] * 1.05
    # ...the fat-level swap got faster in-place...
    assert swap["speedup"] > 1.0, swap
    # ...and op throughput beats the object-graph kernel where the
    # representation matters (floors are set well under the typical
    # measurements — see ROADMAP for the recorded numbers — so CI noise
    # does not flake the tier; regressions of the *shape* still fail).
    assert regimes["compare"]["speedup"] >= 1.4, regimes["compare"]
    assert regimes["warm_apply"]["speedup"] >= 1.0, regimes["warm_apply"]
    # The PR-5 recursive fast path lifted cold chains from ~0.65x to
    # ~0.85x typical; the floor is set under the noise band (the >=1.0x
    # target itself is a recorded near-miss, see the module docstring).
    assert regimes["cold_apply"]["speedup"] >= 0.72, regimes["cold_apply"]
    assert swap["speedup"] >= 1.5, swap
    assert payload["aggregate_speedup_geomean"] >= 1.15, payload
    if backends["restore"]["numpy"]:
        # Snapshot rehydration on the vector backend: genuinely bulk
        # (no silent fallback); floors are set under the measured
        # numbers (warm 1.17x, cold 0.97x at 49k nodes — cold parity is
        # the recorded honest ceiling: every new node still pays the
        # C-dict insert; see repro/bdd/vector.py and ROADMAP).
        assert backends["restore"]["vector_stats"]["bulk_restores"] >= 1
        assert backends["restore"]["warm_speedup"] >= 0.9, backends["restore"]
        assert backends["restore"]["cold_speedup"] >= 0.75, backends["restore"]
        # The forced-on vector swap planner records its honest negative
        # (0.25-0.32x planning; whole-swap ~0.75x) — a *collapse* of the
        # recorded shape still fails.
        assert backends["swap"]["speedup"] >= 0.4, backends["swap"]
    record_paper_comparison(
        benchmark,
        experiment="array kernel vs object-graph kernel (full)",
        paper="Section 3.2: ROBDD operations dominate verification cost",
        measured=(
            f"per-regime speedups "
            f"{ {name: entry['speedup'] for name, entry in regimes.items()} }, "
            f"geomean {payload['aggregate_speedup_geomean']}x, "
            f"swap {swap['legacy_ms']}ms -> {swap['kernel_ms']}ms "
            f"({swap['speedup']}x) at {swap['table_nodes']} nodes"
        ),
    )


if __name__ == "__main__":
    regimes = _run_regimes(FULL_ITERATIONS, repeats=FULL_REPEATS)
    swap = _swap_latency(width=14, swaps=3)
    arena = _arena_sessions(sessions=8, width=12)
    backends = {
        "restore": _backend_restore(width=14, repeats=3),
        "swap": _backend_swap(width=12, swaps=3),
    }
    payload = _payload("full", regimes, swap, arena, backends)
    _write_json(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
