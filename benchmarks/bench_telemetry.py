"""Telemetry overhead benchmark (PR 7).

The telemetry subsystem's contract is *off means free, on means cheap*:
the engine is instrumented unconditionally, a disabled span is one
module-global read returning a shared no-op singleton, and enabling
tracing may not meaningfully slow a campaign down.  This benchmark pins
the "on means cheap" half on the smoke campaign:

* run the same scenario set with tracing disabled and enabled
  (alternating, best-of-N wall clock each, fresh runner per run so
  every run does the full BDD work);
* assert verdict byte-identity between the two modes (the "observe
  only" contract, also differential-tested in tier 1);
* record the traced/untraced wall-clock ratio.  The issue's target is
  <= 1.05 (5% overhead); the measured ratio and whether the target was
  met are recorded honestly in ``BENCH_telemetry.json``, and a 1.25
  hard ceiling is asserted so a pathological regression (per-ITE-call
  tracing, accidental flushing in a hot loop) fails CI outright while
  a noisy-box near-miss of the 5% goal does not.

Results land in ``BENCH_telemetry.json`` next to this file; CI uploads
it together with the smoke campaign's trace artifacts.
"""

import argparse
import gc
import json
import pathlib
import tempfile
import time

import pytest

from repro import telemetry
from repro.engine import CampaignRunner
from repro.telemetry import report as trace_report

from _bench_utils import record_paper_comparison

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_telemetry.json"

#: The issue's overhead target (traced wall clock / untraced).
OVERHEAD_TARGET = 1.05
#: The asserted ceiling: catches pathological instrumentation
#: regressions without making CI flaky over measurement noise.
OVERHEAD_CEILING = 1.25

#: The smoke campaign: representative of the instrument catalog —
#: beta cycles, relational extraction, events, an injected bug.
SMOKE_SCENARIOS = (
    "vsm/default",
    "vsm/bug/no_bypass",
    "vsm/event/slot0",
)

ROUNDS = 3


def _run_campaign(names) -> "tuple[float, str]":
    """One cold campaign run; returns (wall seconds, verdict JSON).

    A full collection runs first: the previous campaign's dead managers
    otherwise bill their collection cost to whichever run happens to be
    executing when the collector fires — a ~15% position-dependent skew
    that dwarfs the effect being measured.
    """
    gc.collect()
    runner = CampaignRunner()
    started = time.perf_counter()
    report = runner.run(list(names))
    seconds = time.perf_counter() - started
    return seconds, report.verdict_json()


def measure_overhead(names=SMOKE_SCENARIOS, rounds=ROUNDS) -> dict:
    """Best-of-``rounds`` traced vs untraced wall clock on one campaign.

    Each round runs both modes, and the order *alternates* per round:
    within one process, later runs drift slower (heap growth, allocator
    and GC state), so a fixed untraced-then-traced order would charge
    that drift entirely to the traced side.  Tracing writes a real
    JSONL file — the measured cost includes event assembly and the
    end-of-campaign flush, not a no-op tracer.
    """
    telemetry.disable()
    untraced: list = []
    traced: list = []
    verdicts: set = set()
    span_counts: list = []

    def run_untraced() -> None:
        seconds, verdict = _run_campaign(names)
        untraced.append(seconds)
        verdicts.add(verdict)

    with tempfile.TemporaryDirectory() as tmp:
        for round_index in range(rounds):
            def run_traced() -> None:
                trace_path = pathlib.Path(tmp) / f"trace-{round_index}.jsonl"
                telemetry.enable(trace_path=trace_path)
                try:
                    seconds, verdict = _run_campaign(names)
                finally:
                    telemetry.disable()
                traced.append(seconds)
                verdicts.add(verdict)
                span_counts.append(len(trace_report.load_events(trace_path)))

            first, second = (
                (run_untraced, run_traced)
                if round_index % 2 == 0
                else (run_traced, run_untraced)
            )
            first()
            second()
    best_untraced = min(untraced)
    best_traced = min(traced)
    ratio = (best_traced / best_untraced) if best_untraced else 1.0
    return {
        "scenarios": list(names),
        "rounds": rounds,
        "untraced_seconds": [round(s, 4) for s in untraced],
        "traced_seconds": [round(s, 4) for s in traced],
        "best_untraced_seconds": round(best_untraced, 4),
        "best_traced_seconds": round(best_traced, 4),
        "overhead_ratio": round(ratio, 4),
        "overhead_target": OVERHEAD_TARGET,
        "overhead_ceiling": OVERHEAD_CEILING,
        # Honest record: did the measured ratio meet the issue's 5%
        # target on this host?  (The assert uses the ceiling.)
        "bar_met": ratio <= OVERHEAD_TARGET,
        "verdicts_identical": len(verdicts) == 1,
        "trace_spans_per_run": span_counts,
    }


def _write_json(payload: dict) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def emit_artifacts(directory: pathlib.Path, names=SMOKE_SCENARIOS) -> None:
    """One traced smoke campaign; leaves trace.jsonl + registry.json.

    This is the CI artifact step: the trace file and registry snapshot
    a consumer would actually look at land in ``directory`` (the
    overhead measurement above uses throwaway temp traces), and the
    rendered profile goes to stdout so the CI log shows the tree.
    """
    directory.mkdir(parents=True, exist_ok=True)
    trace_path = directory / "trace.jsonl"
    telemetry.enable(trace_path=trace_path)
    try:
        report = CampaignRunner().run(list(names))
    finally:
        telemetry.disable()
    registry_path = directory / "registry.json"
    registry_path.write_text(
        json.dumps(report.telemetry["registry"], indent=2, sort_keys=True) + "\n"
    )
    print(trace_report.render_report(trace_report.load_events(trace_path)))
    print(f"artifacts: {trace_path} {registry_path}")


# ======================================================================
# Tiers
# ======================================================================
@pytest.mark.bench_smoke
def test_telemetry_overhead_smoke(benchmark):
    """Traced vs untraced smoke campaign; emits BENCH_telemetry.json."""
    payload = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)
    _write_json(payload)
    assert payload["verdicts_identical"], "tracing changed a verdict"
    assert payload["trace_spans_per_run"][0] > 0, "traced run recorded no spans"
    assert payload["overhead_ratio"] <= OVERHEAD_CEILING, payload
    record_paper_comparison(
        benchmark,
        experiment="telemetry overhead (smoke)",
        paper="instrumentation must not perturb the measured verification runs",
        measured=(
            f"traced/untraced ratio {payload['overhead_ratio']} "
            f"(target <= {OVERHEAD_TARGET}, met: {payload['bar_met']}; "
            f"ceiling {OVERHEAD_CEILING} asserted)"
        ),
    )


# ======================================================================
# CLI (CI artifact step)
# ======================================================================
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument(
        "--artifacts",
        type=pathlib.Path,
        default=None,
        help="also run one traced smoke campaign and write "
        "trace.jsonl + registry.json into this directory",
    )
    args = parser.parse_args()
    payload = measure_overhead(rounds=args.rounds)
    _write_json(payload)
    if args.artifacts is not None:
        emit_artifacts(args.artifacts)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not payload["verdicts_identical"]:
        print("FAIL: tracing changed a verdict")
        return 1
    if payload["overhead_ratio"] > OVERHEAD_CEILING:
        print(f"FAIL: overhead ratio {payload['overhead_ratio']} above ceiling")
        return 1
    if not payload["bar_met"]:
        print(
            f"NOTE: {OVERHEAD_TARGET} target missed on this host "
            f"(ratio {payload['overhead_ratio']}); recorded honestly."
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
