"""Section 6.2 — verification of the pipelined VSM (headline experiment).

The paper reports, for the VSM with k = 4 and d = 1 driven by the
simulation-information file ``r 0 0 1 0``:

* unpipelined machine simulated for k^2 + r = 17 cycles (175 s on a
  SPARCstation 10),
* pipelined machine simulated for 2k - 1 + r + c*d = 9 cycles (292 s),
* verification of the sampled variable formulae by ROBDD comparison.

The benchmark regenerates the same run — routed through the campaign
engine (:mod:`repro.engine`), the same code path campaigns measure —
and records the measured times; absolute times are hardware- and
implementation-bound, but the shape — the pipelined simulation costs
more than the unpipelined one, and the whole check needs only a handful
of cycles — is preserved.
"""

import pytest

from repro.engine import Scenario, vsm_verification_scenario
from repro.strings import NORMAL, format_filter

from _bench_utils import campaign_runner, record_paper_comparison


def test_vsm_beta_relation_verification(benchmark):
    runner = campaign_runner()
    scenario = vsm_verification_scenario()

    def run():
        runner.clear_memo()
        return runner.run_one(scenario)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.passed, outcome.mismatches
    structure = outcome.structure
    assert structure["specification_cycles"] == 17
    assert structure["implementation_cycles"] == 9
    spec_line = format_filter(structure["specification_filter"])
    impl_line = format_filter(structure["implementation_filter"])
    assert spec_line.endswith("1 0 0 0 1 0 0 0 1 0 0 0 1 0 0 0 1")
    assert impl_line.endswith("1 0 0 0 1 1 1 0 1")
    # Shape check: simulating the pipelined machine is the more expensive phase
    # on a per-cycle basis (9 cycles cost a comparable amount to 17 unpipelined
    # cycles), mirroring the paper's 292 s vs 175 s.
    per_cycle_spec = (
        outcome.timings["specification_seconds"] / structure["specification_cycles"]
    )
    per_cycle_impl = (
        outcome.timings["implementation_seconds"] / structure["implementation_cycles"]
    )
    assert per_cycle_impl > per_cycle_spec
    record_paper_comparison(
        benchmark,
        experiment="Section 6.2 (VSM verification)",
        paper_unpipelined_seconds=175.0,
        paper_pipelined_seconds=292.0,
        paper_platform="Sun SPARCstation 10 (sis/BDSYN flow)",
        measured_unpipelined_seconds=round(outcome.timings["specification_seconds"], 3),
        measured_pipelined_seconds=round(outcome.timings["implementation_seconds"], 3),
        measured_bdd_nodes=outcome.bdd_nodes,
        verdict="PASSED",
    )


def test_vsm_verification_from_symbolic_register_file(benchmark):
    """A reduced run with a fully symbolic initial register file.

    The paper condenses the design to a single observed register to fit
    BDD capacity; here the full register file is kept but only a single
    non-control instruction slot is simulated, which keeps the symbolic
    initial state tractable and shows the check generalises over every
    starting state.
    """
    runner = campaign_runner()
    scenario = Scenario(
        name="vsm/symbolic-initial-state",
        slots=(NORMAL,),
        symbolic_initial_state=True,
    )

    def run():
        runner.clear_memo()
        return runner.run_one(scenario)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.passed, outcome.mismatches
    record_paper_comparison(
        benchmark,
        experiment="Section 6.2 (symbolic initial state variant)",
        paper="single observed register condensation",
        measured="8 symbolic registers, 1 instruction slot, PASSED",
    )


@pytest.mark.bench_smoke
def test_smoke_vsm_verification():
    """Fast tier: a one-slot VSM scenario through the engine must verify."""
    outcome = campaign_runner().run_one(Scenario(name="smoke/vsm", slots=(NORMAL,)))
    assert outcome.passed
    assert outcome.structure["specification_cycles"] == 5  # k + r
    assert outcome.structure["implementation_cycles"] == 5  # slots + (k-1) + r
