"""Sections 6.2 / 6.3 — the printed output filtering functions.

The paper prints the SH1/SH2 sequences for both designs; this benchmark
regenerates them from (k, d, siminfo) and checks them character by
character, then measures the generator itself.
"""

import pytest

from repro.core import alpha0_default, vsm_default
from repro.strings import format_filter, pipelined_filter, unpipelined_filter

from _bench_utils import record_paper_comparison

PAPER_VSM_UNPIPELINED = "1 0 0 0 1 0 0 0 1 0 0 0 1 0 0 0 1"
PAPER_VSM_PIPELINED = "1 0 0 0 1 1 1 0 1"
PAPER_ALPHA0_UNPIPELINED = "1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1"
PAPER_ALPHA0_PIPELINED = "1 0 0 0 0 1 1 1 0 1 1"


def generate_all_filters():
    vsm = vsm_default()
    alpha0 = alpha0_default()
    return {
        "vsm_unpipelined": format_filter(unpipelined_filter(4, vsm.num_slots)),
        "vsm_pipelined": format_filter(pipelined_filter(4, vsm.slots, 1)),
        "alpha0_unpipelined": format_filter(unpipelined_filter(5, alpha0.num_slots)),
        "alpha0_pipelined": format_filter(pipelined_filter(5, alpha0.slots, 1)),
    }


def test_filter_sequences_match_paper(benchmark):
    filters = benchmark(generate_all_filters)
    assert filters["vsm_unpipelined"] == PAPER_VSM_UNPIPELINED
    assert filters["vsm_pipelined"] == PAPER_VSM_PIPELINED
    assert filters["alpha0_unpipelined"] == PAPER_ALPHA0_UNPIPELINED
    assert filters["alpha0_pipelined"] == PAPER_ALPHA0_PIPELINED
    record_paper_comparison(
        benchmark,
        experiment="Sections 6.2/6.3 (output filtering functions)",
        paper="four printed SH1/SH2 sequences",
        measured="all four regenerated exactly",
    )


def test_filter_generation_scales_with_k(benchmark):
    """Generator cost for deeper pipelines (k up to 12)."""

    def run():
        total = 0
        for k in range(2, 13):
            slots = ("normal",) * (k - 1) + ("control",)
            total += len(unpipelined_filter(k, k)) + len(pipelined_filter(k, slots, 1))
        return total

    total = benchmark(run)
    assert total > 0
    record_paper_comparison(
        benchmark,
        experiment="Filter generation scaling",
        paper="(not reported)",
        measured="k = 2..12 schedules generated",
    )


@pytest.mark.bench_smoke
def test_smoke_filter_sequences():
    """Fast tier: the printed SH1/SH2 sequences regenerate exactly."""
    filters = generate_all_filters()
    assert filters["vsm_unpipelined"] == PAPER_VSM_UNPIPELINED
    assert filters["alpha0_pipelined"] == PAPER_ALPHA0_PIPELINED
