"""Figure 4 / Theorem 4.3.1.1 — definite machines.

Order-of-definiteness detection and the |alphabet|**k-sequence
verification procedure on canonical realizations, as the pipeline depth
(the order k) grows.
"""

import pytest

from repro.bdd import BDDManager
from repro.fsm import (
    SymbolicFSM,
    canonical_realization,
    definiteness_order,
    verify_definite_equivalence,
)
from repro.logic import Signal, shift_register

from _bench_utils import record_paper_comparison


@pytest.mark.parametrize("order", [2, 4, 6])
def test_order_detection(benchmark, order):
    """Detecting the order of definiteness of a k-stage machine."""

    def run():
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(shift_register(order), manager)
        return definiteness_order(fsm, max_order=order + 2)

    detected = benchmark(run)
    assert detected == order
    record_paper_comparison(
        benchmark,
        experiment=f"Definite-machine order detection (k={order})",
        paper="pipelined processors are k-definite (k = pipeline depth)",
        measured=f"detected order {detected}",
    )


@pytest.mark.parametrize("order", [2, 3, 4, 5])
def test_theorem_4311_verification_scaling(benchmark, order):
    """Verifying two k-definite machines with k cycles of symbolic simulation."""

    def run():
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(shift_register(order), manager, prefix="L.")
        right_netlist = canonical_realization(order, lambda stages: Signal(stages[-1]))
        right = SymbolicFSM.from_netlist(right_netlist, manager, prefix="R.")
        mapping = dict(zip(sorted(right.input_names), sorted(left.input_names)))
        right_aligned = SymbolicFSM(
            manager,
            input_names=list(left.input_names),
            state_names=list(right.state_names),
            next_state={n: manager.rename(f, mapping) for n, f in right.next_state.items()},
            outputs={n: manager.rename(f, mapping) for n, f in right.outputs.items()},
            reset_state=right.reset_state,
            name="canonical",
        )
        return verify_definite_equivalence(
            left, right_aligned, order, output_pairs=[(f"stage{order - 1}", "out")]
        )

    result = benchmark(run)
    assert result.equivalent
    assert result.sequences_covered == 2 ** order
    record_paper_comparison(
        benchmark,
        experiment=f"Theorem 4.3.1.1 (k={order})",
        paper=f"p^k = {2 ** order} input sequences of length {order} suffice",
        measured=f"{result.cycles_simulated} symbolic cycles cover all of them",
    )


def test_non_definite_machine_is_rejected(benchmark):
    """A counter has unbounded input memory and is correctly classified."""
    from repro.logic import counter

    def run():
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(3), manager)
        return definiteness_order(fsm, max_order=8)

    assert benchmark(run) is None
    record_paper_comparison(
        benchmark,
        experiment="Definite-machine classification (negative case)",
        paper="non-definite machines have an input sequence of arbitrary length",
        measured="counter classified as not definite up to order 8",
    )


@pytest.mark.bench_smoke
def test_smoke_definite_machines():
    """Fast tier: a 2-stage shift register is 2-definite."""
    manager = BDDManager()
    fsm = SymbolicFSM.from_netlist(shift_register(2), manager)
    assert definiteness_order(fsm, max_order=4) == 2
