"""Figure 3 / Section 3.2 — the ROBDD substrate.

Regenerates the BDD-level observations of Chapter 3: canonicity (the
Figure-3 example function), the variable-ordering effect on adders (the
interleaving example of Section 3.2), and the multiplier-style growth
trend that motivates the paper's warnings about BDD capacity.
"""

import pytest

from repro.bdd import BDDManager, bit_names, interleave
from repro.logic import BitVec

from _bench_utils import record_paper_comparison


def test_figure3_example_function(benchmark):
    """f = x1*x3 + x1'*x2*x3 reduces to the canonical 4-node ROBDD of Figure 3."""

    def build():
        manager = BDDManager(["x1", "x2", "x3"])
        x1, x2, x3 = manager.var("x1"), manager.var("x2"), manager.var("x3")
        f = manager.apply_or(
            manager.apply_and(x1, x3),
            manager.conjoin([manager.apply_not(x1), x2, x3]),
        )
        return manager, f

    manager, f = benchmark(build)
    simplified = manager.apply_and(manager.var("x3"), manager.apply_or(manager.var("x1"), manager.var("x2")))
    assert f is simplified
    assert manager.count_nodes(f) == 5  # 3 decision nodes + 2 terminals
    record_paper_comparison(
        benchmark,
        experiment="Figure 3 (example ROBDD)",
        paper="reduced ordered BDD with 3 decision nodes",
        measured=f"{manager.count_nodes(f) - 2} decision nodes, canonical",
    )


def _adder_msb_size(order, width):
    manager = BDDManager(order)
    a = BitVec.from_bits(manager, [manager.var(f"a[{i}]") for i in range(width)])
    b = BitVec.from_bits(manager, [manager.var(f"b[{i}]") for i in range(width)])
    total = a + b
    return manager.count_nodes(total.bits[-1])


def test_section32_adder_ordering_effect(benchmark):
    """Interleaved adder operands give much smaller BDDs than separated ones."""
    width = 8
    a_names = bit_names("a", width)
    b_names = bit_names("b", width)

    def run():
        good = _adder_msb_size(interleave(a_names, b_names), width)
        bad = _adder_msb_size(a_names + b_names, width)
        return good, bad

    good, bad = benchmark(run)
    assert good < bad
    assert bad / good > 4  # the separation blows up roughly exponentially
    record_paper_comparison(
        benchmark,
        experiment="Section 3.2 (adder variable ordering)",
        paper="interleaved, LSB-first ordering keeps adder BDDs linear",
        measured=f"MSB node count {good} (interleaved) vs {bad} (separated)",
    )


def test_section32_multiplier_growth(benchmark):
    """Multiplier output BDDs grow rapidly with width regardless of order."""

    def middle_bit_size(width):
        manager = BDDManager(interleave(bit_names("a", width), bit_names("b", width)))
        a = BitVec.from_bits(manager, [manager.var(f"a[{i}]") for i in range(width)])
        b = BitVec.from_bits(manager, [manager.var(f"b[{i}]") for i in range(width)])
        product = BitVec.constant(manager, 0, 2 * width)
        for i in range(width):
            partial = BitVec.mux(
                b[i],
                a.zero_extend(2 * width).shift_left_const(i),
                BitVec.constant(manager, 0, 2 * width),
            )
            product = product + partial
        return manager.count_nodes(product.bits[width])

    def run():
        return [middle_bit_size(width) for width in (2, 3, 4, 5, 6)]

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = [sizes[i + 1] / sizes[i] for i in range(len(sizes) - 1)]
    assert all(ratio > 1.2 for ratio in ratios[1:])
    record_paper_comparison(
        benchmark,
        experiment="Section 3.2 (multiplier growth, [Bry91])",
        paper="multiplier ROBDDs grow as ~1.09^n regardless of ordering",
        measured=f"middle product bit sizes for widths 2..6: {sizes}",
    )


def test_bdd_apply_throughput(benchmark):
    """Raw apply/ite throughput of the engine (the paper's primary cost)."""

    def run():
        manager = BDDManager([f"v{i}" for i in range(16)])
        functions = [manager.var(f"v{i}") for i in range(16)]
        accumulator = manager.zero
        for i, f in enumerate(functions):
            if i % 3 == 0:
                accumulator = manager.apply_xor(accumulator, f)
            elif i % 3 == 1:
                accumulator = manager.apply_or(accumulator, manager.apply_and(f, functions[i - 1]))
            else:
                accumulator = manager.ite(f, accumulator, functions[i - 2])
        return manager.count_nodes(accumulator)

    benchmark(run)
    record_paper_comparison(
        benchmark,
        experiment="BDD apply throughput",
        paper="(not reported; BDD manipulation is the dominant cost)",
        measured="mixed apply/ite workload over 16 variables",
    )


@pytest.mark.bench_smoke
def test_smoke_bdd_engine():
    """Fast tier: canonicity and the ordering effect at small width."""
    manager = BDDManager(["x1", "x2", "x3"])
    x1, x2, x3 = manager.var("x1"), manager.var("x2"), manager.var("x3")
    f = manager.apply_or(
        manager.apply_and(x1, x3),
        manager.conjoin([manager.apply_not(x1), x2, x3]),
    )
    assert f is manager.apply_and(x3, manager.apply_or(x1, x2))
    good = _adder_msb_size(interleave(bit_names("a", 4), bit_names("b", 4)), 4)
    bad = _adder_msb_size(bit_names("a", 4) + bit_names("b", 4), 4)
    assert good < bad
