"""ROADMAP perf target — the relational beta backend vs the compose path.

After PR 2 the functional (compose-based) beta path was the last slow
hot path: ~100 s per k=4 late-branch window while the relational image
engine did the same window's reachability in ~1.1 s.  This benchmark
measures the relational beta backend of PR 3 —
:mod:`repro.relational.beta`: per-bit beta-correspondence relations via
the state-injection protocol, cofactor-specialised relational products,
annulment guards and the selector-above-data stimulus order — against
the compose baseline on exactly that window, and pins the contract that
verdicts are byte-identical either way.

The acceptance bar is a >= 10x wall-clock improvement on the k=4
late-branch window; the measured gap on the development box is ~70x
(the compose side alone costs minutes, which is why the k=4 comparison
lives in the full tier and the smoke tier pins byte-identity at k=2).

The sifting half of the PR rides along: the per-level node index makes
engine-scale sifting cheap enough that a default-sifting campaign
(reorder="sift", threshold 0) must stay within a small factor of the
sifting-off campaign — the full tier records the measured ratio.
"""

import time

import pytest

from repro.engine import CampaignRunner, RelationalPolicy, Scenario
from repro.relational import BETA_COMPOSE
from repro.strings import CONTROL, NORMAL

from _bench_utils import record_paper_comparison

#: The ROADMAP bottleneck: branch in the last slot of the k=4 window.
LATE_BRANCH_K4 = (NORMAL, NORMAL, NORMAL, CONTROL)
#: Smoke-tier window: same shape, sub-second on both backends.
LATE_BRANCH_K2 = (NORMAL, CONTROL)

#: The compose (classical functional-simulation) opt-out.
COMPOSE = RelationalPolicy(beta_backend=BETA_COMPOSE)
#: Always-sift policy for the index-scale measurement.
SIFT_ALWAYS = RelationalPolicy(reorder="sift", reorder_threshold=0)


def run_backend(slots, policy=None, bug=None):
    """One scenario through a fresh runner; returns (report, seconds)."""
    scenario = Scenario(
        name="beta-backend", slots=slots, bug=bug, relational=policy
    )
    runner = CampaignRunner()
    started = time.perf_counter()
    report = runner.run([scenario])
    return report, time.perf_counter() - started


def test_k4_late_branch_relational_vs_compose(benchmark):
    """The acceptance comparison: >= 10x on the k=4 late-branch window."""

    def relational_run():
        return run_backend(LATE_BRANCH_K4)

    relational_report, relational_seconds = benchmark.pedantic(
        relational_run, rounds=1, iterations=1
    )
    compose_report, compose_seconds = run_backend(LATE_BRANCH_K4, COMPOSE)

    assert relational_report.passed and compose_report.passed
    assert relational_report.verdict_json() == compose_report.verdict_json()
    assert relational_report.outcomes[0].backend == "relational"
    assert compose_report.outcomes[0].backend == "compose"
    speedup = compose_seconds / max(relational_seconds, 1e-9)
    assert speedup >= 10, (
        f"relational beta only {speedup:.1f}x faster "
        f"({relational_seconds:.1f}s vs {compose_seconds:.1f}s)"
    )
    record_paper_comparison(
        benchmark,
        experiment="k=4 late-branch beta window, relational vs compose backend",
        paper="the beta check is the paper's core result (Figure 8, Section 5.3)",
        measured=(
            f"relational {relational_seconds:.2f}s vs compose "
            f"{compose_seconds:.2f}s ({speedup:.0f}x), verdict JSON byte-identical"
        ),
    )


def test_k4_late_branch_bug_fallback_byte_identical(benchmark):
    """A refuting k=2 window under each backend: records byte-identical.

    (The bug workloads are short by design — the exercise here is the
    relational backend's classical fallback for witness extraction.)
    """

    def both():
        relational_report, _ = run_backend((CONTROL, NORMAL), bug="no_annul")
        compose_report, _ = run_backend((CONTROL, NORMAL), COMPOSE, bug="no_annul")
        return relational_report, compose_report

    relational_report, compose_report = benchmark.pedantic(both, rounds=1, iterations=1)
    assert not relational_report.passed and not compose_report.passed
    assert relational_report.verdict_json() == compose_report.verdict_json()
    assert relational_report.outcomes[0].backend == "relational+fallback"
    record_paper_comparison(
        benchmark,
        experiment="refuting window under both beta backends",
        paper="counterexamples decode to concrete failing sequences",
        measured="mismatch records byte-identical via the classical fallback",
    )


def test_default_sifting_campaign_stays_near_sifting_off(benchmark):
    """Index-scale sifting: a default-sifting campaign vs the plain one.

    The per-level node index makes every swap proportional to the two
    affected levels' populations, so a campaign that sifts every
    scenario (threshold 0) must stay within a small factor of the
    sifting-off campaign.  The CI tier-1 durations artifact tracks the
    same property at full-suite scale.
    """
    scenarios = [
        Scenario(name=f"camp/{i}", slots=slots)
        for i, slots in enumerate(
            [(NORMAL, CONTROL), (CONTROL, NORMAL), (NORMAL, NORMAL, CONTROL)]
        )
    ]
    sifting = [
        Scenario(name=s.name, slots=s.slots, relational=SIFT_ALWAYS) for s in scenarios
    ]

    def run_both():
        runner_plain, runner_sift = CampaignRunner(), CampaignRunner()
        started = time.perf_counter()
        plain_report = runner_plain.run(scenarios)
        plain_seconds = time.perf_counter() - started
        started = time.perf_counter()
        sift_report = runner_sift.run(sifting)
        sift_seconds = time.perf_counter() - started
        return plain_report, plain_seconds, sift_report, sift_seconds

    plain_report, plain_seconds, sift_report, sift_seconds = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert plain_report.verdict_json() == sift_report.verdict_json()
    assert sift_report.pool["reorder_evictions"] == len(scenarios)
    ratio = sift_seconds / max(plain_seconds, 1e-9)
    # Generous CI bound; the tracked target is 1.2x (see ROADMAP).
    assert ratio < 3.0, f"sifting-on campaign {ratio:.2f}x the sifting-off campaign"
    record_paper_comparison(
        benchmark,
        experiment="default-sifting campaign vs sifting-off campaign",
        paper="ROBDD size is critically order-dependent (Section 3.2)",
        measured=f"sifting-on/off wall-clock ratio {ratio:.2f} (target <= 1.2)",
    )


# ----------------------------------------------------------------------
# Smoke tier
# ----------------------------------------------------------------------
@pytest.mark.bench_smoke
def test_smoke_backends_byte_identical_pass_and_fail():
    """Fast tier: k=2 late-branch verdicts byte-identical across backends."""
    relational_report, relational_seconds = run_backend(LATE_BRANCH_K2)
    compose_report, compose_seconds = run_backend(LATE_BRANCH_K2, COMPOSE)
    assert relational_report.passed
    assert relational_report.verdict_json() == compose_report.verdict_json()

    failing_rel, _ = run_backend((NORMAL,), bug="and_becomes_or")
    failing_comp, _ = run_backend((NORMAL,), COMPOSE, bug="and_becomes_or")
    assert not failing_rel.passed
    assert failing_rel.verdict_json() == failing_comp.verdict_json()


@pytest.mark.bench_smoke
def test_smoke_relational_backend_is_not_slower():
    """Fast tier: the default backend must not regress the k=2 window."""
    relational_report, relational_seconds = run_backend(LATE_BRANCH_K2)
    compose_report, compose_seconds = run_backend(LATE_BRANCH_K2, COMPOSE)
    assert relational_report.passed and compose_report.passed
    # Both are sub-second; guard only against gross regression (the k=4
    # 10x acceptance assertion lives in the full tier above).
    assert relational_seconds < max(4 * compose_seconds, 2.0)


@pytest.mark.bench_smoke
def test_smoke_default_sifting_campaign_verdicts():
    """Fast tier: pooled default-sifting campaign, identical verdicts."""
    scenarios = [Scenario(name="s/plain", slots=LATE_BRANCH_K2)]
    sifting = [
        Scenario(name="s/plain", slots=LATE_BRANCH_K2, relational=SIFT_ALWAYS)
    ]
    plain_runner, sift_runner = CampaignRunner(), CampaignRunner()
    plain_report = plain_runner.run(scenarios)
    sift_report = sift_runner.run(sifting)
    assert plain_report.verdict_json() == sift_report.verdict_json()
    assert sift_report.pool["reorder_evictions"] == 1
