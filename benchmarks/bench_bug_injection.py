"""Bug-injection study — "any incorrect change in state ... will be detected".

Every bug in the injectable catalogue of the pipelined VSM and Alpha0 is
run against the beta-relation verifier with a workload that exercises
the relevant instruction class; every one of them must be reported, and
the golden designs must keep passing.
"""

from repro.core import (
    SimulationInfo,
    VSMArchitecture,
    all_normal,
    control_at,
    verify_beta_relation,
)
from repro.strings import CONTROL, NORMAL

from _bench_utils import condensed_alpha0_architecture, record_paper_comparison

VSM_WORKLOADS = {
    "no_bypass": all_normal(2),
    "no_annul": SimulationInfo(slots=(CONTROL, NORMAL)),
    "wrong_branch_target": control_at(2, 0),
    "and_becomes_or": all_normal(1),
    "drop_write_r3": all_normal(1),
}

def alpha0_bug_runs():
    """Per-bug (architecture, workload): the slot class must exercise the bug."""
    base = condensed_alpha0_architecture()
    from repro.core import Alpha0Architecture

    return {
        "no_bypass": (base, all_normal(2)),
        "no_annul": (base, SimulationInfo(slots=(CONTROL, NORMAL))),
        "cmpeq_inverted": (
            Alpha0Architecture(options=base.options, normal_opcode=0x10),
            all_normal(1),
        ),
        "store_wrong_word": (
            Alpha0Architecture(
                options=base.options, normal_opcode=0x2D, symbolic_initial_state=True
            ),
            all_normal(2),
        ),
    }


def test_vsm_bug_sweep(benchmark):
    def run():
        detected = {}
        for bug, workload in VSM_WORKLOADS.items():
            report = verify_beta_relation(
                VSMArchitecture(), workload, impl_kwargs={"bug": bug}
            )
            detected[bug] = (not report.passed, len(report.mismatches))
        return detected

    detected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(flag for flag, _ in detected.values()), detected
    record_paper_comparison(
        benchmark,
        experiment="Bug injection sweep (VSM)",
        paper="incorrect state changes are detected by the sampled comparisons",
        measured="; ".join(
            f"{bug}: {count} mismatching observables" for bug, (_, count) in detected.items()
        ),
    )


def test_alpha0_bug_sweep(benchmark):
    runs = alpha0_bug_runs()

    def run():
        detected = {}
        for bug, (architecture, workload) in runs.items():
            report = verify_beta_relation(architecture, workload, impl_kwargs={"bug": bug})
            detected[bug] = (not report.passed, len(report.mismatches))
        return detected

    detected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(flag for flag, _ in detected.values()), detected
    record_paper_comparison(
        benchmark,
        experiment="Bug injection sweep (Alpha0)",
        paper="(implicit) same detection guarantee on the deeper design",
        measured="; ".join(
            f"{bug}: {count} mismatching observables" for bug, (_, count) in detected.items()
        ),
    )


def test_golden_designs_still_pass(benchmark):
    """Control arm of the study: no false alarms on the correct designs."""
    architecture = condensed_alpha0_architecture()

    def run():
        vsm = verify_beta_relation(VSMArchitecture(), all_normal(2))
        alpha0 = verify_beta_relation(architecture, all_normal(2))
        return vsm.passed and alpha0.passed

    assert benchmark.pedantic(run, rounds=1, iterations=1)
    record_paper_comparison(
        benchmark,
        experiment="Bug injection control arm",
        paper="correct designs verify",
        measured="no false alarms",
    )
