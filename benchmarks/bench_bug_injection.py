"""Bug-injection study — "any incorrect change in state ... will be detected".

Every planted bug in the fuzz generator's catalogue
(:func:`repro.campaigns.planted_bug_catalog` — the single definition the
generative campaigns, the CI smoke step and this benchmark share) is run
against the beta-relation verifier with a workload that exercises the
relevant instruction class; every one of them must be reported, and the
golden designs must keep passing.

The sweeps run as engine campaigns: all bug scenarios of one design
share a pooled BDD manager (an injected bug never changes the variable
order), so the golden specification BDDs are derived once and every bug
run replays them from the warmed unique table — the engine's
scenario-diversity story in one benchmark.
"""

from dataclasses import replace

import pytest

from repro.campaigns import planted_bug_catalog, planted_class
from repro.engine import Scenario
from repro.strings import NORMAL

from _bench_utils import (
    CONDENSED_ALPHA0_SPEC,
    SMOKE_ALPHA0_SPEC,
    campaign_runner,
    record_paper_comparison,
)


def _catalog_slice(*classes, alpha0=CONDENSED_ALPHA0_SPEC):
    """The planted-bug catalogue entries of the given mutation classes."""
    return [
        scenario
        for scenario in planted_bug_catalog(alpha0=alpha0)
        if planted_class(scenario) in classes
    ]


def test_vsm_bug_sweep(benchmark):
    runner = campaign_runner()
    scenarios = _catalog_slice("planted_bug")

    def run():
        runner.clear_memo()
        return runner.run(scenarios)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    detected = {
        outcome.scenario: (not outcome.passed, len(outcome.mismatches))
        for outcome in report.outcomes
    }
    assert all(flag for flag, _ in detected.values()), detected
    record_paper_comparison(
        benchmark,
        experiment="Bug injection sweep (VSM, campaign engine)",
        paper="incorrect state changes are detected by the sampled comparisons",
        measured="; ".join(
            f"{name}: {count} mismatching observables"
            for name, (_, count) in detected.items()
        ),
        pool_managers=report.pool["managers"],
        pool_cache_hit_rate=round(report.pool["cache"]["hit_rate"], 3),
    )


def test_alpha0_bug_sweep(benchmark):
    runner = campaign_runner()
    scenarios = _catalog_slice("alpha0_case")

    def run():
        runner.clear_memo()
        return runner.run(scenarios)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    detected = {
        outcome.scenario: (not outcome.passed, len(outcome.mismatches))
        for outcome in report.outcomes
    }
    assert all(flag for flag, _ in detected.values()), detected
    record_paper_comparison(
        benchmark,
        experiment="Bug injection sweep (Alpha0, campaign engine)",
        paper="(implicit) same detection guarantee on the deeper design",
        measured="; ".join(
            f"{name}: {count} mismatching observables"
            for name, (_, count) in detected.items()
        ),
    )


def test_mutation_knob_sweep(benchmark):
    """The generative mutation classes: forwarding-leg drops, branch
    skew, the broken interrupt link, disabled superscalar hazard checks
    and the unchecked-RAW scoreboard — one canonical witness each."""
    runner = campaign_runner()
    scenarios = _catalog_slice(
        "bypass_drop",
        "branch_skew",
        "event_storm",
        "superscalar_hazard",
        "scoreboard_raw",
    )

    def run():
        runner.clear_memo()
        return runner.run(scenarios)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    detected = {
        outcome.scenario: (not outcome.passed, len(outcome.mismatches))
        for outcome in report.outcomes
    }
    assert all(flag for flag, _ in detected.values()), detected
    record_paper_comparison(
        benchmark,
        experiment="Bug injection sweep (mutation knobs, campaign engine)",
        paper="incorrect state changes are detected by the sampled comparisons",
        measured="; ".join(
            f"{name}: {count} mismatch(es)" for name, (_, count) in detected.items()
        ),
    )


def test_golden_designs_still_pass(benchmark):
    """Control arm of the study: no false alarms on the correct designs."""
    runner = campaign_runner()
    scenarios = [
        Scenario(name="golden/vsm", slots=(NORMAL, NORMAL)),
        Scenario(
            name="golden/alpha0",
            design="alpha0",
            slots=(NORMAL, NORMAL),
            alpha0=CONDENSED_ALPHA0_SPEC,
        ),
    ]

    def run():
        runner.clear_memo()
        return runner.run(scenarios)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed, report.summary()
    record_paper_comparison(
        benchmark,
        experiment="Bug injection control arm",
        paper="correct designs verify",
        measured="no false alarms",
    )


@pytest.mark.bench_smoke
def test_smoke_bug_injection():
    """Fast tier: one golden + one bug share a pooled manager; only the
    bug fails, with a decoded counterexample."""
    runner = campaign_runner()
    report = runner.run(
        [
            Scenario(name="smoke/golden", slots=(NORMAL,)),
            Scenario(name="smoke/bug", slots=(NORMAL,), bug="and_becomes_or"),
            Scenario(
                name="smoke/alpha0-bug",
                design="alpha0",
                slots=(NORMAL,),
                bug="cmpeq_inverted",
                alpha0=replace(SMOKE_ALPHA0_SPEC, normal_opcode=0x10),
            ),
        ]
    )
    by_name = {outcome.scenario: outcome for outcome in report.outcomes}
    assert by_name["smoke/golden"].passed
    assert not by_name["smoke/bug"].passed
    assert by_name["smoke/bug"].mismatches[0]["decoded"]
    assert not by_name["smoke/alpha0-bug"].passed
    assert report.pool["reuses"] >= 1  # golden and bug shared one manager


@pytest.mark.bench_smoke
def test_smoke_mutation_knob_injection():
    """Fast tier for the concrete mutation classes: disabled hazard
    checking and the unchecked-RAW scoreboard both refute in
    microseconds (no BDD work)."""
    runner = campaign_runner()
    report = runner.run(
        _catalog_slice("superscalar_hazard", "scoreboard_raw")
    )
    assert len(report.outcomes) == 2
    for outcome in report.outcomes:
        assert not outcome.passed, outcome.scenario
        assert outcome.mismatches
