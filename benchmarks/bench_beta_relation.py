"""Figures 1 and 2 — the beta-relation on small examples.

Figure 1: an implementation whose outputs are the specification's
outputs on the relevant (every other) inputs, delayed by one cycle, with
H a modulo-2 counter — the canonical "don't care times" example.

Figure 2: a serially scheduled implementation that takes six cycles per
result and is in beta-relation with a specification producing a result
every cycle.
"""

import pytest

from repro.logic import serial_accumulator
from repro.strings import (
    LiftedFunction,
    MachineFunction,
    StringFunction,
    beta_counterexample,
    beta_holds_everywhere,
    modulo_counter_filter,
    periodic_filter,
)

from _bench_utils import record_paper_comparison


def test_figure1_beta_relation(benchmark):
    """The Figure-1 delay/stutter pair satisfies the beta-relation."""
    specification = LiftedFunction(lambda u: 2 * u)
    implementation = MachineFunction(lambda state, u: (u, 2 * state), 0)
    filter_function = modulo_counter_filter(2)

    def run():
        return beta_holds_everywhere(
            implementation, specification, filter_function, 1, alphabet=(0, 1, 2), max_length=6
        )

    assert benchmark(run) is True
    record_paper_comparison(
        benchmark,
        experiment="Figure 1 (beta-relation example)",
        paper="relation holds with H = modulo-2 counter, n = 1",
        measured="holds on every input string up to length 6 over a 3-symbol alphabet",
    )


def test_figure1_broken_implementation_is_rejected(benchmark):
    specification = LiftedFunction(lambda u: 2 * u)
    broken = MachineFunction(lambda state, u: (u, state), 0)
    filter_function = modulo_counter_filter(2)

    def run():
        return beta_counterexample(
            broken, specification, filter_function, 1, alphabet=(0, 1, 2), max_length=5
        )

    witness = benchmark(run)
    assert witness is not None
    record_paper_comparison(
        benchmark,
        experiment="Figure 1 (falsification)",
        paper="(implicit) incorrect implementations violate the relation",
        measured=f"shortest counterexample of length {len(witness)} found",
    )


class _SerialAccumulatorFunction(StringFunction):
    """String function realised by the Figure-2 serial netlist."""

    def __init__(self):
        self.netlist = serial_accumulator(stages=6)

    def __call__(self, x):
        state = self.netlist.reset_state()
        outputs = []
        for char in x:
            observed, state = self.netlist.step({"x": bool(char)}, state)
            outputs.append(int(observed["acc"]))
        return tuple(outputs)


def test_figure2_serial_implementation(benchmark):
    """The Figure-2 style serial datapath is in beta-relation with its spec.

    The implementation samples its input in state 0 of a six-state
    controller and only produces a valid result five cycles later (in the
    last controller state); the specification XOR-accumulates every
    relevant input and answers immediately.  H marks every sixth input
    relevant and the output delay is n = 5.
    """
    implementation = _SerialAccumulatorFunction()
    specification = MachineFunction(lambda state, u: (state ^ u, state ^ u), 0)
    relevance = periodic_filter(6, offset=0)

    def run():
        return beta_holds_everywhere(
            implementation, specification, relevance, 5, alphabet=(0, 1), max_length=13
        )

    assert benchmark(run) is True
    record_paper_comparison(
        benchmark,
        experiment="Figure 2 (serial implementation / combinational specification)",
        paper="six-state serial schedule in beta-relation with its specification",
        measured="relation holds on every 0/1 input string up to length 13",
    )


@pytest.mark.bench_smoke
def test_smoke_beta_relation():
    """Fast tier: the Figure-1 pair satisfies the relation on short strings."""
    specification = LiftedFunction(lambda u: 2 * u)
    implementation = MachineFunction(lambda state, u: (u, 2 * state), 0)
    assert beta_holds_everywhere(
        implementation, specification, modulo_counter_filter(2), 1,
        alphabet=(0, 1), max_length=4,
    )
