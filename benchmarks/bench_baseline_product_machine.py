"""Sections 3.3-3.4 vs Chapter 4 — exhaustive traversal vs the definite-machine method.

The classical baseline verifies input/output equivalence by traversing
the reachable states of the product machine; the paper's contribution is
that k-definite machines (such as pipelined processors) need only k
cycles of symbolic simulation.  This benchmark runs both procedures on
the same family of machines and reports the cost of each, reproducing
the qualitative claim "only a small number of cycles, rather than
exhaustive traversal, have to be simulated".
"""

import pytest

from repro.bdd import BDDManager
from repro.fsm import (
    SymbolicFSM,
    check_equivalence,
    reachable_states,
    verify_definite_equivalence,
)
from repro.logic import Netlist, shift_register

from _bench_utils import record_paper_comparison


def delay_line_pair(length, manager):
    """Two structurally different but equivalent `length`-cycle delay lines."""
    left = SymbolicFSM.from_netlist(shift_register(length), manager, prefix="L.")

    other = Netlist("alt_delay")
    other.add_input("din")
    previous = "din"
    for i in range(length):
        # Same behaviour, but state is stored inverted.
        other.add_gate(f"inv_in{i}", "NOT", [previous])
        other.add_latch(f"neg{i}", f"inv_in{i}", reset_value=True)
        other.add_gate(f"pos{i}", "NOT", [f"neg{i}"])
        previous = f"pos{i}"
    other.add_gate(f"stage{length - 1}", "BUF", [previous])
    other.set_outputs([f"stage{length - 1}"])
    right = SymbolicFSM.from_netlist(other, manager, prefix="R.")
    return left, right


def align_inputs(manager, left, right):
    """Rebuild `right` so it reads the same input variable names as `left`."""
    mapping = dict(zip(sorted(right.input_names), sorted(left.input_names)))
    return SymbolicFSM(
        manager,
        input_names=list(left.input_names),
        state_names=list(right.state_names),
        next_state={name: manager.rename(fn, mapping) for name, fn in right.next_state.items()},
        outputs={name: manager.rename(fn, mapping) for name, fn in right.outputs.items()},
        reset_state=right.reset_state,
        name=right.name,
    )


@pytest.mark.parametrize("length", [3, 5])
def test_baseline_product_machine_traversal(benchmark, length):
    """Exhaustive reachability of the product machine (the Chapter-3 baseline)."""

    def run():
        manager = BDDManager()
        left, right = delay_line_pair(length, manager)
        right = align_inputs(manager, left, right)
        from repro.fsm import build_product, build_transition_relation

        product = build_product(
            left, right, output_pairs=[(f"stage{length - 1}", f"stage{length - 1}")]
        )
        relation = build_transition_relation(product)
        reach = reachable_states(product, relation)
        equal = product.outputs["equal"]
        violation = manager.apply_and(reach.reachable, manager.apply_not(equal))
        return reach, manager.is_contradiction(violation)

    reach, equivalent = benchmark(run)
    assert equivalent
    assert reach.iterations >= length
    record_paper_comparison(
        benchmark,
        experiment=f"Section 3.4 baseline (product machine, {length}-cycle delay line)",
        paper="exhaustive breadth-first traversal of the product STG",
        measured=(
            f"{reach.iterations} image iterations, "
            f"{reach.reachable_state_count} reachable product states"
        ),
    )


@pytest.mark.parametrize("length", [3, 5])
def test_definite_machine_method(benchmark, length):
    """Theorem 4.3.1.1: the same pair verified with k cycles of symbolic simulation."""

    def run():
        manager = BDDManager()
        left, right = delay_line_pair(length, manager)
        right = align_inputs(manager, left, right)
        return verify_definite_equivalence(
            left, right, length, output_pairs=[(f"stage{length - 1}", f"stage{length - 1}")]
        )

    result = benchmark(run)
    assert result.equivalent
    assert result.cycles_simulated == length + 1
    record_paper_comparison(
        benchmark,
        experiment=f"Chapter 4 method (definite machines, {length}-cycle delay line)",
        paper="k cycles of symbolic simulation replace the traversal",
        measured=(
            f"{result.cycles_simulated} simulated cycles cover "
            f"{result.sequences_covered} input sequences"
        ),
    )


def test_crossover_summary(benchmark):
    """Iterations needed by each method as the delay line deepens (the 'shape')."""

    def run():
        rows = []
        for length in (2, 3, 4, 5, 6):
            manager = BDDManager()
            left, right = delay_line_pair(length, manager)
            right = align_inputs(manager, left, right)
            from repro.fsm import build_product, build_transition_relation

            product = build_product(
                left, right, output_pairs=[(f"stage{length - 1}", f"stage{length - 1}")]
            )
            reach = reachable_states(product, build_transition_relation(product))
            definite = verify_definite_equivalence(
                left, right, length, output_pairs=[(f"stage{length - 1}", f"stage{length - 1}")]
            )
            rows.append((length, reach.iterations, definite.cycles_simulated))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for length, baseline_iterations, definite_cycles in rows:
        assert definite_cycles == length + 1
        assert baseline_iterations >= length
    record_paper_comparison(
        benchmark,
        experiment="Traversal iterations vs definite-machine cycles",
        paper="definite-machine method needs only k cycles",
        measured="; ".join(
            f"k={length}: baseline {it} iterations vs {cy} cycles" for length, it, cy in rows
        ),
    )


@pytest.mark.bench_smoke
def test_smoke_baseline_product_machine():
    """Fast tier: Theorem 4.3.1.1 beats traversal on a 3-cycle delay line."""
    manager = BDDManager()
    left, right = delay_line_pair(3, manager)
    right = align_inputs(manager, left, right)
    result = verify_definite_equivalence(
        left, right, 3, output_pairs=[("stage2", "stage2")]
    )
    assert result.equivalent
