"""Helpers shared by the benchmark harness (importable without pytest magic)."""

from repro.core import Alpha0Architecture
from repro.engine import Alpha0Spec, CampaignRunner
from repro.processors import SymbolicAlpha0Options

#: The Alpha0 condensation used by the benchmark harness, as a Scenario spec.
#: Follows Section 6.3's condensation strategy (4-bit datapath, restricted
#: ALU); the register file and data memory are folded to four entries each so
#: that the pure-Python BDD engine completes in seconds.
CONDENSED_ALPHA0_SPEC = Alpha0Spec(
    data_width=4, num_registers=4, memory_words=4, alu_subset=("and", "or", "cmpeq")
)

#: An even smaller condensation for the smoke tier (sub-second runs).
SMOKE_ALPHA0_SPEC = Alpha0Spec(
    data_width=3, num_registers=4, memory_words=2, alu_subset=("and", "or", "cmpeq")
)


def condensed_alpha0_architecture() -> Alpha0Architecture:
    """The Alpha0 condensation used by the benchmark harness (adapter form)."""
    return Alpha0Architecture(
        options=SymbolicAlpha0Options(
            data_width=4, num_registers=4, memory_words=4, alu_subset=("and", "or", "cmpeq")
        )
    )


def campaign_runner() -> CampaignRunner:
    """A fresh campaign runner (per-benchmark manager pool)."""
    return CampaignRunner()


def record_paper_comparison(benchmark, **entries):
    """Attach paper-vs-measured metadata to a benchmark result."""
    for key, value in entries.items():
        benchmark.extra_info[key] = value
