"""Helpers shared by the benchmark harness (importable without pytest magic)."""

from repro.core import Alpha0Architecture
from repro.processors import SymbolicAlpha0Options


def condensed_alpha0_architecture() -> Alpha0Architecture:
    """The Alpha0 condensation used by the benchmark harness.

    Follows Section 6.3's condensation strategy (4-bit datapath,
    restricted ALU); the register file and data memory are folded to four
    entries each so that the pure-Python BDD engine completes in seconds.
    """
    return Alpha0Architecture(
        options=SymbolicAlpha0Options(
            data_width=4, num_registers=4, memory_words=4, alu_subset=("and", "or", "cmpeq")
        )
    )


def record_paper_comparison(benchmark, **entries):
    """Attach paper-vs-measured metadata to a benchmark result."""
    for key, value in entries.items():
        benchmark.extra_info[key] = value
