"""ROADMAP perf target — partitioned relations and early quantification.

The ROADMAP names variable-k late-branch placements (control transfer in
the last slot of a k=4 window) as the wall-clock bottleneck and "better
orders, early quantification" as the attack.  This benchmark measures
the relational subsystem on exactly that workload, in two layers:

* **Image computation** — the k=4 late-branch window formulated over the
  pipelined VSM's cycle-level transition relation (99 state bits + the
  instruction word), computed with the partitioned early-quantification
  schedule versus the classical build-then-smooth loop (conjoin the
  frontier with every per-bit relation, smooth once at the end).  The
  results are canonically identical; wall-clock and peak live BDD nodes
  are not remotely.  (The even older baseline — prebuild the one-BDD
  monolithic relation — does not terminate on this machine at all, which
  is why the frontier-constrained conjunction is the baseline measured.)

* **Campaign verdicts** — the same late-branch scenario run through the
  campaign engine with relational policies attached (partitioning knobs;
  mid-run sifting) must reproduce the plain run's verdict byte for byte.
"""

import time

import pytest

from repro.bdd import BDDManager
from repro.core.architectures import VSMArchitecture
from repro.engine import CampaignRunner, RelationalPolicy, Scenario
from repro.logic import random_netlist
from repro.fsm import SymbolicFSM
from repro.relational import (
    ImageComputer,
    TransitionRelation,
    pipelined_vsm_relation,
)
from repro.relational.models import FETCH_VALID
from repro.strings import CONTROL, NORMAL

from _bench_utils import record_paper_comparison

#: The ROADMAP bottleneck: branch in the last slot of the k=4 window.
LATE_BRANCH_K4 = (NORMAL, NORMAL, NORMAL, CONTROL)
#: Clustering bounds used for the processor-scale relation.
IMAGE_POLICY = RelationalPolicy(max_cluster_size=8, cluster_node_limit=2000)
#: How many window cycles the build-then-smooth baseline is driven
#: through head-to-head (each baseline cycle costs tens of seconds; the
#: partitioned path does the whole window in about a second).
BASELINE_CYCLES = 2


def window_cubes(manager, slots):
    """Per-cycle input-constraint cubes for an instruction-slot window."""
    architecture = VSMArchitecture()
    cubes = []
    for kind in slots:
        cube = {
            f"in.word[{bit}]": value
            for bit, value in architecture.instruction_class_cube(kind).items()
        }
        cube[FETCH_VALID] = True
        cubes.append(manager.cube(cube))
    return cubes


def drive(computer, frontier, cubes, method):
    """Run an image sequence; return (frontiers, seconds, peak live nodes)."""
    image = computer.image if method == "partitioned" else computer.monolithic_image
    frontiers = []
    peak = 0
    started = time.perf_counter()
    for cube in cubes:
        frontier = image(frontier, cube)
        frontiers.append(frontier)
        peak = max(peak, computer.last_stats.peak_live_nodes)
    return frontiers, time.perf_counter() - started, peak


def test_late_branch_image_partitioned_vs_build_then_smooth(benchmark):
    """The acceptance comparison: early quantification on the k=4 window."""
    manager = BDDManager()
    relation, reset = pipelined_vsm_relation(manager)
    computer = ImageComputer(relation, IMAGE_POLICY)
    cubes = window_cubes(manager, LATE_BRANCH_K4)
    reset_cube = manager.cube(reset)

    def partitioned_window():
        return drive(computer, reset_cube, cubes, "partitioned")

    fast_frontiers, fast_seconds, fast_peak = benchmark.pedantic(
        partitioned_window, rounds=1, iterations=1
    )
    slow_frontiers, slow_seconds, slow_peak = drive(
        computer, reset_cube, cubes[:BASELINE_CYCLES], "monolithic"
    )

    # Byte-identical results on the shared prefix: same canonical nodes.
    for fast, slow in zip(fast_frontiers, slow_frontiers):
        assert fast is slow
    # The partitioned path finishes the *whole* window faster than the
    # baseline covers its prefix, and peaks far smaller.
    assert fast_seconds < slow_seconds / 5
    assert fast_peak < slow_peak / 5
    record_paper_comparison(
        benchmark,
        experiment="k=4 late-branch window over the pipelined-VSM relation",
        paper="smoothing out of one monolithic conjunction dominates verification",
        measured=(
            f"partitioned: {len(cubes)} cycles in {fast_seconds:.2f}s "
            f"(peak {fast_peak} live nodes) vs build-then-smooth: "
            f"{BASELINE_CYCLES} cycles in {slow_seconds:.2f}s (peak {slow_peak})"
        ),
    )


def test_late_branch_campaign_verdict_identical_with_policy(benchmark):
    """k=4 late-branch through the engine: relational policy, same bytes.

    The partitioning half of the policy parameterises the relational
    image layer, not the functional beta path, so the policy run does
    the same verification work as the plain run — this test pins down
    that carrying the policy (serialisation, pooling keys, memo keys)
    is verdict-neutral at the acceptance workload, and doubles as the
    k=4 late-branch wall-clock record.  Real mid-run reordering is
    exercised at k=3 below and at k=2 in the smoke tier.
    """
    plain = Scenario(name="variable-k/late-branch", slots=LATE_BRANCH_K4)
    with_policy = Scenario(
        name="variable-k/late-branch",
        slots=LATE_BRANCH_K4,
        relational=IMAGE_POLICY,
    )

    def run_both():
        reference = CampaignRunner().run([plain])
        candidate = CampaignRunner().run([with_policy])
        return reference, candidate

    reference, candidate = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert reference.passed and candidate.passed
    assert reference.verdict_json() == candidate.verdict_json()
    record_paper_comparison(
        benchmark,
        experiment="k=4 late-branch campaign, relational policy attached",
        paper="verification verdicts must not depend on engine tuning",
        measured="verdict JSON byte-identical with and without the policy",
    )


def test_late_branch_reorder_verdict_identical(benchmark):
    """Mid-run sifting mutates every node; the k=3 verdict must not move."""
    slots = (NORMAL, NORMAL, CONTROL)
    plain = Scenario(name="variable-k/late-branch-k3", slots=slots)
    sifted = Scenario(
        name="variable-k/late-branch-k3",
        slots=slots,
        relational=RelationalPolicy(reorder="sift", reorder_threshold=0),
    )

    def run_both():
        reference = CampaignRunner().run([plain])
        candidate = CampaignRunner().run([sifted])
        return reference, candidate

    reference, candidate = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert reference.verdict_json() == candidate.verdict_json()
    reorder = candidate.outcomes[0].reorder
    assert reorder and reorder["swaps"] > 0  # sifting really ran
    record_paper_comparison(
        benchmark,
        experiment="k=3 late-branch with post-specification sifting",
        paper="ROBDD canonicity is what makes node identity a sound check",
        measured=(
            f"{reorder['swaps']} level swaps, live size "
            f"{reorder['initial_size']} -> {reorder['final_size']}, "
            "verdict JSON byte-identical"
        ),
    )


# ----------------------------------------------------------------------
# Smoke tier
# ----------------------------------------------------------------------
@pytest.mark.bench_smoke
def test_smoke_partitioned_beats_build_then_smooth():
    """Fast tier: both image paths agree; the partitioned one peaks lower."""
    manager = BDDManager()
    machine = SymbolicFSM.from_netlist(random_netlist(7, num_latches=6), manager)
    computer = ImageComputer(TransitionRelation.from_fsm(machine))
    frontier = manager.one  # every state at once: the worst frontier
    fast = computer.image(frontier)
    fast_peak = computer.last_stats.peak_live_nodes
    slow = computer.monolithic_image(frontier)
    slow_peak = computer.last_stats.peak_live_nodes
    assert fast is slow
    assert fast_peak <= slow_peak


@pytest.mark.bench_smoke
def test_smoke_pipelined_relation_partitioned_window():
    """Fast tier: the processor relation's k=2 late-branch window."""
    manager = BDDManager()
    relation, reset = pipelined_vsm_relation(manager)
    computer = ImageComputer(relation, IMAGE_POLICY)
    cubes = window_cubes(manager, (NORMAL, CONTROL))
    frontiers, seconds, peak = drive(computer, manager.cube(reset), cubes, "partitioned")
    assert all(manager.is_satisfiable(f) for f in frontiers)
    assert peak < 50_000  # the monolithic loop peaks an order above this


@pytest.mark.bench_smoke
def test_smoke_late_branch_verdicts_with_reordering():
    """Fast tier: k=2 late-branch verdict survives mid-run sifting."""
    slots = (NORMAL, CONTROL)
    plain = Scenario(name="smoke/late-branch", slots=slots)
    sifted = Scenario(
        name="smoke/late-branch",
        slots=slots,
        relational=RelationalPolicy(reorder="sift", reorder_threshold=0),
    )
    reference = CampaignRunner().run([plain])
    candidate = CampaignRunner().run([sifted])
    assert reference.verdict_json() == candidate.verdict_json()
    assert candidate.outcomes[0].reorder  # sifting ran
