"""Campaign throughput acceptance benchmark (PR 5).

Measures the three legs of the throughput layer on an engine-scale
campaign (both designs, bug sweeps, variable-k placements, interrupts):

* **Persistent result store** — a warm-store re-run of the campaign
  must be >= 10x faster than its cold run, with byte-identical
  verdicts (measured: the warm run is pure JSON reads, so the ratio is
  typically in the thousands).
* **Arena snapshots** — rehydrating the full-size Alpha0 beta-relation
  extraction from a stored snapshot, differential-verified structurally
  identical to a fresh extraction; the measured ratio is recorded and a
  0.10 floor asserted (the issue's 5% target is a near-miss on this
  substrate — see ROADMAP honest negatives; restore bottoms out in the
  same per-node dict work as every other kernel path).
* **Affinity-sharded parallel mode** — 4 workers vs serial on the same
  campaign, byte-identical verdicts; the >= 2.5x wall-clock bar is
  asserted only on hosts with >= 4 CPUs (a single-CPU box cannot
  demonstrate parallel speedup; the JSON records the honest measured
  number and the gating).
* **Edit-one-model regime (PR 6)** — the paper's incremental story:
  one architecture model component changes (simulated through the
  :mod:`repro.engine.codehash` override hook, which is hash-identical
  to an on-disk edit) and the warm store re-serves every *unrelated*
  verdict.  Only the edited model's scenarios recompute; the re-run
  must be >= 5x faster than the cold campaign with byte-identical
  verdicts.

Results are written to ``BENCH_campaign.json`` next to this file (CI
uploads it as an artifact).  CI also exercises the cross-invocation
story directly: ``python bench_campaign_throughput.py --store DIR``
runs the smoke campaign against a persistent store directory, a second
invocation with ``--expect-warm`` asserts a nonzero hit rate against
the artifact of the first, and a third with ``--edit-model COMPONENT
--expect-partial`` asserts partial survival: some records invalidated
by the simulated edit, the rest still served warm.
"""

import argparse
import json
import os
import pathlib
import shutil
import tempfile
import time
import zlib
from dataclasses import replace

import pytest

from repro.bdd import BDDManager
from repro.core import Alpha0Architecture
from repro.core.siminfo import SimulationInfo
from repro.engine import (
    Alpha0Spec,
    CampaignRunner,
    alpha0_memory_scenario,
    alpha0_operate_scenario,
    event_scenarios,
    variable_k_scenarios,
    vsm_bug_scenarios,
    vsm_verification_scenario,
)
from repro.engine import codehash
from repro.engine.scenario import Scenario
from repro.processors import SymbolicAlpha0Options
from repro.relational.beta import (
    IMPL_PREFIX,
    SPEC_PREFIX,
    _deserialize_stepper_payload,
    _serialize_stepper_payload,
    _stepper_payload,
    beta_stimulus_order,
    extract_steppers,
)
from repro.strings import CONTROL, NORMAL

from _bench_utils import CONDENSED_ALPHA0_SPEC, SMOKE_ALPHA0_SPEC, record_paper_comparison

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_campaign.json"

#: Acceptance bars (full tier).
WARM_SPEEDUP_FLOOR = 10.0
PARALLEL_SPEEDUP_BAR = 2.5
PARALLEL_WORKERS = 4
SNAPSHOT_RATIO_FLOOR = 0.10
EDIT_ONE_MODEL_SPEEDUP_BAR = 5.0

#: The architecture model component the edit-one-model regime touches.
#: Its dependents (the interrupt scenarios) are a small slice of the
#: campaign, so the regime isolates the cost of *surgical* invalidation
#: rather than re-measuring a mostly-cold run.
EDITED_COMPONENT = "model:interrupts"


# ======================================================================
# Campaigns
# ======================================================================
def throughput_campaign(alpha0_spec: Alpha0Spec, heavy: bool):
    """The engine-scale campaign: both designs, bugs, k-sweeps, events."""
    scenarios = [vsm_verification_scenario()]
    scenarios += vsm_bug_scenarios()
    scenarios += variable_k_scenarios(k=3)
    scenarios += event_scenarios(num_slots=3)
    scenarios += [
        alpha0_operate_scenario(alpha0=alpha0_spec),
        alpha0_memory_scenario(alpha0=replace(alpha0_spec, normal_opcode=0x29)),
        Scenario(
            name="alpha0/bug/no_bypass",
            design="alpha0",
            slots=(NORMAL, NORMAL),
            bug="no_bypass",
            alpha0=alpha0_spec,
            tags=("alpha0", "bug-injection"),
        ),
    ]
    if not heavy:
        # Smoke: drop the slowest families, keep both designs + a bug.
        keep = {
            "vsm/default",
            "vsm/bug/no_bypass",
            "vsm/bug/and_becomes_or",
            "vsm/event/slot1",
            "alpha0/operate",
            "alpha0/bug/no_bypass",
        }
        scenarios = [s for s in scenarios if s.name in keep]
    return scenarios


# ======================================================================
# Measurements
# ======================================================================
def measure_cold_warm(campaign, store_root) -> dict:
    """Cold campaign into a fresh store, then a warm re-run against it."""
    started = time.perf_counter()
    cold = CampaignRunner(store_path=store_root).run(campaign)
    cold_seconds = time.perf_counter() - started
    started = time.perf_counter()
    warm = CampaignRunner(store_path=store_root).run(campaign)
    warm_seconds = time.perf_counter() - started
    identical = cold.verdict_json().encode() == warm.verdict_json().encode()
    return {
        "scenarios": len(campaign),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
        "verdicts_identical": identical,
        "cold_store": cold.store,
        "warm_store": warm.store,
        "_verdict_json": cold.verdict_json(),
    }


def measure_parallel(
    campaign, reference_verdicts: str, workers: int, heavy: bool, store_root
) -> dict:
    """Serial vs affinity-sharded parallel wall-clock, warm snapshots.

    Every mode runs against the store left by the cold campaign with its
    *result* records cleared: verdicts are fully recomputed (so the
    measurement is real verification work), while the extracted beta
    relations rehydrate from the warm arena snapshots on both sides —
    the steady-state regime of a campaign service, and the one where
    scheduling (not a one-off 36 s extraction) decides the wall-clock.
    """

    def clear_results() -> None:
        shutil.rmtree(pathlib.Path(store_root) / "results", ignore_errors=True)

    clear_results()
    started = time.perf_counter()
    serial = CampaignRunner(store_path=store_root).run(campaign)
    serial_seconds = time.perf_counter() - started
    clear_results()
    started = time.perf_counter()
    affinity = CampaignRunner(store_path=store_root).run(
        campaign, parallel=True, max_workers=workers
    )
    affinity_seconds = time.perf_counter() - started
    record = {
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "affinity_seconds": round(affinity_seconds, 3),
        "affinity_speedup": round(serial_seconds / max(affinity_seconds, 1e-9), 3),
        "speedup_bar": PARALLEL_SPEEDUP_BAR,
        "bar_enforced": (os.cpu_count() or 1) >= workers,
        "units": affinity.pool.get("units"),
        "verdicts_identical": (
            serial.verdict_json() == affinity.verdict_json() == reference_verdicts
        ),
    }
    if heavy:
        clear_results()
        started = time.perf_counter()
        blind = CampaignRunner(store_path=store_root).run(
            campaign, parallel=True, max_workers=workers, sharding="blind"
        )
        blind_seconds = time.perf_counter() - started
        record["blind_seconds"] = round(blind_seconds, 3)
        record["affinity_vs_blind"] = round(
            blind_seconds / max(affinity_seconds, 1e-9), 3
        )
        record["verdicts_identical"] = record["verdicts_identical"] and (
            blind.verdict_json() == reference_verdicts
        )
    return record


def measure_edit_one_model(
    campaign, reference_verdicts: str, cold_seconds: float, store_root
) -> dict:
    """Warm re-run after one model component changed (store still warm).

    Runs against the store the cold/warm measurement left behind; only
    the edited component's dependent scenarios may recompute, everything
    else must be served from the surviving records.  The override is
    hash-level identical to editing the module on disk (and is removed
    in a ``finally`` so later regimes see pristine hashes).
    """
    dependents = [
        s.name for s in campaign if EDITED_COMPONENT in s.dependencies()
    ]
    assert dependents, "the campaign must exercise the edited component"
    assert len(dependents) < len(campaign), "the edit must leave survivors"
    codehash.set_override(EDITED_COMPONENT, "bench: edit-one-model regime")
    try:
        started = time.perf_counter()
        edited = CampaignRunner(store_path=store_root).run(campaign)
        edited_seconds = time.perf_counter() - started
    finally:
        codehash.clear_overrides()
    results = edited.store["results"]
    return {
        "edited_component": EDITED_COMPONENT,
        "dependent_scenarios": dependents,
        "scenarios": len(campaign),
        "cold_seconds": round(cold_seconds, 3),
        "edited_seconds": round(edited_seconds, 3),
        "speedup_vs_cold": round(cold_seconds / max(edited_seconds, 1e-9), 1),
        "speedup_bar": EDIT_ONE_MODEL_SPEEDUP_BAR,
        "invalidated": results["invalidated"],
        "hits": results["hits"],
        "misses": results["misses"],
        "survival_rate": results["survival_rate"],
        "verdicts_identical": edited.verdict_json() == reference_verdicts,
    }


def _snapshot_architecture(alpha0_spec: Alpha0Spec) -> Alpha0Architecture:
    return Alpha0Architecture(
        options=SymbolicAlpha0Options(
            data_width=alpha0_spec.data_width,
            num_registers=alpha0_spec.num_registers,
            memory_words=alpha0_spec.memory_words,
            alu_subset=alpha0_spec.alu_subset,
        )
    )


def _canonical_relation(blob: dict) -> dict:
    """Name-mapped structural form of a relation snapshot (order-free)."""
    from repro.bdd.kernel import unpack_snapshot

    arena = unpack_snapshot(blob["arena"])
    names = {level: name for level, name in arena["level_names"]}
    return {
        "layout": blob["layout"],
        "supports": blob["supports"],
        "levels": [names[level] for level in arena["levels"]],
        "lows": arena["lows"],
        "highs": arena["highs"],
        "roots": arena["roots"],
    }


def measure_snapshot_rehydration(alpha0_spec: Alpha0Spec, slots) -> dict:
    """Fresh Alpha0 extraction vs snapshot rehydration, differential-checked."""
    architecture = _snapshot_architecture(alpha0_spec)
    siminfo = SimulationInfo(reset_cycles=1, slots=slots)

    manager = BDDManager()
    specification, implementation = architecture.make_models(manager)
    manager.declare_all(beta_stimulus_order(architecture, siminfo))
    started = time.perf_counter()
    spec_stepper, impl_stepper = extract_steppers(
        manager, specification, implementation, architecture.instruction_width
    )
    extract_seconds = time.perf_counter() - started

    blobs = {
        SPEC_PREFIX: _serialize_stepper_payload(
            manager, _stepper_payload(spec_stepper), SPEC_PREFIX
        ),
        IMPL_PREFIX: _serialize_stepper_payload(
            manager, _stepper_payload(impl_stepper), IMPL_PREFIX
        ),
    }
    # Persist-shaped round trip: compressed bytes in, parsed JSON out.
    encoded = {
        prefix: zlib.compress(json.dumps(blob).encode(), 6)
        for prefix, blob in blobs.items()
    }

    target = BDDManager()
    architecture.make_models(target)
    target.declare_all(beta_stimulus_order(architecture, siminfo))
    started = time.perf_counter()
    restored = {
        prefix: _deserialize_stepper_payload(
            target, json.loads(zlib.decompress(data)), prefix
        )
        for prefix, data in encoded.items()
    }
    restore_seconds = time.perf_counter() - started

    identical = all(
        _canonical_relation(blobs[prefix])
        == _canonical_relation(
            _serialize_stepper_payload(target, restored[prefix], prefix)
        )
        for prefix in blobs
    )
    return {
        "alpha0": {
            "data_width": alpha0_spec.data_width,
            "num_registers": alpha0_spec.num_registers,
            "memory_words": alpha0_spec.memory_words,
        },
        "slots": list(slots),
        "extract_seconds": round(extract_seconds, 3),
        "restore_seconds": round(restore_seconds, 3),
        "restore_ratio": round(restore_seconds / max(extract_seconds, 1e-9), 4),
        "relation_nodes": {
            prefix: blob["nodes"] for prefix, blob in blobs.items()
        },
        "compressed_bytes": {
            prefix: len(data) for prefix, data in encoded.items()
        },
        "differential_identical": identical,
    }


def run_tier(tier: str, store_root=None) -> dict:
    """All three measurements for one tier; returns the JSON payload."""
    heavy = tier == "full"
    spec = CONDENSED_ALPHA0_SPEC if heavy else SMOKE_ALPHA0_SPEC
    campaign = throughput_campaign(spec, heavy=heavy)
    owns_store = store_root is None
    if owns_store:
        store_root = tempfile.mkdtemp(prefix="bench-campaign-store-")
    try:
        cold_warm = measure_cold_warm(campaign, store_root)
        reference = cold_warm.pop("_verdict_json")
        # Must run before measure_parallel, which clears the result
        # records this regime's surviving records live in.
        edit_one_model = measure_edit_one_model(
            campaign, reference, cold_warm["cold_seconds"], store_root
        )
        parallel = measure_parallel(
            campaign,
            reference,
            workers=PARALLEL_WORKERS if heavy else 2,
            heavy=heavy,
            store_root=store_root,
        )
        snapshot = measure_snapshot_rehydration(
            spec,
            slots=(NORMAL, NORMAL, CONTROL, NORMAL, NORMAL) if heavy else (NORMAL,),
        )
    finally:
        if owns_store:
            shutil.rmtree(store_root, ignore_errors=True)
    return {
        "tier": tier,
        "campaign": cold_warm,
        "edit_one_model": edit_one_model,
        "parallel": parallel,
        "snapshot": snapshot,
    }


def _write_json(payload: dict) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _assert_common(payload: dict) -> None:
    assert payload["campaign"]["verdicts_identical"], "warm-store verdict drift"
    assert payload["parallel"]["verdicts_identical"], "parallel verdict drift"
    assert payload["snapshot"]["differential_identical"], "snapshot relation drift"
    warm_results = payload["campaign"]["warm_store"]["results"]
    assert warm_results["hits"] == payload["campaign"]["scenarios"]
    assert warm_results["misses"] == 0
    edit = payload["edit_one_model"]
    assert edit["verdicts_identical"], "edit-one-model verdict drift"
    # Surgical invalidation: exactly the edited component's dependents
    # recomputed, every other record survived the code delta.
    assert edit["invalidated"] == len(edit["dependent_scenarios"]), edit
    assert edit["hits"] == edit["scenarios"] - edit["invalidated"], edit
    assert edit["misses"] == 0, edit
    assert edit["speedup_vs_cold"] >= EDIT_ONE_MODEL_SPEEDUP_BAR, edit


# ======================================================================
# Tiers
# ======================================================================
@pytest.mark.bench_smoke
def test_campaign_throughput_smoke(benchmark):
    """Sub-minute pass over every leg; emits BENCH_campaign.json."""
    payload = benchmark.pedantic(lambda: run_tier("smoke"), rounds=1, iterations=1)
    _write_json(payload)
    _assert_common(payload)
    # Smoke bars are correctness-of-harness, not performance claims —
    # but even the smoke campaign's warm re-run is orders of magnitude
    # faster than its cold run.
    assert payload["campaign"]["warm_speedup"] >= WARM_SPEEDUP_FLOOR
    record_paper_comparison(
        benchmark,
        experiment="campaign throughput layer (smoke)",
        paper="campaigns over the same models dominate the paper's experiments",
        measured=(
            f"warm-store re-run {payload['campaign']['warm_speedup']}x, "
            f"edit-one-model re-run {payload['edit_one_model']['speedup_vs_cold']}x, "
            f"snapshot rehydration ratio {payload['snapshot']['restore_ratio']}"
        ),
    )


def test_campaign_throughput_full(benchmark):
    """Full tier: the acceptance bars, measured and asserted."""
    payload = benchmark.pedantic(lambda: run_tier("full"), rounds=1, iterations=1)
    _write_json(payload)
    _assert_common(payload)
    campaign = payload["campaign"]
    assert campaign["warm_speedup"] >= WARM_SPEEDUP_FLOOR, campaign
    snapshot = payload["snapshot"]
    # The issue's 5% target is recorded but the asserted floor is 10%:
    # measured ~6-7% on the dev box (restore ~2.5 s vs ~35-42 s
    # extraction) — see ROADMAP honest negatives.
    assert snapshot["restore_ratio"] <= SNAPSHOT_RATIO_FLOOR, snapshot
    parallel = payload["parallel"]
    if parallel["bar_enforced"]:
        assert parallel["affinity_speedup"] >= PARALLEL_SPEEDUP_BAR, parallel
    record_paper_comparison(
        benchmark,
        experiment="campaign throughput layer (full)",
        paper="campaigns over the same models dominate the paper's experiments",
        measured=(
            f"cold {campaign['cold_seconds']}s -> warm {campaign['warm_seconds']}s "
            f"({campaign['warm_speedup']}x); edit-one-model "
            f"{payload['edit_one_model']['edited_seconds']}s "
            f"({payload['edit_one_model']['speedup_vs_cold']}x, "
            f"{payload['edit_one_model']['invalidated']} of "
            f"{payload['edit_one_model']['scenarios']} recomputed); snapshot restore "
            f"{snapshot['restore_seconds']}s vs extract {snapshot['extract_seconds']}s "
            f"(ratio {snapshot['restore_ratio']}); affinity x{parallel['workers']} "
            f"{parallel['affinity_speedup']}x serial "
            f"(bar {'enforced' if parallel['bar_enforced'] else 'skipped: '}"
            f"{'' if parallel['bar_enforced'] else str(parallel['cpu_count']) + ' cpu(s)'})"
        ),
    )


# ======================================================================
# CLI (CI warm-store step)
# ======================================================================
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", choices=("smoke", "full"), default="smoke")
    parser.add_argument(
        "--store",
        default=None,
        help="persistent store directory (carried between CI steps)",
    )
    parser.add_argument(
        "--expect-warm",
        action="store_true",
        help="assert a nonzero result-store hit rate (the warm CI step)",
    )
    parser.add_argument(
        "--edit-model",
        default=None,
        metavar="COMPONENT",
        help="simulate an edit of one code component (e.g. model:interrupts) "
        "before the run, via the codehash override hook",
    )
    parser.add_argument(
        "--expect-partial",
        action="store_true",
        help="assert partial survival: some records invalidated by the "
        "simulated edit, the rest still served warm (the edit-one-model "
        "CI step)",
    )
    args = parser.parse_args()

    heavy = args.tier == "full"
    spec = CONDENSED_ALPHA0_SPEC if heavy else SMOKE_ALPHA0_SPEC
    campaign = throughput_campaign(spec, heavy=heavy)
    if args.edit_model:
        codehash.set_override(args.edit_model, "cli: simulated edit")
    try:
        started = time.perf_counter()
        report = CampaignRunner(store_path=args.store) if args.store else CampaignRunner()
        result = report.run(campaign)
        seconds = time.perf_counter() - started
    finally:
        codehash.clear_overrides()
    results = (result.store or {}).get("results", {})
    print(
        f"campaign: {len(campaign)} scenario(s) in {seconds:.2f}s; "
        f"store hits={results.get('hits', 0)} misses={results.get('misses', 0)} "
        f"stale={results.get('stale', 0)} "
        f"invalidated={results.get('invalidated', 0)} "
        f"corrupt={results.get('corrupt', 0)}"
    )
    errors = [o.scenario for o in result.outcomes if o.error is not None]
    payload = {
        "tier": args.tier,
        "expect_warm": args.expect_warm,
        "edit_model": args.edit_model,
        "expect_partial": args.expect_partial,
        "seconds": round(seconds, 3),
        "store": result.store,
        "errors": errors,
    }
    # Merge under the pytest-produced benchmark record instead of
    # clobbering it — CI runs the bench tier first, then the two CLI
    # store steps, and uploads one artifact with all three.
    existing = {}
    if JSON_PATH.exists():
        try:
            existing = json.loads(JSON_PATH.read_text())
        except ValueError:
            existing = {}
    existing.setdefault("cli_runs", []).append(payload)
    _write_json(existing)
    if errors:
        print(f"FAIL: {len(errors)} scenario(s) errored: {errors}")
        return 1
    if args.expect_warm:
        if results.get("hits", 0) <= 0:
            print("FAIL: expected a warm store but every lookup missed")
            return 1
        print(f"warm store OK: hit rate {results.get('hit_rate', 0.0):.1%}")
    if args.expect_partial:
        if results.get("invalidated", 0) <= 0:
            print("FAIL: expected the simulated edit to invalidate records")
            return 1
        if results.get("hits", 0) <= 0:
            print("FAIL: expected records of unrelated components to survive")
            return 1
        print(
            f"partial survival OK: {results['invalidated']} invalidated, "
            f"{results['hits']} served warm "
            f"(survival rate {results.get('survival_rate', 0.0):.1%})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
