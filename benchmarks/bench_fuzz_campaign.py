"""Generative fuzz-campaign acceptance benchmark.

Runs seeded bug-hunt campaigns (:func:`repro.campaigns.run_fuzz_campaign`)
end to end through the ordinary campaign engine and asserts the
generative-campaign acceptance bars:

* **Ground truth** — every planted bug class is detected (the verifier
  refutes 100% of the ``expect:fail`` scenarios) and the stock/identity
  scenarios raise no false alarms.
* **Corpus dedup** — re-discovered witnesses dedupe against the
  committed golden counterexample records by content fingerprint; the
  campaign yields at least one *new* minimized witness record.
* **Warm re-run** — repeating the campaign against the persistent
  result store re-serves almost every verdict
  (``survival_rate >= 0.95``), so fuzz campaigns are cheap to keep in
  the loop.

Tiers: the full tier runs the 200-scenario acceptance campaign with
batched execution; the ``bench_smoke`` tier runs a 20-scenario pass in
CI time.  Results are written to ``BENCH_fuzz.json`` next to this file
(CI uploads it as an artifact).

CLI (the CI fuzz-smoke steps)::

    python bench_fuzz_campaign.py --store DIR --corpus-out DIR   # cold
    python bench_fuzz_campaign.py --store DIR --expect-warm      # warm

The first invocation populates the store and writes any new witness
records under ``--corpus-out`` (uploaded as a CI artifact); the second
asserts store survival across invocations.
"""

import argparse
import json
import pathlib
import tempfile
import time

import pytest

from repro.campaigns import run_fuzz_campaign
from repro.engine import CampaignRunner

from _bench_utils import record_paper_comparison

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_fuzz.json"

#: The acceptance campaign (one seed, fixed forever — the scenarios are
#: a pure function of it).
SEED = 0
FULL_COUNT = 200
SMOKE_COUNT = 20

#: Warm re-run store-survival floor (acceptance bar).
SURVIVAL_FLOOR = 0.95

#: Minimizer invocations per tier.  Minimization costs one small
#: sub-campaign per *new* witness; the caps keep the tiers' wall-clock
#: bounded while still committing canonical minimized records.
FULL_MAX_MINIMIZE = 12
SMOKE_MAX_MINIMIZE = 4

#: The planted (expect:fail) mutation classes the seeded full campaign
#: must flush out — all of them, or the verifier lost a bug class.
PLANTED_CLASSES = {
    "bypass_drop",
    "branch_skew",
    "planted_bug",
    "alpha0_case",
    "event_storm",
    "superscalar_hazard",
    "scoreboard_raw",
}


def _survival_rate(report) -> float:
    """Store hit fraction of a campaign report (0.0 without lookups)."""
    results = (report.store or {}).get("results", {})
    lookups = sum(
        results.get(key, 0) for key in ("hits", "misses", "stale", "invalidated")
    )
    return results.get("hits", 0) / lookups if lookups else 0.0


def run_tier(
    tier: str,
    store_path,
    corpus_root,
    seed: int = SEED,
    count: int = None,
    write_corpus: bool = False,
):
    """One cold + one warm campaign against a persistent store."""
    heavy = tier == "full"
    if count is None:
        count = FULL_COUNT if heavy else SMOKE_COUNT
    max_minimize = FULL_MAX_MINIMIZE if heavy else SMOKE_MAX_MINIMIZE
    batch_size = 40 if heavy else None

    started = time.perf_counter()
    cold = run_fuzz_campaign(
        seed,
        count,
        runner=CampaignRunner(store_path=store_path),
        batch_size=batch_size,
        corpus_root=corpus_root,
        write_corpus=write_corpus,
        max_minimize=max_minimize,
    )
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = run_fuzz_campaign(
        seed,
        count,
        runner=CampaignRunner(store_path=store_path),
        batch_size=batch_size,
        corpus_root=corpus_root,
        max_minimize=max_minimize,
    )
    warm_seconds = time.perf_counter() - started

    return {
        "tier": tier,
        "seed": seed,
        "count": count,
        "scenarios": len(cold.scenarios),
        "cold": cold.summary(),
        "warm": warm.summary(),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "survival_rate": round(_survival_rate(warm.report), 4),
        "new_record_fingerprints": [
            record["fingerprint"] for record in cold.new_records
        ],
        "_cold": cold,
        "_warm": warm,
    }


def _assert_acceptance(payload, require_all_classes: bool) -> None:
    cold, warm = payload["_cold"], payload["_warm"]
    assert cold.ok, cold.ground_truth_violations
    assert warm.ok, warm.ground_truth_violations
    # 100% of the planted bug classes present in the campaign detected.
    assert cold.planted_detected, "campaign planted no bugs at all"
    assert all(cold.planted_detected.values()), cold.planted_detected
    if require_all_classes:
        assert set(cold.planted_detected) == PLANTED_CLASSES, cold.planted_detected
    # Dedup against the committed golden corpus fired.
    golden_dups = [
        dup for dup in cold.duplicates if dup["matches"].startswith("golden:")
    ]
    assert golden_dups, cold.duplicates
    # At least one genuinely new *minimized* witness (witnesses past the
    # max_minimize cap are deliberately recorded raw).
    minimized = [
        record
        for record in cold.new_records
        if record["scenario"]["name"].startswith("fuzz/min/")
    ]
    assert minimized, [r["scenario"]["name"] for r in cold.new_records]
    # Warm re-run survives the store.
    assert payload["survival_rate"] >= SURVIVAL_FLOOR, payload["survival_rate"]
    assert warm.report.verdict_json() == cold.report.verdict_json()


def _write_json(payload) -> None:
    serialisable = {
        key: value for key, value in payload.items() if not key.startswith("_")
    }
    JSON_PATH.write_text(json.dumps(serialisable, indent=2, sort_keys=True) + "\n")


# ======================================================================
# Tiers
# ======================================================================
@pytest.mark.bench_smoke
def test_fuzz_campaign_smoke(benchmark, tmp_path):
    """CI tier: two scenarios per mutation class, cold + warm."""
    payload = benchmark.pedantic(
        lambda: run_tier("smoke", tmp_path / "store", tmp_path / "corpus"),
        rounds=1,
        iterations=1,
    )
    _write_json(payload)
    _assert_acceptance(payload, require_all_classes=False)
    record_paper_comparison(
        benchmark,
        experiment="generative fuzz campaign (smoke)",
        paper="any incorrect change in state ... will be detected",
        measured=(
            f"{payload['scenarios']} scenarios, "
            f"{payload['cold']['witnesses']} witnesses "
            f"({payload['cold']['duplicates']} deduped, "
            f"{payload['cold']['new_records']} new minimized), "
            f"warm survival {payload['survival_rate']:.1%}"
        ),
    )


def test_fuzz_campaign_full(benchmark):
    """Acceptance tier: the seeded 200-scenario campaign, batched."""
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        payload = benchmark.pedantic(
            lambda: run_tier("full", tmp / "store", tmp / "corpus"),
            rounds=1,
            iterations=1,
        )
        _write_json(payload)
        _assert_acceptance(payload, require_all_classes=True)
    record_paper_comparison(
        benchmark,
        experiment="generative fuzz campaign (200 scenarios)",
        paper="any incorrect change in state ... will be detected",
        measured=(
            f"{payload['scenarios']} scenarios in {payload['cold_seconds']}s cold / "
            f"{payload['warm_seconds']}s warm, all {len(payload['cold']['planted_classes'])} "
            f"planted classes detected, {payload['cold']['duplicates']} witnesses deduped, "
            f"{payload['cold']['new_records']} new minimized records, "
            f"warm survival {payload['survival_rate']:.1%}"
        ),
    )


# ======================================================================
# CLI (CI fuzz-smoke steps)
# ======================================================================
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", choices=("smoke", "full"), default="smoke")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--count", type=int, default=None)
    parser.add_argument(
        "--store", default=None, help="persistent store directory (carried between steps)"
    )
    parser.add_argument(
        "--corpus-out",
        default=None,
        help="write new witness records to this directory (CI artifact)",
    )
    parser.add_argument(
        "--expect-warm",
        action="store_true",
        help=f"assert store survival >= {SURVIVAL_FLOOR} (the warm CI step)",
    )
    args = parser.parse_args()

    heavy = args.tier == "full"
    count = args.count if args.count is not None else (
        FULL_COUNT if heavy else SMOKE_COUNT
    )
    started = time.perf_counter()
    result = run_fuzz_campaign(
        args.seed,
        count,
        runner=CampaignRunner(store_path=args.store) if args.store else None,
        batch_size=40 if heavy else None,
        corpus_root=args.corpus_out,
        write_corpus=args.corpus_out is not None,
        max_minimize=FULL_MAX_MINIMIZE if heavy else SMOKE_MAX_MINIMIZE,
    )
    seconds = time.perf_counter() - started
    summary = result.summary()
    survival = _survival_rate(result.report)
    print(
        f"fuzz campaign: seed {args.seed}, {summary['scenarios']} scenario(s) "
        f"in {seconds:.2f}s; planted classes {summary['planted_classes']}; "
        f"witnesses={summary['witnesses']} duplicates={summary['duplicates']} "
        f"new={summary['new_records']}; store survival {survival:.1%}"
    )

    payload = {
        "cli": True,
        "tier": args.tier,
        "seed": args.seed,
        "count": count,
        "expect_warm": args.expect_warm,
        "seconds": round(seconds, 3),
        "summary": summary,
        "survival_rate": round(survival, 4),
        "violations": result.ground_truth_violations,
    }
    existing = {}
    if JSON_PATH.exists():
        try:
            existing = json.loads(JSON_PATH.read_text())
        except ValueError:
            existing = {}
    existing.setdefault("cli_runs", []).append(payload)
    JSON_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    if not result.ok:
        print(f"FAIL: {len(result.ground_truth_violations)} ground-truth violation(s):")
        for violation in result.ground_truth_violations:
            print(f"  {violation}")
        return 1
    if not result.planted_detected or not all(result.planted_detected.values()):
        print(f"FAIL: planted bug classes missed: {result.planted_detected}")
        return 1
    if not result.duplicates and not result.new_records:
        print("FAIL: the campaign found no witnesses at all")
        return 1
    if args.expect_warm:
        if survival < SURVIVAL_FLOOR:
            print(
                f"FAIL: warm survival {survival:.1%} below the "
                f"{SURVIVAL_FLOOR:.0%} floor"
            )
            return 1
        print(f"warm store OK: survival {survival:.1%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
