"""Resilience layer overhead + checkpoint/resume benchmark (PR 10).

The resilience layer's contract mirrors telemetry's: *off means free,
on means cheap, and never a changed verdict*.  The engine seams are
wrapped unconditionally (a disabled fault site is one module-global
read; an unsupervised run takes the one-attempt path), so this
benchmark pins the "on means cheap" half and the recovery story:

* **Overhead** — run the smoke campaign plain and under a
  :class:`~repro.resilience.SupervisionPolicy` (no faults injected:
  this measures the supervision plumbing itself — the per-attempt
  loop, the policy checks, the store-write retry wrapper), alternating
  order, best-of-N each, fresh runner per run.  Verdicts must stay
  byte-identical; the supervised/plain wall-clock ratio targets the
  issue's <= 1.05, recorded honestly in ``BENCH_resilience.json``,
  with a 1.25 hard ceiling asserted so a pathological regression
  (backoff sleeping on the happy path, per-call policy rebuilds) fails
  CI outright while a noisy-box near-miss does not.

* **Resume** — run the same campaign against a store + checkpoint
  journal, kill it halfway with an injected ``KeyboardInterrupt``,
  then resume against the same journal: the resumed run must replay
  the journalled prefix from the store (no re-execution) and produce
  a verdict byte-identical to an uninterrupted baseline.

* **Fault differential** (CLI) — seeded fault schedules (store I/O
  faults, record corruption, retried scenario errors) run under
  supervision and must still produce byte-identical verdicts; the
  journal file and the store's quarantine listing land next to
  ``BENCH_resilience.json`` as CI artifacts.

Results land in ``BENCH_resilience.json`` next to this file.
"""

import argparse
import gc
import json
import pathlib
import shutil
import tempfile
import time

import pytest

from repro.engine import CampaignRunner, ResultStore
from repro.resilience import FaultPlan, FaultSpec, SupervisionPolicy, faults

from _bench_utils import record_paper_comparison

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_resilience.json"

#: The issue's overhead target (supervised wall clock / plain).
OVERHEAD_TARGET = 1.05
#: The asserted ceiling: catches pathological supervision regressions
#: without making CI flaky over measurement noise.
OVERHEAD_CEILING = 1.25

#: The smoke campaign (the telemetry benchmark's set): beta cycles,
#: relational extraction, events, an injected bug.
SMOKE_SCENARIOS = (
    "vsm/default",
    "vsm/bug/no_bypass",
    "vsm/event/slot0",
)

ROUNDS = 3

#: The supervision policy measured and used by every faulted regime.
#: Backoff is floored low so retry waits measure the plumbing, not
#: sleeps (the byte-identity asserts don't care either way).
POLICY = SupervisionPolicy(max_attempts=3, backoff_base=0.001, backoff_max=0.01)

#: The hang schedule's policy: a soft timeout so the parent terminates
#: the oversleeping worker instead of waiting out the payload.
HANG_POLICY = SupervisionPolicy(
    max_attempts=3, backoff_base=0.001, backoff_max=0.01, soft_timeout=2.0
)

#: Seeded fault schedules for the differential regime (the satellite's
#: store I/O errors + one worker kill + one timeout, plus corruption
#: and retried scenario errors).  Each must be quiescent (finite
#: ``at`` schedules / fire budgets) so the bounded retries and respawn
#: budgets are guaranteed to outlast it.  ``run`` selects the
#: execution mode (worker faults need the affinity scheduler);
#: ``seed_store`` warms the store first so read/corrupt faults have
#: records to refuse.
FAULT_SCHEDULES = {
    "store-read-io": {
        "plan": FaultPlan(
            seed=1101,
            sites={"store.read.results": FaultSpec(kind="io", at=(0,))},
        ),
        "seed_store": True,
    },
    "record-corruption": {
        "plan": FaultPlan(
            seed=1102,
            sites={
                "store.corrupt.results": FaultSpec(kind="corrupt", at=(0,)),
                "store.corrupt.snapshots": FaultSpec(
                    kind="corrupt", at=(0,)
                ),
            },
        ),
        "seed_store": True,
    },
    "scenario-errors-retried": {
        "plan": FaultPlan(
            seed=1103,
            sites={
                "scenario.run": FaultSpec(kind="error", at=(0, 2), max_fires=2)
            },
        ),
    },
    "worker-crash": {
        "plan": FaultPlan(
            seed=1104,
            sites={"worker.crash": FaultSpec(kind="crash", at=(0,))},
        ),
        "run": {"parallel": True, "max_workers": 2},
    },
    "worker-hang-timeout": {
        "plan": FaultPlan(
            seed=1105,
            sites={
                "worker.hang": FaultSpec(kind="hang", at=(0,), payload=30.0)
            },
        ),
        "run": {"parallel": True, "max_workers": 2},
        "policy": HANG_POLICY,
        # Warm the store first: served scenarios complete in
        # milliseconds, so the soft timeout can only ever catch the
        # genuinely hung worker, not one legitimately computing a
        # cold multi-second scenario.
        "seed_store": True,
    },
}


def _run_campaign(names, supervision=None, **kwargs):
    """One cold campaign run; returns (wall seconds, report).

    A full collection runs first so the previous run's dead managers
    don't bill their collection cost to whichever run the collector
    happens to fire in (see bench_telemetry).
    """
    gc.collect()
    runner = CampaignRunner(**kwargs)
    started = time.perf_counter()
    report = runner.run(list(names), supervision=supervision)
    seconds = time.perf_counter() - started
    return seconds, report


def measure_overhead(names=SMOKE_SCENARIOS, rounds=ROUNDS) -> dict:
    """Best-of-``rounds`` supervised vs plain wall clock, alternating.

    No faults are injected: both modes run the identical happy path,
    so the ratio isolates the supervision plumbing (attempt loop,
    retryability checks, write-retry wrapper) from recovery work.
    """
    plain: list = []
    supervised: list = []
    verdicts: set = set()

    def run_plain() -> None:
        seconds, report = _run_campaign(names)
        plain.append(seconds)
        verdicts.add(report.verdict_json())

    def run_supervised() -> None:
        seconds, report = _run_campaign(names, supervision=POLICY)
        supervised.append(seconds)
        verdicts.add(report.verdict_json())
        assert report.resilience.get("policy"), "supervised run lost its policy"

    for round_index in range(rounds):
        first, second = (
            (run_plain, run_supervised)
            if round_index % 2 == 0
            else (run_supervised, run_plain)
        )
        first()
        second()
    best_plain = min(plain)
    best_supervised = min(supervised)
    ratio = (best_supervised / best_plain) if best_plain else 1.0
    return {
        "scenarios": list(names),
        "rounds": rounds,
        "plain_seconds": [round(s, 4) for s in plain],
        "supervised_seconds": [round(s, 4) for s in supervised],
        "best_plain_seconds": round(best_plain, 4),
        "best_supervised_seconds": round(best_supervised, 4),
        "overhead_ratio": round(ratio, 4),
        "overhead_target": OVERHEAD_TARGET,
        "overhead_ceiling": OVERHEAD_CEILING,
        # Honest record: did the measured ratio meet the issue's 5%
        # target on this host?  (The assert uses the ceiling.)
        "bar_met": ratio <= OVERHEAD_TARGET,
        "verdicts_identical": len(verdicts) == 1,
        "policy": POLICY.to_dict(),
    }


def measure_resume(names=SMOKE_SCENARIOS, workdir=None) -> dict:
    """Kill a journalled campaign halfway, resume, compare verdicts.

    Returns a measurement record; ``workdir`` (optional) receives the
    surviving journal file as a CI artifact.
    """
    names = list(names)
    kill_at = len(names) // 2 or 1
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        baseline = CampaignRunner(store_path=root / "baseline-store").run(names)
        store_path = root / "store"
        journal_path = root / "journal.jsonl"
        interrupt = FaultPlan(
            seed=1110,
            sites={"scenario.run": FaultSpec(kind="interrupt", at=(kill_at,))},
        )
        interrupted = False
        with faults.active(interrupt):
            try:
                CampaignRunner(store_path=store_path).run(
                    names, journal=journal_path
                )
            except KeyboardInterrupt:
                interrupted = True
        started = time.perf_counter()
        resumed = CampaignRunner(store_path=store_path).run(
            names, journal=journal_path
        )
        resume_seconds = time.perf_counter() - started
        journal_stats = resumed.resilience.get("journal", {})
        record = {
            "scenarios": names,
            "killed_at_index": kill_at,
            "interrupted": interrupted,
            "resume_seconds": round(resume_seconds, 4),
            "replayed": journal_stats.get("replayed", 0),
            "re_executed": len(names) - journal_stats.get("replayed", 0),
            "store_hits_on_resume": resumed.store["results"]["hits"],
            "verdicts_identical": (
                resumed.verdict_json() == baseline.verdict_json()
            ),
            "journal": journal_stats,
        }
        if workdir is not None:
            workdir.mkdir(parents=True, exist_ok=True)
            shutil.copy(journal_path, workdir / "journal.jsonl")
    return record


def measure_fault_differential(names=SMOKE_SCENARIOS, workdir=None) -> dict:
    """Seeded fault schedules under supervision vs a fault-free baseline.

    Every schedule must converge to byte-identical verdicts; the
    quarantine listing of the faulted store lands in ``workdir``.
    """
    names = list(names)
    schedules = {}
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        baseline = CampaignRunner(store_path=root / "baseline-store").run(names)
        quarantine_listing: list = []
        for label, schedule in sorted(FAULT_SCHEDULES.items()):
            plan = schedule["plan"]
            store_root = root / f"store-{label}"
            # Store-site schedules need a warm store so read/corrupt
            # faults have records to refuse; execution-site schedules
            # must run cold or the warm hits would skip the seam.
            if schedule.get("seed_store"):
                CampaignRunner(store_path=store_root).run(names)
            gc.collect()
            runner = CampaignRunner(store_path=store_root)
            with faults.active(plan):
                started = time.perf_counter()
                report = runner.run(
                    names,
                    supervision=schedule.get("policy", POLICY),
                    **schedule.get("run", {}),
                )
                seconds = time.perf_counter() - started
            fault_stats = report.resilience.get("faults", {})
            workers = report.resilience.get("workers", {})
            schedules[label] = {
                "seed": plan.seed,
                "seconds": round(seconds, 4),
                "fires": fault_stats.get("fires", 0),
                "retries": report.resilience.get("retries", 0),
                "workers_respawned": workers.get("respawned", 0),
                "workers_hung_terminated": workers.get("hung_terminated", 0),
                "quarantined": report.store["results"]["quarantined"]
                + report.store["snapshots"]["quarantined"],
                "verdicts_identical": (
                    report.verdict_json() == baseline.verdict_json()
                ),
            }
            quarantine_listing.extend(
                f"{label}/{path.name}"
                for path in ResultStore(store_root).quarantined_records()
            )
        if workdir is not None:
            workdir.mkdir(parents=True, exist_ok=True)
            (workdir / "quarantine-listing.txt").write_text(
                "\n".join(quarantine_listing) + "\n"
            )
    return {
        "scenarios": names,
        "schedules": schedules,
        "total_fires": sum(r["fires"] for r in schedules.values()),
        "verdicts_identical": all(
            r["verdicts_identical"] for r in schedules.values()
        ),
    }


def _write_json(payload: dict) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ======================================================================
# Tiers
# ======================================================================
@pytest.mark.bench_smoke
def test_resilience_overhead_smoke(benchmark):
    """Supervised vs plain smoke campaign; emits BENCH_resilience.json."""
    payload = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)
    _write_json({"overhead": payload})
    assert payload["verdicts_identical"], "supervision changed a verdict"
    assert payload["overhead_ratio"] <= OVERHEAD_CEILING, payload
    record_paper_comparison(
        benchmark,
        experiment="supervision overhead (smoke)",
        paper="fault recovery must not perturb the verification verdicts",
        measured=(
            f"supervised/plain ratio {payload['overhead_ratio']} "
            f"(target <= {OVERHEAD_TARGET}, met: {payload['bar_met']}; "
            f"ceiling {OVERHEAD_CEILING} asserted)"
        ),
    )


@pytest.mark.bench_smoke
def test_resilience_resume_smoke(benchmark):
    """Interrupted + resumed journalled campaign stays byte-identical."""
    payload = benchmark.pedantic(measure_resume, rounds=1, iterations=1)
    assert payload["interrupted"], "the injected interrupt never fired"
    assert payload["verdicts_identical"], "resume changed a verdict"
    assert payload["replayed"] == payload["killed_at_index"]
    assert payload["store_hits_on_resume"] == payload["replayed"]
    record_paper_comparison(
        benchmark,
        experiment="checkpoint resume (smoke)",
        paper="an interrupted campaign must be resumable without recomputation",
        measured=(
            f"killed at {payload['killed_at_index']}, replayed "
            f"{payload['replayed']} from the store, re-executed "
            f"{payload['re_executed']}, verdicts byte-identical"
        ),
    )


# ======================================================================
# CLI (CI artifact step)
# ======================================================================
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument(
        "--artifacts",
        type=pathlib.Path,
        default=None,
        help="directory receiving the resume journal and the faulted "
        "stores' quarantine listing",
    )
    args = parser.parse_args()
    payload = {
        "overhead": measure_overhead(rounds=args.rounds),
        "resume": measure_resume(workdir=args.artifacts),
        "fault_differential": measure_fault_differential(
            workdir=args.artifacts
        ),
    }
    _write_json(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))
    failures = []
    if not payload["overhead"]["verdicts_identical"]:
        failures.append("supervision changed a verdict")
    if payload["overhead"]["overhead_ratio"] > OVERHEAD_CEILING:
        failures.append(
            f"overhead ratio {payload['overhead']['overhead_ratio']} "
            f"above ceiling"
        )
    if not payload["resume"]["verdicts_identical"]:
        failures.append("resume changed a verdict")
    if payload["resume"]["replayed"] != payload["resume"]["killed_at_index"]:
        failures.append("resume re-executed journalled work")
    if not payload["fault_differential"]["verdicts_identical"]:
        failures.append("a fault schedule changed a verdict")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures and not payload["overhead"]["bar_met"]:
        print(
            f"NOTE: {OVERHEAD_TARGET} target missed on this host "
            f"(ratio {payload['overhead']['overhead_ratio']}); "
            f"recorded honestly."
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
