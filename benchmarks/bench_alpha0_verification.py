"""Section 6.3 — verification of the pipelined Alpha0.

The paper condenses the Alpha0 (4-bit datapath, ALU restricted to
and/or/cmpeq, a single observed register) and reports 23 minutes for the
unpipelined simulation and 43 minutes for the pipelined simulation on a
SPARCstation 10, with k = 5 and d = 1 and the simulation-information
file ``r 0 0 1 0 0``.

The benchmark runs the same condensed verification (register file and
data memory folded to four entries) and additionally a memory-class pass
(loads in the ordinary slots), mirroring the per-instruction-class runs
the paper's cofactoring strategy implies.
"""

from repro.core import Alpha0Architecture, all_normal, alpha0_default, verify_beta_relation

from _bench_utils import condensed_alpha0_architecture, record_paper_comparison


def test_alpha0_beta_relation_verification(benchmark):
    architecture = condensed_alpha0_architecture()
    siminfo = alpha0_default()

    def run():
        return verify_beta_relation(architecture, siminfo)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed, report.summary()
    assert report.specification_cycles == 26   # k^2 + r
    assert report.implementation_cycles == 11  # 2k-1 + r + c*d
    spec_line, impl_line = report.filter_lines()
    assert spec_line.endswith("1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1")
    assert impl_line.endswith("1 0 0 0 0 1 1 1 0 1 1")
    record_paper_comparison(
        benchmark,
        experiment="Section 6.3 (Alpha0 verification, operate class)",
        paper_unpipelined_seconds=23 * 60.0,
        paper_pipelined_seconds=43 * 60.0,
        paper_platform="Sun SPARCstation 10 (condensed to one observed register)",
        measured_unpipelined_seconds=round(report.specification_seconds, 3),
        measured_pipelined_seconds=round(report.implementation_seconds, 3),
        measured_bdd_nodes=report.bdd_nodes,
        verdict="PASSED",
    )


def test_alpha0_memory_class_verification(benchmark):
    """A second pass with the ordinary slots carrying loads (memory class)."""
    architecture = Alpha0Architecture(
        options=condensed_alpha0_architecture().options, normal_opcode=0x29
    )
    siminfo = all_normal(5)

    def run():
        return verify_beta_relation(architecture, siminfo)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed, report.summary()
    record_paper_comparison(
        benchmark,
        experiment="Section 6.3 (Alpha0 verification, memory class)",
        paper="memory read/write addresses observed",
        measured="ld-class slots verified, PASSED",
    )


def test_alpha0_scaling_shape_vs_vsm(benchmark):
    """Shape check: Alpha0 verification costs more than VSM verification.

    The paper's times (23/43 min vs 175/292 s) show the deeper, wider
    design dominating; the reproduction preserves that ordering.
    """
    from repro.core import VSMArchitecture, vsm_default

    def run():
        alpha0_report = verify_beta_relation(condensed_alpha0_architecture(), alpha0_default())
        vsm_report = verify_beta_relation(VSMArchitecture(), vsm_default())
        return alpha0_report, vsm_report

    alpha0_report, vsm_report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert alpha0_report.passed and vsm_report.passed
    assert alpha0_report.total_seconds > vsm_report.total_seconds * 0.5
    record_paper_comparison(
        benchmark,
        experiment="Section 6.2 vs 6.3 (relative cost)",
        paper="Alpha0 roughly 8-9x more expensive than VSM",
        measured_ratio=round(
            alpha0_report.total_seconds / max(vsm_report.total_seconds, 1e-9), 2
        ),
    )
