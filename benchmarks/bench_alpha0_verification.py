"""Section 6.3 — verification of the pipelined Alpha0.

The paper condenses the Alpha0 (4-bit datapath, ALU restricted to
and/or/cmpeq, a single observed register) and reports 23 minutes for the
unpipelined simulation and 43 minutes for the pipelined simulation on a
SPARCstation 10, with k = 5 and d = 1 and the simulation-information
file ``r 0 0 1 0 0``.

The benchmark runs the same condensed verification (register file and
data memory folded to four entries) through the campaign engine, and
additionally a memory-class pass (loads in the ordinary slots),
mirroring the per-instruction-class runs the paper's cofactoring
strategy implies.  The two passes use different slot plans, so they
pool to separate managers; within a campaign, manager reuse applies to
same-shape runs (see the bug-injection benchmark).
"""

from dataclasses import replace

import pytest

from repro.engine import alpha0_memory_scenario, alpha0_operate_scenario
from repro.strings import NORMAL, format_filter

from _bench_utils import (
    CONDENSED_ALPHA0_SPEC,
    SMOKE_ALPHA0_SPEC,
    campaign_runner,
    record_paper_comparison,
)


def test_alpha0_beta_relation_verification(benchmark):
    runner = campaign_runner()
    scenario = alpha0_operate_scenario(alpha0=CONDENSED_ALPHA0_SPEC)

    def run():
        runner.clear_memo()
        return runner.run_one(scenario)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.passed, outcome.mismatches
    structure = outcome.structure
    assert structure["specification_cycles"] == 26   # k^2 + r
    assert structure["implementation_cycles"] == 11  # 2k-1 + r + c*d
    spec_line = format_filter(structure["specification_filter"])
    impl_line = format_filter(structure["implementation_filter"])
    assert spec_line.endswith("1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1")
    assert impl_line.endswith("1 0 0 0 0 1 1 1 0 1 1")
    record_paper_comparison(
        benchmark,
        experiment="Section 6.3 (Alpha0 verification, operate class)",
        paper_unpipelined_seconds=23 * 60.0,
        paper_pipelined_seconds=43 * 60.0,
        paper_platform="Sun SPARCstation 10 (condensed to one observed register)",
        measured_unpipelined_seconds=round(outcome.timings["specification_seconds"], 3),
        measured_pipelined_seconds=round(outcome.timings["implementation_seconds"], 3),
        measured_bdd_nodes=outcome.bdd_nodes,
        verdict="PASSED",
    )


def test_alpha0_memory_class_verification(benchmark):
    """A second pass with the ordinary slots carrying loads (memory class)."""
    runner = campaign_runner()
    scenario = alpha0_memory_scenario(
        alpha0=replace(CONDENSED_ALPHA0_SPEC, normal_opcode=0x29)
    )

    def run():
        runner.clear_memo()
        return runner.run_one(scenario)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.passed, outcome.mismatches
    record_paper_comparison(
        benchmark,
        experiment="Section 6.3 (Alpha0 verification, memory class)",
        paper="memory read/write addresses observed",
        measured="ld-class slots verified, PASSED",
    )


def test_alpha0_scaling_shape_vs_vsm(benchmark):
    """Shape check: Alpha0 verification costs more than VSM verification.

    The paper's times (23/43 min vs 175/292 s) show the deeper, wider
    design dominating; the reproduction preserves that ordering.
    """
    from repro.engine import vsm_verification_scenario

    runner = campaign_runner()

    def run():
        runner.clear_memo()
        alpha0_outcome = runner.run_one(
            alpha0_operate_scenario(alpha0=CONDENSED_ALPHA0_SPEC)
        )
        vsm_outcome = runner.run_one(vsm_verification_scenario())
        return alpha0_outcome, vsm_outcome

    alpha0_outcome, vsm_outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert alpha0_outcome.passed and vsm_outcome.passed
    assert alpha0_outcome.seconds > vsm_outcome.seconds * 0.5
    record_paper_comparison(
        benchmark,
        experiment="Section 6.2 vs 6.3 (relative cost)",
        paper="Alpha0 roughly 8-9x more expensive than VSM",
        measured_ratio=round(alpha0_outcome.seconds / max(vsm_outcome.seconds, 1e-9), 2),
    )


@pytest.mark.bench_smoke
def test_smoke_alpha0_verification():
    """Fast tier: a two-slot condensed Alpha0 scenario must verify."""
    from repro.engine import Scenario

    outcome = campaign_runner().run_one(
        Scenario(
            name="smoke/alpha0",
            design="alpha0",
            slots=(NORMAL, NORMAL),
            alpha0=SMOKE_ALPHA0_SPEC,
        )
    )
    assert outcome.passed, outcome.mismatches
