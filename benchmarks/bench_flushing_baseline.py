"""Burch-Dill flushing comparison point.

The flushing commutative diagram verifies the same designs with a
different decomposition (one symbolic step from a warmed-up pipeline
state, flushed on both paths).  The benchmark records its cost next to
the beta-relation run so the two formulations can be compared on equal
substrates.
"""

import pytest

from repro.core import VSMArchitecture, all_normal, verify_beta_relation, verify_by_flushing
from repro.strings import CONTROL

from _bench_utils import record_paper_comparison


def test_flushing_check_vsm(benchmark):
    def run():
        return verify_by_flushing(VSMArchitecture(), warmup_instructions=2)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed, report.summary()
    record_paper_comparison(
        benchmark,
        experiment="Flushing check (VSM, ALU probe)",
        paper="(not in the paper; contemporaneous Burch-Dill criterion)",
        measured=f"{report.warmup_instructions} warm-up instructions, "
        f"{report.flush_cycles} flush cycles, PASSED",
    )


def test_flushing_check_vsm_branch_probe(benchmark):
    def run():
        return verify_by_flushing(VSMArchitecture(), warmup_instructions=1, step_kind=CONTROL)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed, report.summary()
    record_paper_comparison(
        benchmark,
        experiment="Flushing check (VSM, branch probe)",
        paper="(not in the paper)",
        measured="control-transfer probe instruction, PASSED",
    )


def test_flushing_catches_missing_bypass(benchmark):
    def run():
        return verify_by_flushing(
            VSMArchitecture(), warmup_instructions=2, impl_kwargs={"bug": "no_bypass"}
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not report.passed
    record_paper_comparison(
        benchmark,
        experiment="Flushing check (bug detection)",
        paper="(not in the paper)",
        measured="missing bypass detected by the commutative diagram",
    )


def test_flushing_vs_beta_relation_cost(benchmark):
    """Relative cost of the two formulations on the same design."""

    def run():
        flushing = verify_by_flushing(VSMArchitecture(), warmup_instructions=2)
        beta = verify_beta_relation(VSMArchitecture(), all_normal(2))
        return flushing, beta

    flushing, beta = benchmark.pedantic(run, rounds=1, iterations=1)
    assert flushing.passed and beta.passed
    record_paper_comparison(
        benchmark,
        experiment="Flushing vs beta-relation cost",
        paper="(comparison added by this reproduction)",
        measured=f"flushing {flushing.seconds:.2f} s vs beta-relation {beta.total_seconds:.2f} s",
    )


@pytest.mark.bench_smoke
def test_smoke_flushing_baseline():
    """Fast tier: the flushing diagram commutes for a one-instruction warmup."""
    report = verify_by_flushing(VSMArchitecture(), warmup_instructions=1)
    assert report.passed
