#!/usr/bin/env python
"""Verification campaigns: many scenarios, one engine.

The campaign engine turns every workload of the reproduction — the
headline VSM and Alpha0 verifications, interrupt (dynamic-beta) checks,
bug-injection sweeps, variable-k placements — into declarative
:class:`repro.engine.Scenario` values executed by one
:class:`repro.engine.CampaignRunner`:

* scenarios with the same variable-order signature share a pooled
  ``BDDManager`` (a bug sweep replays the golden run's BDDs from the
  warmed unique table instead of rebuilding them);
* equivalent scenarios are memoised;
* ``parallel=True`` distributes scenarios over worker processes with
  per-worker manager isolation — and byte-identical verdicts.

Run with:  python examples/campaign.py [--parallel] [--json]
"""

import sys

from repro.engine import (
    Alpha0Spec,
    CampaignRunner,
    mixed_campaign,
    variable_k_scenarios,
    vsm_bug_scenarios,
)

#: A small Alpha0 condensation keeps the example snappy.
SMALL_ALPHA0 = Alpha0Spec(data_width=3, num_registers=4, memory_words=2)


def build_campaign():
    """Mixed acceptance campaign + a bug sweep + a variable-k family.

    The variable-k family uses k = 2 to keep the example snappy; pass
    ``k=4`` for the full Section 5.3 placement sweep (the late-branch
    placements smooth a delay slot through most of the pipeline and are
    by far the most expensive runs of the reproduction).
    """
    scenarios = mixed_campaign(alpha0=SMALL_ALPHA0)
    scenarios += vsm_bug_scenarios()
    scenarios += variable_k_scenarios(k=2)
    # mixed_campaign and the bug sweep both contain vsm/bug/no_bypass;
    # keep names unique so report.outcome(name) stays unambiguous.
    seen = set()
    return [s for s in scenarios if not (s.name in seen or seen.add(s.name))]


def main() -> int:
    parallel = "--parallel" in sys.argv
    as_json = "--json" in sys.argv
    campaign = build_campaign()
    runner = CampaignRunner()

    report = runner.run(campaign, parallel=parallel)
    if as_json:
        print(report.to_json())
    else:
        print(report.summary())

    if parallel:
        # The whole point of the parallel mode: identical verdicts.
        serial = CampaignRunner().run(campaign)
        identical = serial.verdict_json() == report.verdict_json()
        print()
        print(
            "Parallel verdicts byte-identical to serial:",
            "YES" if identical else "NO",
        )
        if not identical:
            return 1

    # A campaign "fails" when a golden scenario fails or a bug escapes.
    expected_failures = {s.name for s in campaign if s.bug or s.break_event_link}
    unexpected = [
        outcome.scenario
        for outcome in report.outcomes
        if outcome.passed == (outcome.scenario in expected_failures)
    ]
    print()
    if unexpected:
        print("UNEXPECTED VERDICTS:", unexpected)
        return 1
    print(
        f"All {report.scenario_count} scenarios behaved as expected "
        f"({len(expected_failures)} injected bugs detected) "
        f"in {report.total_seconds:.2f} s."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
