#!/usr/bin/env python
"""Alpha0: verify the condensed DEC-Alpha subset (Section 6.3).

The Alpha0 is condensed exactly as the paper condenses it to fit BDD
capacity: a 4-bit datapath, the ALU restricted to and/or/cmpeq, and a
folded register file / data memory.  Two passes run as one engine
campaign, one for the operate instruction class and one for the memory
(load) class, mirroring how the paper cofactors the transition relation
to one instruction class at a time.  (The slot plans differ, so each
pass gets its own pooled manager; the memory pass is cheap on its own
because loads from the constant reset-state memory stay concrete.)

Run with:  python examples/alpha0_verification.py
"""

from repro.engine import (
    Alpha0Spec,
    CampaignRunner,
    alpha0_memory_scenario,
    alpha0_operate_scenario,
)

CONDENSATION = Alpha0Spec(
    data_width=4, num_registers=4, memory_words=4, alu_subset=("and", "or", "cmpeq")
)


def main() -> int:
    print("Alpha0 condensation:", CONDENSATION)
    print()

    campaign = [
        alpha0_operate_scenario(alpha0=CONDENSATION),
        alpha0_memory_scenario(
            alpha0=Alpha0Spec(
                data_width=4,
                num_registers=4,
                memory_words=4,
                alu_subset=("and", "or", "cmpeq"),
                normal_opcode=0x29,
            )
        ),
    ]
    report = CampaignRunner().run(campaign)

    labels = {
        "alpha0/operate": "Pass 1: operate class (opcode 0x11), one branch slot",
        "alpha0/memory": "Pass 2: memory class (ld, opcode 0x29)",
    }
    for outcome in report.outcomes:
        print(labels[outcome.scenario])
        structure = outcome.structure
        print(
            f"  {'PASSED' if outcome.passed else 'FAILED'} — "
            f"{structure['specification_cycles']} spec cycles, "
            f"{structure['implementation_cycles']} impl cycles, "
            f"{structure['samples_compared']} samples, "
            f"{outcome.seconds:.2f} s "
            f"(cache hit rate {outcome.cache.get('hit_rate', 0.0):.1%})"
        )
        print()

    pool = report.pool
    print(
        f"Pool: {pool['managers']} manager(s) for the two passes "
        f"({pool['reuses']} reuse(s))."
    )
    print("Overall verdict:", "PASSED" if report.passed else "FAILED")
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
