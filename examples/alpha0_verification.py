#!/usr/bin/env python
"""Alpha0: verify the condensed DEC-Alpha subset (Section 6.3).

The Alpha0 is condensed exactly as the paper condenses it to fit BDD
capacity: a 4-bit datapath, the ALU restricted to and/or/cmpeq, and a
folded register file / data memory.  Two passes are run, one for the
operate instruction class and one for the memory (load) class, mirroring
how the paper cofactors the transition relation to one instruction class
at a time.

Run with:  python examples/alpha0_verification.py
"""

from repro.core import (
    Alpha0Architecture,
    all_normal,
    alpha0_default,
    verify_beta_relation,
)
from repro.processors import SymbolicAlpha0Options

CONDENSATION = SymbolicAlpha0Options(
    data_width=4, num_registers=4, memory_words=4, alu_subset=("and", "or", "cmpeq")
)


def main() -> int:
    print("Alpha0 condensation:", CONDENSATION)
    print()

    print("Pass 1: operate class (opcode 0x11) in the ordinary slots, one branch slot")
    operate = Alpha0Architecture(options=CONDENSATION)
    report = verify_beta_relation(operate, alpha0_default())
    print(report.summary())
    print()

    print("Pass 2: memory class (ld, opcode 0x29) in the ordinary slots")
    memory = Alpha0Architecture(options=CONDENSATION, normal_opcode=0x29)
    memory_report = verify_beta_relation(memory, all_normal(5))
    print(memory_report.summary())
    print()

    passed = report.passed and memory_report.passed
    print("Overall verdict:", "PASSED" if passed else "FAILED")
    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
