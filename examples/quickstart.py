#!/usr/bin/env python
"""Quickstart: verify the pipelined VSM against its instruction set.

This reproduces the headline experiment of Section 6.2 end to end,
through the campaign engine (the same code path benchmarks and
campaigns measure):

1. the simulation-information file ``r 0 0 1 0`` is parsed and wrapped
   into a declarative :class:`repro.engine.Scenario`,
2. the unpipelined specification is symbolically simulated for k^2 + r
   cycles and the 4-stage pipelined implementation for 2k - 1 + r + c*d
   cycles, with shared symbolic instruction variables,
3. the observed variables (registers, PC, ALU op, write address) are
   sampled at the cycles selected by the beta-relation's output
   filtering functions and compared as canonical ROBDDs.

Run with:  python examples/quickstart.py
"""

from repro.core import VSMArchitecture, parse_simulation_info
from repro.engine import CampaignRunner
from repro.strings import format_filter

SIMULATION_INFO = """
# Simulation Information File for VSM.
r #Simulate a reset cycle
0 #Simulate all instructions except for control transfer
0
1 #Simulate control transfer instructions
0
"""


def main() -> int:
    siminfo = parse_simulation_info(SIMULATION_INFO)
    architecture = VSMArchitecture()
    scenario = architecture.scenario("vsm/quickstart", siminfo)

    print("Verifying the pipelined VSM against its unpipelined specification ...")
    print(f"  order of definiteness k = {architecture.order_k}")
    print(f"  delay slots d = {architecture.delay_slots}")
    print(f"  instruction slots: {', '.join(scenario.slots)}")
    print()

    outcome = CampaignRunner().run_one(scenario)
    structure = outcome.structure
    print(f"{scenario.name}: verification {'PASSED' if outcome.passed else 'FAILED'}")
    print(
        f"  simulated {structure['specification_cycles']} specification cycles "
        f"and {structure['implementation_cycles']} implementation cycles"
    )
    print("  UNPIPELINED:", format_filter(structure["specification_filter"]))
    print("  PIPELINED:  ", format_filter(structure["implementation_filter"]))
    print(
        f"  compared {structure['observables_compared']} observables at "
        f"{structure['samples_compared']} sampled cycles "
        f"(covering {structure['sequences_covered']} instruction sequences)"
    )
    print(
        f"  BDD manager: {outcome.bdd_variables} variables, "
        f"{outcome.bdd_nodes} live nodes; "
        f"operation-cache hit rate {outcome.cache.get('hit_rate', 0.0):.1%}"
    )
    print()
    if outcome.passed:
        print("The implementation is in beta-relation with the specification.")
    else:
        print("Verification FAILED; first counterexample:")
        first = outcome.mismatches[0]
        print(f"  {first['observable']} differs at sample {first['sample_index']}:")
        for slot, text in sorted(first["decoded"].items()):
            print(f"    {slot}: {text}")
    return 0 if outcome.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
