#!/usr/bin/env python
"""Quickstart: verify the pipelined VSM against its instruction set.

This reproduces the headline experiment of Section 6.2 end to end:

1. the simulation-information file ``r 0 0 1 0`` is parsed,
2. the unpipelined specification is symbolically simulated for k^2 + r
   cycles and the 4-stage pipelined implementation for 2k - 1 + r + c*d
   cycles, with shared symbolic instruction variables,
3. the observed variables (registers, PC, ALU op, write address) are
   sampled at the cycles selected by the beta-relation's output
   filtering functions and compared as canonical ROBDDs.

Run with:  python examples/quickstart.py
"""

from repro.core import VSMArchitecture, parse_simulation_info, verify_beta_relation

SIMULATION_INFO = """
# Simulation Information File for VSM.
r #Simulate a reset cycle
0 #Simulate all instructions except for control transfer
0
1 #Simulate control transfer instructions
0
"""


def main() -> int:
    siminfo = parse_simulation_info(SIMULATION_INFO)
    architecture = VSMArchitecture()

    print("Verifying the pipelined VSM against its unpipelined specification ...")
    print(f"  order of definiteness k = {architecture.order_k}")
    print(f"  delay slots d = {architecture.delay_slots}")
    print(f"  instruction slots: {', '.join(siminfo.slots)}")
    print()

    report = verify_beta_relation(architecture, siminfo)
    print(report.summary())
    print()
    if report.passed:
        print("The implementation is in beta-relation with the specification.")
    else:
        print("Verification FAILED; first counterexample:")
        print(" ", report.mismatches[0].describe())
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
