#!/usr/bin/env python
"""Interrupts and the dynamic beta-relation (Section 5.5).

An external event forces a trap into the VSM pipeline: the interrupted
instruction is suppressed, its PC is saved in the link register and
fetch redirects to the handler while the slot behind the trap is
squashed.  The output filtering function is edited on the fly (the
dynamic beta-relation) and the sampled observations must still match the
specification, which takes the trap atomically.

The example verifies an event arriving at every instruction slot, then
shows that a broken handler (one that forgets to save the interrupted
PC) is caught.

Run with:  python examples/interrupt_verification.py
"""

from repro.core import all_normal, verify_with_events
from repro.strings import format_filter


def main() -> int:
    all_passed = True
    for slot in range(4):
        report = verify_with_events(all_normal(4), event_slots=[slot])
        all_passed &= report.passed
        print(f"Event during instruction {slot + 1}: {'PASSED' if report.passed else 'FAILED'}")
        print(f"  dynamic SH2: {format_filter(report.implementation_filter)}")
    print()

    broken = verify_with_events(
        all_normal(4), event_slots=[2], impl_kwargs={"break_event_link": True}
    )
    print("Handler that forgets to save the interrupted PC:",
          "DETECTED" if not broken.passed else "ESCAPED")
    for mismatch in broken.mismatches[:3]:
        print("  mismatch:", mismatch.describe())

    ok = all_passed and not broken.passed
    print()
    print("Overall verdict:", "PASSED" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
