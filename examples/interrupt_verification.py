#!/usr/bin/env python
"""Interrupts and the dynamic beta-relation (Section 5.5).

An external event forces a trap into the VSM pipeline: the interrupted
instruction is suppressed, its PC is saved in the link register and
fetch redirects to the handler while the slot behind the trap is
squashed.  The output filtering function is edited on the fly (the
dynamic beta-relation) and the sampled observations must still match the
specification, which takes the trap atomically.

The example runs one engine campaign: an event arriving at every
instruction slot, plus a broken handler (one that forgets to save the
interrupted PC) that must be caught.

Run with:  python examples/interrupt_verification.py
"""

from repro.engine import CampaignRunner, Scenario, event_scenarios
from repro.strings import NORMAL, format_filter


def main() -> int:
    campaign = event_scenarios(num_slots=4)
    campaign.append(
        Scenario(
            name="vsm/event/slot2/broken-link",
            kind="events",
            slots=(NORMAL,) * 4,
            event_slots=(2,),
            break_event_link=True,
        )
    )
    report = CampaignRunner().run(campaign)

    all_passed = True
    for outcome in report.outcomes:
        if outcome.scenario.endswith("broken-link"):
            continue
        slot = int(outcome.scenario.rsplit("slot", 1)[-1])
        all_passed &= outcome.passed
        print(
            f"Event during instruction {slot + 1}: "
            f"{'PASSED' if outcome.passed else 'FAILED'}"
        )
        print(
            "  dynamic SH2:",
            format_filter(outcome.structure["implementation_filter"]),
        )
    print()

    broken = report.outcome("vsm/event/slot2/broken-link")
    print(
        "Handler that forgets to save the interrupted PC:",
        "DETECTED" if not broken.passed else "ESCAPED",
    )
    for mismatch in broken.mismatches[:3]:
        print(
            f"  mismatch: {mismatch['observable']} at sample "
            f"{mismatch['sample_index']} under "
            f"{sorted(mismatch['decoded'].items())[:2]}"
        )

    ok = all_passed and not broken.passed
    print()
    print("Overall verdict:", "PASSED" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
