#!/usr/bin/env python
"""Bug hunt: inject pipeline bugs into the VSM and watch the verifier catch them.

Each injected bug (missing bypass path, missing delay-slot annulment,
off-by-one branch target, mis-decoded ALU operation, dropped register
write) is run against the beta-relation verifier with a short workload
that exercises the relevant instruction class.  Every bug must produce a
mismatch, and the report decodes a concrete counterexample instruction
sequence for debugging.

Run with:  python examples/vsm_bug_hunt.py
"""

from repro.core import (
    SimulationInfo,
    VSMArchitecture,
    all_normal,
    control_at,
    verify_beta_relation,
)
from repro.strings import CONTROL, NORMAL

WORKLOADS = {
    "no_bypass": ("back-to-back ALU instructions", all_normal(2)),
    "no_annul": ("branch followed by an ordinary instruction", SimulationInfo(slots=(CONTROL, NORMAL))),
    "wrong_branch_target": ("branch in the first slot", control_at(2, 0)),
    "and_becomes_or": ("a single ALU instruction", all_normal(1)),
    "drop_write_r3": ("a single ALU instruction", all_normal(1)),
}


def main() -> int:
    print("Golden design first (control arm):")
    golden = verify_beta_relation(VSMArchitecture(), all_normal(2))
    print(f"  golden VSM: {'PASSED' if golden.passed else 'FAILED'}")
    print()

    escaped = []
    for bug, (description, workload) in WORKLOADS.items():
        report = verify_beta_relation(VSMArchitecture(), workload, impl_kwargs={"bug": bug})
        verdict = "DETECTED" if not report.passed else "ESCAPED"
        print(f"Bug {bug!r} ({description}): {verdict}")
        if report.mismatches:
            first = report.mismatches[0]
            print(f"  first mismatch: {first.observable} at sample {first.sample_index}")
            for slot, text in sorted(first.decoded_instructions.items()):
                print(f"    {slot}: {text}")
        if report.passed:
            escaped.append(bug)
        print()

    if escaped:
        print(f"BUGS ESCAPED VERIFICATION: {escaped}")
        return 1
    print("All injected bugs were detected.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
