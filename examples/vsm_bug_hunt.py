#!/usr/bin/env python
"""Bug hunt: inject pipeline bugs into the VSM and watch the verifier catch them.

Each injected bug (missing bypass path, missing delay-slot annulment,
off-by-one branch target, mis-decoded ALU operation, dropped register
write) runs as one scenario of a single engine campaign.  Because a bug
never changes the BDD variable order, every scenario shares the pooled
manager of its workload shape: the golden specification BDDs are built
once and each bug run replays them from the warmed unique table.

Every bug must produce a mismatch, and the campaign report decodes a
concrete counterexample instruction sequence for debugging.

Run with:  python examples/vsm_bug_hunt.py
"""

from repro.engine import CampaignRunner, Scenario, vsm_bug_scenarios
from repro.strings import NORMAL

DESCRIPTIONS = {
    "no_bypass": "back-to-back ALU instructions",
    "no_annul": "branch followed by an ordinary instruction",
    "wrong_branch_target": "branch in the first slot",
    "and_becomes_or": "a single ALU instruction",
    "drop_write_r3": "a single ALU instruction",
}


def main() -> int:
    runner = CampaignRunner()

    print("Golden design first (control arm):")
    golden = runner.run_one(Scenario(name="vsm/golden", slots=(NORMAL, NORMAL)))
    print(f"  golden VSM: {'PASSED' if golden.passed else 'FAILED'}")
    print()

    report = runner.run(vsm_bug_scenarios())
    escaped = []
    for outcome in report.outcomes:
        bug = outcome.scenario.rsplit("/", 1)[-1]
        verdict = "DETECTED" if not outcome.passed else "ESCAPED"
        print(f"Bug {bug!r} ({DESCRIPTIONS.get(bug, '?')}): {verdict}")
        if outcome.mismatches:
            first = outcome.mismatches[0]
            print(
                f"  first mismatch: {first['observable']} "
                f"at sample {first['sample_index']}"
            )
            for slot, text in sorted(first["decoded"].items()):
                print(f"    {slot}: {text}")
        if outcome.passed:
            escaped.append(bug)
        print()

    pool = report.pool
    print(
        f"Campaign pool: {pool['managers']} manager(s) served "
        f"{pool['acquisitions']} scenario(s) "
        f"({pool['reuses']} reuse(s); cache hit rate "
        f"{pool['cache']['hit_rate']:.1%})."
    )
    if escaped:
        print(f"BUGS ESCAPED VERIFICATION: {escaped}")
        return 1
    print("All injected bugs were detected.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
