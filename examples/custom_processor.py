#!/usr/bin/env python
"""Bring your own machine: the definite-machine toolkit on a custom design.

The verification methodology is not tied to the two bundled processors.
This example builds a small custom synchronous design twice — once as a
"specification" netlist and once as a re-pipelined "implementation" —
then:

1. detects the order of definiteness of both machines,
2. verifies them with the Theorem-4.3.1.1 procedure (k cycles of
   symbolic simulation instead of product-machine traversal),
3. runs the classical product-machine traversal as the baseline and
   compares the effort,
4. checks a concrete beta-relation between a serially-scheduled
   implementation and its combinational specification (Figure 2 style).

Run with:  python examples/custom_processor.py
"""

from repro.bdd import BDDManager
from repro.fsm import (
    SymbolicFSM,
    build_product,
    build_transition_relation,
    canonical_realization,
    definiteness_order,
    reachable_states,
    verify_definite_equivalence,
)
from repro.logic import Signal, serial_accumulator, shift_register
from repro.strings import MachineFunction, beta_holds_everywhere, periodic_filter


def align_inputs(manager, template, machine):
    """Rename the machine's inputs to the template's (shared stimulus)."""
    mapping = dict(zip(sorted(machine.input_names), sorted(template.input_names)))
    return SymbolicFSM(
        manager,
        input_names=list(template.input_names),
        state_names=list(machine.state_names),
        next_state={n: manager.rename(f, mapping) for n, f in machine.next_state.items()},
        outputs={n: manager.rename(f, mapping) for n, f in machine.outputs.items()},
        reset_state=machine.reset_state,
        name=machine.name,
    )


def main() -> int:
    manager = BDDManager()

    # A 4-cycle "pipeline" (delay line) and its canonical re-realization.
    specification = SymbolicFSM.from_netlist(shift_register(4), manager, prefix="spec.")
    implementation_netlist = canonical_realization(4, lambda stages: Signal(stages[3]))
    implementation = align_inputs(
        manager, specification, SymbolicFSM.from_netlist(implementation_netlist, manager, prefix="impl.")
    )

    spec_order = definiteness_order(specification, max_order=8)
    impl_order = definiteness_order(implementation, max_order=8)
    print(f"Specification is {spec_order}-definite; implementation is {impl_order}-definite.")

    result = verify_definite_equivalence(
        specification, implementation, spec_order, output_pairs=[("stage3", "out")]
    )
    print(
        f"Theorem 4.3.1.1 check: {'EQUIVALENT' if result.equivalent else 'DIFFERENT'} "
        f"after {result.cycles_simulated} symbolic cycles "
        f"(covering {result.sequences_covered} input sequences)."
    )

    product = build_product(
        specification, implementation, output_pairs=[("stage3", "out")]
    )
    reach = reachable_states(product, build_transition_relation(product))
    print(
        f"Baseline product-machine traversal: {reach.iterations} image iterations, "
        f"{reach.reachable_state_count} reachable product states."
    )

    # Figure-2 style beta-relation on a serially scheduled datapath.
    netlist = serial_accumulator(stages=6)

    class SerialFunction:
        def __call__(self, x):
            state = netlist.reset_state()
            out = []
            for char in x:
                observed, state = netlist.step({"x": bool(char)}, state)
                out.append(int(observed["acc"]))
            return tuple(out)

    serial_ok = beta_holds_everywhere(
        SerialFunction(),
        MachineFunction(lambda state, u: (state ^ u, state ^ u), 0),
        periodic_filter(6, offset=0),
        5,
        alphabet=(0, 1),
        max_length=12,
    )
    print(f"Serial datapath beta-relation (Figure 2 style): {'holds' if serial_ok else 'violated'}.")

    ok = result.equivalent and serial_ok
    print("Overall verdict:", "PASSED" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
