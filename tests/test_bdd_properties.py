"""Property-based tests of ROBDD canonicity and algebraic laws.

Random Boolean expressions are generated over a small variable set,
built both as BDDs and as plain Python evaluation functions, and
checked against each other on every point of the Boolean cube.  The
canonical-form property (equal functions <=> identical nodes) is the
basis of all equivalence checks in the verification methodology, so it
gets particular attention here.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager

VARIABLES = ("a", "b", "c", "d")


def expressions(max_depth=4):
    """Strategy producing (python evaluator, bdd builder) expression trees."""
    leaves = st.sampled_from(
        [(lambda env, n=name: env[n], lambda m, n=name: m.var(n)) for name in VARIABLES]
        + [
            (lambda env: True, lambda m: m.one),
            (lambda env: False, lambda m: m.zero),
        ]
    )

    def extend(children):
        unary = st.tuples(children).map(
            lambda t: (lambda env: not t[0][0](env), lambda m: m.apply_not(t[0][1](m)))
        )
        binary = st.tuples(st.sampled_from(["and", "or", "xor"]), children, children).map(
            _make_binary
        )
        return st.one_of(unary, binary)

    return st.recursive(leaves, extend, max_leaves=max_depth * 2)


def _make_binary(parts):
    op, (eval_l, build_l), (eval_r, build_r) = parts
    if op == "and":
        return (
            lambda env: eval_l(env) and eval_r(env),
            lambda m: m.apply_and(build_l(m), build_r(m)),
        )
    if op == "or":
        return (
            lambda env: eval_l(env) or eval_r(env),
            lambda m: m.apply_or(build_l(m), build_r(m)),
        )
    return (
        lambda env: eval_l(env) != eval_r(env),
        lambda m: m.apply_xor(build_l(m), build_r(m)),
    )


def all_assignments():
    for values in itertools.product([False, True], repeat=len(VARIABLES)):
        yield dict(zip(VARIABLES, values))


@settings(max_examples=120, deadline=None)
@given(expressions())
def test_bdd_matches_python_semantics(expression):
    evaluate, build = expression
    manager = BDDManager(VARIABLES)
    node = build(manager)
    for assignment in all_assignments():
        assert manager.evaluate(node, assignment) == bool(evaluate(assignment))


@settings(max_examples=80, deadline=None)
@given(expressions(), expressions())
def test_canonicity_equal_functions_share_node(left, right):
    eval_l, build_l = left
    eval_r, build_r = right
    manager = BDDManager(VARIABLES)
    node_l = build_l(manager)
    node_r = build_r(manager)
    semantically_equal = all(
        bool(eval_l(assignment)) == bool(eval_r(assignment)) for assignment in all_assignments()
    )
    assert (node_l is node_r) == semantically_equal


@settings(max_examples=80, deadline=None)
@given(expressions(), st.sampled_from(VARIABLES))
def test_shannon_expansion(expression, variable):
    _, build = expression
    manager = BDDManager(VARIABLES)
    f = build(manager)
    v = manager.var(variable)
    expansion = manager.apply_or(
        manager.apply_and(v, manager.cofactor(f, variable, True)),
        manager.apply_and(manager.apply_not(v), manager.cofactor(f, variable, False)),
    )
    assert expansion is f


@settings(max_examples=80, deadline=None)
@given(expressions(), st.sampled_from(VARIABLES))
def test_quantification_bounds(expression, variable):
    """forall x . f  implies  f  implies  exists x . f."""
    _, build = expression
    manager = BDDManager(VARIABLES)
    f = build(manager)
    exists = manager.exists([variable], f)
    forall = manager.forall([variable], f)
    assert manager.is_tautology(manager.apply_implies(forall, f))
    assert manager.is_tautology(manager.apply_implies(f, exists))


@settings(max_examples=60, deadline=None)
@given(expressions())
def test_sat_count_matches_truth_table(expression):
    evaluate, build = expression
    manager = BDDManager(VARIABLES)
    node = build(manager)
    expected = sum(1 for assignment in all_assignments() if evaluate(assignment))
    assert manager.sat_count(node, VARIABLES) == expected


@settings(max_examples=60, deadline=None)
@given(expressions(), expressions(), expressions())
def test_ite_respects_semantics(cond, then, else_):
    eval_c, build_c = cond
    eval_t, build_t = then
    eval_e, build_e = else_
    manager = BDDManager(VARIABLES)
    node = manager.ite(build_c(manager), build_t(manager), build_e(manager))
    for assignment in all_assignments():
        expected = eval_t(assignment) if eval_c(assignment) else eval_e(assignment)
        assert manager.evaluate(node, assignment) == bool(expected)


@settings(max_examples=60, deadline=None)
@given(expressions(), st.sampled_from(VARIABLES), expressions())
def test_compose_is_substitution(expression, variable, replacement):
    eval_f, build_f = expression
    eval_g, build_g = replacement
    manager = BDDManager(VARIABLES)
    composed = manager.compose(build_f(manager), {variable: build_g(manager)})
    for assignment in all_assignments():
        substituted = dict(assignment)
        substituted[variable] = bool(eval_g(assignment))
        assert manager.evaluate(composed, assignment) == bool(eval_f(substituted))
