"""Tests for the symbolic VSM models.

The symbolic models are cross-validated against the concrete models:
evaluating the symbolic observation formulae under concrete instruction
encodings must reproduce the concrete machines exactly.  A small
end-to-end check then confirms that the pipelined and unpipelined
symbolic models produce *identical ROBDDs* for their sampled
observables when driven with shared symbolic instructions — the essence
of the paper's verification procedure.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager
from repro.isa import VSMInstruction
from repro.isa import vsm as isa
from repro.logic import BitVec
from repro.processors import (
    PipelinedVSM,
    SymbolicPipelinedVSM,
    SymbolicUnpipelinedVSM,
    UnpipelinedVSM,
    observation_identical,
    symbolic_register_file,
)
from repro.processors.sym_vsm import alu_result, decode_fields, is_control_transfer


def constant_instruction(manager, instruction):
    return BitVec.constant(manager, instruction.encode(), isa.INSTRUCTION_WIDTH)


def evaluate_observation(observation, assignment=None):
    assignment = assignment or {}
    return {name: value.evaluate(assignment) for name, value in observation.items()}


class TestDecodeHelpers:
    def test_decode_fields_widths(self):
        manager = BDDManager()
        fields = decode_fields(BitVec.inputs(manager, "instr", isa.INSTRUCTION_WIDTH))
        assert fields.opcode.width == 3
        assert fields.ra.width == fields.rb.width == fields.rc.width == 3

    def test_decode_rejects_wrong_width(self):
        manager = BDDManager()
        with pytest.raises(ValueError):
            decode_fields(BitVec.inputs(manager, "instr", 8))

    def test_is_control_transfer_matches_isa(self):
        manager = BDDManager()
        for mnemonic in isa.OPCODES:
            instruction = VSMInstruction(mnemonic, ra=1, rb=2, rc=3)
            fields = decode_fields(constant_instruction(manager, instruction))
            node = is_control_transfer(fields)
            assert manager.is_tautology(node) == instruction.is_control_transfer

    def test_alu_result_matches_isa(self):
        manager = BDDManager()
        for mnemonic in ("add", "xor", "and", "or"):
            for literal_flag in (False, True):
                instruction = VSMInstruction(mnemonic, literal_flag=literal_flag, ra=0, rb=5, rc=0)
                fields = decode_fields(constant_instruction(manager, instruction))
                for a in range(8):
                    for b in range(8):
                        result = alu_result(
                            fields,
                            BitVec.constant(manager, a, 3),
                            BitVec.constant(manager, b, 3),
                        )
                        right = 5 if literal_flag else b
                        assert result.as_constant() == isa.alu_operation(mnemonic, a, right)


class TestSymbolicUnpipelinedVSM:
    def test_reset_observation_is_zero(self):
        machine = SymbolicUnpipelinedVSM(BDDManager())
        observed = evaluate_observation(machine.observe())
        assert observed["pc_next"] == 0
        assert all(observed[f"reg{i}"] == 0 for i in range(8))

    def test_requires_instruction_at_fetch_cycle(self):
        machine = SymbolicUnpipelinedVSM(BDDManager())
        with pytest.raises(ValueError):
            machine.step(None)

    def test_initial_register_count_checked(self):
        manager = BDDManager()
        machine = SymbolicUnpipelinedVSM(manager)
        with pytest.raises(ValueError):
            machine.reset(initial_registers=symbolic_register_file(manager, 4, 3))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_concrete_model_on_random_programs(self, seed):
        rng = random.Random(seed)
        program = isa.random_program(rng, rng.randint(1, 8), allow_control_transfer=True)
        manager = BDDManager()
        symbolic = SymbolicUnpipelinedVSM(manager)
        concrete = UnpipelinedVSM()
        for instruction in program:
            sym_obs = symbolic.execute_instruction(constant_instruction(manager, instruction))
            conc_obs = concrete.execute_instruction(instruction.encode())
            assert evaluate_observation(sym_obs) == conc_obs

    def test_symbolic_initial_registers_generalize(self):
        """With a symbolic register file the result formula depends on it."""
        manager = BDDManager()
        registers = symbolic_register_file(manager, 8, 3)  # concrete instruction below
        machine = SymbolicUnpipelinedVSM(manager)
        machine.reset(initial_registers=registers)
        instruction = VSMInstruction("add", ra=1, rb=2, rc=3)
        observation = machine.execute_instruction(constant_instruction(manager, instruction))
        expected = registers[1] + registers[2]
        assert observation["reg3"].identical(expected)


class TestSymbolicPipelinedVSM:
    def test_reset_state(self):
        machine = SymbolicPipelinedVSM(BDDManager())
        observed = evaluate_observation(machine.observe())
        assert observed["pc_next"] == 0

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            SymbolicPipelinedVSM(BDDManager(), bug="gremlins")

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_concrete_model_cycle_by_cycle(self, seed):
        rng = random.Random(seed)
        program = isa.random_program(rng, rng.randint(1, 8), allow_control_transfer=True)
        manager = BDDManager()
        symbolic = SymbolicPipelinedVSM(manager)
        concrete = PipelinedVSM()
        junk = VSMInstruction("xor", ra=2, rb=2, rc=2)
        words = []
        for instruction in program:
            words.append(instruction)
            if instruction.is_control_transfer:
                words.append(junk)
        words.extend([VSMInstruction("add")] * isa.PIPELINE_DEPTH)
        for word in words:
            sym_obs = symbolic.step(constant_instruction(manager, word))
            conc_obs = concrete.step(word.encode())
            assert evaluate_observation(sym_obs) == conc_obs

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from(["no_bypass", "no_annul", "and_becomes_or"]))
    def test_bug_variants_match_concrete_bug_variants(self, seed, bug):
        rng = random.Random(seed)
        program = isa.random_program(rng, 6, allow_control_transfer=True)
        manager = BDDManager()
        symbolic = SymbolicPipelinedVSM(manager, bug=bug)
        concrete = PipelinedVSM(bug=bug)
        for instruction in program:
            sym_obs = symbolic.step(constant_instruction(manager, instruction))
            conc_obs = concrete.step(instruction.encode())
            assert evaluate_observation(sym_obs) == conc_obs


class TestSharedSymbolicStimulus:
    """One symbolic instruction covers all encodings for both machines."""

    def test_single_alu_instruction_equivalence(self):
        manager = BDDManager()
        # Instruction (selector) variables are declared before the register
        # data variables to keep the selection BDDs small (Section 3.2).
        instruction = BitVec.inputs(manager, "instr", isa.INSTRUCTION_WIDTH)
        # Constrain the opcode to the ALU range (not a branch): bit 12 = 0.
        constraint = {"instr[12]": False}
        instruction = instruction.restrict(constraint)

        registers = symbolic_register_file(manager, 8, 3)
        spec = SymbolicUnpipelinedVSM(manager)
        impl = SymbolicPipelinedVSM(manager)
        spec.reset(initial_registers=registers)
        impl.reset(initial_registers=registers)

        spec_obs = spec.execute_instruction(instruction)
        # Pipelined machine: feed the instruction, then drain with invalid fetches.
        impl_obs = impl.step(instruction)
        nop = BitVec.constant(manager, 0, isa.INSTRUCTION_WIDTH)
        for _ in range(isa.PIPELINE_DEPTH - 1):
            impl_obs = impl.step(nop, fetch_valid=manager.zero)

        for name in ("reg0", "reg3", "reg7", "retired_op", "retired_dest", "pc_next"):
            assert spec_obs[name].identical(impl_obs[name]), name

    def test_missing_bypass_is_caught_symbolically(self):
        manager = BDDManager()
        registers = symbolic_register_file(manager, 8, 3)
        spec = SymbolicUnpipelinedVSM(manager)
        impl = SymbolicPipelinedVSM(manager, bug="no_bypass")
        spec.reset(initial_registers=registers)
        impl.reset(initial_registers=registers)
        # Concrete instructions only: no selector/data ordering concern here.

        first = VSMInstruction("add", literal_flag=True, ra=1, rb=1, rc=2)
        second = VSMInstruction("add", ra=2, rb=1, rc=3)  # distance-1 RAW on r2
        nop = BitVec.constant(manager, 0, isa.INSTRUCTION_WIDTH)

        spec.execute_instruction(constant_instruction(manager, first))
        spec_obs = spec.execute_instruction(constant_instruction(manager, second))

        impl.step(constant_instruction(manager, first))
        impl.step(constant_instruction(manager, second))
        impl_obs = impl.observe()
        for _ in range(isa.PIPELINE_DEPTH - 1):
            impl_obs = impl.step(nop, fetch_valid=manager.zero)

        assert not impl_obs["reg3"].identical(spec_obs["reg3"])
        assert not observation_identical(spec_obs, impl_obs)
