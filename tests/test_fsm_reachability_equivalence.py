"""Tests for transition relations, reachability, product machines and equivalence."""

import pytest

from repro.bdd import BDDManager
from repro.fsm import (
    SymbolicFSM,
    build_product,
    build_transition_relation,
    check_equivalence,
    reachable_states,
)
from repro.logic import Netlist, counter, parity_shift_register, shift_register, toggle_machine


class TestTransitionRelation:
    def test_counter_relation_encodes_increments(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(2), manager)
        relation = build_transition_relation(fsm)
        # 0 -> 1 is a transition; 0 -> 3 is not.
        def transition(present, nxt):
            env = {
                "q0": bool(present & 1),
                "q1": bool(present & 2),
                "q0#next": bool(nxt & 1),
                "q1#next": bool(nxt & 2),
            }
            return manager.evaluate(relation.relation, env)

        assert transition(0, 1) is True
        assert transition(1, 2) is True
        assert transition(3, 0) is True
        assert transition(0, 3) is False

    def test_image_of_reset_state(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(2), manager)
        relation = build_transition_relation(fsm)
        image = relation.image(fsm.reset_cube())
        assert manager.evaluate(image, {"q0": True, "q1": False}) is True
        assert manager.evaluate(image, {"q0": False, "q1": False}) is False

    def test_image_with_input_constraint(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(toggle_machine(), manager)
        relation = build_transition_relation(fsm)
        stay = relation.image(fsm.reset_cube(), input_constraint=manager.nvar("enable"))
        toggle = relation.image(fsm.reset_cube(), input_constraint=manager.var("enable"))
        assert manager.evaluate(stay, {"state": False}) is True
        assert manager.evaluate(stay, {"state": True}) is False
        assert manager.evaluate(toggle, {"state": True}) is True

    def test_preimage_inverts_image(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(2), manager)
        relation = build_transition_relation(fsm)
        # States that reach state 2 in one step: exactly state 1.
        target = manager.cube({"q0": False, "q1": True})
        pre = relation.preimage(target)
        assert manager.evaluate(pre, {"q0": True, "q1": False}) is True
        assert manager.evaluate(pre, {"q0": False, "q1": False}) is False


class TestReachability:
    def test_counter_reaches_all_states(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(3), manager)
        result = reachable_states(fsm)
        assert result.reachable_state_count == 8
        assert result.iterations >= 7

    def test_toggle_machine_reaches_both_states(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(toggle_machine(), manager)
        result = reachable_states(fsm)
        assert result.reachable_state_count == 2

    def test_constrained_inputs_limit_reachability(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(toggle_machine(), manager)
        result = reachable_states(fsm, input_constraint=manager.nvar("enable"))
        assert result.reachable_state_count == 1

    def test_max_iterations_bounds_the_traversal(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(3), manager)
        result = reachable_states(fsm, max_iterations=2)
        assert result.iterations == 2
        assert result.reachable_state_count <= 3

    def test_state_counts_are_monotone(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(3), manager)
        result = reachable_states(fsm)
        assert result.state_counts == sorted(result.state_counts)
        assert len(result.bdd_sizes) == len(result.state_counts)


class TestProductAndEquivalence:
    def test_shift_register_equivalent_to_itself(self):
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(shift_register(3), manager, prefix="L.")
        right = SymbolicFSM.from_netlist(shift_register(3), manager, prefix="R.")
        # Ports are prefixed, so map the right inputs onto the left ones.
        product = build_product(
            left,
            right,
            output_pairs=[("stage2", "stage2")],
            input_mapping={"R.din": "L.din"},
        )
        assert product.output_names() == ("equal",)
        result = check_equivalence_with_mapping(left, right, manager)
        assert result.equivalent

    def test_different_lengths_not_equivalent(self):
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(shift_register(2), manager, prefix="L.")
        right = SymbolicFSM.from_netlist(shift_register(3), manager, prefix="R.")
        result = check_equivalence_with_mapping(
            left, right, manager, outputs=[("stage1", "stage2")]
        )
        assert not result.equivalent
        assert result.counterexample is not None

    def test_product_rejects_different_managers(self):
        left = SymbolicFSM.from_netlist(toggle_machine(), BDDManager(), prefix="L.")
        right = SymbolicFSM.from_netlist(toggle_machine(), BDDManager(), prefix="R.")
        with pytest.raises(ValueError):
            build_product(left, right)

    def test_product_rejects_state_collisions(self):
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(toggle_machine(), manager)
        right = SymbolicFSM.from_netlist(toggle_machine(), manager)
        with pytest.raises(ValueError):
            build_product(left, right)

    def test_product_requires_common_outputs(self):
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(shift_register(1), manager, prefix="L.")
        right = SymbolicFSM.from_netlist(shift_register(2), manager, prefix="R.")
        with pytest.raises(ValueError):
            build_product(left, right, output_pairs=None)

    def test_equivalence_of_behaviourally_equal_machines(self):
        """A two-stage shift register vs. an explicit re-implementation."""
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(shift_register(2), manager, prefix="L.")

        other = Netlist("alt")
        other.add_input("din")
        other.add_latch("a", "din")
        other.add_latch("b", "a")
        other.add_gate("stage1", "BUF", ["b"])
        other.set_outputs(["stage1"])
        right = SymbolicFSM.from_netlist(other, manager, prefix="R.")

        result = check_equivalence_with_mapping(left, right, manager)
        assert result.equivalent
        assert result.reachable_state_count <= 16

    def test_parity_vs_plain_shift_register_differ(self):
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(shift_register(3), manager, prefix="L.")
        right = SymbolicFSM.from_netlist(parity_shift_register(3), manager, prefix="R.")
        result = check_equivalence_with_mapping(
            left, right, manager, outputs=[("stage2", "parity2")]
        )
        assert not result.equivalent


def check_equivalence_with_mapping(left, right, manager, outputs=None):
    """Helper: equivalence check for prefixed machines sharing one input."""
    from repro.fsm.product import build_product
    from repro.fsm.reachability import reachable_states
    from repro.fsm.transition import build_transition_relation
    from repro.fsm.equivalence import EquivalenceResult

    if outputs is None:
        common = [name for name in left.outputs if name in right.outputs]
        outputs = [(name, name) for name in common]
    input_mapping = {
        right_name: left_name
        for right_name, left_name in zip(sorted(right.input_names), sorted(left.input_names))
    }
    product = build_product(left, right, output_pairs=outputs, input_mapping=input_mapping)
    relation = build_transition_relation(product)
    reach = reachable_states(product, relation)
    equal = product.outputs["equal"]
    violation = manager.apply_and(reach.reachable, manager.apply_not(equal))
    if manager.is_contradiction(violation):
        return EquivalenceResult(True, reach.iterations, reach.reachable_state_count)
    return EquivalenceResult(
        False,
        reach.iterations,
        reach.reachable_state_count,
        counterexample=manager.pick_assignment(violation),
    )


class TestCheckEquivalenceDirect:
    def test_same_port_names_path(self):
        """check_equivalence() works directly when port names already differ per machine."""
        manager = BDDManager()
        left_netlist = toggle_machine()
        right_netlist = Netlist("toggle_alt")
        right_netlist.add_input("enable")
        right_netlist.add_latch("alt_state", "alt_next", reset_value=False)
        right_netlist.add_gate("alt_next", "XOR", ["alt_state", "enable"])
        right_netlist.add_gate("state", "BUF", ["alt_state"])
        right_netlist.set_outputs(["state"])
        left = SymbolicFSM.from_netlist(left_netlist, manager)
        right = SymbolicFSM.from_netlist(right_netlist, manager)
        result = check_equivalence(left, right)
        assert result.equivalent
        assert result.reachable_state_count >= 2

    def test_detects_inequivalence(self):
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(toggle_machine(), manager)
        broken = Netlist("broken")
        broken.add_input("enable")
        broken.add_latch("bstate", "bnext", reset_value=False)
        broken.add_gate("bnext", "OR", ["bstate", "enable"])  # sticks at 1 instead of toggling
        broken.add_gate("state", "BUF", ["bstate"])
        broken.set_outputs(["state"])
        right = SymbolicFSM.from_netlist(broken, manager)
        result = check_equivalence(left, right)
        assert not result.equivalent
        assert result.counterexample is not None
