"""Property tests for the manager's per-level node index.

The index (``BDDManager._level_index``, surfaced as ``nodes_at_level`` /
``level_population``) is what makes engine-scale sifting affordable: a
level swap reads exactly the two levels it touches instead of scanning
the unique table.  That only holds if the index is *exactly* the level
partition of the live node table after every mutation — allocation,
reorder sweep and level swap.  These tests drive randomised operation
sequences through every mutation source and re-derive the partition
from the unique table after each burst; sifting additionally must
preserve minterm counts and canonicity.

All randomness is seeded; the suite is deterministic.
"""

import random

import pytest

from repro.bdd import BDDManager, converge_sift, create_manager, sift_to_order, sift_variable, swap_adjacent
from repro.bdd.vector import numpy_available
from repro.bdd.reorder import _Sifter

SEED = 20260730

#: Run every test in this module on both kernel backends.  The vector
#: leg is skipped when numpy is absent (its batch paths then fall back
#: to the scalar loops anyway, which the dict leg already covers).
KERNEL_BACKENDS_UNDER_TEST = [
    "dict",
    pytest.param(
        "vector",
        marks=pytest.mark.skipif(
            not numpy_available(), reason="numpy not installed"
        ),
    ),
]


@pytest.fixture(autouse=True, params=KERNEL_BACKENDS_UNDER_TEST, ids=str)
def kernel_backend(request, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", request.param)
    return request.param



def recomputed_partition(manager):
    """The ground truth: live nodes grouped by level via a full table scan."""
    partition = {}
    for node in manager._unique.values():
        partition.setdefault(node.level, {})[node.node_id] = node
    return partition


def assert_index_exact(manager):
    """The per-level index equals the recomputed partition, bit for bit."""
    truth = recomputed_partition(manager)
    indexed = {
        level: dict(bucket)
        for level, bucket in manager._level_index.items()
        if bucket
    }
    assert indexed.keys() == truth.keys()
    for level, bucket in truth.items():
        assert indexed[level].keys() == bucket.keys(), f"level {level}"
        for node_id, node in bucket.items():
            assert indexed[level][node_id] is node
    # And the public views agree with the private structure.
    population = manager.level_population()
    assert population == {level: len(bucket) for level, bucket in truth.items()}
    for level in truth:
        listed = {node.node_id: node for node in manager.nodes_at_level(level)}
        assert listed.keys() == truth[level].keys()


def random_function(manager, rng, names, depth=4):
    """A random function over ``names`` built from the core operations."""
    if depth == 0 or rng.random() < 0.25:
        name = rng.choice(names)
        return manager.var(name) if rng.random() < 0.5 else manager.nvar(name)
    left = random_function(manager, rng, names, depth - 1)
    right = random_function(manager, rng, names, depth - 1)
    op = rng.randrange(4)
    if op == 0:
        return manager.apply_and(left, right)
    if op == 1:
        return manager.apply_or(left, right)
    if op == 2:
        return manager.apply_xor(left, right)
    return manager.ite(left, right, manager.apply_not(right))


class TestIndexTracksOperations:
    """Allocation through every public operation keeps the index exact."""

    def test_apply_and_quantify_sequences(self):
        rng = random.Random(SEED)
        manager = create_manager([f"v{i}" for i in range(8)])
        names = list(manager.variables)
        functions = []
        for round_index in range(12):
            f = random_function(manager, rng, names)
            functions.append(f)
            if functions and rng.random() < 0.6:
                subset = rng.sample(names, rng.randrange(1, 4))
                quantifier = manager.exists if rng.random() < 0.5 else manager.forall
                functions.append(quantifier(subset, rng.choice(functions)))
            if rng.random() < 0.4:
                functions.append(
                    manager.cofactor(rng.choice(functions), rng.choice(names), rng.random() < 0.5)
                )
            assert_index_exact(manager)

    def test_declare_adds_no_phantom_buckets(self):
        manager = create_manager(["a", "b"])
        manager.var("a")
        manager.declare("c")  # declared but never used in a node
        assert_index_exact(manager)
        assert manager.nodes_at_level(manager.level("c")) == []


class TestIndexTracksReordering:
    """Swaps, sweeps and full sifting keep the index exact."""

    NUM_VARS = 7

    def build(self, rng):
        manager = create_manager([f"x{i}" for i in range(self.NUM_VARS)])
        names = list(manager.variables)
        roots = [random_function(manager, rng, names, depth=5) for _ in range(3)]
        return manager, names, roots

    def test_random_swap_sequences(self):
        rng = random.Random(SEED + 1)
        manager, names, roots = self.build(rng)
        counts = [manager.sat_count(root, names) for root in roots]
        for _ in range(25):
            swap_adjacent(manager, rng.randrange(self.NUM_VARS - 1))
            assert_index_exact(manager)
        assert [manager.sat_count(root, names) for root in roots] == counts

    def test_mixed_swap_apply_gc_sequences(self):
        """Interleave swaps, new allocations and session sweeps."""
        rng = random.Random(SEED + 2)
        manager, names, roots = self.build(rng)
        for _ in range(10):
            action = rng.randrange(3)
            if action == 0:
                swap_adjacent(manager, rng.randrange(self.NUM_VARS - 1))
            elif action == 1:
                roots.append(random_function(manager, rng, names))
            else:
                # A sifting session: excursions plus the GC sweep.
                sift_variable(manager, rng.choice(names), roots=roots)
            assert_index_exact(manager)

    def test_converge_sift_preserves_minterms_and_canonicity(self):
        rng = random.Random(SEED + 3)
        manager, names, roots = self.build(rng)
        counts = [manager.sat_count(root, names) for root in roots]
        result = converge_sift(manager, roots=roots, max_passes=3)
        assert result.swaps > 0
        assert_index_exact(manager)
        # Minterm counts are order-independent; the functions must not move.
        assert [manager.sat_count(root, names) for root in roots] == counts
        # Canonicity: rebuilding a root's function from scratch against the
        # *new* order hash-conses onto the very same node object.
        for root in roots:
            rebuilt = manager.apply_or(root, root)
            assert rebuilt is root
        rebuilt_xor = manager.apply_xor(roots[0], roots[0])
        assert rebuilt_xor is manager.zero

    def test_rootless_sift_and_explicit_order(self):
        rng = random.Random(SEED + 4)
        manager, names, roots = self.build(rng)
        converge_sift(manager, roots=None, max_passes=2)
        assert_index_exact(manager)
        target = list(manager.variables)
        rng.shuffle(target)
        sift_to_order(manager, target)
        assert manager.variables == tuple(target)
        assert_index_exact(manager)

    def test_session_sweep_purges_index(self):
        """Dead session garbage leaves neither table nor index entries."""
        rng = random.Random(SEED + 5)
        manager, names, roots = self.build(rng)
        sifter = _Sifter(manager, roots)
        for _ in range(6):
            sifter.swap(rng.randrange(self.NUM_VARS - 1))
        dropped = sifter.sweep()
        assert_index_exact(manager)
        if dropped:
            total_indexed = sum(manager.level_population().values())
            assert total_indexed == len(manager._unique)


class TestSwapCostIsLocal:
    """The structural point of the index: a swap never scans the table.

    Build a table whose population is concentrated on levels *not* being
    swapped and verify the swap leaves every foreign bucket object
    untouched (identity), which a rebuild-by-scan could not guarantee.
    """

    def test_untouched_levels_keep_their_buckets(self):
        manager = create_manager([f"y{i}" for i in range(6)])
        rng = random.Random(SEED + 6)
        names = list(manager.variables)
        for _ in range(5):
            random_function(manager, rng, names, depth=5)
        before = {
            level: manager._level_index.get(level)
            for level in range(2, 6)
        }
        swap_adjacent(manager, 0)
        for level in range(3, 6):
            assert manager._level_index.get(level) is before[level]
        assert_index_exact(manager)
