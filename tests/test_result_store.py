"""The persistent verification store: cold/warm identity, robustness (PR 5).

The campaign throughput layer makes reuse survive the process: verdicts
live in a content-addressed :class:`~repro.engine.store.ResultStore`
keyed by :meth:`Scenario.fingerprint`, and extracted beta relations live
next to them as arena snapshots.  The hard bar is byte-identical
verdicts on every path — cold, warm, snapshot-rehydrated, affinity-
parallel — and *never a wrong verdict* from a stale or damaged store:
salt mismatches and corrupt or truncated records must silently degrade
to recomputation.
"""

import json

import pytest

from repro.engine import (
    CampaignRunner,
    ResultStore,
    Scenario,
    content_fingerprint,
)
from repro.strings import CONTROL, NORMAL

#: A small mixed campaign: two signatures, a shared golden spec, a bug.
CAMPAIGN = [
    Scenario(name="vsm/golden", slots=(NORMAL, NORMAL)),
    Scenario(name="vsm/bug", slots=(NORMAL, NORMAL), bug="no_bypass"),
    Scenario(name="vsm/branchy", slots=(CONTROL, NORMAL)),
]


def run_with_store(tmp_path, scenarios=CAMPAIGN, **kwargs):
    runner = CampaignRunner(store_path=tmp_path / "store", **kwargs)
    return runner.run(scenarios)


class TestFingerprint:
    def test_ignores_name_and_tags(self):
        a = Scenario(name="a", slots=(NORMAL,), tags=("x",))
        b = Scenario(name="b", slots=(NORMAL,), tags=("y",))
        assert a.fingerprint("s") == b.fingerprint("s")

    def test_separates_content_and_salt(self):
        a = Scenario(name="a", slots=(NORMAL,))
        b = Scenario(name="a", slots=(NORMAL, NORMAL))
        c = Scenario(name="a", slots=(NORMAL,), bug="no_bypass")
        assert len({a.fingerprint("s"), b.fingerprint("s"), c.fingerprint("s")}) == 3
        assert a.fingerprint("s1") != a.fingerprint("s2")

    def test_backend_choice_separates_fingerprints(self):
        from repro.relational import BETA_COMPOSE, RelationalPolicy

        fast = Scenario(name="a", slots=(NORMAL,))
        compose = Scenario(
            name="a",
            slots=(NORMAL,),
            relational=RelationalPolicy(beta_backend=BETA_COMPOSE),
        )
        assert fast.fingerprint("s") != compose.fingerprint("s")


class TestColdWarmIdentity:
    def test_warm_rerun_serves_byte_identical_verdicts(self, tmp_path):
        cold = run_with_store(tmp_path)
        warm = run_with_store(tmp_path)
        assert cold.verdict_json().encode() == warm.verdict_json().encode()
        assert cold.store["results"]["misses"] == len(CAMPAIGN)
        assert cold.store["results"]["writes"] == len(CAMPAIGN)
        assert warm.store["results"]["hits"] == len(CAMPAIGN)
        assert warm.store["results"]["misses"] == 0
        assert all(o.store.get("status") == "hit" for o in warm.outcomes)
        # Warm outcomes did no BDD work at all.
        assert all(o.bdd_nodes == 0 for o in warm.outcomes)

    def test_store_hit_is_indistinguishable_from_fresh_in_verdict(self, tmp_path):
        cold = run_with_store(tmp_path)
        warm = run_with_store(tmp_path)
        for before, after in zip(cold.outcomes, warm.outcomes):
            assert before.verdict() == after.verdict()
        # The failing scenario's counterexample survives the round trip
        # byte for byte (bools stay bools, words stay ints).
        bug_cold = cold.outcome("vsm/bug")
        bug_warm = warm.outcome("vsm/bug")
        assert bug_cold.mismatches == bug_warm.mismatches
        assert not bug_warm.passed

    def test_renamed_scenario_shares_the_record(self, tmp_path):
        run_with_store(tmp_path, scenarios=[CAMPAIGN[0]])
        renamed = run_with_store(
            tmp_path, scenarios=[CAMPAIGN[0].renamed("vsm/other-name")]
        )
        assert renamed.store["results"]["hits"] == 1
        assert renamed.outcome("vsm/other-name").passed

    def test_memo_hits_take_precedence_and_zero_store_fields(self, tmp_path):
        runner = CampaignRunner(store_path=tmp_path / "store")
        report = runner.run([CAMPAIGN[0], CAMPAIGN[0].renamed("alias")])
        first, alias = report.outcomes
        assert not first.memoized and alias.memoized
        assert alias.store == {} and alias.snapshot == {}

    def test_parallel_warm_store_matches_serial(self, tmp_path):
        cold = run_with_store(tmp_path)
        runner = CampaignRunner(store_path=tmp_path / "store")
        warm = runner.run(CAMPAIGN, parallel=True, max_workers=2)
        assert warm.verdict_json() == cold.verdict_json()
        assert warm.store["results"]["hits"] == len(CAMPAIGN)


class TestRobustness:
    """A damaged or stale store must recompute — never a wrong verdict."""

    def salted_paths(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        fingerprints = [s.fingerprint(store.salt) for s in CAMPAIGN]
        return store, fingerprints

    def test_salt_bump_degrades_to_a_cold_store(self, tmp_path):
        """A code-version bump re-keys everything: old records are unreachable."""
        cold = run_with_store(tmp_path)
        stale_runner = CampaignRunner(
            store=ResultStore(tmp_path / "store", salt="bumped-code-version")
        )
        stale = stale_runner.run(CAMPAIGN)
        assert stale.verdict_json() == cold.verdict_json()
        assert stale.store["results"]["hits"] == 0
        assert stale.store["results"]["misses"] == len(CAMPAIGN)
        # The run re-published records under its own salt.
        assert stale.store["results"]["writes"] == len(CAMPAIGN)

    def test_envelope_salt_mismatch_is_refused_as_stale(self, tmp_path):
        """Second line of defence: a record whose *envelope* carries the
        wrong salt (file copied across store versions) is refused even
        when it sits at the right path."""
        cold = run_with_store(tmp_path)
        store, fingerprints = self.salted_paths(tmp_path)
        path = store.result_path(fingerprints[0])
        envelope = json.loads(path.read_bytes())
        envelope["salt"] = "some-other-code-version"
        path.write_bytes(json.dumps(envelope).encode())
        recovered = run_with_store(tmp_path)
        assert recovered.verdict_json() == cold.verdict_json()
        assert recovered.store["results"]["stale"] == 1
        assert recovered.store["results"]["hits"] == len(CAMPAIGN) - 1

    def test_truncated_and_garbage_records_degrade_to_recompute(self, tmp_path):
        cold = run_with_store(tmp_path)
        store, fingerprints = self.salted_paths(tmp_path)
        store.result_path(fingerprints[0]).write_bytes(b"{ not json")
        truncated = store.result_path(fingerprints[1])
        truncated.write_bytes(truncated.read_bytes()[: 40])
        recovered = run_with_store(tmp_path)
        assert recovered.verdict_json() == cold.verdict_json()
        assert recovered.store["results"]["corrupt"] == 2
        assert recovered.store["results"]["hits"] == 1
        # The damaged records were rewritten and now serve again.
        healed = run_with_store(tmp_path)
        assert healed.store["results"]["hits"] == len(CAMPAIGN)

    def test_truncated_snapshot_falls_back_to_extraction(self, tmp_path):
        cold = run_with_store(tmp_path)
        store = ResultStore(tmp_path / "store")
        snapshot_paths = list((tmp_path / "store" / "snapshots").rglob("*.json.z"))
        assert snapshot_paths, "the cold run should have published relation snapshots"
        for path in snapshot_paths:
            path.write_bytes(path.read_bytes()[:-20])
        # Remove the result records so the scenarios actually re-run and
        # have to confront the damaged snapshots.
        import shutil

        shutil.rmtree(tmp_path / "store" / "results")
        recovered = run_with_store(tmp_path)
        assert recovered.verdict_json() == cold.verdict_json()
        # Every pre-existing snapshot was refused; the run re-extracted,
        # re-published, and later scenarios may hit the fresh records —
        # but none of the damaged ones.
        assert recovered.store["snapshots"]["corrupt"] >= len(snapshot_paths) - 2
        assert recovered.store["snapshots"]["writes"] > 0

    def test_interior_snapshot_corruption_is_rejected_structurally(self, tmp_path):
        """A snapshot that decompresses fine but lies about its nodes."""
        import zlib

        cold = run_with_store(tmp_path)
        store = ResultStore(tmp_path / "store")
        from repro.bdd.kernel import pack_snapshot, unpack_snapshot

        path = next((tmp_path / "store" / "snapshots").rglob("*.json.z"))
        envelope = json.loads(zlib.decompress(path.read_bytes()))
        arena = unpack_snapshot(envelope["payload"]["arena"])
        assert arena["lows"]
        arena["lows"][len(arena["lows"]) // 2] = 10 ** 9  # forward reference
        envelope["payload"]["arena"] = pack_snapshot(arena)
        path.write_bytes(zlib.compress(json.dumps(envelope).encode()))
        import shutil

        shutil.rmtree(tmp_path / "store" / "results")
        recovered = run_with_store(tmp_path)
        assert recovered.verdict_json() == cold.verdict_json()

    def test_content_fingerprint_salting(self):
        assert content_fingerprint("a", 1) != content_fingerprint("a", 2)
        assert content_fingerprint("a", salt="x") != content_fingerprint("a", salt="y")
        assert content_fingerprint("a", salt="x") == content_fingerprint("a", salt="x")


class TestContentFingerprintCanonicalisation:
    """Container-bearing keys must fingerprint by *content*, not by the
    insertion/iteration order ``repr`` would leak."""

    def test_dict_keys_are_order_insensitive(self):
        forward = {"alpha": 1, "beta": [2, 3], "gamma": {"x": True}}
        permuted = {"gamma": {"x": True}, "beta": [2, 3], "alpha": 1}
        assert repr(forward) != repr(permuted)  # repr would have split them
        assert content_fingerprint(forward) == content_fingerprint(permuted)
        changed = dict(forward, alpha=2)
        assert content_fingerprint(forward) != content_fingerprint(changed)

    def test_sets_are_order_insensitive(self):
        assert content_fingerprint({"b", "a", "c"}) == content_fingerprint(
            {"c", "a", "b"}
        )
        assert content_fingerprint(frozenset({1, 2})) == content_fingerprint(
            frozenset({2, 1})
        )
        assert content_fingerprint({1, 2}) != content_fingerprint({1, 3})

    def test_container_types_stay_distinct(self):
        assert content_fingerprint(("a",)) != content_fingerprint(["a"])
        assert content_fingerprint({"a"}) != content_fingerprint(["a"])
        assert content_fingerprint({"a": 1}) != content_fingerprint([("a", 1)])

    def test_nested_containers_canonicalise_recursively(self):
        a = ("key", {"outer": {"z": [1, {2, 3}], "a": None}})
        b = ("key", {"outer": {"a": None, "z": [1, {3, 2}]}})
        assert content_fingerprint(a) == content_fingerprint(b)

    def test_scalars_keep_their_types(self):
        assert content_fingerprint(1) != content_fingerprint("1")
        assert content_fingerprint(True) != content_fingerprint(1)
        assert content_fingerprint(None) != content_fingerprint("None")


class TestStatistics:
    def test_hit_rate_is_reported_for_both_families(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result_fp = content_fingerprint("result-key", salt=store.salt)
        snapshot_fp = content_fingerprint("snapshot-key", salt=store.salt)
        store.save_result(result_fp, {"verdict": {}})
        store.save_snapshot(snapshot_fp, {"arena": {}})
        assert store.load_result(result_fp) is not None
        assert store.load_result("0" * 64) is None
        for _ in range(3):
            assert store.load_snapshot(snapshot_fp) is not None
        assert store.load_snapshot("0" * 64) is None
        stats = store.statistics()
        assert stats["results"]["hit_rate"] == pytest.approx(0.5)
        assert stats["snapshots"]["hit_rate"] == pytest.approx(0.75)
        empty = ResultStore(tmp_path / "other").statistics()
        assert empty["results"]["hit_rate"] == 0.0
        assert empty["snapshots"]["hit_rate"] == 0.0

    def test_invalidated_lookups_count_against_the_hit_rate(self, tmp_path):
        from repro.engine import codehash

        store = ResultStore(tmp_path / "store")
        fingerprint = content_fingerprint("key", salt=store.salt)
        store.save_result(fingerprint, {"verdict": {}}, dependencies=("bdd",))
        codehash.set_override("bdd", "edited")
        try:
            fresh = ResultStore(tmp_path / "store")
            assert fresh.load_result(fingerprint, dependencies=("bdd",)) is None
            stats = fresh.statistics()
            assert stats["results"]["invalidated"] == 1
            assert stats["results"]["hit_rate"] == 0.0
        finally:
            codehash.clear_overrides()


class TestTmpSweep:
    """Orphaned ``*.tmp`` files (a writer died mid-publish) get swept."""

    def seed_orphans(self, tmp_path, count=3, age=7200.0):
        import os
        import time

        directory = tmp_path / "store" / "results" / "ab"
        directory.mkdir(parents=True)
        stamp = time.time() - age
        orphans = []
        for index in range(count):
            orphan = directory / f"record{index}.json.tmp"
            orphan.write_bytes(b"partial write")
            os.utime(orphan, (stamp, stamp))
            orphans.append(orphan)
        return directory, orphans

    def test_sweep_removes_only_aged_orphans(self, tmp_path):
        directory, orphans = self.seed_orphans(tmp_path)
        fresh = directory / "inflight.json.tmp"
        fresh.write_bytes(b"a live writer's file")
        keeper = directory / "kept.json"
        keeper.write_bytes(b"{}")
        store = ResultStore(tmp_path / "store")
        assert store.sweep_stale_tmp() == len(orphans)
        assert all(not orphan.exists() for orphan in orphans)
        assert fresh.exists()  # younger than tmp_max_age
        assert keeper.exists()  # not a temp file at all
        assert store.statistics()["tmp_swept"] == len(orphans)

    def test_writes_sweep_their_directory_opportunistically(self, tmp_path):
        directory, orphans = self.seed_orphans(tmp_path)
        store = ResultStore(tmp_path / "store")
        # Publish a record whose fan-out directory is the seeded one.
        store.save_result("ab" + "0" * 62, {"verdict": {}})
        assert all(not orphan.exists() for orphan in orphans)
        assert store.statistics()["tmp_swept"] == len(orphans)
        # The published record survived its own directory's sweep.
        assert store.load_result("ab" + "0" * 62) is not None

    def test_campaign_reports_swept_orphans(self, tmp_path):
        self.seed_orphans(tmp_path)
        report = run_with_store(tmp_path)
        assert report.store["tmp_swept"] == 3

    def test_zero_max_age_sweeps_everything(self, tmp_path):
        directory, _ = self.seed_orphans(tmp_path, count=1, age=0.0)
        fresh = directory / "young.json.tmp"
        fresh.write_bytes(b"x")
        store = ResultStore(tmp_path / "store", tmp_max_age=0.0)
        assert store.sweep_stale_tmp() == 2
        assert not fresh.exists()


class TestQuarantine:
    """Refused records become forensic evidence instead of being
    silently overwritten: corrupt/stale files move to ``quarantine/``
    (atomic rename), capped in count and swept by age."""

    def corrupt_record(self, tmp_path, index=0, data=b"{ not json"):
        store = ResultStore(tmp_path / "store")
        fingerprint = CAMPAIGN[index].fingerprint(store.salt)
        store.result_path(fingerprint).write_bytes(data)
        return fingerprint

    def test_corrupt_record_is_quarantined_and_healed(self, tmp_path):
        cold = run_with_store(tmp_path)
        fingerprint = self.corrupt_record(tmp_path)
        recovered = run_with_store(tmp_path)
        assert recovered.verdict_json() == cold.verdict_json()
        assert recovered.store["results"]["corrupt"] == 1
        assert recovered.store["results"]["quarantined"] == 1
        quarantined = ResultStore(tmp_path / "store").quarantined_records()
        assert [p.name for p in quarantined] == [f"{fingerprint}.corrupt"]
        # The evidence survived verbatim while the record healed in place.
        assert quarantined[0].read_bytes() == b"{ not json"
        healed = run_with_store(tmp_path)
        assert healed.store["results"]["hits"] == len(CAMPAIGN)

    def test_stale_envelope_is_quarantined_with_reason(self, tmp_path):
        run_with_store(tmp_path)
        store = ResultStore(tmp_path / "store")
        fingerprint = CAMPAIGN[0].fingerprint(store.salt)
        path = store.result_path(fingerprint)
        envelope = json.loads(path.read_bytes())
        envelope["salt"] = "some-other-code-version"
        path.write_bytes(json.dumps(envelope).encode())
        recovered = run_with_store(tmp_path)
        assert recovered.store["results"]["stale"] == 1
        names = [p.name for p in ResultStore(tmp_path / "store").quarantined_records()]
        assert names == [f"{fingerprint}.stale"]

    def test_quarantine_census_in_disk_statistics(self, tmp_path):
        run_with_store(tmp_path)
        self.corrupt_record(tmp_path)
        run_with_store(tmp_path)
        census = ResultStore(tmp_path / "store").disk_statistics()
        assert census["quarantine"]["records"] == 1

    def test_cap_falls_back_to_overwrite_in_place(self, tmp_path):
        cold = run_with_store(tmp_path)
        self.corrupt_record(tmp_path, index=0)
        self.corrupt_record(tmp_path, index=1)
        runner = CampaignRunner(
            store=ResultStore(tmp_path / "store", quarantine_limit=1)
        )
        recovered = runner.run(CAMPAIGN)
        assert recovered.verdict_json() == cold.verdict_json()
        assert recovered.store["results"]["corrupt"] == 2
        # Only one made the quarantine; the other healed the old way.
        assert recovered.store["results"]["quarantined"] == 1
        assert len(ResultStore(tmp_path / "store").quarantined_records()) == 1
        healed = run_with_store(tmp_path)
        assert healed.store["results"]["hits"] == len(CAMPAIGN)

    def test_disabled_quarantine_keeps_old_behaviour(self, tmp_path):
        run_with_store(tmp_path)
        self.corrupt_record(tmp_path)
        runner = CampaignRunner(
            store=ResultStore(tmp_path / "store", quarantine_limit=0)
        )
        recovered = runner.run(CAMPAIGN)
        assert recovered.store["results"]["corrupt"] == 1
        assert recovered.store["results"]["quarantined"] == 0
        assert ResultStore(tmp_path / "store").quarantined_records() == []

    def test_aged_forensics_are_swept(self, tmp_path):
        import os
        import time

        run_with_store(tmp_path)
        self.corrupt_record(tmp_path)
        run_with_store(tmp_path)
        [artefact] = ResultStore(tmp_path / "store").quarantined_records()
        stamp = time.time() - 3600.0
        os.utime(artefact, (stamp, stamp))
        keeper = ResultStore(tmp_path / "store", quarantine_max_age=7200.0)
        keeper.sweep_stale_tmp()
        assert keeper.quarantined_records() == [artefact]
        sweeper = ResultStore(tmp_path / "store", quarantine_max_age=1800.0)
        sweeper.sweep_stale_tmp()
        assert sweeper.quarantined_records() == []


class TestDurabilityAndInterrupt:
    """fsync publishes and interrupted campaigns leave a usable store."""

    def test_fsync_store_serves_byte_identical_verdicts(self, tmp_path):
        cold = run_with_store(tmp_path)
        durable_root = tmp_path / "durable"
        durable_cold = CampaignRunner(
            store=ResultStore(durable_root, fsync=True)
        ).run(CAMPAIGN)
        durable_warm = CampaignRunner(
            store=ResultStore(durable_root, fsync=True)
        ).run(CAMPAIGN)
        assert durable_cold.verdict_json() == cold.verdict_json()
        assert durable_warm.verdict_json() == cold.verdict_json()
        assert durable_warm.store["results"]["hits"] == len(CAMPAIGN)

    def test_injected_interrupt_leaves_no_partial_records(self, tmp_path):
        from repro.resilience import FaultPlan, FaultSpec, faults

        cold = run_with_store(tmp_path / "clean")
        plan = FaultPlan(
            seed=7,
            sites={"scenario.run": FaultSpec(kind="interrupt", at=(1,))},
        )
        with faults.active(plan):
            with pytest.raises(KeyboardInterrupt):
                run_with_store(tmp_path)
        # The kill published only whole records: no temp litter, and the
        # scenario that completed before the interrupt serves warm.
        assert list((tmp_path / "store").rglob("*.tmp")) == []
        resumed = run_with_store(tmp_path)
        assert resumed.verdict_json() == cold.verdict_json()
        assert resumed.store["results"]["hits"] == 1
        assert resumed.store["results"]["misses"] == len(CAMPAIGN) - 1


class TestReportPlumbing:
    def test_report_json_carries_store_and_snapshot_records(self, tmp_path):
        cold = run_with_store(tmp_path)
        payload = json.loads(cold.to_json())
        assert payload["store"]["results"]["writes"] == len(CAMPAIGN)
        by_name = {o["scenario"]: o for o in payload["outcomes"]}
        golden = by_name["vsm/golden"]
        assert golden["store"]["status"] == "miss"
        assert golden["store"]["bytes_written"] > 0
        assert golden["snapshot"]["spec"]["status"] == "saved"
        assert golden["snapshot"]["impl"]["status"] == "saved"
        assert golden["snapshot"]["spec"]["nodes"] > 0
        summary = cold.summary()
        assert "store:" in summary

    def test_snapshot_restores_are_timed_per_scenario(self, tmp_path):
        run_with_store(tmp_path)
        import shutil

        shutil.rmtree(tmp_path / "store" / "results")
        rehydrated = run_with_store(tmp_path)
        golden = rehydrated.outcome("vsm/golden")
        assert golden.snapshot["spec"]["status"] == "restored"
        assert golden.snapshot["impl"]["status"] == "restored"
        assert golden.snapshot["spec"]["seconds"] >= 0.0
        assert golden.extraction_cache["spec"] == "snapshot"
