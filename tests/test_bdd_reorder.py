"""Dynamic-reordering invariants: sifting must never change semantics.

Every function held by a caller must denote the same minterm set before
and after any sequence of level swaps, and canonicity (node identity as
the equivalence check) must survive: rebuilding a function under the
new order finds the *same* node object.
"""

import itertools
import random

import pytest

from repro.bdd import (
    BDDManager,
    converge_sift,
    sift_to_order,
    sift_variable,
    swap_adjacent,
)

NUM_VARS = 6


def random_functions(manager, names, seed, count=4):
    rng = random.Random(seed)

    def build(depth=0):
        if depth > 3 or rng.random() < 0.2:
            if rng.random() < 0.8:
                return manager.var(rng.choice(names))
            return manager.constant(rng.random() < 0.5)
        op = rng.choice(
            [manager.apply_and, manager.apply_or, manager.apply_xor]
        )
        return op(build(depth + 1), build(depth + 1))

    return [build() for _ in range(count)]


def minterms(manager, names, function):
    """The function's satisfying assignments over ``names`` (name-keyed)."""
    return frozenset(
        bits
        for bits in itertools.product([False, True], repeat=len(names))
        if manager.evaluate(function, dict(zip(names, bits)))
    )


@pytest.mark.parametrize("seed", range(8))
def test_random_swaps_preserve_minterm_sets(seed):
    manager = BDDManager()
    names = [f"v{i}" for i in range(NUM_VARS)]
    manager.declare_all(names)
    functions = random_functions(manager, names, seed)
    before = [minterms(manager, names, f) for f in functions]
    rng = random.Random(seed + 99)
    for _ in range(25):
        swap_adjacent(manager, rng.randrange(NUM_VARS - 1))
    assert [minterms(manager, names, f) for f in functions] == before


@pytest.mark.parametrize("seed", range(8))
def test_sifting_preserves_minterm_sets_and_canonicity(seed):
    manager = BDDManager()
    names = [f"v{i}" for i in range(NUM_VARS)]
    manager.declare_all(names)
    functions = random_functions(manager, names, seed)
    before = [minterms(manager, names, f) for f in functions]
    result = converge_sift(manager, roots=functions, max_passes=3)
    assert result.final_size <= result.initial_size
    assert [minterms(manager, names, f) for f in functions] == before
    # Canonicity: rebuilding an equivalent function under the new order
    # must return the very same node object.
    rebuilt = manager.apply_or(
        manager.apply_and(functions[0], functions[1]),
        manager.apply_and(functions[0], functions[1]),
    )
    assert rebuilt is manager.apply_and(functions[0], functions[1])
    # And the manager's order bookkeeping stays consistent.
    assert sorted(manager.variables) == sorted(names)
    for name in names:
        assert manager.name_at_level(manager.level(name)) == name


def test_sift_to_order_reaches_requested_order():
    manager = BDDManager()
    names = [f"v{i}" for i in range(NUM_VARS)]
    manager.declare_all(names)
    functions = random_functions(manager, names, 42)
    before = [minterms(manager, names, f) for f in functions]
    target = list(reversed(names))
    sift_to_order(manager, target)
    assert manager.variables == tuple(target)
    assert [minterms(manager, names, f) for f in functions] == before
    with pytest.raises(ValueError):
        sift_to_order(manager, names[:-1])


def test_sifting_shrinks_badly_ordered_comparator():
    """The classic win: a block-ordered equality comparator re-interleaves."""
    width = 6
    manager = BDDManager(
        [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    )
    function = manager.one
    for i in range(width):
        function = manager.apply_and(
            function, manager.apply_xnor(manager.var(f"a{i}"), manager.var(f"b{i}"))
        )
    block_order_size = manager.count_nodes(function)
    result = converge_sift(manager, roots=[function], max_passes=4)
    interleaved_size = manager.count_nodes(function)
    assert interleaved_size < block_order_size
    assert interleaved_size == 3 * width + 2  # the optimal interleaved size
    assert result.improved


def test_single_variable_sift():
    manager = BDDManager(["a0", "a1", "b0", "b1"])
    f = manager.apply_and(
        manager.apply_xnor(manager.var("a0"), manager.var("b0")),
        manager.apply_xnor(manager.var("a1"), manager.var("b1")),
    )
    before = minterms(manager, ["a0", "a1", "b0", "b1"], f)
    result = sift_variable(manager, "b0", roots=[f])
    assert result.final_size <= result.initial_size
    assert minterms(manager, ["a0", "a1", "b0", "b1"], f) == before


def test_swap_rejects_bad_level():
    manager = BDDManager(["x", "y"])
    with pytest.raises(ValueError):
        swap_adjacent(manager, 1)
    with pytest.raises(ValueError):
        swap_adjacent(manager, -1)


def test_reorder_hooks_fire_and_caches_clear():
    manager = BDDManager(["x", "y", "z"])
    f = manager.apply_and(manager.var("x"), manager.var("y"))
    manager.exists(["y"], f)  # populate the quantify (op) cache
    assert manager.statistics()["quantify_cache_entries"] > 0
    events = []
    hook = events.append
    manager.add_reorder_hook(hook)
    swap_adjacent(manager, 0)
    assert events == [manager]
    assert manager.reorder_count == 1
    # The level-keyed op cache is order-dependent and must be dropped;
    # the ITE cache is keyed by handles (function-preserved through a
    # swap) and is deliberately kept.
    assert manager.statistics()["quantify_cache_entries"] == 0
    manager.remove_reorder_hook(hook)
    swap_adjacent(manager, 0)
    assert events == [manager]
    assert manager.reorder_count == 2
    manager.remove_reorder_hook(hook)  # absent hook: no-op


def test_manager_sift_convenience():
    manager = BDDManager(
        [f"a{i}" for i in range(4)] + [f"b{i}" for i in range(4)]
    )
    f = manager.one
    for i in range(4):
        f = manager.apply_and(
            f, manager.apply_xnor(manager.var(f"a{i}"), manager.var(f"b{i}"))
        )
    result = manager.sift(roots=[f])
    assert result.final_size <= result.initial_size
    assert manager.count_nodes(f) == 3 * 4 + 2


def test_sifting_table_growth_is_bounded():
    """The session sweep reclaims swap garbage (no exponential table)."""
    width = 8
    manager = BDDManager(
        [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    )
    f = manager.one
    for i in range(width):
        f = manager.apply_and(
            f, manager.apply_xnor(manager.var(f"a{i}"), manager.var(f"b{i}"))
        )
    table_before = manager.size()
    converge_sift(manager, roots=[f], max_passes=4)
    # Without the sweep this explodes past a million nodes.
    assert manager.size() < 4 * table_before


class TestDeepQuantification:
    """Satellite: _quantify must survive BDDs deeper than the recursion limit."""

    DEPTH = 3000

    def deep_cube(self, manager, names):
        """AND of thousands of literals, built bottom-up (no recursion)."""
        node = manager.one
        for level in range(len(names) - 1, -1, -1):
            node = manager._mk(level, manager.zero, node)
        return node

    def test_exists_on_deep_cube(self):
        names = [f"x{i}" for i in range(self.DEPTH)]
        manager = BDDManager(names)
        cube = self.deep_cube(manager, names)
        # Quantify every other variable out of a 3000-deep conjunction;
        # the recursive implementation would exhaust CPython's stack.
        quantified = manager.exists(names[1::2], cube)
        expected = manager.one
        for level in range(self.DEPTH - 2, -1, -2):
            expected = manager._mk(level, manager.zero, expected)
        assert quantified is expected

    def test_forall_on_deep_cube(self):
        names = [f"x{i}" for i in range(self.DEPTH)]
        manager = BDDManager(names)
        cube = self.deep_cube(manager, names)
        # For a cube, forall over any variable collapses to zero.
        assert manager.forall([names[17]], cube) is manager.zero

    def test_deep_quantify_respects_cache_limit(self):
        names = [f"x{i}" for i in range(self.DEPTH)]
        manager = BDDManager(names, cache_limit=64)
        cube = self.deep_cube(manager, names)
        quantified = manager.exists(names[1::2], cube)
        assert quantified is not manager.zero
        stats = manager.cache_statistics()
        assert stats["clears"] > 0  # evictions happened mid-computation
