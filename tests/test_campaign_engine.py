"""The verification campaign engine: scenarios, pooling, memoisation, parallelism.

Covers the acceptance criteria of the campaign-engine issue:

* a mixed campaign (VSM, Alpha0, interrupts, one injected bug — six-plus
  scenarios) runs in one process over a shared manager pool;
* the multiprocessing parallel mode produces byte-identical
  ``CampaignReport`` verdicts to serial mode;
* pooled execution is bit-identical to fresh-manager execution
  (the invariant the parallel guarantee rests on);
* scenarios round-trip through JSON, resolve through the registry, and
  the thin core adapters (`verify_beta_relation`, `verify_with_events`,
  `verify_superscalar_schedule`) agree with the engine path.
"""

import json
import random

import pytest

from repro.bdd import BDDManager
from repro.core import (
    VSMArchitecture,
    all_normal,
    verify_beta_relation,
    verify_superscalar_schedule,
    verify_with_events,
    vsm_default,
)
from repro.engine import (
    Alpha0Spec,
    CampaignRunner,
    ManagerPool,
    Scenario,
    ScenarioRegistry,
    default_registry,
    execute_scenario,
    mixed_campaign,
    run_campaign,
    superscalar_scenario,
    variable_k_scenarios,
    vsm_bug_scenarios,
)
from repro.isa import vsm as vsm_isa
from repro.strings import CONTROL, NORMAL

#: Small Alpha0 condensation so the mixed campaign stays test-sized.
SMALL_ALPHA0 = Alpha0Spec(data_width=3, num_registers=4, memory_words=2)


class TestScenario:
    def test_rejects_unknown_kind_design_and_slots(self):
        with pytest.raises(ValueError):
            Scenario(name="x", kind="nope")
        with pytest.raises(ValueError):
            Scenario(name="x", design="nope")
        with pytest.raises(ValueError):
            Scenario(name="x", slots=("weird",))
        with pytest.raises(ValueError):
            Scenario(name="")

    def test_events_and_superscalar_are_vsm_only(self):
        with pytest.raises(ValueError):
            Scenario(name="x", kind="events", design="alpha0")
        with pytest.raises(ValueError):
            Scenario(name="x", kind="superscalar", design="alpha0")
        with pytest.raises(ValueError):
            Scenario(name="x", kind="superscalar")  # needs a program

    def test_json_round_trip(self):
        scenarios = (
            mixed_campaign(alpha0=SMALL_ALPHA0)
            + vsm_bug_scenarios()
            + variable_k_scenarios()
        )
        for scenario in scenarios:
            rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
            assert rebuilt == scenario
            assert rebuilt.cache_key() == scenario.cache_key()
            assert rebuilt.order_signature() == scenario.order_signature()

    def test_cache_key_ignores_name_and_tags(self):
        a = Scenario(name="a", slots=(NORMAL,), tags=("x",))
        b = Scenario(name="b", slots=(NORMAL,), tags=("y",))
        assert a.cache_key() == b.cache_key()
        assert a.order_signature() == b.order_signature()

    def test_order_signature_separates_workload_shapes(self):
        plain = Scenario(name="a", slots=(NORMAL, NORMAL))
        branchy = Scenario(name="b", slots=(CONTROL, NORMAL))
        bugged = Scenario(name="c", slots=(NORMAL, NORMAL), bug="no_bypass")
        assert plain.order_signature() != branchy.order_signature()
        # A bug does not change the variable order: same pooled manager.
        assert plain.order_signature() == bugged.order_signature()

    def test_alpha0_signature_ignores_instruction_class(self):
        operate = Scenario(name="a", design="alpha0", slots=(NORMAL,) * 2,
                           alpha0=SMALL_ALPHA0)
        memory = Scenario(
            name="b", design="alpha0", slots=(NORMAL,) * 2,
            alpha0=Alpha0Spec(data_width=3, num_registers=4, memory_words=2,
                              normal_opcode=0x29),
        )
        condensed = Scenario(name="c", design="alpha0", slots=(NORMAL,) * 2)
        assert operate.order_signature() == memory.order_signature()
        assert operate.order_signature() != condensed.order_signature()

    def test_architecture_adapter_round_trip(self):
        architecture = VSMArchitecture()
        scenario = architecture.scenario("t", vsm_default(), bug="no_annul")
        assert scenario.slots == vsm_default().slots
        assert scenario.bug == "no_annul"
        assert isinstance(scenario.architecture(), VSMArchitecture)


class TestRegistry:
    def test_default_registry_catalogue(self):
        registry = default_registry()
        assert "vsm/default" in registry
        assert "vsm/bug/no_bypass" in registry
        assert "alpha0/operate" in registry
        assert "vsm/event/slot0" in registry
        assert len(registry) >= 16
        assert registry.get("vsm/default").kind == "beta"
        with pytest.raises(KeyError):
            registry.get("no/such/scenario")

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        scenario = Scenario(name="dup", slots=(NORMAL,))
        registry.register(scenario)
        with pytest.raises(ValueError):
            registry.register(scenario)
        registry.register(scenario, replace_existing=True)

    def test_tag_selection(self):
        registry = default_registry()
        bugs = registry.tagged("bug-injection")
        assert len(bugs) >= 9
        assert all("bug-injection" in scenario.tags for scenario in bugs)

    def test_runner_resolves_names(self):
        runner = CampaignRunner()
        outcome = runner.run_one("vsm/bug/and_becomes_or")
        assert outcome.scenario == "vsm/bug/and_becomes_or"
        assert not outcome.passed
        assert outcome.mismatches


class TestPooledDeterminism:
    def test_pooled_run_is_bit_identical_to_fresh_run(self):
        """The invariant behind the parallel guarantee.

        Running a scenario on a manager warmed by *same-signature*
        scenarios must reproduce the fresh-manager outcome exactly,
        counterexample assignments included.
        """
        golden = Scenario(name="golden", slots=(NORMAL, NORMAL))
        bugged = Scenario(name="bugged", slots=(NORMAL, NORMAL), bug="no_bypass")

        fresh = execute_scenario(bugged, manager=BDDManager())

        pool = ManagerPool()
        execute_scenario(golden, manager=pool.acquire(golden.order_signature()))
        pooled = execute_scenario(bugged, manager=pool.acquire(bugged.order_signature()))

        assert pool.reuse_count == 1
        assert json.dumps(fresh.verdict(), sort_keys=True) == json.dumps(
            pooled.verdict(), sort_keys=True
        )

    def test_pool_reuses_managers_and_reports_statistics(self):
        runner = CampaignRunner(memoize=False)
        report = runner.run(
            [
                Scenario(name="g", slots=(NORMAL, NORMAL)),
                Scenario(name="b1", slots=(NORMAL, NORMAL), bug="no_bypass"),
                Scenario(name="b2", slots=(NORMAL, NORMAL), bug="and_becomes_or"),
                Scenario(name="other", slots=(CONTROL, NORMAL)),
            ]
        )
        stats = report.pool
        assert stats["managers"] == 2  # (N,N) shared three ways + (C,N)
        assert stats["reuses"] == 2
        assert stats["cache"]["hits"] > 0
        assert 0.0 < stats["cache"]["hit_rate"] <= 1.0
        # Sharing pays: the second (N,N) run hits the warmed unique table.
        warmed = report.outcome("b1").cache
        assert warmed["hit_rate"] > 0.3

    def test_memoisation_reuses_equivalent_scenarios(self):
        runner = CampaignRunner()
        report = runner.run(
            [
                Scenario(name="first", slots=(NORMAL,)),
                Scenario(name="alias", slots=(NORMAL,)),  # same cache key
            ]
        )
        assert report.memo_hits == 1
        first, alias = report.outcomes
        assert not first.memoized and alias.memoized
        assert alias.scenario == "alias"
        verdict_of = lambda o: {k: v for k, v in o.verdict().items() if k != "scenario"}
        assert verdict_of(first) == verdict_of(alias)


class TestMixedCampaign:
    """The issue's acceptance campaign, serial and parallel."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return mixed_campaign(alpha0=SMALL_ALPHA0)

    @pytest.fixture(scope="class")
    def serial_report(self, campaign):
        return CampaignRunner().run(campaign)

    def test_campaign_spans_the_required_workloads(self, campaign):
        assert len(campaign) >= 6
        designs = {scenario.design for scenario in campaign}
        kinds = {scenario.kind for scenario in campaign}
        assert {"vsm", "alpha0"} <= designs
        assert "events" in kinds
        assert any(scenario.bug for scenario in campaign)

    def test_serial_campaign_verdicts(self, serial_report):
        assert serial_report.scenario_count >= 6
        by_name = {o.scenario: o for o in serial_report.outcomes}
        assert by_name["vsm/default"].passed
        assert by_name["alpha0/operate"].passed
        assert by_name["alpha0/memory"].passed
        assert by_name["vsm/event/slot1"].passed
        assert not by_name["vsm/bug/no_bypass"].passed
        assert by_name["vsm/bug/no_bypass"].mismatches
        # Exactly the injected bug fails, nothing else.
        assert [o.scenario for o in serial_report.failures()] == ["vsm/bug/no_bypass"]

    def test_shared_pool_across_the_campaign(self, serial_report):
        stats = serial_report.pool
        assert stats["managers"] < serial_report.scenario_count
        assert stats["reuses"] >= 1

    def test_parallel_verdicts_byte_identical_to_serial(self, campaign, serial_report):
        parallel_report = CampaignRunner().run(campaign, parallel=True, max_workers=2)
        assert parallel_report.mode == "parallel"
        assert parallel_report.verdict_json() == serial_report.verdict_json()
        assert parallel_report.verdict_json().encode("utf-8") == (
            serial_report.verdict_json().encode("utf-8")
        )

    def test_affinity_sharded_parallel_matches_serial_with_three_workers(
        self, campaign, serial_report
    ):
        report = CampaignRunner().run(campaign, parallel=True, max_workers=3)
        assert report.mode == "parallel"
        assert report.pool.get("sharding") == "affinity"
        assert report.pool.get("workers") == 3
        assert report.pool.get("units") >= 3
        assert report.verdict_json().encode("utf-8") == (
            serial_report.verdict_json().encode("utf-8")
        )
        # Every worker reported its closing statistics record.
        assert len(report.pool.get("per_worker", [])) == 3

    def test_blind_sharding_stays_selectable_and_identical(
        self, campaign, serial_report
    ):
        report = CampaignRunner().run(
            campaign, parallel=True, max_workers=2, sharding="blind"
        )
        assert report.pool.get("sharding") == "blind"
        assert report.verdict_json() == serial_report.verdict_json()

    def test_unknown_sharding_rejected(self, campaign):
        with pytest.raises(ValueError):
            CampaignRunner().run(campaign, parallel=True, sharding="nope")

    def test_report_serialises_to_json(self, serial_report):
        payload = json.loads(serial_report.to_json())
        assert payload["scenario_count"] == serial_report.scenario_count
        assert payload["failures"] == ["vsm/bug/no_bypass"]
        assert len(payload["outcomes"]) == serial_report.scenario_count
        counterexamples = serial_report.counterexamples()
        assert "vsm/bug/no_bypass" in counterexamples
        first = counterexamples["vsm/bug/no_bypass"][0]
        assert "decoded" in first and "words" in first and "counterexample" in first
        summary = serial_report.summary()
        assert "vsm/bug/no_bypass" in summary


class TestAffinityUnits:
    """The scheduler's sharding arithmetic (pure function, no processes)."""

    def units(self, scenarios, workers):
        from repro.engine.runner import _affinity_units

        return _affinity_units(scenarios, workers)

    def test_groups_by_order_signature(self):
        scenarios = [
            Scenario(name="g", slots=(NORMAL, NORMAL)),
            Scenario(name="b1", slots=(NORMAL, NORMAL), bug="no_bypass"),
            Scenario(name="other", slots=(CONTROL, NORMAL)),
            Scenario(name="b2", slots=(NORMAL, NORMAL), bug="and_becomes_or"),
        ]
        units = self.units(scenarios, 2)
        # (N,N) scenarios share a signature; with fair share ceil(4/2)=2
        # the shard of three splits into 2+1, the (C,N) shard stays one.
        assert sorted(len(unit) for unit in units) == [1, 1, 2]
        as_sets = [set(unit) for unit in units]
        assert {0, 1} in as_sets and {3} in as_sets and {2} in as_sets
        # Largest-first (LPT) so long shards start immediately.
        assert len(units[0]) == 2

    def test_single_worker_gets_whole_shards(self):
        scenarios = [
            Scenario(name=f"s{i}", slots=(NORMAL, NORMAL)) for i in range(5)
        ]
        units = self.units(scenarios, 1)
        assert [len(unit) for unit in units] == [5]

    def test_every_scenario_appears_exactly_once(self):
        scenarios = (
            [Scenario(name=f"a{i}", slots=(NORMAL,)) for i in range(7)]
            + [Scenario(name=f"b{i}", slots=(CONTROL, NORMAL)) for i in range(3)]
            + [Scenario(name=f"c{i}", slots=(NORMAL, NORMAL)) for i in range(2)]
        )
        units = self.units(scenarios, 4)
        flat = sorted(index for unit in units for index in unit)
        assert flat == list(range(len(scenarios)))
        assert max(len(unit) for unit in units) <= -(-len(scenarios) // 4)


class TestThinAdapters:
    """Core entry points and the engine execute the same code path."""

    def test_verify_beta_relation_matches_engine(self):
        scenario = Scenario(name="t", slots=vsm_default().slots)
        direct = verify_beta_relation(VSMArchitecture(), vsm_default())
        engine = execute_scenario(scenario)
        assert direct.passed == engine.passed is True
        assert direct.specification_cycles == engine.structure["specification_cycles"]
        assert list(direct.implementation_filter) == engine.structure["implementation_filter"]

    def test_verify_with_events_matches_engine(self):
        direct = verify_with_events(all_normal(3), event_slots=[1])
        scenario = Scenario(
            name="t", kind="events", slots=(NORMAL,) * 3, event_slots=(1,)
        )
        engine = execute_scenario(scenario)
        assert direct.passed == engine.passed is True
        assert list(direct.implementation_filter) == engine.structure["implementation_filter"]
        assert engine.structure["extra"] == {"event_slots": [1]}

    def test_superscalar_scenario_matches_direct_check(self):
        rng = random.Random(7)
        program = vsm_isa.random_program(rng, 8)
        direct = verify_superscalar_schedule(program, issue_width=2)
        outcome = execute_scenario(superscalar_scenario(program))
        assert direct.passed == outcome.passed is True
        assert outcome.structure["completions_per_cycle"] == list(
            direct.completions_per_cycle
        )
        assert outcome.structure["speedup"] == pytest.approx(direct.speedup)

    def test_run_campaign_convenience(self):
        report = run_campaign([Scenario(name="one", slots=(NORMAL,))])
        assert report.passed
        assert report.scenario_count == 1

    def test_campaign_isolates_scenario_errors(self):
        class Boom(Scenario):
            def architecture(self):
                raise RuntimeError("boom")

        report = run_campaign(
            [
                Boom(name="boom", slots=(NORMAL,)),
                Scenario(name="fine", slots=(NORMAL,)),
            ]
        )
        assert not report.passed
        boom = report.outcome("boom")
        assert boom.error == "RuntimeError: boom"
        assert report.outcome("fine").passed

    def test_crashed_scenario_keeps_its_traceback(self):
        """The isolation handler preserves the full traceback so a crash
        is diagnosable from the report — but keeps it out of the verdict
        (traceback text is machine- and code-version-specific)."""

        class Boom(Scenario):
            def architecture(self):
                raise RuntimeError("boom")

        report = run_campaign([Boom(name="boom", slots=(NORMAL,))])
        boom = report.outcome("boom")
        assert boom.traceback is not None
        assert "RuntimeError: boom" in boom.traceback
        assert "in architecture" in boom.traceback
        assert "traceback" not in boom.verdict()
        assert boom.to_dict()["traceback"] == boom.traceback
        healthy = run_campaign([Scenario(name="fine", slots=(NORMAL,))])
        assert healthy.outcome("fine").traceback is None

    def test_campaign_isolation_does_not_swallow_interrupts(self):
        """``KeyboardInterrupt``/``SystemExit`` must propagate — a user
        abort may not be converted into a failed scenario outcome."""

        class Interrupted(Scenario):
            def architecture(self):
                raise KeyboardInterrupt

        class Exiting(Scenario):
            def architecture(self):
                raise SystemExit(3)

        runner = CampaignRunner()
        with pytest.raises(KeyboardInterrupt):
            runner.run([Interrupted(name="interrupted", slots=(NORMAL,))])
        with pytest.raises(SystemExit):
            runner.run([Exiting(name="exiting", slots=(NORMAL,))])
