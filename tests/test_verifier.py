"""End-to-end tests of the beta-relation verification engine (Figure 8).

These are the reproduction's core results at test scale: the pipelined
VSM and (condensed) Alpha0 verify against their unpipelined
specifications, every injected bug is caught with a decoded
counterexample, and the generated cycle counts / filter sequences match
the ones printed in Chapter 6 of the paper.
"""

import pytest

from repro.bdd import BDDManager
from repro.core import (
    Alpha0Architecture,
    ObservationSpec,
    SimulationInfo,
    VSMArchitecture,
    all_normal,
    alpha0_default,
    build_stimulus,
    control_at,
    verify_beta_relation,
    vsm_default,
)
from repro.processors import SymbolicAlpha0Options
from repro.strings import CONTROL, NORMAL, format_filter


SMALL_ALPHA0 = Alpha0Architecture(
    options=SymbolicAlpha0Options(
        data_width=3, num_registers=4, memory_words=2, alu_subset=("and", "or", "cmpeq")
    )
)


class TestStimulusConstruction:
    def test_vsm_normal_slot_constrains_opcode_msb(self):
        manager = BDDManager()
        plan = build_stimulus(manager, VSMArchitecture(), all_normal(2))
        for instruction in plan.slot_instructions:
            assert instruction[12] is manager.zero
        assert plan.free_variable_count == 2 * 12
        assert plan.delay_instructions == {}

    def test_vsm_control_slot_fixes_opcode(self):
        manager = BDDManager()
        plan = build_stimulus(manager, VSMArchitecture(), control_at(2, 1))
        branch = plan.slot_instructions[1]
        assert branch[12] is manager.one
        assert branch[11] is manager.zero
        assert branch[10] is manager.zero
        # One delay-slot instruction of 13 fully free bits.
        assert list(plan.delay_instructions) == [1]
        assert plan.free_variable_count == 12 + 10 + 13

    def test_alpha0_cubes_fix_the_opcode_field(self):
        manager = BDDManager()
        architecture = SMALL_ALPHA0
        plan = build_stimulus(manager, architecture, alpha0_default())
        normal = plan.slot_instructions[0]
        control = plan.slot_instructions[2]
        # Opcode bits are 26..31.
        assert [normal[26 + b] for b in range(6)] == [
            manager.constant(bool((0x11 >> b) & 1)) for b in range(6)
        ]
        assert [control[26 + b] for b in range(6)] == [
            manager.constant(bool((0x30 >> b) & 1)) for b in range(6)
        ]


class TestVSMVerification:
    def test_correct_design_passes(self):
        report = verify_beta_relation(VSMArchitecture(), vsm_default())
        assert report.passed, report.summary()
        assert report.mismatches == []

    def test_cycle_counts_match_section_6_2(self):
        report = verify_beta_relation(VSMArchitecture(), vsm_default())
        assert report.specification_cycles == 17  # k^2 + r
        assert report.implementation_cycles == 9  # 2k-1 + r + c*d
        assert report.samples_compared == 5

    def test_filter_sequences_match_section_6_2(self):
        report = verify_beta_relation(VSMArchitecture(), vsm_default())
        spec_line, impl_line = report.filter_lines()
        assert spec_line.endswith("1 0 0 0 1 0 0 0 1 0 0 0 1 0 0 0 1")
        assert impl_line.endswith("1 0 0 0 1 1 1 0 1")

    def test_fixed_k_verification_passes(self):
        report = verify_beta_relation(VSMArchitecture(), all_normal(4))
        assert report.passed
        assert report.implementation_cycles == 8  # no delay slot inserted

    # Bug-detection workloads are deliberately short: the point is that the
    # relevant instruction class exposes the bug, and an executed (non-annulled)
    # delay slot adds a full extra level of symbolic nesting that a pure-Python
    # BDD engine should not be asked to carry for every parametrized case.
    BUG_WORKLOADS = {
        "no_bypass": all_normal(2),
        "no_annul": SimulationInfo(slots=(CONTROL, NORMAL)),
        "wrong_branch_target": control_at(2, 0),
        "and_becomes_or": all_normal(1),
        "drop_write_r3": all_normal(1),
    }

    @pytest.mark.parametrize(
        "bug", ["no_bypass", "no_annul", "wrong_branch_target", "and_becomes_or", "drop_write_r3"]
    )
    def test_injected_bugs_are_caught(self, bug):
        report = verify_beta_relation(
            VSMArchitecture(), self.BUG_WORKLOADS[bug], impl_kwargs={"bug": bug}
        )
        assert not report.passed, f"bug {bug} escaped verification"
        assert report.mismatches
        first = report.mismatches[0]
        assert first.decoded_instructions  # the counterexample decodes to assembly

    def test_no_annul_is_only_caught_with_a_control_slot(self):
        """Without a control-transfer slot the annulment logic is never exercised."""
        report = verify_beta_relation(
            VSMArchitecture(), all_normal(2), impl_kwargs={"bug": "no_annul"}
        )
        assert report.passed
        report = verify_beta_relation(
            VSMArchitecture(),
            SimulationInfo(slots=(CONTROL, NORMAL)),
            impl_kwargs={"bug": "no_annul"},
        )
        assert not report.passed

    def test_constant_initial_state_still_passes(self):
        report = verify_beta_relation(
            VSMArchitecture(symbolic_initial_state=False), vsm_default()
        )
        assert report.passed
        assert report.sequences_covered > 1

    def test_restricted_observation(self):
        observation = ObservationSpec(("reg1", "pc_next"))
        report = verify_beta_relation(VSMArchitecture(), vsm_default(), observation=observation)
        assert report.passed
        assert report.observables_compared == 2

    def test_report_metadata(self):
        report = verify_beta_relation(VSMArchitecture(), vsm_default())
        assert report.design == "VSM"
        assert report.order_k == 4 and report.delay_slots == 1
        assert report.slot_kinds == (NORMAL, NORMAL, CONTROL, NORMAL)
        assert report.bdd_variables > 0 and report.bdd_nodes > 0
        assert report.sequences_covered == 2 ** (12 * 3 + 10 + 13)
        assert report.total_seconds > 0


class TestAlpha0Verification:
    def test_condensed_design_passes(self):
        report = verify_beta_relation(SMALL_ALPHA0, alpha0_default())
        assert report.passed, report.summary()

    def test_cycle_counts_match_section_6_3(self):
        report = verify_beta_relation(SMALL_ALPHA0, alpha0_default())
        assert report.specification_cycles == 26  # k^2 + r
        assert report.implementation_cycles == 11  # 2k-1 + r + c*d
        spec_line, impl_line = report.filter_lines()
        assert spec_line.endswith("1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1")
        assert impl_line.endswith("1 0 0 0 0 1 1 1 0 1 1")

    def test_memory_class_slots_pass(self):
        """A second pass with the 'normal' class set to loads exercises memory."""
        architecture = Alpha0Architecture(
            options=SMALL_ALPHA0.options, normal_opcode=0x29  # ld
        )
        report = verify_beta_relation(architecture, all_normal(5))
        assert report.passed, report.summary()

    # The bug must be exercised by the instruction class simulated in the
    # ordinary slots: cmpeq lives in the 0x10 operate class, stores in 0x2D.
    ALPHA0_BUG_RUNS = {
        "no_bypass": (SMALL_ALPHA0, all_normal(2)),
        "no_annul": (SMALL_ALPHA0, SimulationInfo(slots=(CONTROL, NORMAL))),
        "cmpeq_inverted": (
            Alpha0Architecture(options=SMALL_ALPHA0.options, normal_opcode=0x10),
            all_normal(1),
        ),
    }

    @pytest.mark.parametrize("bug", ["no_bypass", "no_annul", "cmpeq_inverted"])
    def test_injected_bugs_are_caught(self, bug):
        architecture, workload = self.ALPHA0_BUG_RUNS[bug]
        report = verify_beta_relation(architecture, workload, impl_kwargs={"bug": bug})
        assert not report.passed, f"bug {bug} escaped verification"

    def test_store_bug_needs_store_class(self):
        """The store bug is invisible to the operate-class run but caught by a
        store-class run over a symbolic initial state (all-zero memory cannot
        distinguish which word a zero was stored to)."""
        operate_run = verify_beta_relation(
            SMALL_ALPHA0, all_normal(2), impl_kwargs={"bug": "store_wrong_word"}
        )
        assert operate_run.passed
        store_architecture = Alpha0Architecture(
            options=SMALL_ALPHA0.options, normal_opcode=0x2D, symbolic_initial_state=True
        )
        store_run = verify_beta_relation(
            store_architecture, all_normal(2), impl_kwargs={"bug": "store_wrong_word"}
        )
        assert not store_run.passed
