"""Property tests for the relational subsystem.

The load-bearing invariant: the partitioned, early-quantification image
computation must be **pointwise identical** — the same canonical node —
to the naive ``exists(vars, AND(frontier, parts...))`` route, on
machines with no hand-designed structure (seeded random netlists) and
on the extracted processor relations.
"""

import pytest

from repro.bdd import BDDManager
from repro.fsm import SymbolicFSM, build_transition_relation, reachable_states
from repro.logic import random_netlist
from repro.relational import (
    ConjunctivePartition,
    ImageComputer,
    QuantificationSchedule,
    RelationalPolicy,
    TransitionRelation,
    smooth_conjunction,
)

SEEDS = [0, 1, 2, 3, 4, 5, 6, 7]


def machine_for_seed(seed: int):
    manager = BDDManager()
    netlist = random_netlist(seed)
    machine = SymbolicFSM.from_netlist(netlist, manager)
    return manager, machine


def naive_image(manager, relation, states, constraint=None):
    """Reference implementation: conjoin everything, smooth once, rename."""
    current = states
    if constraint is not None:
        current = manager.apply_and(current, constraint)
    for part in relation.parts:
        current = manager.apply_and(current, part)
    smoothed = manager.exists(relation.input_names + relation.state_names, current)
    return manager.rename(smoothed, relation.present_of)


def some_frontiers(manager, machine, seed):
    """A few interesting state sets: reset cube, a partial cube, everything."""
    import random

    rng = random.Random(seed + 1000)
    yield machine.reset_cube()
    partial = {
        name: rng.random() < 0.5
        for name in machine.state_names
        if rng.random() < 0.6
    }
    yield manager.cube(partial) if partial else manager.one
    yield manager.one


@pytest.mark.parametrize("seed", SEEDS)
def test_partitioned_image_identical_to_naive_smoothing(seed):
    manager, machine = machine_for_seed(seed)
    relation = TransitionRelation.from_fsm(machine)
    computer = ImageComputer(
        relation, RelationalPolicy(max_cluster_size=3, cluster_node_limit=200)
    )
    for frontier in some_frontiers(manager, machine, seed):
        expected = naive_image(manager, relation, frontier)
        assert computer.image(frontier) is expected
        assert computer.monolithic_image(frontier) is expected


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_partitioned_image_with_input_constraint(seed):
    manager, machine = machine_for_seed(seed)
    relation = TransitionRelation.from_fsm(machine)
    computer = ImageComputer(relation)
    constraint = manager.cube({machine.input_names[0]: True})
    frontier = machine.reset_cube()
    expected = naive_image(manager, relation, frontier, constraint)
    assert computer.image(frontier, constraint) is expected


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_preimage_identical_to_naive(seed):
    manager, machine = machine_for_seed(seed)
    relation = TransitionRelation.from_fsm(machine)
    computer = ImageComputer(relation)
    target = machine.reset_cube()
    renamed = manager.rename(target, relation.next_of)
    current = renamed
    for part in relation.parts:
        current = manager.apply_and(current, part)
    expected = manager.exists(relation.input_names + relation.next_names, current)
    assert computer.preimage(target) is expected


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_partitioned_matches_monolithic_fsm_relation(seed):
    """The subsystem agrees with the legacy fsm.transition route."""
    manager, machine = machine_for_seed(seed)
    legacy = build_transition_relation(machine)
    computer = ImageComputer(TransitionRelation.from_fsm(machine))
    frontier = machine.reset_cube()
    assert computer.image(frontier) is legacy.image(frontier)
    assert computer.preimage(frontier) is legacy.preimage(frontier)


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_reachability_default_engine_matches_monolithic(seed):
    manager, machine = machine_for_seed(seed)
    partitioned = reachable_states(machine)
    monolithic = reachable_states(machine, build_transition_relation(machine))
    assert partitioned.reachable is monolithic.reachable
    assert partitioned.state_counts == monolithic.state_counts
    assert partitioned.iterations == monolithic.iterations


def test_partition_respects_bounds():
    manager, machine = machine_for_seed(11)
    relation = TransitionRelation.from_fsm(machine)
    partition = ConjunctivePartition.build(
        manager, relation.parts, max_cluster_size=2, cluster_node_limit=50
    )
    members = sorted(index for cluster in partition for index in cluster.members)
    assert members == list(range(len(relation.parts)))  # exact cover
    for cluster in partition:
        assert len(cluster.members) <= 2


def test_schedule_quantifies_each_variable_exactly_once():
    manager, machine = machine_for_seed(12)
    relation = TransitionRelation.from_fsm(machine)
    partition = ConjunctivePartition.build(manager, relation.parts, max_cluster_size=3)
    schedule = QuantificationSchedule.build(
        partition,
        quantify=relation.input_names + relation.state_names,
        keep=relation.next_names,
    )
    schedule.validate()
    # Early quantification must be sound: a variable quantified at step i
    # may not appear in the support of any later cluster.
    for index, step in enumerate(schedule.steps):
        later = set()
        for other in schedule.steps[index + 1 :]:
            later |= other.cluster.support
        assert not (set(step.quantify) & later)


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_smooth_conjunction_matches_naive(seed):
    manager, machine = machine_for_seed(seed)
    conjuncts = [machine.next_state[name] for name in machine.state_names]
    names = list(machine.input_names)
    expected = manager.exists(names, manager.conjoin(conjuncts))
    assert smooth_conjunction(manager, conjuncts, names) is expected
    # Monolithic policy degenerates to one cluster but stays identical.
    assert (
        smooth_conjunction(
            manager, conjuncts, names, RelationalPolicy(partition=False)
        )
        is expected
    )


def test_smooth_conjunction_empty():
    manager = BDDManager(["a", "b"])
    assert smooth_conjunction(manager, [], ["a"]) is manager.one


def test_image_stats_report_peak_and_strategy():
    manager, machine = machine_for_seed(3)
    relation = TransitionRelation.from_fsm(machine)
    computer = ImageComputer(relation)
    computer.image(machine.reset_cube())
    stats = computer.last_stats
    assert stats.strategy == "partitioned"
    assert stats.steps == len(computer.partition)
    assert stats.peak_live_nodes >= stats.result_nodes
    computer.monolithic_image(machine.reset_cube())
    assert computer.last_stats.strategy == "monolithic"


class TestProcessorRelations:
    """Relation extraction from the symbolic VSM models."""

    def test_pipelined_relation_images_match_both_paths(self):
        from repro.core.architectures import VSMArchitecture
        from repro.relational import pipelined_vsm_relation
        from repro.relational.models import FETCH_VALID
        from repro.strings import NORMAL

        manager = BDDManager()
        relation, reset = pipelined_vsm_relation(manager)
        computer = ImageComputer(relation)
        arch = VSMArchitecture()
        cube = {
            f"in.word[{bit}]": value
            for bit, value in arch.instruction_class_cube(NORMAL).items()
        }
        cube[FETCH_VALID] = True
        constraint = manager.cube(cube)
        frontier = manager.cube(reset)
        fast = computer.image(frontier, constraint)
        baseline = computer.monolithic_image(frontier, constraint)
        assert fast is baseline
        assert computer.last_stats.strategy == "monolithic"

    def test_pipelined_relation_agrees_with_functional_step(self):
        """A concrete transition of the model satisfies the relation image."""
        from repro.logic import BitVec
        from repro.processors.sym_vsm import SymbolicPipelinedVSM
        from repro.relational import pipelined_vsm_relation
        from repro.relational.models import FETCH_VALID

        manager = BDDManager()
        relation, reset = pipelined_vsm_relation(manager)
        computer = ImageComputer(relation)

        word = 0b0000_1_001_010_011  # add-ish encoding, arbitrary concrete word
        cube = {f"in.word[{bit}]": bool(word >> bit & 1) for bit in range(13)}
        cube[FETCH_VALID] = True
        image = computer.image(manager.cube(reset), manager.cube(cube))

        # Drive the functional model through the same concrete transition.
        model = SymbolicPipelinedVSM(manager)
        model.step(BitVec.constant(manager, word, 13))
        after = model.state_formulae()
        assignment = {}
        for field, vector in after.items():
            for bit in range(vector.width):
                value = vector[bit]
                assert value.is_terminal  # concrete machine state stays concrete
                assignment[f"ps.{field}[{bit}]"] = bool(value.value)
        assert manager.evaluate(image, assignment)
        # The image of a concrete state under a concrete input is that
        # single next state.
        assert manager.sat_count(image, relation.state_names) == 1

    def test_unpipelined_relation_single_successor(self):
        from repro.relational import unpipelined_vsm_relation

        manager = BDDManager()
        relation, reset = unpipelined_vsm_relation(manager)
        computer = ImageComputer(relation)
        word = 0b0000_0_000_000_001
        cube = {f"in.word[{bit}]": bool(word >> bit & 1) for bit in range(13)}
        image = computer.image(manager.cube(reset), manager.cube(cube))
        assert manager.sat_count(image, relation.state_names) == 1
