"""Operation-cache bounding, clearing and accounting of :class:`BDDManager`.

Long campaigns reuse one manager across many verification runs, so the
operation caches must be bounded (or at least clearable) without ever
changing results: the unique table holds the canonical functions, the
caches only memoise recomputation.  These tests pin down that clearing
and bounding are invisible to semantics, and that the size/hit-rate
accounting used by campaign reports is consistent.
"""

import random

import pytest

from repro.bdd import BDDManager
from repro.core import VSMArchitecture, all_normal, verify_beta_relation

from test_bdd_random_properties import VARIABLES, make_cases


def build_workload(manager, cases=120):
    """Elaborate a deterministic batch of random expressions."""
    return [build(manager) for build, _ in make_cases(cases, depth=4)]


class TestClearCaches:
    def test_results_identical_before_and_after_clearing(self):
        manager = BDDManager(variables=VARIABLES)
        first = build_workload(manager)
        assert manager.cache_size() > 0
        manager.clear_caches()
        assert manager.cache_size() == 0
        second = build_workload(manager)
        # Canonicity: recomputation after a clear reproduces the same nodes.
        for before, after in zip(first, second):
            assert before is after

    def test_clearing_is_counted(self):
        manager = BDDManager(variables=VARIABLES)
        build_workload(manager, cases=20)
        evicted_expected = manager.cache_size()
        assert evicted_expected > 0
        manager.clear_caches()
        stats = manager.cache_statistics()
        assert stats["clears"] >= 1
        assert stats["evicted_entries"] == evicted_expected
        assert stats["total_entries"] == 0

    def test_quantification_cache_cleared_too(self):
        manager = BDDManager(variables=VARIABLES)
        f = manager.apply_or(
            manager.apply_and(manager.var("a"), manager.var("b")), manager.var("c")
        )
        smoothed = manager.exists(["a"], f)
        assert manager.statistics()["quantify_cache_entries"] > 0
        manager.clear_caches()
        assert manager.statistics()["quantify_cache_entries"] == 0
        assert manager.exists(["a"], f) is smoothed


class TestBoundedCaches:
    def test_bounded_manager_computes_identical_nodes(self):
        unbounded = BDDManager(variables=VARIABLES)
        bounded = BDDManager(variables=VARIABLES, cache_limit=64)
        free = build_workload(unbounded)
        tight = build_workload(bounded)
        for a, b in zip(free, tight):
            # Distinct managers, so compare semantics via truth tables.
            assert unbounded.sat_count(a, VARIABLES) == bounded.sat_count(b, VARIABLES)
            assert unbounded.support(a) == bounded.support(b)

    def test_cache_size_stays_bounded(self):
        limit = 50
        manager = BDDManager(variables=VARIABLES, cache_limit=limit)
        build_workload(manager, cases=120)
        stats = manager.cache_statistics()
        # A cache may exceed the limit by at most nothing after a drop:
        # every insertion past the limit clears that cache.
        assert len(manager._ite_cache) <= limit
        assert stats["clears"] >= 1
        assert stats["evicted_entries"] > 0

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            BDDManager(cache_limit=0)
        manager = BDDManager()
        with pytest.raises(ValueError):
            manager.cache_limit = -5

    def test_limit_can_be_tightened_later(self):
        manager = BDDManager(variables=VARIABLES)
        build_workload(manager, cases=40)
        assert manager.cache_size() > 10
        manager.cache_limit = 10
        assert manager.cache_size() <= 10
        assert manager.cache_limit == 10

    def test_bounded_verification_verdict_unchanged(self):
        """A full verification run is unaffected by a tiny cache bound."""
        reference = verify_beta_relation(VSMArchitecture(), all_normal(1))
        squeezed = verify_beta_relation(
            VSMArchitecture(), all_normal(1), manager=BDDManager(cache_limit=256)
        )
        assert squeezed.passed is reference.passed is True
        assert squeezed.specification_filter == reference.specification_filter
        assert squeezed.implementation_filter == reference.implementation_filter
        assert squeezed.bdd_nodes == reference.bdd_nodes


class TestAccounting:
    def test_hit_and_miss_counters_move(self):
        manager = BDDManager(variables=VARIABLES)
        a, b = manager.var("a"), manager.var("b")
        base = manager.cache_statistics()
        assert base["lookups"] == base["hits"] + base["misses"]
        manager.apply_and(a, b)
        after_miss = manager.cache_statistics()
        assert after_miss["misses"] > base["misses"]
        manager.apply_and(a, b)
        after_hit = manager.cache_statistics()
        assert after_hit["hits"] > after_miss["hits"]
        assert 0.0 <= after_hit["hit_rate"] <= 1.0

    def test_statistics_report_all_caches(self):
        manager = BDDManager(variables=VARIABLES)
        build_workload(manager, cases=10)
        manager.exists(["a"], manager.apply_and(manager.var("a"), manager.var("b")))
        stats = manager.cache_statistics()
        assert stats["total_entries"] == (
            stats["ite_entries"] + stats["quantify_entries"]
        )
        legacy = manager.statistics()
        assert legacy["ite_cache_entries"] == stats["ite_entries"]
        assert legacy["cache_hits"] == stats["hits"]

    def test_random_identity_checks_with_aggressive_bounding(self):
        """Stress: tiny caches + periodic clears never change node identity."""
        rng = random.Random(99)
        manager = BDDManager(variables=VARIABLES, cache_limit=16)
        reference = BDDManager(variables=VARIABLES)
        for index, (build, _) in enumerate(make_cases(60, depth=3)):
            if index % 7 == 0:
                manager.clear_caches()
            bounded_node = build(manager)
            reference_node = build(reference)
            assert manager.sat_count(bounded_node, VARIABLES) == reference.sat_count(
                reference_node, VARIABLES
            )
