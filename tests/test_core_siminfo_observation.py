"""Tests for simulation-information files, observation specs and reports."""

import json

import pytest

from repro.bdd import BDDManager
from repro.core import (
    Mismatch,
    ObservationSpec,
    SimulationInfo,
    SimulationInfoError,
    VerificationReport,
    all_normal,
    alpha0_default,
    alpha0_observables,
    control_at,
    parse_simulation_info,
    vsm_default,
    vsm_observables,
)
from repro.logic import BitVec
from repro.strings import CONTROL, NORMAL


class TestSimulationInfoParsing:
    def test_paper_vsm_file(self):
        text = """
        # Simulation Information File for VSM.
        r #Simulate a reset cycle
        0 #Simulate all instructions except for control transfer
        0
        1 #Simulate control transfer instructions
        0
        """
        info = parse_simulation_info(text)
        assert info == vsm_default()
        assert info.reset_cycles == 1
        assert info.slots == (NORMAL, NORMAL, CONTROL, NORMAL)
        assert info.num_slots == 4
        assert info.control_transfer_count == 1

    def test_paper_alpha0_file(self):
        text = "r\n0\n0\n1\n0\n0\n"
        assert parse_simulation_info(text) == alpha0_default()

    def test_roundtrip_through_to_text(self):
        info = vsm_default()
        assert parse_simulation_info(info.to_text("VSM")) == info

    def test_errors(self):
        with pytest.raises(SimulationInfoError):
            parse_simulation_info("0\n1\n")  # missing reset
        with pytest.raises(SimulationInfoError):
            parse_simulation_info("r\n")  # missing slots
        with pytest.raises(SimulationInfoError):
            parse_simulation_info("r\n0\nr\n")  # reset after slots
        with pytest.raises(SimulationInfoError):
            parse_simulation_info("r\n2\n")  # unknown token
        with pytest.raises(SimulationInfoError):
            SimulationInfo(reset_cycles=0, slots=(NORMAL,))
        with pytest.raises(SimulationInfoError):
            SimulationInfo(reset_cycles=1, slots=("weird",))

    def test_helpers(self):
        assert all_normal(3).slots == (NORMAL, NORMAL, NORMAL)
        assert control_at(4, 2).slots == (NORMAL, NORMAL, CONTROL, NORMAL)
        with pytest.raises(SimulationInfoError):
            control_at(4, 4)


class TestObservationSpec:
    def test_select(self):
        manager = BDDManager()
        spec = ObservationSpec(("a", "b"))
        observation = {
            "a": BitVec.constant(manager, 1, 2),
            "b": BitVec.constant(manager, 2, 2),
            "c": BitVec.constant(manager, 3, 2),
        }
        selected = spec.select(observation)
        assert set(selected) == {"a", "b"}

    def test_select_missing_raises(self):
        manager = BDDManager()
        spec = ObservationSpec(("a", "zz"))
        with pytest.raises(KeyError):
            spec.select({"a": BitVec.constant(manager, 0, 1)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ObservationSpec(())

    def test_vsm_defaults(self):
        spec = vsm_observables()
        assert "reg0" in spec.names and "reg7" in spec.names
        assert "pc_next" in spec.names and "retired_op" in spec.names
        assert len(spec) == 11
        assert len(vsm_observables(include_retirement_info=False)) == 9

    def test_alpha0_defaults(self):
        spec = alpha0_observables(num_registers=8, memory_words=4)
        assert "reg7" in spec.names and "mem3" in spec.names
        subset = alpha0_observables(num_registers=8, memory_words=4, registers=[1], memory=[])
        assert subset.names == ("reg1", "pc_next", "retired_op", "retired_dest")
        assert len(list(iter(subset))) == 4


class TestVerificationReport:
    def make_report(self, passed=True, mismatches=None):
        return VerificationReport(
            design="VSM",
            passed=passed,
            order_k=4,
            delay_slots=1,
            reset_cycles=1,
            slot_kinds=(NORMAL, NORMAL, CONTROL, NORMAL),
            specification_cycles=17,
            implementation_cycles=9,
            specification_filter=(1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1),
            implementation_filter=(1, 0, 0, 0, 1, 1, 1, 0, 1),
            samples_compared=5,
            observables_compared=11,
            sequences_covered=2 ** 40,
            mismatches=mismatches or [],
            specification_seconds=1.25,
            implementation_seconds=2.5,
            comparison_seconds=0.25,
            bdd_nodes=1000,
            bdd_variables=80,
        )

    def test_filter_lines_match_paper(self):
        spec_line, impl_line = self.make_report().filter_lines()
        assert spec_line.endswith("1 0 0 0 1 0 0 0 1 0 0 0 1 0 0 0 1")
        assert impl_line.endswith("1 0 0 0 1 1 1 0 1")

    def test_total_seconds(self):
        assert self.make_report().total_seconds == pytest.approx(4.0)

    def test_summary_mentions_verdict(self):
        assert "PASSED" in self.make_report().summary()
        mismatch = Mismatch(
            sample_index=2,
            observable="reg3",
            specification_cycle=8,
            implementation_cycle=5,
            decoded_instructions={"instr0": "add r3, r1, r2"},
        )
        failing = self.make_report(passed=False, mismatches=[mismatch])
        text = failing.summary()
        assert "FAILED" in text
        assert "reg3" in text and "add r3, r1, r2" in text

    def test_to_json_roundtrips(self):
        data = json.loads(self.make_report().to_json())
        assert data["design"] == "VSM"
        assert data["passed"] is True
        assert data["k"] == 4
        assert data["total_seconds"] == pytest.approx(4.0)

    def test_mismatch_describe_without_instructions(self):
        mismatch = Mismatch(0, "pc_next", 0, 0)
        assert "pc_next" in mismatch.describe()
