"""Engine integration of the relational subsystem.

Covers the scenario-level policy knob (serialisation, memoisation and
pooling keys), the pool's retire-on-reorder contract, and the headline
invariant: campaign verdicts are byte-identical with and without
dynamic reordering.
"""

import pytest

from repro.bdd import BDDManager, swap_adjacent
from repro.engine import (
    CampaignRunner,
    ManagerPool,
    RelationalPolicy,
    Scenario,
)
from repro.relational.policy import MONOLITHIC_POLICY
from repro.strings import CONTROL, NORMAL

#: A policy that always sifts (threshold 0) — small scenarios only.
SIFT_ALWAYS = RelationalPolicy(reorder="sift", reorder_threshold=0)


class TestPolicyOnScenario:
    def test_round_trip_through_dict(self):
        scenario = Scenario(
            name="t/policy",
            slots=(NORMAL, CONTROL),
            relational=RelationalPolicy(reorder="converge", max_cluster_size=4),
        )
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.relational.reorder == "converge"
        assert rebuilt.relational.max_cluster_size == 4

    def test_dict_payload_accepted_directly(self):
        scenario = Scenario(
            name="t/policy-dict",
            slots=(NORMAL,),
            relational={"reorder": "sift", "reorder_threshold": 5},
        )
        assert isinstance(scenario.relational, RelationalPolicy)
        assert scenario.relational.reorder_threshold == 5

    def test_policy_joins_cache_key(self):
        plain = Scenario(name="t/a", slots=(NORMAL,))
        tuned = Scenario(name="t/a", slots=(NORMAL,), relational=SIFT_ALWAYS)
        assert plain.cache_key() != tuned.cache_key()

    def test_order_signature_isolates_reordering_scenarios(self):
        plain = Scenario(name="t/a", slots=(NORMAL,))
        partition_only = Scenario(
            name="t/b", slots=(NORMAL,), relational=RelationalPolicy()
        )
        reordering = Scenario(name="t/c", slots=(NORMAL,), relational=SIFT_ALWAYS)
        # Partitioning knobs never change the variable order -> shared pool.
        assert plain.order_signature() == partition_only.order_signature()
        # A reordering scenario must not share a manager with the others.
        assert reordering.order_signature() != plain.order_signature()

    def test_invalid_policy_values_rejected(self):
        with pytest.raises(ValueError):
            RelationalPolicy(reorder="shuffle")
        with pytest.raises(ValueError):
            RelationalPolicy(max_cluster_size=0)
        with pytest.raises(TypeError):
            Scenario(name="t/bad", slots=(NORMAL,), relational="sift")

    def test_policy_rejected_on_superscalar_scenarios(self):
        from repro.isa import vsm as vsm_isa

        program = (vsm_isa.VSMInstruction("add", False, 1, 2, 3).encode(),)
        with pytest.raises(ValueError):
            Scenario(
                name="t/super",
                kind="superscalar",
                program=program,
                relational=RelationalPolicy(),
            )


class TestPoolRetireOnReorder:
    def test_reordered_manager_is_not_handed_out_again(self):
        pool = ManagerPool()
        signature = ("sig",)
        manager = pool.acquire(signature)
        manager.declare_all(["x", "y", "z"])
        manager.apply_and(manager.var("x"), manager.var("y"))
        swap_adjacent(manager, 0)  # dynamic reorder fires the hook
        assert pool.reorder_evictions == 1
        replacement = pool.acquire(signature)
        assert replacement is not manager
        assert pool.statistics()["reorder_evictions"] == 1

    def test_unreordered_manager_is_reused(self):
        pool = ManagerPool()
        signature = ("sig",)
        manager = pool.acquire(signature)
        assert pool.acquire(signature) is manager
        assert pool.reorder_evictions == 0

    def test_statistics_keep_counters_of_evicted_managers(self):
        """Retired managers' cache activity stays in the aggregate."""
        pool = ManagerPool()
        manager = pool.acquire(("sig",))
        manager.declare_all(["x", "y", "z"])
        f = manager.apply_and(manager.var("x"), manager.var("y"))
        manager.exists(["y"], f)
        before = pool.statistics()["cache"]
        assert before["misses"] > 0
        swap_adjacent(manager, 0)  # evicts the manager, retiring its counters
        after = pool.statistics()["cache"]
        assert after["hits"] >= before["hits"]
        assert after["misses"] >= before["misses"]
        assert after["clears"] >= before["clears"]

    def test_eviction_is_scoped_to_the_right_manager(self):
        pool = ManagerPool()
        signature = ("sig",)
        first = pool.acquire(signature)
        first.declare_all(["x", "y"])
        swap_adjacent(first, 0)  # evicts `first`
        second = pool.acquire(signature)
        second.declare_all(["x", "y"])
        # A late reorder of the *old* manager must not evict the new one.
        swap_adjacent(first, 0)
        assert pool.acquire(signature) is second
        assert pool.reorder_evictions == 1


class TestVerdictsUnderReordering:
    """Reordering mutates every node mid-campaign; verdicts must not move."""

    def verdicts(self, scenario):
        runner = CampaignRunner()
        return runner.run([scenario]).verdict_json()

    def test_late_branch_verdict_byte_identical_with_reordering(self):
        # Late-branch window at k=2 keeps the test fast; the full k=4
        # comparison lives in benchmarks/bench_relational.py.
        plain = Scenario(name="t/late-branch", slots=(NORMAL, CONTROL))
        sifted = Scenario(
            name="t/late-branch", slots=(NORMAL, CONTROL), relational=SIFT_ALWAYS
        )
        assert self.verdicts(plain) == self.verdicts(sifted)

    def test_partition_policy_verdict_byte_identical(self):
        plain = Scenario(name="t/late-branch", slots=(NORMAL, CONTROL))
        partitioned = Scenario(
            name="t/late-branch",
            slots=(NORMAL, CONTROL),
            relational=RelationalPolicy(),
        )
        monolithic = Scenario(
            name="t/late-branch",
            slots=(NORMAL, CONTROL),
            relational=MONOLITHIC_POLICY,
        )
        reference = self.verdicts(plain)
        assert self.verdicts(partitioned) == reference
        assert self.verdicts(monolithic) == reference

    def test_failing_scenario_still_fails_identically(self):
        plain = Scenario(
            name="t/no-annul", slots=(CONTROL, NORMAL), bug="no_annul"
        )
        sifted = Scenario(
            name="t/no-annul",
            slots=(CONTROL, NORMAL),
            bug="no_annul",
            relational=SIFT_ALWAYS,
        )
        runner_a, runner_b = CampaignRunner(), CampaignRunner()
        out_a = runner_a.run_one(plain)
        out_b = runner_b.run_one(sifted)
        assert not out_a.passed and not out_b.passed
        # The same observables mismatch at the same samples; witnesses may
        # legitimately differ (minimal assignments follow the order).
        keys = lambda out: sorted(  # noqa: E731
            (m["sample_index"], m["observable"]) for m in out.mismatches
        )
        assert keys(out_a) == keys(out_b)

    def test_reorder_activity_is_recorded_as_measurement(self):
        sifted = Scenario(
            name="t/late-branch", slots=(NORMAL, CONTROL), relational=SIFT_ALWAYS
        )
        runner = CampaignRunner()
        outcome = runner.run_one(sifted)
        assert outcome.passed
        assert outcome.reorder  # sifting ran...
        assert outcome.reorder["phase"] == "post-specification"
        assert "reorder" not in outcome.verdict()  # ...but is not a verdict
        # A zero-threshold sifting scenario sifts unconditionally with an
        # exact root metric, so it may run on a pooled manager; the pool
        # retires that manager at the first swap, leaving it empty again.
        assert len(runner.pool) == 0
        assert runner.pool.statistics()["reorder_evictions"] == 1

    def test_thresholded_reordering_scenario_stays_private(self):
        """A size-triggered sift depends on pool history -> private manager."""
        thresholded = Scenario(
            name="t/thresholded",
            slots=(NORMAL, CONTROL),
            relational=RelationalPolicy(reorder="sift", reorder_threshold=10),
        )
        runner = CampaignRunner()
        outcome = runner.run_one(thresholded)
        assert outcome.passed
        assert len(runner.pool) == 0
        assert runner.pool.statistics()["acquisitions"] == 0
        assert runner.pool.statistics()["reorder_evictions"] == 0

    def test_campaign_with_reordering_scenario_keeps_pool_stats_sane(self):
        """Mixed campaign: the reordering scenario must not corrupt pool stats."""
        runner = CampaignRunner(memoize=False)
        runner.run_one(Scenario(name="t/warm", slots=(NORMAL, CONTROL)))
        report = runner.run(
            [
                Scenario(
                    name="t/sifted",
                    slots=(NORMAL, CONTROL),
                    relational=SIFT_ALWAYS,
                ),
                Scenario(name="t/after", slots=(NORMAL, CONTROL)),
            ]
        )
        cache = report.pool["cache"]
        assert cache["hits"] >= 0 and cache["misses"] >= 0
        assert cache["clears"] >= 0 and cache["evicted_entries"] >= 0
        # The sifted scenario's pooled manager was retired at its first
        # swap; the plain one reused the warm manager.
        assert report.pool["reorder_evictions"] == 1
        assert report.pool["reuses"] == 1


class TestDefaultSiftingCampaignStatistics:
    """Pool retirement accounting under a campaign that sifts by default.

    Zero-threshold sifting scenarios run on pooled managers and retire
    them at their first swap, so one campaign can retire several
    managers.  Every pool counter — ``reorder_evictions`` and the folded
    cache counters of retired managers — must stay monotonic throughout,
    and the verdicts must match fresh-runner runs byte for byte.
    """

    SCENARIOS = [
        Scenario(name="t/sift-a", slots=(NORMAL, CONTROL), relational=SIFT_ALWAYS),
        Scenario(name="t/sift-b", slots=(CONTROL, NORMAL), relational=SIFT_ALWAYS),
        Scenario(name="t/sift-c", slots=(NORMAL, NORMAL), relational=SIFT_ALWAYS),
    ]

    MONOTONIC_COUNTERS = ("hits", "misses", "evicted_entries", "clears")

    def test_multiple_retirements_keep_counters_monotonic(self):
        runner = CampaignRunner(memoize=False)
        previous = runner.pool.statistics()
        evictions_seen = previous["reorder_evictions"]
        for scenario in self.SCENARIOS:
            outcome = runner.run_one(scenario)
            assert outcome.passed
            assert outcome.reorder["swaps"] > 0  # sifting really ran
            stats = runner.pool.statistics()
            assert stats["reorder_evictions"] >= evictions_seen
            for counter in self.MONOTONIC_COUNTERS:
                assert stats["cache"][counter] >= previous["cache"][counter], counter
            previous, evictions_seen = stats, stats["reorder_evictions"]
        # Every sifting scenario's manager was acquired from the pool and
        # retired again by its first swap.
        assert previous["acquisitions"] == len(self.SCENARIOS)
        assert previous["reorder_evictions"] == len(self.SCENARIOS)
        assert previous["managers"] == 0
        # Folded counters survive a full pool clear, still monotonic.
        runner.pool.clear()
        final = runner.pool.statistics()
        for counter in self.MONOTONIC_COUNTERS:
            assert final["cache"][counter] >= previous["cache"][counter], counter

    def test_pooled_sifting_verdicts_match_fresh_runs(self):
        campaign = CampaignRunner(memoize=False).run(self.SCENARIOS)
        fresh = [CampaignRunner().run([scenario]) for scenario in self.SCENARIOS]
        for outcome, single in zip(campaign.outcomes, fresh):
            assert [outcome.verdict()] == [o.verdict() for o in single.outcomes]
        assert campaign.pool["reorder_evictions"] == len(self.SCENARIOS)

    def test_same_signature_scenarios_each_get_a_fresh_manager(self):
        """After a retirement the next acquisition must not see the old order."""
        runner = CampaignRunner(memoize=False)
        first = runner.run_one(self.SCENARIOS[0])
        second = runner.run_one(self.SCENARIOS[0].renamed("t/sift-a2"))
        assert first.verdict()["passed"] and second.verdict()["passed"]
        stats = runner.pool.statistics()
        assert stats["acquisitions"] == 2
        assert stats["reuses"] == 0
        assert stats["reorder_evictions"] == 2

    def test_events_scenario_with_reordering(self):
        plain = Scenario(
            name="t/event", kind="events", slots=(NORMAL,) * 3, event_slots=(1,)
        )
        sifted = Scenario(
            name="t/event",
            kind="events",
            slots=(NORMAL,) * 3,
            event_slots=(1,),
            relational=SIFT_ALWAYS,
        )
        verdicts = lambda s: CampaignRunner().run([s]).verdict_json()  # noqa: E731
        assert verdicts(plain) == verdicts(sifted)
