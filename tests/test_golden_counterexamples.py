"""Golden counterexample regression suite.

Every injected bug of the bug-injection catalogue must keep producing a
counterexample that decodes to the *same* failing instruction sequence
as when the golden file was recorded (``tests/data/``).  This pins down
three things at once:

* the bug is still detected (the mismatch exists),
* counterexample extraction is deterministic (fixed variable orders and
  the minimal-witness walk of ``pick_assignment``),
* the decoding pipeline (witness assignment → instruction words →
  disassembly) is stable.

If an intentional change to stimulus construction or variable ordering
shifts the witnesses, regenerate the goldens by running this file as a
script: ``PYTHONPATH=src python tests/test_golden_counterexamples.py``.
"""

import json
import pathlib

import pytest

from repro.campaigns import load_corpus_records, witness_key
from repro.engine import Scenario, execute_scenario

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_counterexamples.json"


def load_goldens():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)["scenarios"]


GOLDENS = load_goldens()


@pytest.fixture(scope="module")
def outcomes():
    """Run every golden scenario once (fresh manager each, as recorded)."""
    results = {}
    for name, entry in GOLDENS.items():
        scenario = Scenario.from_dict(entry["scenario"])
        results[name] = execute_scenario(scenario)
    return results


def test_golden_file_covers_both_designs_and_events():
    names = set(GOLDENS)
    assert any(name.startswith("vsm/bug/") for name in names)
    assert any(name.startswith("alpha0/bug/") for name in names)
    assert any("event" in name for name in names)
    assert len(names) >= 10


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_bug_still_detected(name, outcomes):
    outcome = outcomes[name]
    assert not outcome.passed, f"{name}: injected bug escaped verification"
    assert outcome.mismatches


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_mismatch_count_is_stable(name, outcomes):
    assert len(outcomes[name].mismatches) == GOLDENS[name]["mismatch_count"]


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_counterexamples_decode_to_the_same_sequences(name, outcomes):
    golden_mismatches = GOLDENS[name]["first_mismatches"]
    fresh = outcomes[name].mismatches[: len(golden_mismatches)]
    for index, (expected, actual) in enumerate(zip(golden_mismatches, fresh)):
        context = f"{name} mismatch {index}"
        assert actual["observable"] == expected["observable"], context
        assert actual["sample_index"] == expected["sample_index"], context
        assert actual["specification_cycle"] == expected["specification_cycle"], context
        assert actual["implementation_cycle"] == expected["implementation_cycle"], context
        assert actual["decoded"] == expected["decoded"], context
        assert actual["words"] == {k: int(v) for k, v in expected["words"].items()}, context
        assert actual["counterexample"] == expected["counterexample"], context


def test_beta_goldens_exercise_the_relational_backend(outcomes):
    """The default (relational) beta backend reproduces every stored
    counterexample: it refutes exactly the scenarios the compose path
    refutes, then re-derives the byte-identical records classically."""
    beta_outcomes = [o for o in outcomes.values() if o.kind == "beta"]
    assert beta_outcomes
    for outcome in beta_outcomes:
        assert outcome.backend == "relational+fallback", outcome.scenario


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_counterexample_words_match_their_disassembly(name):
    """Internal consistency of the stored goldens themselves."""
    for mismatch in GOLDENS[name]["first_mismatches"]:
        decoded = mismatch["decoded"]
        assert mismatch["words"].keys() <= decoded.keys()
        for label in mismatch["words"]:
            assert decoded[label], f"{name}: empty disassembly for {label}"


# ----------------------------------------------------------------------
# Fuzz-corpus replay: minimized witnesses are golden records too
# ----------------------------------------------------------------------
FUZZ_RECORDS = {
    record["fingerprint"]: record for record in load_corpus_records()
}


def _canonical(mismatches):
    return json.dumps(mismatches, indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def fuzz_outcomes():
    """Replay every committed fuzz-corpus record once."""
    results = {}
    for fingerprint, record in FUZZ_RECORDS.items():
        scenario = Scenario.from_dict(record["scenario"])
        results[fingerprint] = (scenario, execute_scenario(scenario))
    return results


def test_fuzz_corpus_has_minimized_records():
    assert FUZZ_RECORDS, "tests/data/fuzz_corpus must hold witness records"
    for record in FUZZ_RECORDS.values():
        assert record["scenario"]["name"].startswith("fuzz/min/")


@pytest.mark.parametrize("fingerprint", sorted(FUZZ_RECORDS))
def test_fuzz_record_is_content_addressed(fingerprint):
    """The stored fingerprint is the scenario's own content address."""
    scenario = Scenario.from_dict(FUZZ_RECORDS[fingerprint]["scenario"])
    assert witness_key(scenario) == fingerprint
    assert scenario.name == f"fuzz/min/{fingerprint[:12]}"


@pytest.mark.parametrize("fingerprint", sorted(FUZZ_RECORDS))
def test_fuzz_record_still_refutes(fingerprint, fuzz_outcomes):
    """Replaying a minimized witness never flips its verdict."""
    scenario, outcome = fuzz_outcomes[fingerprint]
    assert not outcome.passed, f"{scenario.name}: minimized witness escaped"
    assert outcome.error is None
    assert outcome.mismatches


@pytest.mark.parametrize("fingerprint", sorted(FUZZ_RECORDS))
def test_fuzz_record_mismatches_are_stable(fingerprint, fuzz_outcomes):
    """Fresh replay reproduces the recorded mismatches byte for byte."""
    record = FUZZ_RECORDS[fingerprint]
    _, outcome = fuzz_outcomes[fingerprint]
    assert len(outcome.mismatches) == record["mismatch_count"]
    fresh = outcome.mismatches[: len(record["first_mismatches"])]
    assert _canonical(fresh) == _canonical(record["first_mismatches"])


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    """Re-record the golden file from the current engine behaviour."""
    payload = {"scenarios": {}}
    for name, entry in sorted(load_goldens().items()):
        scenario = Scenario.from_dict(entry["scenario"])
        outcome = execute_scenario(scenario)
        if outcome.passed:
            raise SystemExit(f"{name}: scenario no longer fails; goldens not updated")
        payload["scenarios"][name] = {
            "scenario": scenario.to_dict(),
            "mismatch_count": len(outcome.mismatches),
            "first_mismatches": outcome.mismatches[:3],
        }
        print(f"recorded {name}: {len(outcome.mismatches)} mismatch(es)")
    with GOLDEN_PATH.open("w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
