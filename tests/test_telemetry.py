"""Tests of the unified telemetry subsystem.

Covers the three layers and their engine integration:

* registry — instrument semantics, name-collision detection, nested
  statistics absorption, thread safety under concurrent increments;
* tracing — span nesting/parenting (including under exceptions and
  ``KeyboardInterrupt``), the disabled-mode no-op singleton fast path,
  kernel delta attribution, worker config propagation, JSONL round-trip;
* report — self-time attribution, per-scenario phase breakdown, anomaly
  heuristics, the CLI entry point;
* engine — the campaign report's ``telemetry`` section, the report
  schema version / caller-injected timestamp, and the store's
  normalized per-family rates.

Verdict byte-identity traced vs untraced lives in the differential
suite (``test_engine_differential.py``).
"""

import json
import threading

import pytest

from repro import telemetry
from repro.bdd import BDDManager
from repro.engine import CampaignRunner, Scenario
from repro.engine.report import REPORT_SCHEMA_VERSION, CampaignReport, ScenarioOutcome
from repro.engine.store import ResultStore
from repro.telemetry import report as trace_report
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import Tracer


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with tracing disabled."""
    telemetry.disable()
    yield
    telemetry.disable()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == [[0.1, 1], [1.0, 2], ["+Inf", 1]]
        assert snap["min"] == 0.05 and snap["max"] == 5.0
        assert snap["sum"] == pytest.approx(6.05)

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_absorb_flattens_nested_statistics(self):
        registry = MetricsRegistry()
        registry.absorb(
            "pool",
            {
                "managers": 2,
                "cache": {"hits": 10, "hit_rate": 0.5},
                "note": "not numeric",
                "per_worker": [1, 2],
            },
        )
        snap = registry.snapshot()
        assert snap["gauges"]["pool.managers"] == 2
        assert snap["gauges"]["pool.cache.hits"] == 10
        assert snap["gauges"]["pool.cache.hit_rate"] == 0.5
        assert "pool.note" not in snap["gauges"]
        assert "pool.per_worker" not in snap["gauges"]

    def test_snapshot_is_json_serialisable_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        snap = registry.snapshot()
        json.dumps(snap)
        assert list(snap["counters"]) == ["a", "b"]

    def test_thread_safety_under_concurrent_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("shared")
        histogram = registry.histogram("h")

        def work():
            for _ in range(2000):
                counter.inc()
                histogram.observe(0.01)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 16000
        assert histogram.snapshot()["count"] == 16000


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_disabled_span_is_the_shared_singleton(self):
        assert not telemetry.enabled()
        first = telemetry.span("anything", attr=1)
        second = telemetry.span("else")
        assert first is telemetry.NULL_SPAN
        assert second is telemetry.NULL_SPAN
        with first as live:
            live.set(ignored=True)

    def test_span_nesting_records_parent_ids(self):
        tracer = telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        with telemetry.span("sibling"):
            pass
        events = {event["name"]: event for event in tracer.events}
        assert events["inner"]["parent"] == events["outer"]["id"]
        assert events["outer"]["parent"] is None
        assert events["sibling"]["parent"] is None

    def test_exception_exit_records_event_and_unwinds(self):
        tracer = telemetry.enable()
        with pytest.raises(ValueError):
            with telemetry.span("outer"):
                with telemetry.span("failing"):
                    raise ValueError("boom")
        with telemetry.span("after"):
            pass
        events = {event["name"]: event for event in tracer.events}
        assert events["failing"]["error"] == "ValueError"
        assert events["failing"]["parent"] == events["outer"]["id"]
        assert events["outer"]["error"] == "ValueError"
        # The stack unwound fully: a later span is a root again.
        assert events["after"]["parent"] is None

    def test_keyboard_interrupt_still_yields_parseable_trace(self):
        tracer = telemetry.enable()
        with pytest.raises(KeyboardInterrupt):
            with telemetry.span("campaign"):
                with telemetry.span("scenario"):
                    raise KeyboardInterrupt()
        events = {event["name"]: event for event in tracer.events}
        assert set(events) == {"campaign", "scenario"}
        assert events["scenario"]["error"] == "KeyboardInterrupt"
        assert events["scenario"]["parent"] == events["campaign"]["id"]

    def test_manager_deltas_attributed_to_span(self):
        tracer = telemetry.enable()
        manager = BDDManager()
        with telemetry.span("build", manager=manager):
            a = manager.var("a")
            b = manager.var("b")
            manager.apply_and(a, b)
        (event,) = tracer.events
        deltas = event["deltas"]
        assert deltas["nodes_allocated"] >= 3
        assert deltas["cache_misses"] >= 1

    def test_span_feeds_registry_histogram_and_counter(self):
        telemetry.enable()
        before = telemetry.get_registry().counter("span.fed.count").value
        with telemetry.span("fed"):
            pass
        registry = telemetry.get_registry()
        assert registry.counter("span.fed.count").value == before + 1
        assert registry.histogram("span.fed.seconds").snapshot()["count"] >= 1

    def test_jsonl_flush_and_load_round_trip(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        tracer = telemetry.enable(trace_path=trace_path)
        with telemetry.span("one", role="spec"):
            pass
        assert tracer.flush() == 1
        assert tracer.flush() == 0  # nothing new
        events = trace_report.load_events(trace_path)
        assert events[0]["name"] == "one"
        assert events[0]["attrs"] == {"role": "spec"}

    def test_worker_config_round_trip(self):
        assert telemetry.config_state() == {"enabled": False}
        telemetry.enable()
        state = telemetry.config_state()
        assert state == {"enabled": True}
        telemetry.configure(state, worker="w7")
        tracer = telemetry.get_tracer()
        assert tracer.worker == "w7"
        telemetry.configure({"enabled": False})
        assert not telemetry.enabled()

    def test_absorb_merges_foreign_worker_events(self):
        parent = telemetry.enable()
        with telemetry.span("parent.work"):
            pass
        worker = Tracer(worker="w0")
        with worker.span("worker.work"):
            pass
        parent.absorb(worker.drain())
        workers = {event["worker"] for event in parent.events}
        assert workers == {"main", "w0"}
        assert worker.events == []


# ----------------------------------------------------------------------
# Report analysis
# ----------------------------------------------------------------------
def _span(id, name, seconds, parent=None, worker="main", start=0.0, **extra):
    event = {
        "type": "span",
        "id": id,
        "parent": parent,
        "worker": worker,
        "name": name,
        "start": start,
        "seconds": seconds,
    }
    event.update(extra)
    return event


class TestReportAnalysis:
    def test_self_time_subtracts_direct_children(self):
        events = [
            _span(1, "outer", 1.0),
            _span(2, "inner", 0.6, parent=1, start=0.1),
            _span(3, "leaf", 0.2, parent=2, start=0.2),
        ]
        selfs = trace_report.self_seconds(events)
        assert selfs[("main", 1)] == pytest.approx(0.4)
        assert selfs[("main", 2)] == pytest.approx(0.4)
        assert selfs[("main", 3)] == pytest.approx(0.2)

    def test_orphaned_parent_treated_as_root(self):
        events = [_span(5, "lost", 0.3, parent=99)]
        index = trace_report.children_index(events)
        assert index[None][0]["name"] == "lost"

    def test_phase_breakdown_keys_by_scenario(self):
        events = [
            _span(1, "scenario.execute", 1.0, attrs={"scenario": "s1"}),
            _span(2, "beta.extract", 0.7, parent=1, start=0.1),
            _span(3, "beta.compare", 0.2, parent=1, start=0.8),
        ]
        phases = trace_report.phase_breakdown(events)
        assert phases["s1"]["total"] == pytest.approx(1.0)
        assert phases["s1"]["beta.extract"] == pytest.approx(0.7)
        assert phases["s1"]["beta.compare"] == pytest.approx(0.2)

    def test_gc_churn_anomaly(self):
        events = [
            _span(1, "hot", 0.5, deltas={"gc_runs": 4, "gc_reclaimed": 900})
        ]
        anomalies = trace_report.find_anomalies(events)
        assert [a["kind"] for a in anomalies] == ["gc-churn"]

    def test_cache_hit_rate_drop_anomaly(self):
        ok = {"cache_hits": 900, "cache_misses": 100}
        bad = {"cache_hits": 100, "cache_misses": 900}
        events = [
            _span(1, "warm", 0.1, deltas=ok),
            _span(2, "warm", 0.1, deltas=ok),
            _span(3, "cold", 0.1, deltas=bad),
        ]
        anomalies = trace_report.find_anomalies(events)
        assert [a["kind"] for a in anomalies] == ["cache-hit-rate-drop"]
        assert anomalies[0]["span"] == "cold"

    def test_shard_imbalance_anomaly(self):
        events = [
            _span(1, "worker.drain", 10.0, worker="w0"),
            _span(1, "worker.drain", 1.0, worker="w1"),
        ]
        anomalies = trace_report.find_anomalies(events)
        assert [a["kind"] for a in anomalies] == ["shard-imbalance"]

    def test_balanced_workers_not_flagged(self):
        events = [
            _span(1, "worker.drain", 1.0, worker="w0"),
            _span(1, "worker.drain", 1.2, worker="w1"),
        ]
        assert trace_report.find_anomalies(events) == []

    def test_cli_renders_tree_and_json(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        telemetry.write_events(
            trace_path, [_span(1, "root", 1.0), _span(2, "leaf", 0.4, parent=1)]
        )
        assert trace_report.main([str(trace_path)]) == 0
        rendered = capsys.readouterr().out
        assert "root" in rendered and "leaf" in rendered
        assert trace_report.main([str(trace_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["span_count"] == 2


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_untraced_campaign_report_has_empty_telemetry(self):
        report = CampaignRunner().run(["vsm/default"])
        assert report.telemetry == {}

    def test_traced_campaign_report_carries_trace_and_registry(self, tmp_path):
        telemetry.enable(trace_path=tmp_path / "trace.jsonl")
        runner = CampaignRunner(store_path=tmp_path / "store")
        report = runner.run(["vsm/default"])
        telemetry.disable()
        section = report.telemetry
        trace = section["trace"]
        assert trace["span_count"] > 0
        assert "vsm/default" in trace["phases"]
        names = {row["name"] for row in trace["top_spans"]}
        assert "scenario.execute" in names or "campaign.run" in names
        assert "pool.acquisitions" in section["registry"]["gauges"]
        assert "store.results.hit_rate" in section["registry"]["gauges"]
        events = trace_report.load_events(tmp_path / "trace.jsonl")
        assert any(event["name"] == "campaign.run" for event in events)
        assert any(event["name"] == "store.write" for event in events)

    def test_report_schema_version_and_generated_at(self):
        report = CampaignReport(outcomes=[])
        payload = report.to_dict(generated_at="2026-08-08T00:00:00Z")
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["generated_at"] == "2026-08-08T00:00:00Z"
        assert payload["telemetry"] == {}
        assert report.to_dict()["generated_at"] is None

    def test_outcome_verdict_never_contains_telemetry(self):
        outcome = ScenarioOutcome(
            scenario="s", kind="k", design="d", passed=True
        )
        assert "telemetry" not in outcome.verdict()

    def test_store_statistics_normalized_rates(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.load_result("00" * 32) is None
        store.save_result("00" * 32, {"verdict": {}})
        assert store.load_result("00" * 32) is not None
        stats = store.statistics()
        for family in ("results", "snapshots"):
            assert "hit_rate" in stats[family]
            assert "survival_rate" in stats[family]
        assert stats["results"]["hit_rate"] == pytest.approx(0.5)
        assert stats["results"]["survival_rate"] == 1.0
        assert stats["snapshots"]["survival_rate"] == 1.0

    def test_store_reads_and_writes_traced(self, tmp_path):
        tracer = telemetry.enable()
        store = ResultStore(tmp_path / "store")
        store.load_result("11" * 32)
        store.save_result("11" * 32, {"verdict": {}})
        store.load_result("11" * 32)
        events = [(e["name"], (e.get("attrs") or {}).get("status")) for e in tracer.events]
        assert ("store.read", "miss") in events
        assert ("store.write", None) in events
        assert ("store.read", "hit") in events

    def test_traced_parallel_campaign_merges_worker_events(self, tmp_path):
        telemetry.enable()
        runner = CampaignRunner(store_path=tmp_path / "store")
        report = runner.run(
            ["vsm/default", "vsm/event/slot0"], parallel=True, max_workers=2
        )
        tracer = telemetry.disable()
        workers = {event["worker"] for event in tracer.events}
        assert "main" in workers
        assert any(worker.startswith("w") for worker in workers - {"main"})
        assert any(
            event["name"] == "worker.drain" for event in tracer.events
        )
        registries = report.telemetry["workers"]["registries"]
        assert registries  # one snapshot per traced worker
        for snapshot in registries.values():
            assert "counters" in snapshot
