"""Tests for symbolic FSM extraction, unrolling and concrete execution."""

import pytest

from repro.bdd import BDDManager
from repro.fsm import SymbolicFSM
from repro.logic import counter, shift_register, toggle_machine


class TestFromNetlist:
    def test_extraction_basics(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(toggle_machine(), manager)
        assert fsm.input_names == ["enable"]
        assert fsm.state_names == ["state"]
        assert fsm.output_names() == ("state",)
        assert fsm.reset_state == {"state": False}
        assert fsm.state_count_bound() == 2

    def test_extraction_with_prefix(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(toggle_machine(), manager, prefix="impl.")
        assert fsm.input_names == ["impl.enable"]
        assert fsm.state_names == ["impl.state"]
        # Output names are not prefixed (they are compared across machines).
        assert fsm.output_names() == ("state",)

    def test_missing_next_state_rejected(self):
        manager = BDDManager()
        with pytest.raises(ValueError):
            SymbolicFSM(
                manager,
                input_names=["x"],
                state_names=["s"],
                next_state={},
                outputs={},
                reset_state={},
            )

    def test_reset_cube_and_formulae(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(2), manager)
        cube = fsm.reset_cube()
        assert manager.evaluate(cube, {"q0": False, "q1": False}) is True
        assert manager.evaluate(cube, {"q0": True, "q1": False}) is False
        formulae = fsm.reset_formulae()
        assert formulae["q0"] is manager.zero


class TestConcreteRun:
    def test_toggle_run_matches_netlist(self):
        netlist = toggle_machine()
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(netlist, manager)
        stimulus = [{"enable": v} for v in (True, True, False, True)]
        fsm_trace = [t["state"] for t in fsm.run(stimulus)]
        netlist_trace = [t["state"] for t in netlist.simulate(stimulus)]
        assert fsm_trace == netlist_trace

    def test_counter_run(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(2), manager)
        trace = fsm.run([{}] * 5)
        values = [t["q0"] + 2 * t["q1"] for t in trace]
        assert values == [0, 1, 2, 3, 0]


class TestUnroll:
    def test_unroll_shapes(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(shift_register(2), manager)
        trace = fsm.unroll(3)
        assert trace.cycles == 3
        assert len(trace.states) == 4
        assert len(trace.input_names) == 3
        assert trace.input_names[0] == {"din": "din@0"}

    def test_unroll_semantics_shift_register(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(shift_register(2), manager)
        trace = fsm.unroll(4)
        # The output at cycle 3 is the input of cycle 1 (two-stage delay).
        output_name = fsm.output_names()[0]
        assert trace.outputs[3][output_name] is manager.var("din@1")
        # During fill the output is the reset value (constant 0).
        assert trace.outputs[0][output_name] is manager.zero

    def test_unroll_with_input_constraints(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(toggle_machine(), manager)
        constraints = [{"enable": manager.one}, {"enable": manager.zero}, None]
        trace = fsm.unroll(3, input_constraints=constraints)
        # After forcing enable=1 then 0, the state is constant 1.
        assert trace.outputs[1]["state"] is manager.one
        assert trace.outputs[2]["state"] is manager.one
        # No fresh variable is created for constrained cycles.
        assert trace.input_names[0] == {}
        assert trace.input_names[2] == {"enable": "enable@2"}

    def test_unroll_with_initial_state(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(toggle_machine(), manager)
        initial = {"state": manager.var("s0")}
        trace = fsm.unroll(1, input_constraints=[{"enable": manager.zero}], initial_state=initial)
        assert trace.states[1]["state"] is manager.var("s0")

    def test_unroll_matches_concrete_run(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(3), manager)
        trace = fsm.unroll(6)
        concrete = fsm.run([{}] * 6)
        for cycle in range(6):
            for name, value in concrete[cycle].items():
                assert manager.evaluate(trace.outputs[cycle][name], {}) == value
