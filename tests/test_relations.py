"""Tests of the beta- and alpha-relations on executable string functions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.strings import (
    LiftedFunction,
    MachineFunction,
    alpha_holds,
    alpha_holds_everywhere,
    beta_counterexample,
    beta_holds,
    beta_holds_everywhere,
    beta_schedule,
    delay_filter,
    modulo_counter_filter,
    one,
    relevant,
)


class TestRelevant:
    def test_basic_selection(self):
        assert relevant((10, 20, 30, 40), (1, 0, 1, 0)) == (10, 30)

    def test_empty(self):
        assert relevant((), ()) == ()

    def test_all_kept_and_all_dropped(self):
        assert relevant((1, 2), (1, 1)) == (1, 2)
        assert relevant((1, 2), (0, 0)) == ()

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            relevant((1, 2, 3), (1, 0))

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(), st.booleans()), max_size=10))
    def test_relevant_length_is_number_of_ones(self, pairs):
        x = tuple(value for value, _ in pairs)
        h = tuple(1 if keep else 0 for _, keep in pairs)
        assert len(relevant(x, h)) == sum(h)


class TestDelayFilter:
    def test_zero_delay_is_identity(self):
        assert delay_filter((1, 0, 1), 0) == (1, 0, 1)

    def test_positive_delay_shifts_right(self):
        assert delay_filter((1, 0, 1, 0), 1) == (0, 1, 0, 1)
        assert delay_filter((1, 0, 1, 0), 2) == (0, 0, 1, 0)

    def test_delay_longer_than_string(self):
        assert delay_filter((1, 1), 5) == (0, 0)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            delay_filter((1,), -1)


class TestBetaRelationFigure1:
    """The Figure 1 example: H = modulo-2 counter, n = 1.

    The specification consumes every other input and produces a result
    immediately; the implementation produces the same results but one
    cycle later (and produces junk in between).
    """

    @staticmethod
    def specification():
        # G: doubles every character (every character is relevant to G).
        return LiftedFunction(lambda u: 2 * u)

    @staticmethod
    def implementation():
        # F: remembers the last input; outputs twice the *previous* input.
        # At relevant (odd) cycles this equals the specification's output
        # on the relevant (even-cycle) inputs, delayed by one.
        return MachineFunction(lambda state, u: (u, 2 * state), 0)

    def test_beta_holds_on_samples(self):
        F = self.implementation()
        G = self.specification()
        H = modulo_counter_filter(2)
        for x in [(), (3,), (3, 0), (3, 0, 5, 0), (1, 2, 3, 4, 5, 6)]:
            assert beta_holds(F, G, H, 1, x)

    def test_beta_holds_exhaustively(self):
        F = self.implementation()
        G = self.specification()
        H = modulo_counter_filter(2)
        assert beta_holds_everywhere(F, G, H, 1, alphabet=(0, 1, 2), max_length=5)

    def test_beta_fails_for_wrong_implementation(self):
        # An implementation that forgets to double is caught.
        broken = MachineFunction(lambda state, u: (u, state), 0)
        G = self.specification()
        H = modulo_counter_filter(2)
        witness = beta_counterexample(broken, G, H, 1, alphabet=(0, 1, 2), max_length=4)
        assert witness is not None
        assert not beta_holds(broken, G, H, 1, witness)

    def test_beta_trivially_holds_on_too_short_strings(self):
        F = self.implementation()
        G = self.specification()
        H = modulo_counter_filter(2)
        assert beta_holds(F, G, H, 5, (1, 2))


class TestBetaRelationIdentityFilter:
    def test_identity_filter_and_zero_delay_is_equality(self):
        """With H = one and n = 0 the beta-relation degenerates to I/O equality."""
        F = LiftedFunction(lambda u: u + 1)
        G = LiftedFunction(lambda u: u + 1)
        assert beta_holds_everywhere(F, G, one, 0, alphabet=(0, 1), max_length=4)
        different = LiftedFunction(lambda u: u)
        assert not beta_holds_everywhere(F, different, one, 0, alphabet=(0, 1), max_length=4)


class TestAlphaRelation:
    def test_alpha_subsumed_by_beta(self):
        """F alpha_n G with junk prefix z: the pipeline-latency relation."""
        # F delays its (incremented) input by one cycle, emitting 0 first.
        F = MachineFunction(lambda state, u: (u + 1, state), 0)
        G = LiftedFunction(lambda u: u + 1)
        holds, z = alpha_holds(F, G, 1, (3, 4, 5), padding=(0,))
        assert holds
        assert z == (0,)
        assert alpha_holds_everywhere(F, G, 1, alphabet=(0, 1, 2), max_length=4)

    def test_alpha_fails_when_prefix_depends_on_input(self):
        # The junk prefix must be the same for every input string.
        F = MachineFunction(lambda state, u: (u, state), "sentinel")
        G = LiftedFunction(lambda u: u)

        class FirstCharacterLeaks(MachineFunction):
            pass

        leaky = MachineFunction(lambda state, u: (u, u if state is None else state), None)
        assert not alpha_holds_everywhere(leaky, G, 1, alphabet=(0, 1), max_length=3)
        assert alpha_holds_everywhere(F, G, 1, alphabet=(0, 1), max_length=3)

    def test_alpha_padding_length_must_match(self):
        F = LiftedFunction(lambda u: u)
        G = LiftedFunction(lambda u: u)
        with pytest.raises(ValueError):
            alpha_holds(F, G, 2, (1,), padding=(0,))


class TestBetaSchedule:
    def test_schedule_lists_one_positions(self):
        assert beta_schedule((1, 0, 0, 1, 0, 1)) == (0, 3, 5)
        assert beta_schedule(()) == ()
