"""Invariant suite for the array-backed integer-handle BDD kernel.

The kernel (:mod:`repro.bdd.kernel`) stores nodes in parallel arrays
addressed by integer handles, reclaims dead handles by mark-and-sweep
into a free-list, and serves every operation from one iterative ITE
core.  These tests pin the properties the rest of the repo builds on:

* free-list reuse never *resurrects* a reclaimed handle — once swept, a
  handle is gone from the table, the per-level index and the wrapper
  interning, and comes back only via the allocator with fresh contents;
* mark-and-sweep keeps exactly the nodes reachable from the live roots
  (the wrappers external code still holds, plus explicit roots);
* the per-level index equals a recomputed partition of the unique table
  after arbitrary interleavings of operations, GC, level swaps and
  sifting;
* verdicts are GC-transparent: a verification run on a manager that
  aggressively collects between operations is byte-identical to the
  stored golden counterexamples.

All randomness is seeded; the suite is deterministic.
"""

import json
import pathlib
import random

import pytest

from repro.bdd import BDDManager, converge_sift, create_manager, sift_variable, swap_adjacent
from repro.bdd.vector import numpy_available

SEED = 20260730

#: Run every test in this module on both kernel backends.  The vector
#: leg is skipped when numpy is absent (its batch paths then fall back
#: to the scalar loops anyway, which the dict leg already covers).
KERNEL_BACKENDS_UNDER_TEST = [
    "dict",
    pytest.param(
        "vector",
        marks=pytest.mark.skipif(
            not numpy_available(), reason="numpy not installed"
        ),
    ),
]


@pytest.fixture(autouse=True, params=KERNEL_BACKENDS_UNDER_TEST, ids=str)
def kernel_backend(request, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", request.param)
    return request.param



def random_function(manager, rng, names, depth=4):
    """A random function over ``names`` built from the core operations."""
    if depth == 0 or rng.random() < 0.25:
        name = rng.choice(names)
        return manager.var(name) if rng.random() < 0.5 else manager.nvar(name)
    left = random_function(manager, rng, names, depth - 1)
    right = random_function(manager, rng, names, depth - 1)
    op = rng.randrange(5)
    if op == 0:
        return manager.apply_and(left, right)
    if op == 1:
        return manager.apply_or(left, right)
    if op == 2:
        return manager.apply_xor(left, right)
    if op == 3:
        return manager.exists([rng.choice(names)], left)
    return manager.ite(left, right, manager.apply_not(right))


def table_handle_set(manager):
    """All live non-terminal handles (flattened from the per-level subtables)."""
    return {handle for sub in manager._table.values() for handle in sub.values()}


def reachable_handles(manager, wrappers):
    """Closure of non-terminal handles reachable from wrapper roots."""
    low, high = manager._low, manager._high
    seen = set()
    stack = [w._h for w in wrappers]
    while stack:
        h = stack.pop()
        if h < 2 or h in seen:
            continue
        seen.add(h)
        stack.append(low[h])
        stack.append(high[h])
    return seen


class TestMarkAndSweep:
    """collect() keeps exactly the live roots' cones."""

    def test_sweep_keeps_exactly_the_held_roots(self):
        rng = random.Random(SEED)
        manager = create_manager([f"v{i}" for i in range(8)])
        names = list(manager.variables)
        kept = [random_function(manager, rng, names, depth=5) for _ in range(4)]
        dropped = [random_function(manager, rng, names, depth=5) for _ in range(4)]
        del dropped
        reclaimed = manager.collect()
        assert reclaimed > 0
        live = reachable_handles(manager, kept)
        assert table_handle_set(manager) == live
        # Arena accounting agrees with the table.
        arena = manager.arena_statistics()
        assert arena["live"] == len(table_handle_set(manager)) + 2
        assert arena["free"] >= reclaimed
        assert arena["capacity"] == arena["live"] + arena["free"]

    def test_sweep_respects_explicit_roots(self):
        rng = random.Random(SEED + 1)
        manager = create_manager([f"v{i}" for i in range(6)])
        names = list(manager.variables)
        root = random_function(manager, rng, names, depth=5)
        handle = root.node_id
        cone = reachable_handles(manager, [root])
        del root  # no wrapper left; only the explicit root protects it
        manager.collect(roots=[handle])
        assert cone.issubset(table_handle_set(manager))

    def test_collect_is_semantics_transparent(self):
        """Interleaved GC never changes any constructed function."""
        rng = random.Random(SEED + 2)
        plain = create_manager([f"v{i}" for i in range(7)])
        swept = create_manager([f"v{i}" for i in range(7)])
        names = [f"v{i}" for i in range(7)]
        plain_roots, swept_roots = [], []
        for round_index in range(12):
            build_rng = random.Random(SEED + 100 + round_index)
            plain_roots.append(random_function(plain, build_rng, names, depth=4))
            build_rng = random.Random(SEED + 100 + round_index)
            swept_roots.append(random_function(swept, build_rng, names, depth=4))
            if round_index % 3 == 0:
                swept.collect()
        for p, s in zip(plain_roots, swept_roots):
            assert plain.sat_count(p, names) == swept.sat_count(s, names)
        # Canonicity inside each manager is untouched by the sweeps.
        assert swept.apply_or(swept_roots[0], swept_roots[0]) is swept_roots[0]


class TestFreeListReuse:
    """A reclaimed handle never comes back as its old self."""

    def test_reclaimed_handles_leave_every_structure(self):
        rng = random.Random(SEED + 3)
        manager = create_manager([f"v{i}" for i in range(8)])
        names = list(manager.variables)
        keep = random_function(manager, rng, names, depth=5)
        for _ in range(3):
            random_function(manager, rng, names, depth=5)
        garbage_handles = table_handle_set(manager) - reachable_handles(
            manager, [keep]
        )
        reclaimed = manager.collect()
        assert reclaimed == len(garbage_handles) > 0
        table_handles = table_handle_set(manager)
        index_handles = {
            h for bucket in manager._level_index.values() for h in bucket
        }
        for handle in garbage_handles:
            assert handle in manager._free
            assert handle not in table_handles
            assert handle not in index_handles
            assert manager._wrappers.get(handle) is None
            # The slot is poisoned until the allocator re-arms it.
            assert manager._level[handle] == -1

    def test_reuse_rearms_the_slot_with_fresh_contents(self):
        rng = random.Random(SEED + 4)
        manager = create_manager([f"v{i}" for i in range(8)])
        names = list(manager.variables)
        garbage = random_function(manager, rng, names, depth=5)
        del garbage
        manager.collect()
        free_before = list(manager._free)
        assert free_before
        capacity_before = manager.arena_statistics()["capacity"]
        # New work re-uses freed handles before growing the arrays.
        fresh = [random_function(manager, rng, names, depth=5) for _ in range(3)]
        still_free = set(manager._free)
        reused = [h for h in free_before if h not in still_free]
        assert reused, "allocator ignored the free-list"
        table_handles = table_handle_set(manager)
        for handle in reused:
            assert handle in table_handles
            assert manager._level[handle] >= 0
        # The free-list absorbed growth: the arena did not expand by the
        # full amount of new work.
        arena = manager.arena_statistics()
        assert arena["capacity"] - capacity_before <= max(
            0, len(table_handles) - len(reused)
        )
        # The functions built over reused slots behave correctly.
        for f in fresh:
            manager.sat_count(f, names)

    def test_canonicity_across_collect_cycles(self):
        """Rebuilding a collected function finds a fresh, correct node."""
        manager = create_manager(["a", "b", "c"])

        def build():
            return manager.apply_or(
                manager.apply_and(manager.var("a"), manager.var("b")),
                manager.var("c"),
            )

        first = build()
        count = manager.sat_count(first, ["a", "b", "c"])
        del first
        manager.collect()
        second = build()
        assert manager.sat_count(second, ["a", "b", "c"]) == count
        # And canonical identity holds for the new incarnation.
        assert build() is second


class TestIndexAfterGC:
    """The per-level index stays exact under op/GC/swap/sift interleavings."""

    NUM_VARS = 7

    def assert_index_exact(self, manager):
        partition = {}
        for (level, _lo, _hi), node in manager._unique.items():
            partition.setdefault(level, set()).add(node.node_id)
        indexed = {
            level: set(bucket)
            for level, bucket in manager._level_index.items()
            if bucket
        }
        assert indexed == partition
        population = manager.level_population()
        assert population == {level: len(b) for level, b in partition.items()}

    def test_random_op_gc_swap_sift_sequences(self):
        rng = random.Random(SEED + 5)
        manager = create_manager([f"x{i}" for i in range(self.NUM_VARS)])
        names = list(manager.variables)
        roots = [random_function(manager, rng, names, depth=5) for _ in range(3)]
        for _ in range(18):
            action = rng.randrange(4)
            if action == 0:
                roots.append(random_function(manager, rng, names))
            elif action == 1:
                swap_adjacent(manager, rng.randrange(self.NUM_VARS - 1))
            elif action == 2:
                manager.collect()
            else:
                sift_variable(manager, rng.choice(names), roots=roots)
            self.assert_index_exact(manager)
        counts = [manager.sat_count(root, names) for root in roots]
        converge_sift(manager, roots=roots, max_passes=2)
        manager.collect()
        self.assert_index_exact(manager)
        assert [manager.sat_count(root, names) for root in roots] == counts


class _GCStressManager(BDDManager):
    """Collects the arena at frequent (safe-point) operation boundaries."""

    PERIOD = 256

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._stress_ops = 0
        self.stress_collections = 0

    def apply_and(self, f, g):
        self._stress_ops += 1
        if self._stress_ops % self.PERIOD == 0:
            self.collect()
            self.stress_collections += 1
        return super().apply_and(f, g)


GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_counterexamples.json"


class TestGoldenByteIdentityUnderGC:
    """Golden counterexamples survive an aggressively collecting kernel."""

    @pytest.fixture(scope="class")
    def goldens(self):
        with GOLDEN_PATH.open() as handle:
            return json.load(handle)["scenarios"]

    @pytest.mark.parametrize(
        "name", ["vsm/bug/drop_write_r3", "vsm/bug/and_becomes_or"]
    )
    def test_golden_records_byte_identical(self, goldens, name):
        from repro.engine import Scenario
        from repro.engine.executor import run_beta

        entry = goldens[name]
        scenario = Scenario.from_dict(entry["scenario"])
        manager = _GCStressManager()
        report = run_beta(
            scenario.architecture(),
            scenario.siminfo(),
            manager=manager,
            impl_kwargs=scenario.impl_kwargs(),
            observation=scenario.observation(),
            relational=scenario.relational,
        )
        assert not report.passed
        assert len(report.mismatches) == entry["mismatch_count"]
        for expected, actual in zip(entry["first_mismatches"], report.mismatches):
            assert actual.observable == expected["observable"]
            assert actual.sample_index == expected["sample_index"]
            assert actual.decoded_instructions == expected["decoded"]
            assert actual.instruction_words == {
                k: int(v) for k, v in expected["words"].items()
            }
            assert {k: bool(v) for k, v in actual.counterexample.items()} == expected[
                "counterexample"
            ]


class TestArenaSnapshots:
    """Kernel-level snapshot/restore: dedup, projection, validation."""

    def build(self, seed=SEED + 10):
        rng = random.Random(seed)
        manager = create_manager([f"v{i}" for i in range(10)])
        names = list(manager.variables)
        roots = [random_function(manager, rng, names, depth=5) for _ in range(4)]
        return manager, roots

    def test_same_manager_restore_dedups_onto_existing_handles(self):
        manager, roots = self.build()
        payload = manager.snapshot(roots)
        restored = manager.restore(payload)
        assert all(a is b for a, b in zip(restored, roots))
        # Restoring allocated nothing: every node was already present.
        live_before = manager.size()
        manager.restore(payload)
        assert manager.size() == live_before

    def test_snapshot_projects_to_reachable_nodes_only(self):
        manager, roots = self.build()
        payload = manager.snapshot(roots[:1])
        reachable = reachable_handles(manager, roots[:1])
        assert len(payload["levels"]) == len(reachable)

    def test_cross_manager_restore_preserves_semantics(self):
        manager, roots = self.build()
        payload = json.loads(
            json.dumps(manager.snapshot(roots, declares=manager.variables))
        )
        # Target declares two extra variables above, shifting every level.
        target = create_manager(["extra0", "extra1"])
        restored = target.restore(payload)
        names = [f"v{i}" for i in range(10)]
        for original, copy in zip(roots, restored):
            assert manager.sat_count(original, names) == target.sat_count(copy, names)
            assert manager.support(original) == target.support(copy)

    def test_snapshot_of_terminal_roots(self):
        manager, _ = self.build()
        payload = manager.snapshot([manager.zero, manager.one])
        assert payload["roots"] == [0, 1]
        target = create_manager()
        zero, one = target.restore(payload)
        assert zero is target.zero and one is target.one

    def test_corrupt_payloads_raise_snapshot_error(self):
        from repro.bdd.kernel import SnapshotError

        manager, roots = self.build()
        payload = manager.snapshot(roots)
        cases = []
        truncated = json.loads(json.dumps(payload))
        truncated["highs"] = truncated["highs"][:-2]
        cases.append(truncated)
        forward = json.loads(json.dumps(payload))
        if forward["lows"]:
            forward["lows"][0] = 5000
        cases.append(forward)
        redundant = json.loads(json.dumps(payload))
        if redundant["lows"]:
            redundant["lows"][-1] = redundant["highs"][-1]
        cases.append(redundant)
        badformat = json.loads(json.dumps(payload))
        badformat["format"] = 999
        cases.append(badformat)
        negative_root = json.loads(json.dumps(payload))
        negative_root["roots"][0] = -1  # must not resolve via negative indexing
        cases.append(negative_root)
        unknown_var = json.loads(json.dumps(payload))
        unknown_var["level_names"] = [
            [lvl, f"nope{lvl}"] for lvl, _ in unknown_var["level_names"]
        ]
        unknown_var["declares"] = []
        cases.append(unknown_var)
        for case in cases:
            with pytest.raises(SnapshotError):
                create_manager().restore(case)

    def test_failed_restore_leaves_no_stray_declarations(self):
        """A declares/level_names mismatch is refused before mutation."""
        from repro.bdd.kernel import SnapshotError

        manager, roots = self.build()
        payload = json.loads(json.dumps(manager.snapshot(roots)))
        payload["declares"] = ["bogus0", "bogus1"]  # covers none of the names
        target = create_manager()
        with pytest.raises(SnapshotError):
            target.restore(payload)
        assert target.variables == (), "failed restore declared stray variables"

    def test_incompatible_relative_order_is_refused(self):
        from repro.bdd.kernel import SnapshotError

        manager, roots = self.build()
        payload = json.loads(json.dumps(manager.snapshot(roots)))
        target = create_manager([f"v{i}" for i in reversed(range(10))])
        with pytest.raises(SnapshotError):
            target.restore(payload)
