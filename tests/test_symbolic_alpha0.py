"""Tests for the symbolic Alpha0 models (cross-validation against the
concrete models and the exact/condensed option handling)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager
from repro.isa import Alpha0Config, Alpha0Instruction
from repro.isa import alpha0 as isa
from repro.logic import BitVec
from repro.processors import (
    EXACT_OPTIONS,
    PipelinedAlpha0,
    SymbolicAlpha0Options,
    SymbolicPipelinedAlpha0,
    SymbolicUnpipelinedAlpha0,
    UnpipelinedAlpha0,
    symbolic_memory,
    symbolic_register_file,
)
from repro.processors.sym_alpha0 import alu_result, classify, decode_fields

CONCRETE_CONFIG = Alpha0Config(data_width=4, memory_words=8)


def constant_instruction(manager, instruction):
    return BitVec.constant(manager, instruction.encode(), isa.INSTRUCTION_WIDTH)


def evaluate_observation(observation, assignment=None):
    assignment = assignment or {}
    return {name: value.evaluate(assignment) for name, value in observation.items()}


class TestOptions:
    def test_power_of_two_validation(self):
        with pytest.raises(ValueError):
            SymbolicAlpha0Options(num_registers=6)
        with pytest.raises(ValueError):
            SymbolicAlpha0Options(memory_words=5)

    def test_index_widths(self):
        options = SymbolicAlpha0Options(num_registers=8, memory_words=4)
        assert options.register_index_width == 3
        assert options.memory_index_width == 2


class TestDecodeAndClassify:
    def test_decode_field_widths(self):
        manager = BDDManager()
        fields = decode_fields(BitVec.inputs(manager, "instr", 32))
        assert fields.opcode.width == 6
        assert fields.ra.width == fields.rb.width == fields.rc.width == 5
        assert fields.literal.width == 8
        assert fields.function.width == 7

    def test_decode_rejects_wrong_width(self):
        manager = BDDManager()
        with pytest.raises(ValueError):
            decode_fields(BitVec.inputs(manager, "instr", 16))

    def test_classification_matches_isa(self):
        manager = BDDManager()
        examples = [
            Alpha0Instruction("add", ra=1, rb=2, rc=3),
            Alpha0Instruction("ld", ra=1, rb=2),
            Alpha0Instruction("st", ra=1, rb=2),
            Alpha0Instruction("br", ra=26, displacement=1),
            Alpha0Instruction("bf", ra=1, displacement=1),
            Alpha0Instruction("bt", ra=1, displacement=1),
            Alpha0Instruction("jmp", ra=26, rb=7),
        ]
        for instruction in examples:
            fields = decode_fields(constant_instruction(manager, instruction))
            classes = classify(manager, fields, EXACT_OPTIONS)
            assert manager.is_tautology(classes.is_alu) == instruction.is_alu
            assert manager.is_tautology(classes.is_load) == (instruction.mnemonic == "ld")
            assert manager.is_tautology(classes.is_store) == (instruction.mnemonic == "st")
            assert manager.is_tautology(classes.is_jmp) == (instruction.mnemonic == "jmp")

    def test_condensed_subset_narrows_is_alu(self):
        manager = BDDManager()
        options = SymbolicAlpha0Options(alu_subset=("and",))
        add = Alpha0Instruction("add", ra=1, rb=2, rc=3)
        fields = decode_fields(constant_instruction(manager, add))
        classes = classify(manager, fields, options)
        assert manager.is_contradiction(classes.is_alu)

    @pytest.mark.parametrize(
        "mnemonic", ["add", "sub", "and", "or", "xor", "cmpeq", "cmplt", "cmple", "sll", "srl"]
    )
    def test_alu_result_matches_isa(self, mnemonic):
        manager = BDDManager()
        instruction = Alpha0Instruction(mnemonic, ra=0, rb=0, rc=0)
        fields = decode_fields(constant_instruction(manager, instruction))
        for a in (0, 3, 7, 12, 15):
            for b in (0, 1, 5, 15):
                result = alu_result(
                    manager,
                    fields,
                    BitVec.constant(manager, a, 4),
                    BitVec.constant(manager, b, 4),
                    EXACT_OPTIONS,
                )
                expected = isa.alu_operation(mnemonic, a, b, CONCRETE_CONFIG)
                assert result.as_constant() == expected, (mnemonic, a, b)


class TestSymbolicUnpipelinedAlpha0:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_concrete_model_on_random_programs(self, seed):
        rng = random.Random(seed)
        program = isa.random_program(
            rng, rng.randint(1, 6), config=CONCRETE_CONFIG, allow_control_transfer=True
        )
        manager = BDDManager()
        symbolic = SymbolicUnpipelinedAlpha0(manager, options=EXACT_OPTIONS)
        concrete = UnpipelinedAlpha0(config=CONCRETE_CONFIG)
        for instruction in program:
            sym_obs = symbolic.execute_instruction(constant_instruction(manager, instruction))
            conc_obs = concrete.execute_instruction(instruction.encode())
            assert evaluate_observation(sym_obs) == conc_obs

    def test_symbolic_memory_and_registers_generalize(self):
        manager = BDDManager()
        options = SymbolicAlpha0Options(num_registers=8, memory_words=4, alu_subset=None)
        registers = symbolic_register_file(manager, 8, 4)
        memory = symbolic_memory(manager, 4, 4)
        machine = SymbolicUnpipelinedAlpha0(manager, options=options)
        machine.reset(initial_registers=registers, initial_memory=memory)
        # ld r3, 0(r1): loads the memory word addressed by the symbolic r1.
        instruction = Alpha0Instruction("ld", ra=3, rb=1, displacement=0)
        observation = machine.execute_instruction(constant_instruction(manager, instruction))
        loaded = observation["reg3"]
        # For a concrete r1 value the load picks the corresponding memory word.
        for address in (0, 4, 8, 12):
            assignment = {f"init.reg1[{i}]": bool((address >> i) & 1) for i in range(4)}
            word = (address >> 2) % 4
            expected_bits = {f"init.mem{word}[{i}]" for i in range(4)}
            restricted = loaded.restrict(assignment)
            support = set()
            for bit in restricted.bits:
                support.update(manager.support(bit))
            assert support.issubset(expected_bits)

    def test_reset_validation(self):
        manager = BDDManager()
        machine = SymbolicUnpipelinedAlpha0(manager, options=EXACT_OPTIONS)
        with pytest.raises(ValueError):
            machine.reset(initial_registers=symbolic_register_file(manager, 4, 4))
        with pytest.raises(ValueError):
            machine.reset(initial_memory=symbolic_memory(manager, 2, 4))


class TestSymbolicPipelinedAlpha0:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_concrete_model_cycle_by_cycle(self, seed):
        rng = random.Random(seed)
        program = isa.random_program(
            rng, rng.randint(1, 6), config=CONCRETE_CONFIG, allow_control_transfer=True
        )
        manager = BDDManager()
        symbolic = SymbolicPipelinedAlpha0(manager, options=EXACT_OPTIONS)
        concrete = PipelinedAlpha0(config=CONCRETE_CONFIG)
        junk = Alpha0Instruction("xor", ra=2, rb=2, rc=2)
        drain = Alpha0Instruction("and", ra=0, rb=0, rc=0)
        words = []
        for instruction in program:
            words.append(instruction)
            if instruction.is_control_transfer:
                words.append(junk)
        words.extend([drain] * isa.PIPELINE_DEPTH)
        for word in words:
            sym_obs = symbolic.step(constant_instruction(manager, word))
            conc_obs = concrete.step(word.encode())
            assert evaluate_observation(sym_obs) == conc_obs

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            SymbolicPipelinedAlpha0(BDDManager(), bug="gremlins")

    def test_store_bug_matches_concrete_bug(self):
        manager = BDDManager()
        symbolic = SymbolicPipelinedAlpha0(manager, options=EXACT_OPTIONS, bug="store_wrong_word")
        concrete = PipelinedAlpha0(config=CONCRETE_CONFIG, bug="store_wrong_word")
        program = [
            Alpha0Instruction("or", ra=0, rc=1, literal_flag=True, literal=9),
            Alpha0Instruction("or", ra=0, rc=2, literal_flag=True, literal=4),
            Alpha0Instruction("st", ra=1, rb=2),
            Alpha0Instruction("and", ra=0, rb=0, rc=0),
            Alpha0Instruction("and", ra=0, rb=0, rc=0),
            Alpha0Instruction("and", ra=0, rb=0, rc=0),
            Alpha0Instruction("and", ra=0, rb=0, rc=0),
        ]
        for word in program:
            sym_obs = symbolic.step(constant_instruction(manager, word))
            conc_obs = concrete.step(word.encode())
            assert evaluate_observation(sym_obs) == conc_obs


class TestSharedSymbolicStimulusAlpha0:
    def test_condensed_alu_instruction_equivalence(self):
        """Spec and impl agree on every condensed ALU encoding at once."""
        manager = BDDManager()
        options = SymbolicAlpha0Options(
            data_width=4, num_registers=4, memory_words=4, alu_subset=("and", "or", "cmpeq")
        )
        # Instruction (selector) variables first, register data variables after.
        instruction = BitVec.inputs(manager, "instr", isa.INSTRUCTION_WIDTH)
        # Constrain the opcode to the operate class 0x11 (and/or/xor family).
        constraint = {}
        for bit in range(6):
            constraint[f"instr[{26 + bit}]"] = bool((0x11 >> bit) & 1)
        instruction = instruction.restrict(constraint)

        registers = symbolic_register_file(manager, 4, 4)
        spec = SymbolicUnpipelinedAlpha0(manager, options=options)
        impl = SymbolicPipelinedAlpha0(manager, options=options)
        spec.reset(initial_registers=registers)
        impl.reset(initial_registers=registers)

        spec_obs = spec.execute_instruction(instruction)
        impl_obs = impl.step(instruction)
        nop = BitVec.constant(manager, 0, isa.INSTRUCTION_WIDTH)
        for _ in range(isa.PIPELINE_DEPTH - 1):
            impl_obs = impl.step(nop, fetch_valid=manager.zero)

        for name in ("reg0", "reg1", "reg2", "reg3", "pc_next", "retired_op", "retired_dest"):
            assert spec_obs[name].identical(impl_obs[name]), name
