"""Unit tests for the symbolic bit-vector layer."""

import pytest

from repro.bdd import BDDManager
from repro.logic import BitVec


@pytest.fixture()
def manager():
    return BDDManager()


def sym(manager, prefix, width=4):
    return BitVec.inputs(manager, prefix, width)


def assignment_for(manager, vec, value):
    """Assignment making symbolic vector `vec` equal `value` (vec built from inputs)."""
    names = [manager.name_at_level(bit.level) for bit in vec.bits]
    return {name: bool((value >> i) & 1) for i, name in enumerate(names)}


class TestConstruction:
    def test_constant_roundtrip(self, manager):
        for value in range(16):
            vec = BitVec.constant(manager, value, 4)
            assert vec.as_constant() == value

    def test_constant_masks_to_width(self, manager):
        assert BitVec.constant(manager, 0b10110, 3).as_constant() == 0b110

    def test_inputs_are_symbolic(self, manager):
        vec = sym(manager, "a")
        assert vec.as_constant() is None
        assert vec.width == 4

    def test_from_bits(self, manager):
        vec = BitVec.from_bits(manager, [manager.one, manager.zero])
        assert vec.as_constant() == 1

    def test_len_and_getitem(self, manager):
        vec = BitVec.constant(manager, 5, 4)
        assert len(vec) == 4
        assert vec[0] is manager.one
        assert vec[1] is manager.zero
        assert isinstance(vec[1:3], BitVec)


class TestStructure:
    def test_slice(self, manager):
        vec = BitVec.constant(manager, 0b1101, 4)
        assert vec.slice(1, 3).as_constant() == 0b110

    def test_slice_out_of_range(self, manager):
        with pytest.raises(IndexError):
            BitVec.constant(manager, 0, 4).slice(2, 5)

    def test_concat(self, manager):
        low = BitVec.constant(manager, 0b01, 2)
        high = BitVec.constant(manager, 0b11, 2)
        assert low.concat(high).as_constant() == 0b1101

    def test_zero_extend(self, manager):
        vec = BitVec.constant(manager, 3, 2).zero_extend(4)
        assert vec.width == 4 and vec.as_constant() == 3

    def test_zero_extend_smaller_raises(self, manager):
        with pytest.raises(ValueError):
            BitVec.constant(manager, 3, 4).zero_extend(2)

    def test_sign_extend_negative(self, manager):
        vec = BitVec.constant(manager, 0b10, 2).sign_extend(4)
        assert vec.as_constant() == 0b1110

    def test_sign_extend_positive(self, manager):
        vec = BitVec.constant(manager, 0b01, 2).sign_extend(4)
        assert vec.as_constant() == 0b0001

    def test_truncate_and_resize(self, manager):
        vec = BitVec.constant(manager, 0b1101, 4)
        assert vec.truncate(2).as_constant() == 0b01
        assert vec.resize(6).as_constant() == 0b1101
        assert vec.resize(3).as_constant() == 0b101


class TestBitwise:
    @pytest.mark.parametrize("a,b", [(0b1100, 0b1010), (0, 15), (7, 7)])
    def test_and_or_xor_invert(self, manager, a, b):
        va = BitVec.constant(manager, a, 4)
        vb = BitVec.constant(manager, b, 4)
        assert (va & vb).as_constant() == (a & b)
        assert (va | vb).as_constant() == (a | b)
        assert (va ^ vb).as_constant() == (a ^ b)
        assert (~va).as_constant() == (~a) & 0xF

    def test_int_coercion(self, manager):
        va = BitVec.constant(manager, 0b1100, 4)
        assert (va & 0b1010).as_constant() == 0b1000

    def test_width_mismatch_raises(self, manager):
        with pytest.raises(ValueError):
            BitVec.constant(manager, 1, 4) & BitVec.constant(manager, 1, 3)


class TestArithmetic:
    @pytest.mark.parametrize("a,b", [(3, 5), (15, 1), (0, 0), (9, 9)])
    def test_add_modular(self, manager, a, b):
        va = BitVec.constant(manager, a, 4)
        vb = BitVec.constant(manager, b, 4)
        assert (va + vb).as_constant() == (a + b) % 16

    @pytest.mark.parametrize("a,b", [(3, 5), (5, 3), (0, 1), (12, 12)])
    def test_sub_modular(self, manager, a, b):
        va = BitVec.constant(manager, a, 4)
        vb = BitVec.constant(manager, b, 4)
        assert (va - vb).as_constant() == (a - b) % 16

    def test_negate(self, manager):
        assert BitVec.constant(manager, 5, 4).negate().as_constant() == 11

    def test_symbolic_add_matches_concrete(self, manager):
        va = sym(manager, "a", 3)
        vb = sym(manager, "b", 3)
        total = va + vb
        for a in range(8):
            for b in range(8):
                env = {}
                env.update(assignment_for(manager, va, a))
                env.update(assignment_for(manager, vb, b))
                assert total.evaluate(env) == (a + b) % 8


class TestComparisons:
    @pytest.mark.parametrize("a,b", [(3, 3), (3, 4), (15, 0)])
    def test_eq_ne(self, manager, a, b):
        va = BitVec.constant(manager, a, 4)
        vb = BitVec.constant(manager, b, 4)
        assert manager.is_tautology(va.eq(vb)) == (a == b)
        assert manager.is_tautology(va.ne(vb)) == (a != b)

    def test_unsigned_comparisons(self, manager):
        for a in range(8):
            for b in range(8):
                va = BitVec.constant(manager, a, 3)
                vb = BitVec.constant(manager, b, 3)
                assert manager.is_tautology(va.ult(vb)) == (a < b)
                assert manager.is_tautology(va.ule(vb)) == (a <= b)

    def test_signed_comparisons(self, manager):
        def signed(value, width=3):
            return value - (1 << width) if value & (1 << (width - 1)) else value

        for a in range(8):
            for b in range(8):
                va = BitVec.constant(manager, a, 3)
                vb = BitVec.constant(manager, b, 3)
                assert manager.is_tautology(va.slt(vb)) == (signed(a) < signed(b))
                assert manager.is_tautology(va.sle(vb)) == (signed(a) <= signed(b))

    def test_zero_tests(self, manager):
        zero = BitVec.constant(manager, 0, 4)
        five = BitVec.constant(manager, 5, 4)
        assert manager.is_tautology(zero.is_zero())
        assert manager.is_tautology(five.is_nonzero())

    def test_reductions(self, manager):
        assert manager.is_tautology(BitVec.constant(manager, 0b111, 3).reduce_and())
        assert not manager.is_tautology(BitVec.constant(manager, 0b101, 3).reduce_and())
        assert manager.is_tautology(BitVec.constant(manager, 0b110, 3).reduce_xor()) is False
        assert manager.is_tautology(BitVec.constant(manager, 0b100, 3).reduce_xor())


class TestShifts:
    @pytest.mark.parametrize("value,amount", [(0b1011, 0), (0b1011, 1), (0b1011, 3), (0b1011, 5)])
    def test_constant_shifts(self, manager, value, amount):
        vec = BitVec.constant(manager, value, 4)
        assert vec.shift_left_const(amount).as_constant() == (value << amount) & 0xF
        assert vec.shift_right_const(amount).as_constant() == (value >> amount) & 0xF

    def test_symbolic_barrel_shifts(self, manager):
        value = sym(manager, "v", 4)
        amount = sym(manager, "n", 2)
        left = value.shift_left(amount)
        right = value.shift_right(amount)
        for v in range(16):
            for n in range(4):
                env = {}
                env.update(assignment_for(manager, value, v))
                env.update(assignment_for(manager, amount, n))
                assert left.evaluate(env) == (v << n) & 0xF
                assert right.evaluate(env) == (v >> n) & 0xF


class TestSelection:
    def test_mux(self, manager):
        a = BitVec.constant(manager, 3, 4)
        b = BitVec.constant(manager, 12, 4)
        assert BitVec.mux(manager.one, a, b).as_constant() == 3
        assert BitVec.mux(manager.zero, a, b).as_constant() == 12

    def test_mux_width_mismatch(self, manager):
        with pytest.raises(ValueError):
            BitVec.mux(manager.one, BitVec.constant(manager, 0, 2), BitVec.constant(manager, 0, 3))

    def test_case_priority(self, manager):
        default = BitVec.constant(manager, 0, 4)
        first = BitVec.constant(manager, 1, 4)
        second = BitVec.constant(manager, 2, 4)
        chosen = BitVec.case(default, [(manager.one, first), (manager.one, second)])
        assert chosen.as_constant() == 1
        chosen = BitVec.case(default, [(manager.zero, first), (manager.one, second)])
        assert chosen.as_constant() == 2
        chosen = BitVec.case(default, [(manager.zero, first), (manager.zero, second)])
        assert chosen.as_constant() == 0

    def test_select_word(self, manager):
        words = [BitVec.constant(manager, value, 4) for value in (7, 9, 11, 13)]
        index = sym(manager, "idx", 2)
        selected = BitVec.select_word(index, words)
        for i, expected in enumerate((7, 9, 11, 13)):
            env = assignment_for(manager, index, i)
            assert selected.evaluate(env) == expected

    def test_select_word_empty_raises(self, manager):
        with pytest.raises(ValueError):
            BitVec.select_word(sym(manager, "idx", 2), [])


class TestEvaluation:
    def test_restrict_and_compose(self, manager):
        vec = sym(manager, "a", 2)
        restricted = vec.restrict({"a[0]": True, "a[1]": False})
        assert restricted.as_constant() == 1
        composed = vec.compose({"a[0]": manager.var("a[1]")})
        env = {"a[1]": True}
        assert composed.evaluate(env) == 3

    def test_identical(self, manager):
        vec = sym(manager, "a", 3)
        assert vec.identical(BitVec(manager, list(vec.bits)))
        assert not vec.identical(sym(manager, "b", 3))
        assert not vec.identical(vec.truncate(2))

    def test_node_count_positive(self, manager):
        vec = sym(manager, "a", 3) + sym(manager, "b", 3)
        assert vec.node_count() > 3
