"""Unit tests for the gate library, netlists and generators."""

import pytest

from repro.bdd import BDDManager
from repro.logic import (
    Netlist,
    NetlistError,
    counter,
    equality_comparator,
    evaluate_gate,
    parity_shift_register,
    ripple_adder,
    serial_accumulator,
    shift_register,
    symbolic_gate,
    toggle_machine,
    validate_gate,
)


class TestGateLibrary:
    @pytest.mark.parametrize(
        "gate,inputs,expected",
        [
            ("AND", [True, True], True),
            ("AND", [True, False], False),
            ("OR", [False, False], False),
            ("OR", [False, True], True),
            ("NOT", [True], False),
            ("NAND", [True, True], False),
            ("NOR", [False, False], True),
            ("XOR", [True, False, True], False),
            ("XNOR", [True, False], False),
            ("BUF", [True], True),
            ("MUX", [True, False, True], True),
            ("MUX", [False, False, True], False),
            ("CONST0", [], False),
            ("CONST1", [], True),
        ],
    )
    def test_concrete_semantics(self, gate, inputs, expected):
        assert evaluate_gate(gate, inputs) is expected

    def test_validate_unknown_gate(self):
        with pytest.raises(ValueError):
            validate_gate("MAJ", 3)

    def test_validate_bad_arity(self):
        with pytest.raises(ValueError):
            validate_gate("NOT", 2)
        with pytest.raises(ValueError):
            validate_gate("AND", 0)

    def test_symbolic_matches_concrete(self):
        manager = BDDManager(["a", "b", "c"])
        nodes = [manager.var("a"), manager.var("b"), manager.var("c")]
        for gate, arity in [
            ("AND", 2), ("OR", 2), ("NOT", 1), ("NAND", 2), ("NOR", 2),
            ("XOR", 2), ("XNOR", 2), ("BUF", 1), ("MUX", 3), ("CONST0", 0), ("CONST1", 0),
        ]:
            node = symbolic_gate(manager, gate, nodes[:arity])
            for a in (False, True):
                for b in (False, True):
                    for c in (False, True):
                        env = {"a": a, "b": b, "c": c}
                        expected = evaluate_gate(gate, [a, b, c][:arity])
                        assert manager.evaluate(node, env) == expected

    def test_symbolic_unknown_gate(self):
        manager = BDDManager(["a"])
        with pytest.raises(ValueError):
            symbolic_gate(manager, "MAJ", [manager.var("a")])


class TestNetlistConstruction:
    def test_duplicate_driver_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_gate("a", "NOT", ["a"])

    def test_duplicate_input_is_idempotent(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_input("a")
        assert netlist.primary_inputs == ["a"]

    def test_validate_detects_undriven_net(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("y", "AND", ["a", "ghost"])
        netlist.set_outputs(["y"])
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_validate_detects_undriven_output(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.set_outputs(["nothing"])
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_validate_detects_combinational_cycle(self):
        netlist = Netlist()
        netlist.add_gate("p", "NOT", ["q"])
        netlist.add_gate("q", "NOT", ["p"])
        netlist.set_outputs(["p"])
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_validate_detects_undriven_latch_data(self):
        netlist = Netlist()
        netlist.add_latch("s", "missing")
        netlist.set_outputs(["s"])
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_statistics(self):
        netlist = toggle_machine()
        stats = netlist.statistics()
        assert stats == {
            "primary_inputs": 1,
            "primary_outputs": 1,
            "gates": 1,
            "latches": 1,
        }

    def test_state_and_net_names(self):
        netlist = toggle_machine()
        assert netlist.state_nets() == ["state"]
        assert set(netlist.net_names()) == {"enable", "state", "state_next"}
        assert netlist.gate_count() == 1
        assert netlist.latch_count() == 1


class TestConcreteSimulation:
    def test_missing_input_raises(self):
        netlist = toggle_machine()
        with pytest.raises(NetlistError):
            netlist.step({}, netlist.reset_state())

    def test_toggle_machine_behaviour(self):
        netlist = toggle_machine()
        trace = netlist.simulate([{"enable": True}, {"enable": False}, {"enable": True}])
        assert [t["state"] for t in trace] == [False, True, True]

    def test_counter_counts(self):
        netlist = counter(3)
        state = netlist.reset_state()
        values = []
        for _ in range(10):
            outputs, state = netlist.step({}, state)
            values.append(sum(outputs[f"q{i}"] << i for i in range(3)))
        assert values == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_shift_register_delays_input(self):
        netlist = shift_register(3)
        pattern = [True, False, True, True, False, False, True]
        trace = netlist.simulate([{"din": bit} for bit in pattern])
        observed = [t[netlist.primary_outputs[0]] for t in trace]
        # Output at cycle t is the input at cycle t-3 (False during fill).
        expected = [False, False, False] + pattern[:4]
        assert observed == expected

    def test_parity_shift_register(self):
        netlist = parity_shift_register(2)
        pattern = [True, True, False, True]
        trace = netlist.simulate([{"din": bit} for bit in pattern])
        outputs = [t[netlist.primary_outputs[0]] for t in trace]
        # Parity of the last two inputs, with zero fill before they arrive.
        assert outputs == [False, True, False, True]

    def test_ripple_adder_combinational(self):
        netlist = ripple_adder(4)
        state = netlist.reset_state()
        for a in (0, 3, 9, 15):
            for b in (0, 5, 15):
                inputs = {f"a{i}": bool((a >> i) & 1) for i in range(4)}
                inputs.update({f"b{i}": bool((b >> i) & 1) for i in range(4)})
                outputs, _ = netlist.step(inputs, state)
                total = sum(outputs[f"sum{i}"] << i for i in range(4)) + (outputs["cout"] << 4)
                assert total == a + b

    def test_ripple_adder_registered(self):
        netlist = ripple_adder(2, registered=True)
        inputs = {"a0": True, "a1": True, "b0": True, "b1": False}
        outputs, state = netlist.step(inputs, netlist.reset_state())
        # Registered outputs lag by one cycle.
        assert outputs["s0"] is False and outputs["s1"] is False
        outputs, _ = netlist.step(inputs, state)
        total = outputs["s0"] + (outputs["s1"] << 1) + (outputs["cout"] << 2)
        assert total == 3 + 1

    def test_equality_comparator(self):
        netlist = equality_comparator(3)
        state = netlist.reset_state()
        for a in range(8):
            for b in range(8):
                inputs = {f"a{i}": bool((a >> i) & 1) for i in range(3)}
                inputs.update({f"b{i}": bool((b >> i) & 1) for i in range(3)})
                outputs, _ = netlist.step(inputs, state)
                assert outputs["equal"] == (a == b)

    def test_serial_accumulator_valid_every_sixth_cycle(self):
        netlist = serial_accumulator(stages=6)
        trace = netlist.simulate([{"x": True}] * 12)
        valids = [t["valid"] for t in trace]
        assert valids.count(True) == 2
        assert valids[5] is True and valids[11] is True


class TestSymbolicExtraction:
    def test_build_bdds_counter(self):
        netlist = counter(2)
        manager = BDDManager()
        outputs, next_state = netlist.build_bdds(manager)
        assert set(outputs) == {"q0", "q1"}
        assert set(next_state) == {"q0", "q1"}
        # Next q0 is the negation of q0.
        assert next_state["q0"] is manager.apply_not(manager.var("q0"))

    def test_build_bdds_prefix(self):
        netlist = toggle_machine()
        manager = BDDManager()
        outputs, next_state = netlist.build_bdds(manager, prefix="impl.")
        assert manager.support(next_state["state"]) == ("impl.enable", "impl.state")
        assert manager.support(outputs["state"]) == ("impl.state",)

    def test_symbolic_matches_concrete_simulation(self):
        netlist = ripple_adder(3)
        manager = BDDManager()
        outputs, _ = netlist.build_bdds(manager)
        state = netlist.reset_state()
        for a in range(8):
            for b in range(8):
                inputs = {f"a{i}": bool((a >> i) & 1) for i in range(3)}
                inputs.update({f"b{i}": bool((b >> i) & 1) for i in range(3)})
                concrete, _ = netlist.step(inputs, state)
                for net, node in outputs.items():
                    assert manager.evaluate(node, inputs) == concrete[net]
