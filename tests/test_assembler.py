"""Tests for the two-ISA assembler and disassembler."""

import pytest

from repro.isa import (
    AssemblerError,
    assemble_alpha0,
    assemble_alpha0_line,
    assemble_vsm,
    assemble_vsm_line,
    disassemble_alpha0,
    disassemble_vsm,
)
from repro.isa import alpha0, vsm


class TestVSMAssembler:
    def test_register_form(self):
        instruction = assemble_vsm_line("add r3, r1, r2")
        assert instruction == vsm.VSMInstruction("add", ra=1, rb=2, rc=3)

    def test_literal_form(self):
        instruction = assemble_vsm_line("or r2, r1, #6")
        assert instruction == vsm.VSMInstruction("or", literal_flag=True, ra=1, rb=6, rc=2)

    def test_branch(self):
        instruction = assemble_vsm_line("br r7, 3")
        assert instruction == vsm.VSMInstruction("br", ra=3, rc=7)

    def test_case_insensitive_mnemonics_and_registers(self):
        assert assemble_vsm_line("AND R1, R2, R3").mnemonic == "and"

    def test_errors(self):
        with pytest.raises(AssemblerError):
            assemble_vsm_line("mul r1, r2, r3")
        with pytest.raises(AssemblerError):
            assemble_vsm_line("add r1, r2")
        with pytest.raises(AssemblerError):
            assemble_vsm_line("add r1, 5, r3")
        with pytest.raises(AssemblerError):
            assemble_vsm_line("br r1")
        with pytest.raises(AssemblerError):
            assemble_vsm_line("")

    def test_program_with_comments_and_blank_lines(self):
        source = """
        ; initialise
        add r1, r0, r0
        xor r2, r1, r1   ; clear r2

        br r7, 2
        """
        program = assemble_vsm(source)
        assert [instr.mnemonic for instr in program] == ["add", "xor", "br"]

    def test_program_reports_line_numbers(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble_vsm("add r1, r2, r3\nbogus r1, r2, r3")

    def test_disassemble_roundtrip(self):
        source = ["add r3, r1, r2", "or r2, r1, #6", "br r7, 3"]
        program = [assemble_vsm_line(line) for line in source]
        words = [instr.encode() for instr in program]
        assert disassemble_vsm(words) == source


class TestAlpha0Assembler:
    def test_operate_register_form(self):
        instruction = assemble_alpha0_line("add r3, r1, r2")
        assert instruction == alpha0.Alpha0Instruction("add", ra=1, rb=2, rc=3)

    def test_operate_literal_form(self):
        instruction = assemble_alpha0_line("and r5, r4, #171")
        assert instruction == alpha0.Alpha0Instruction(
            "and", ra=4, rc=5, literal_flag=True, literal=171
        )

    def test_memory_forms(self):
        load = assemble_alpha0_line("ld r1, -4(r2)")
        store = assemble_alpha0_line("st r6, 8(r3)")
        assert load == alpha0.Alpha0Instruction("ld", ra=1, rb=2, displacement=-4)
        assert store == alpha0.Alpha0Instruction("st", ra=6, rb=3, displacement=8)

    def test_branch_forms(self):
        assert assemble_alpha0_line("br r26, 5") == alpha0.Alpha0Instruction(
            "br", ra=26, displacement=5
        )
        assert assemble_alpha0_line("bf r2, -1") == alpha0.Alpha0Instruction(
            "bf", ra=2, displacement=-1
        )

    def test_jump_form(self):
        assert assemble_alpha0_line("jmp r26, (r7)") == alpha0.Alpha0Instruction(
            "jmp", ra=26, rb=7
        )

    def test_errors(self):
        with pytest.raises(AssemblerError):
            assemble_alpha0_line("frobnicate r1, r2, r3")
        with pytest.raises(AssemblerError):
            assemble_alpha0_line("ld r1, r2")
        with pytest.raises(AssemblerError):
            assemble_alpha0_line("jmp r1, r2")
        with pytest.raises(AssemblerError):
            assemble_alpha0_line("add r1, r2")

    def test_program_and_disassembly_roundtrip(self):
        source = ["and r3, r1, r2", "or r9, r7, #3", "ld r1, -4(r2)", "bt r2, 1", "jmp r1, (r2)"]
        program = assemble_alpha0("\n".join(source))
        words = [instr.encode() for instr in program]
        assert disassemble_alpha0(words) == source

    def test_program_reports_line_numbers(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble_alpha0("add r1, r2, r3\nor r1, r2, r3\nbogus")
