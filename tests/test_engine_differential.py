"""Differential tests: symbolic engine verdicts vs concrete simulation.

The campaign engine's symbolic verdicts are checked against the concrete
(integer, cycle-accurate) processor models on random short programs:

* **golden agreement** — where the engine proves the beta-relation,
  concrete co-simulation of the specification and implementation on
  random programs must agree at every sampled cycle (VSM and Alpha0,
  with and without interrupts);
* **counterexample replay** — where the engine refutes the relation for
  an injected bug, the decoded counterexample instruction sequence must
  concretely distinguish the two machines at the reported sample;
* **backend agreement** — the relational beta backend (the default) and
  the classical compose path must produce byte-identical verdicts —
  pass/fail, mismatch records, counterexample assignments, decoded
  instruction sequences, structure — on every scenario shape: VSM and
  Alpha0, windows of 1, 2 and 4 slots, early and late branch placement,
  golden and injected-bug implementations.

All randomness is seeded; the suite is deterministic.
"""

import json
import random

import pytest

from repro.engine import Alpha0Spec, Scenario, execute_scenario
from repro.relational import BETA_COMPOSE, BETA_RELATIONAL, RelationalPolicy
from repro.isa import alpha0 as alpha0_isa
from repro.isa import vsm as vsm_isa
from repro.processors import (
    PipelinedAlpha0,
    PipelinedVSM,
    UnpipelinedAlpha0,
    UnpipelinedVSM,
)
from repro.processors.interrupts import (
    INTERRUPT_HANDLER_ADDRESS,
    INTERRUPT_LINK_REGISTER,
    SymbolicPipelinedVSMWithEvents,
    SymbolicUnpipelinedVSMWithEvents,
)
from repro.bdd import BDDManager
from repro.logic import BitVec
from repro.strings import CONTROL, NORMAL, pipelined_filter, sample_cycles

SEED = 424242
_PC_MASK = (1 << vsm_isa.PC_WIDTH) - 1
_DATA_MASK = (1 << vsm_isa.DATA_WIDTH) - 1


# ----------------------------------------------------------------------
# Concrete VSM co-simulation (mirrors the engine's feeding schedule)
# ----------------------------------------------------------------------
def canonicalize_vsm_word(word: int) -> int:
    """Map undefined opcodes onto their symbolic-model semantics.

    The symbolic models treat undefined opcodes (101, 110, 111) as OR —
    both machines use the same convention, so it never causes spurious
    mismatches — while the concrete decoder rejects them.  Counterexample
    delay-slot words are fully symbolic and may pick such encodings;
    rewrite them to the OR opcode the symbolic ALU falls through to.
    """
    opcode = (word >> 10) & 0b111
    if opcode > vsm_isa.OPCODES["br"]:
        return (word & ~(0b111 << 10)) | (vsm_isa.OPCODES["or"] << 10)
    return word


def cosimulate_vsm(slots, slot_words, delay_words, bug=None):
    """Run spec and impl concretely on one instruction sequence.

    ``slot_words[i]`` is the instruction of slot ``i``; ``delay_words``
    maps a control-transfer slot index to its (to-be-annulled) delay-slot
    word.  Returns ``(spec_samples, impl_samples)`` aligned the way the
    beta-relation aligns them (initial observation plus one sample per
    retired slot).
    """
    k = vsm_isa.PIPELINE_DEPTH
    specification = UnpipelinedVSM()
    implementation = PipelinedVSM(bug=bug)

    spec_samples = [specification.observe()]
    for word in slot_words:
        spec_samples.append(specification.execute_instruction(word))

    filter_values = pipelined_filter(k, slots, vsm_isa.DELAY_SLOTS, 1)
    wanted = set(sample_cycles(filter_values))
    observations = {0: implementation.observe()}
    cycle = 0

    def advance(word: int, fetch_valid: bool) -> None:
        nonlocal cycle
        observed = implementation.step(word, fetch_valid=fetch_valid)
        cycle += 1
        if cycle in wanted:
            observations[cycle] = observed

    for index, kind in enumerate(slots):
        advance(canonicalize_vsm_word(slot_words[index]), True)
        if kind == CONTROL:
            advance(canonicalize_vsm_word(delay_words[index]), True)
    for _ in range(k - 1):
        advance(0, False)

    impl_samples = [observations[c] for c in sorted(observations)]
    assert len(impl_samples) == len(spec_samples)
    return spec_samples, impl_samples


def random_slot_words(rng, slots):
    """Random concrete instruction words honouring the slot classes."""
    slot_words = []
    delay_words = {}
    for index, kind in enumerate(slots):
        if kind == CONTROL:
            instruction = vsm_isa.VSMInstruction(
                "br", ra=rng.randrange(8), rc=rng.randrange(8)
            )
            delay_words[index] = vsm_isa.random_instruction(
                rng, allow_control_transfer=False
            ).encode()
        else:
            instruction = vsm_isa.random_instruction(rng, allow_control_transfer=False)
        slot_words.append(instruction.encode())
    return slot_words, delay_words


class TestVSMGoldenDifferential:
    """Symbolic PASS verdicts agree with concrete co-simulation."""

    WORKLOADS = [
        (NORMAL,),
        (NORMAL, NORMAL),
        (CONTROL, NORMAL),
        (NORMAL, CONTROL, NORMAL),
        (NORMAL, NORMAL, NORMAL),
    ]

    @pytest.mark.parametrize("slots", WORKLOADS)
    def test_engine_verdict_and_concrete_agreement(self, slots):
        outcome = execute_scenario(Scenario(name="golden", slots=slots))
        assert outcome.passed, outcome.mismatches

        rng = random.Random(SEED + len(slots))
        for _ in range(12):
            slot_words, delay_words = random_slot_words(rng, slots)
            spec_samples, impl_samples = cosimulate_vsm(slots, slot_words, delay_words)
            for index, (spec_obs, impl_obs) in enumerate(
                zip(spec_samples, impl_samples)
            ):
                assert spec_obs == impl_obs, (
                    f"slots={slots} sample={index} words={slot_words}"
                )


class TestVSMBugCounterexampleReplay:
    """Symbolic FAIL verdicts replay concretely: the decoded sequence
    distinguishes the buggy implementation from the specification."""

    @pytest.mark.parametrize(
        "bug,slots",
        [
            ("no_bypass", (NORMAL, NORMAL)),
            ("no_annul", (CONTROL, NORMAL)),
            ("wrong_branch_target", (CONTROL, NORMAL)),
            ("and_becomes_or", (NORMAL,)),
            ("drop_write_r3", (NORMAL,)),
        ],
    )
    def test_counterexample_distinguishes_concretely(self, bug, slots):
        outcome = execute_scenario(Scenario(name=f"bug/{bug}", slots=slots, bug=bug))
        assert not outcome.passed
        mismatch = outcome.mismatches[0]
        words = mismatch["words"]
        slot_words = [words[f"instr{i}"] for i in range(len(slots))]
        delay_words = {
            index: words[f"delay{index}.0"]
            for index, kind in enumerate(slots)
            if kind == CONTROL
        }
        spec_samples, impl_samples = cosimulate_vsm(
            slots, slot_words, delay_words, bug=bug
        )
        sample = mismatch["sample_index"]
        assert spec_samples[sample] != impl_samples[sample], (
            f"counterexample for {bug} did not reproduce concretely: "
            f"{mismatch['decoded']}"
        )
        # And the golden implementation agrees on the same stimulus.
        spec_samples, impl_samples = cosimulate_vsm(slots, slot_words, delay_words)
        for spec_obs, impl_obs in zip(spec_samples, impl_samples):
            assert spec_obs == impl_obs


# ----------------------------------------------------------------------
# Relational-beta vs compose-beta backend agreement
# ----------------------------------------------------------------------
def verdict_bytes(outcome) -> str:
    """Canonical JSON of the deterministic portion of an outcome."""
    return json.dumps(outcome.verdict(), indent=2, sort_keys=True)


def run_both_backends(**scenario_kwargs):
    """One scenario through each beta backend; returns the two outcomes."""
    relational = execute_scenario(
        Scenario(name="backend-diff", **scenario_kwargs)
    )
    compose = execute_scenario(
        Scenario(
            name="backend-diff",
            relational=RelationalPolicy(beta_backend=BETA_COMPOSE),
            **scenario_kwargs,
        )
    )
    return relational, compose


class TestBetaBackendDifferential:
    """The relational backend's verdicts are byte-identical to compose.

    The expensive k=4 late-branch window is covered by
    ``benchmarks/bench_beta_relational.py`` (its compose side alone costs
    minutes); tier-1 pins the equivalence on every other shape — window
    lengths 1, 2 and 4, early and late branch placement, both designs,
    golden and buggy implementations, symbolic initial state.
    """

    VSM_GOLDEN_WINDOWS = [
        (NORMAL,),
        (CONTROL,),
        (NORMAL, CONTROL),  # late branch, k=2 window
        (CONTROL, NORMAL),  # early branch, k=2 window
        (CONTROL, NORMAL, NORMAL, NORMAL),  # early branch, k=4 window
    ]

    @pytest.mark.parametrize("slots", VSM_GOLDEN_WINDOWS)
    def test_vsm_golden_windows(self, slots):
        relational, compose = run_both_backends(slots=slots)
        assert relational.passed and compose.passed
        assert verdict_bytes(relational) == verdict_bytes(compose)
        assert relational.backend == "relational"
        assert compose.backend == "compose"

    @pytest.mark.parametrize(
        "bug,slots",
        [
            ("and_becomes_or", (NORMAL,)),
            ("drop_write_r3", (NORMAL,)),
            ("no_bypass", (NORMAL, NORMAL)),
            ("no_annul", (CONTROL, NORMAL)),
            ("wrong_branch_target", (NORMAL, CONTROL)),
        ],
    )
    def test_vsm_injected_bugs(self, bug, slots):
        """Refuting verdicts match byte for byte: same mismatch records,
        same counterexample assignments, same decoded sequences."""
        relational, compose = run_both_backends(slots=slots, bug=bug)
        assert not relational.passed and not compose.passed
        assert verdict_bytes(relational) == verdict_bytes(compose)
        assert relational.backend == "relational+fallback"

    def test_vsm_symbolic_initial_state(self):
        relational, compose = run_both_backends(
            slots=(NORMAL, NORMAL), symbolic_initial_state=True
        )
        assert relational.passed
        assert verdict_bytes(relational) == verdict_bytes(compose)

    SMALL_ALPHA0 = Alpha0Spec(data_width=3, num_registers=4, memory_words=2)

    @pytest.mark.parametrize(
        "slots", [(NORMAL,), (NORMAL, NORMAL), (CONTROL, NORMAL)]
    )
    def test_alpha0_golden_windows(self, slots):
        relational, compose = run_both_backends(
            design="alpha0", slots=slots, alpha0=self.SMALL_ALPHA0
        )
        assert relational.passed and compose.passed
        assert verdict_bytes(relational) == verdict_bytes(compose)

    def test_alpha0_injected_bug(self):
        relational, compose = run_both_backends(
            design="alpha0",
            slots=(NORMAL,),
            bug="cmpeq_inverted",
            alpha0=Alpha0Spec(
                data_width=3, num_registers=4, memory_words=2, normal_opcode=0x10
            ),
        )
        assert not relational.passed
        assert verdict_bytes(relational) == verdict_bytes(compose)

    def test_backend_choice_never_leaks_into_the_verdict(self):
        """The backend marker lives outside the deterministic verdict."""
        relational, compose = run_both_backends(slots=(NORMAL,))
        assert "backend" not in relational.verdict()
        assert relational.backend != compose.backend

    def test_schedule_product_strategy_matches(self):
        """The literal partition+schedule product is verdict-identical."""
        base = dict(slots=(NORMAL, CONTROL))
        scheduled = execute_scenario(
            Scenario(
                name="backend-diff",
                relational=RelationalPolicy(
                    beta_backend=BETA_RELATIONAL, beta_product="schedule"
                ),
                **base,
            )
        )
        plain = execute_scenario(Scenario(name="backend-diff", **base))
        assert verdict_bytes(scheduled) == verdict_bytes(plain)


# ----------------------------------------------------------------------
# Alpha0 (no interrupts)
# ----------------------------------------------------------------------
class TestAlpha0Differential:
    SMALL = Alpha0Spec(data_width=3, num_registers=4, memory_words=2)

    def test_engine_golden_and_bug_verdicts(self):
        golden = execute_scenario(
            Scenario(name="a0", design="alpha0", slots=(NORMAL, NORMAL), alpha0=self.SMALL)
        )
        assert golden.passed, golden.mismatches
        bugged = execute_scenario(
            Scenario(
                name="a0bug",
                design="alpha0",
                slots=(NORMAL,),
                bug="cmpeq_inverted",
                alpha0=Alpha0Spec(
                    data_width=3, num_registers=4, memory_words=2, normal_opcode=0x10
                ),
            )
        )
        assert not bugged.passed
        assert bugged.mismatches[0]["decoded"]  # decodes to assembly

    def test_concrete_cosimulation_on_random_programs(self):
        """Concrete Alpha0 spec and impl agree at every retirement sample."""
        k = alpha0_isa.PIPELINE_DEPTH
        rng = random.Random(SEED)
        for round_index in range(10):
            length = rng.randrange(1, 5)
            program = [
                instruction.encode()
                for instruction in alpha0_isa.random_program(
                    rng, length, allow_control_transfer=False
                )
            ]
            specification = UnpipelinedAlpha0()
            implementation = PipelinedAlpha0()
            spec_samples = [specification.observe()]
            for word in program:
                spec_samples.append(specification.execute_instruction(word))

            slots = (NORMAL,) * length
            wanted = set(sample_cycles(pipelined_filter(k, slots, 1, 1)))
            observations = {0: implementation.observe()}
            cycle = 0
            for word in program:
                observed = implementation.step(word, fetch_valid=True)
                cycle += 1
                if cycle in wanted:
                    observations[cycle] = observed
            for _ in range(k - 1):
                observed = implementation.step(0, fetch_valid=False)
                cycle += 1
                if cycle in wanted:
                    observations[cycle] = observed

            impl_samples = [observations[c] for c in sorted(observations)]
            assert len(impl_samples) == len(spec_samples)
            for index, (spec_obs, impl_obs) in enumerate(
                zip(spec_samples, impl_samples)
            ):
                assert spec_obs == impl_obs, (round_index, index, program)


# ----------------------------------------------------------------------
# VSM with interrupts (dynamic beta-relation)
# ----------------------------------------------------------------------
def reference_trap_step(registers, pc, word, event):
    """Architectural reference of one VSM slot with an optional event.

    Returns ``(registers, pc, retired_op, retired_dest)`` — the trap
    semantics of Section 5.5: the interrupted instruction is suppressed,
    the link register receives its PC, fetch redirects to the handler.
    """
    if event:
        registers = list(registers)
        registers[INTERRUPT_LINK_REGISTER] = pc & _DATA_MASK
        return registers, INTERRUPT_HANDLER_ADDRESS, 0b111, INTERRUPT_LINK_REGISTER
    instruction = vsm_isa.decode(word)
    registers, pc = vsm_isa.execute(instruction, registers, pc)
    return registers, pc, instruction.opcode, instruction.destination()


def bitvec_int(vector: BitVec) -> int:
    """Integer value of a constant BitVec (all bits terminal)."""
    word = 0
    for bit in range(vector.width):
        node = vector[bit]
        assert node.is_terminal, "expected a constant observation"
        if node.value:
            word |= 1 << bit
    return word


def observation_ints(observation) -> dict:
    return {name: bitvec_int(value) for name, value in observation.items()}


class TestInterruptDifferential:
    """The symbolic event machines match the architectural trap reference
    when driven with concrete instruction words."""

    def test_unpipelined_spec_matches_reference(self):
        rng = random.Random(SEED + 1)
        for _ in range(10):
            length = rng.randrange(1, 5)
            event_slot = rng.randrange(length)
            words = [
                vsm_isa.random_instruction(rng, allow_control_transfer=False).encode()
                for _ in range(length)
            ]
            manager = BDDManager()
            machine = SymbolicUnpipelinedVSMWithEvents(manager)
            machine.reset()
            registers, pc = [0] * vsm_isa.NUM_REGISTERS, 0
            for index, word in enumerate(words):
                event = index == event_slot
                observed = machine.execute_instruction(
                    BitVec.constant(manager, word, vsm_isa.INSTRUCTION_WIDTH),
                    event=event,
                )
                registers, pc, op, dest = reference_trap_step(
                    registers, pc, word, event
                )
                values = observation_ints(observed)
                for i, value in enumerate(registers):
                    assert values[f"reg{i}"] == value, (index, words)
                assert values["pc_next"] == pc
                assert values["retired_op"] == op
                assert values["retired_dest"] == dest

    def test_pipelined_impl_matches_reference(self):
        """Drive the pipelined event machine on the engine's feeding
        schedule with concrete words; retired state must track the
        atomic reference at every retirement cycle."""
        k = vsm_isa.PIPELINE_DEPTH
        rng = random.Random(SEED + 2)
        for _ in range(6):
            length = rng.randrange(1, 4)
            event_slot = rng.randrange(length)
            words = [
                vsm_isa.random_instruction(rng, allow_control_transfer=False).encode()
                for _ in range(length)
            ]
            squashed = {
                event_slot: [
                    vsm_isa.random_instruction(rng, allow_control_transfer=False).encode()
                    for _ in range(2)
                ]
            }

            manager = BDDManager()
            implementation = SymbolicPipelinedVSMWithEvents(manager)
            implementation.reset()

            wanted = set()
            feed_cursor = 1
            for index in range(length):
                wanted.add(feed_cursor + k - 1)
                feed_cursor += 1 + len(squashed.get(index, []))

            observations = {}
            cycle = 0

            def advance(word: int, fetch_valid, event: bool) -> None:
                nonlocal cycle
                observed = implementation.step(
                    BitVec.constant(manager, word, vsm_isa.INSTRUCTION_WIDTH),
                    fetch_valid=fetch_valid,
                    event=event,
                )
                cycle += 1
                if cycle in wanted:
                    observations[cycle] = observation_ints(observed)

            for index, word in enumerate(words):
                advance(word, manager.one, event=False)
                extras = squashed.get(index, [])
                for position, extra in enumerate(extras):
                    advance(
                        extra,
                        manager.one,
                        event=(index == event_slot and position == len(extras) - 1),
                    )
            while cycle < max(wanted):
                advance(0, manager.zero, event=False)

            registers, pc = [0] * vsm_isa.NUM_REGISTERS, 0
            samples = [observations[c] for c in sorted(observations)]
            for index, word in enumerate(words):
                registers, pc, op, dest = reference_trap_step(
                    registers, pc, word, index == event_slot
                )
                values = samples[index]
                for i, value in enumerate(registers):
                    assert values[f"reg{i}"] == value, (index, words, event_slot)
                assert values["pc_next"] == pc
                assert values["retired_op"] == op
                assert values["retired_dest"] == dest

    def test_engine_event_verdicts_bracket_the_bug(self):
        """Golden events pass; the broken link register is refuted with a
        counterexample that names the link observable."""
        golden = execute_scenario(
            Scenario(name="e", kind="events", slots=(NORMAL,) * 3, event_slots=(1,))
        )
        assert golden.passed
        broken = execute_scenario(
            Scenario(
                name="eb",
                kind="events",
                slots=(NORMAL,) * 3,
                event_slots=(1,),
                break_event_link=True,
            )
        )
        assert not broken.passed
        observables = {mismatch["observable"] for mismatch in broken.mismatches}
        assert f"reg{INTERRUPT_LINK_REGISTER}" in observables


# ----------------------------------------------------------------------
# Identity-mutation differential: identity knobs are byte-transparent
# ----------------------------------------------------------------------
class TestIdentityMutationDifferential:
    """Every mutation knob at its identity value yields verdict bytes
    identical to the stock scenario.

    The generative fuzz campaigns perturb the implementation models
    through these knobs; the identity values are the contract that the
    knob plumbing itself is invisible — a mutated model at the identity
    point takes the stock code path and produces the same mismatch
    records, counterexample assignments and structure, byte for byte.
    """

    #: Identity values per knob (see ``repro.engine.scenario.MUTATION_KNOBS``).
    BETA_IDENTITY = (("branch_offset", 0), ("bypass_operands", "ab"))

    def _pair(self, identity_mutations, **kwargs):
        stock = execute_scenario(Scenario(name="identity-diff", **kwargs))
        mutated = execute_scenario(
            Scenario(name="identity-diff", mutations=identity_mutations, **kwargs)
        )
        return stock, mutated

    @pytest.mark.parametrize(
        "slots", [(NORMAL, NORMAL), (CONTROL, NORMAL), (NORMAL, CONTROL)]
    )
    def test_beta_identity_is_transparent(self, slots):
        stock, mutated = self._pair(self.BETA_IDENTITY, slots=slots)
        assert stock.passed
        assert verdict_bytes(mutated) == verdict_bytes(stock)

    def test_beta_identity_preserves_bug_counterexamples(self):
        """Identity knobs on a buggy model reproduce the refutation
        byte for byte — same decoded counterexamples."""
        stock, mutated = self._pair(
            self.BETA_IDENTITY, slots=(NORMAL, NORMAL), bug="no_bypass"
        )
        assert not stock.passed
        assert verdict_bytes(mutated) == verdict_bytes(stock)

    def test_events_identity_is_transparent(self):
        stock, mutated = self._pair(
            self.BETA_IDENTITY,
            kind="events",
            slots=(NORMAL,) * 3,
            event_slots=(1,),
        )
        assert stock.passed
        assert verdict_bytes(mutated) == verdict_bytes(stock)

    def test_superscalar_identity_is_transparent(self):
        rng = random.Random(SEED + 3)
        program = tuple(
            instruction.encode()
            for instruction in vsm_isa.random_program(rng, 6)
        )
        stock, mutated = self._pair(
            (("hazard_checks", "full"), ("pipeline", "superscalar")),
            kind="superscalar",
            program=program,
            issue_width=2,
        )
        assert stock.passed
        assert verdict_bytes(mutated) == verdict_bytes(stock)

    def test_scoreboard_identity_knobs_are_transparent(self):
        """The scoreboard's own knobs at identity match the bare
        ``pipeline: scoreboard`` selection byte for byte."""
        rng = random.Random(SEED + 4)
        program = tuple(
            instruction.encode()
            for instruction in vsm_isa.random_program(rng, 6)
        )
        base = execute_scenario(
            Scenario(
                name="identity-diff",
                kind="superscalar",
                program=program,
                mutations=(("pipeline", "scoreboard"),),
            )
        )
        expanded = execute_scenario(
            Scenario(
                name="identity-diff",
                kind="superscalar",
                program=program,
                mutations=(
                    ("functional_units", 2),
                    ("issue_raw_check", "full"),
                    ("latency_profile", "default"),
                    ("pipeline", "scoreboard"),
                ),
            )
        )
        assert base.passed
        assert verdict_bytes(expanded) == verdict_bytes(base)


# ----------------------------------------------------------------------
# Telemetry differential: tracing must never touch a verdict
# ----------------------------------------------------------------------
class TestTelemetryDifferential:
    """Verdicts are byte-identical with tracing enabled and disabled.

    The telemetry layer's contract is observe-only (spans sample the
    kernel's monotonic counters; nothing feeds back).  This pins it the
    same way the backend and scheduling differentials are pinned: run
    the identical scenario set traced and untraced and compare the
    canonical verdict JSON byte for byte.
    """

    SCENARIOS = [
        dict(slots=(NORMAL, NORMAL)),
        dict(slots=(CONTROL, NORMAL), bug="no_annul"),
        dict(kind="events", slots=(NORMAL,) * 3, event_slots=(1,)),
    ]

    def _run_all(self):
        return [
            verdict_bytes(
                execute_scenario(Scenario(name="telemetry-diff", **kwargs))
            )
            for kwargs in self.SCENARIOS
        ]

    def test_traced_verdicts_byte_identical_to_untraced(self, tmp_path):
        from repro import telemetry

        telemetry.disable()
        untraced = self._run_all()
        telemetry.enable(trace_path=tmp_path / "trace.jsonl")
        try:
            traced = self._run_all()
            tracer = telemetry.get_tracer()
            assert tracer.event_count() > 0  # the runs really were traced
        finally:
            telemetry.disable()
        assert traced == untraced

    def test_traced_campaign_verdict_json_byte_identical(self, tmp_path):
        from repro import telemetry
        from repro.engine import CampaignRunner

        names = ["vsm/default", "vsm/bug/no_bypass"]
        telemetry.disable()
        baseline = CampaignRunner(store_path=tmp_path / "s1").run(names)
        telemetry.enable()
        try:
            traced = CampaignRunner(store_path=tmp_path / "s2").run(names)
        finally:
            telemetry.disable()
        assert traced.verdict_json() == baseline.verdict_json()
        assert baseline.telemetry == {} and traced.telemetry != {}
