"""Seeded property-based tests of the BDD engine.

Random Boolean expression trees are generated from a fixed-seed RNG and
elaborated twice: once into ROBDDs through :class:`BDDManager` and once
into plain Python truth-table evaluators.  Every algebraic law the
verification flow relies on — the ite/apply identities, quantification
as cofactor disjunction/conjunction, composition as substitution — is
then checked on hundreds of random cases, and canonicity is pinned down
both ways: semantically equal functions are the *same node* (node
identity ⇔ ``equivalent``), and semantically different functions never
are.

All randomness flows from ``random.Random(SEED)``; the suite is fully
deterministic.
"""

import itertools
import random

import pytest

from repro.bdd import BDDManager

SEED = 20260729
#: Cases per operator family (>= 200 each per the campaign-engine issue).
CASES = 200
VARIABLES = ("a", "b", "c", "d", "e", "f")


def random_expression(rng, depth, names):
    """A random expression tree as (bdd-builder, evaluator) recipe.

    Returns a pair of functions ``(build(manager), evaluate(env))`` so a
    single tree can be elaborated into a BDD and into a reference
    truth-table evaluator without re-walking shared state.
    """
    if depth <= 0 or rng.random() < 0.2:
        choice = rng.random()
        if choice < 0.1:
            value = rng.random() < 0.5
            return (lambda m: m.constant(value)), (lambda env: value)
        name = rng.choice(names)
        if choice < 0.55:
            return (lambda m: m.var(name)), (lambda env: env[name])
        return (lambda m: m.nvar(name)), (lambda env: not env[name])
    operator = rng.choice(("and", "or", "xor", "not", "implies", "xnor", "ite"))
    left_build, left_eval = random_expression(rng, depth - 1, names)
    if operator == "not":
        return (
            lambda m: m.apply_not(left_build(m)),
            lambda env: not left_eval(env),
        )
    right_build, right_eval = random_expression(rng, depth - 1, names)
    if operator == "ite":
        else_build, else_eval = random_expression(rng, depth - 1, names)
        return (
            lambda m: m.ite(left_build(m), right_build(m), else_build(m)),
            lambda env: right_eval(env) if left_eval(env) else else_eval(env),
        )
    table = {
        "and": (lambda m, f, g: m.apply_and(f, g), lambda x, y: x and y),
        "or": (lambda m, f, g: m.apply_or(f, g), lambda x, y: x or y),
        "xor": (lambda m, f, g: m.apply_xor(f, g), lambda x, y: x != y),
        "xnor": (lambda m, f, g: m.apply_xnor(f, g), lambda x, y: x == y),
        "implies": (lambda m, f, g: m.apply_implies(f, g), lambda x, y: (not x) or y),
    }
    bdd_op, bool_op = table[operator]
    return (
        lambda m: bdd_op(m, left_build(m), right_build(m)),
        lambda env: bool(bool_op(left_eval(env), right_eval(env))),
    )


def assignments(names):
    """Every assignment over ``names`` (the brute-force reference)."""
    for values in itertools.product((False, True), repeat=len(names)):
        yield dict(zip(names, values))


def assert_matches(manager, node, evaluator, names, context=""):
    """The BDD agrees with the reference evaluator on every assignment."""
    for env in assignments(names):
        assert manager.evaluate(node, env) == evaluator(env), (context, env)


@pytest.fixture(scope="module")
def manager():
    """One manager for the whole module: canonicity must survive reuse."""
    return BDDManager(variables=VARIABLES)


def make_cases(count, depth=4):
    rng = random.Random(SEED)
    return [random_expression(rng, depth, VARIABLES) for _ in range(count)]


class TestEvaluationAgreesWithTruthTables:
    def test_random_trees_evaluate_correctly(self, manager):
        for index, (build, evaluate) in enumerate(make_cases(CASES)):
            node = build(manager)
            assert_matches(manager, node, evaluate, VARIABLES, f"case {index}")


class TestCanonicity:
    """Node identity if and only if semantic equivalence."""

    def test_equal_functions_are_the_same_node(self, manager):
        rng = random.Random(SEED + 1)
        for index in range(CASES):
            build, evaluate = random_expression(rng, 4, VARIABLES)
            first = build(manager)
            second = build(manager)
            assert first is second, f"case {index}: rebuild produced a new node"
            assert manager.equivalent(first, second)

    def test_semantically_equal_but_syntactically_different(self, manager):
        rng = random.Random(SEED + 2)
        for index in range(CASES):
            build, _ = random_expression(rng, 3, VARIABLES)
            f = build(manager)
            # f == ~~f == f | f == f & f == ite(f, 1, 0).
            assert manager.apply_not(manager.apply_not(f)) is f
            assert manager.apply_or(f, f) is f
            assert manager.apply_and(f, f) is f
            assert manager.ite(f, manager.one, manager.zero) is f

    def test_different_functions_are_different_nodes(self, manager):
        rng = random.Random(SEED + 3)
        checked = 0
        while checked < CASES:
            build_f, eval_f = random_expression(rng, 3, VARIABLES)
            build_g, eval_g = random_expression(rng, 3, VARIABLES)
            same = all(eval_f(env) == eval_g(env) for env in assignments(VARIABLES))
            f, g = build_f(manager), build_g(manager)
            if same:
                assert f is g
            else:
                assert f is not g
                assert not manager.equivalent(f, g)
            checked += 1


class TestIteIdentities:
    def test_ite_is_mux(self, manager):
        """ite(f, g, h) == (f & g) | (~f & h) as the same canonical node."""
        rng = random.Random(SEED + 4)
        for _ in range(CASES):
            f = random_expression(rng, 3, VARIABLES)[0](manager)
            g = random_expression(rng, 3, VARIABLES)[0](manager)
            h = random_expression(rng, 3, VARIABLES)[0](manager)
            via_ite = manager.ite(f, g, h)
            via_mux = manager.apply_or(
                manager.apply_and(f, g),
                manager.apply_and(manager.apply_not(f), h),
            )
            assert via_ite is via_mux

    def test_ite_terminal_cases(self, manager):
        rng = random.Random(SEED + 5)
        for _ in range(CASES):
            f = random_expression(rng, 3, VARIABLES)[0](manager)
            g = random_expression(rng, 3, VARIABLES)[0](manager)
            assert manager.ite(manager.one, f, g) is f
            assert manager.ite(manager.zero, f, g) is g
            assert manager.ite(f, g, g) is g
            assert manager.ite(f, manager.one, manager.zero) is f
            assert manager.ite(f, manager.zero, manager.one) is manager.apply_not(f)


class TestApplyAlgebra:
    def test_de_morgan_and_duality(self, manager):
        rng = random.Random(SEED + 6)
        for _ in range(CASES):
            f = random_expression(rng, 3, VARIABLES)[0](manager)
            g = random_expression(rng, 3, VARIABLES)[0](manager)
            assert manager.apply_not(manager.apply_and(f, g)) is manager.apply_or(
                manager.apply_not(f), manager.apply_not(g)
            )
            assert manager.apply_nand(f, g) is manager.apply_not(manager.apply_and(f, g))
            assert manager.apply_nor(f, g) is manager.apply_not(manager.apply_or(f, g))

    def test_commutativity_and_absorption(self, manager):
        rng = random.Random(SEED + 7)
        for _ in range(CASES):
            f = random_expression(rng, 3, VARIABLES)[0](manager)
            g = random_expression(rng, 3, VARIABLES)[0](manager)
            assert manager.apply_and(f, g) is manager.apply_and(g, f)
            assert manager.apply_or(f, g) is manager.apply_or(g, f)
            assert manager.apply_xor(f, g) is manager.apply_xor(g, f)
            assert manager.apply_or(f, manager.apply_and(f, g)) is f
            assert manager.apply_and(f, manager.apply_or(f, g)) is f

    def test_xor_xnor_complement_and_excluded_middle(self, manager):
        rng = random.Random(SEED + 8)
        for _ in range(CASES):
            f = random_expression(rng, 3, VARIABLES)[0](manager)
            g = random_expression(rng, 3, VARIABLES)[0](manager)
            assert manager.apply_xnor(f, g) is manager.apply_not(manager.apply_xor(f, g))
            assert manager.apply_xor(f, f) is manager.zero
            assert manager.apply_xnor(f, f) is manager.one
            assert manager.apply_or(f, manager.apply_not(f)) is manager.one
            assert manager.apply_and(f, manager.apply_not(f)) is manager.zero

    def test_implication_as_disjunction(self, manager):
        rng = random.Random(SEED + 9)
        for _ in range(CASES):
            f = random_expression(rng, 3, VARIABLES)[0](manager)
            g = random_expression(rng, 3, VARIABLES)[0](manager)
            assert manager.apply_implies(f, g) is manager.apply_or(manager.apply_not(f), g)


class TestQuantification:
    def test_exists_is_cofactor_disjunction(self, manager):
        rng = random.Random(SEED + 10)
        for _ in range(CASES):
            f = random_expression(rng, 4, VARIABLES)[0](manager)
            name = rng.choice(VARIABLES)
            smoothed = manager.exists([name], f)
            expected = manager.apply_or(
                manager.cofactor(f, name, True), manager.cofactor(f, name, False)
            )
            assert smoothed is expected
            assert name not in manager.support(smoothed)

    def test_forall_is_cofactor_conjunction(self, manager):
        rng = random.Random(SEED + 11)
        for _ in range(CASES):
            f = random_expression(rng, 4, VARIABLES)[0](manager)
            name = rng.choice(VARIABLES)
            universal = manager.forall([name], f)
            expected = manager.apply_and(
                manager.cofactor(f, name, True), manager.cofactor(f, name, False)
            )
            assert universal is expected

    def test_forall_implies_exists_and_duality(self, manager):
        rng = random.Random(SEED + 12)
        for _ in range(CASES):
            f = random_expression(rng, 4, VARIABLES)[0](manager)
            names = rng.sample(VARIABLES, rng.randrange(1, 4))
            forall = manager.forall(names, f)
            exists = manager.exists(names, f)
            assert manager.apply_implies(forall, exists) is manager.one
            # Quantifier duality: forall x f == ~exists x ~f.
            dual = manager.apply_not(manager.exists(names, manager.apply_not(f)))
            assert forall is dual

    def test_and_exists_equals_exists_of_conjunction(self, manager):
        rng = random.Random(SEED + 13)
        for _ in range(CASES):
            f = random_expression(rng, 3, VARIABLES)[0](manager)
            g = random_expression(rng, 3, VARIABLES)[0](manager)
            names = rng.sample(VARIABLES, rng.randrange(0, 4))
            fused = manager.and_exists(names, f, g)
            staged = manager.exists(names, manager.apply_and(f, g))
            assert fused is staged


class TestComposition:
    def test_compose_matches_substituted_evaluation(self, manager):
        rng = random.Random(SEED + 14)
        for index in range(CASES):
            build_f, eval_f = random_expression(rng, 3, VARIABLES)
            target = rng.choice(VARIABLES)
            build_g, eval_g = random_expression(rng, 3, VARIABLES)
            f = build_f(manager)
            g = build_g(manager)
            composed = manager.compose(f, {target: g})

            def substituted(env, eval_f=eval_f, eval_g=eval_g, target=target):
                inner = dict(env)
                inner[target] = eval_g(env)
                return eval_f(inner)

            assert_matches(manager, composed, substituted, VARIABLES, f"case {index}")

    def test_compose_with_variable_is_rename(self, manager):
        rng = random.Random(SEED + 15)
        for _ in range(CASES):
            build_f, _ = random_expression(rng, 3, VARIABLES[:3])
            f = build_f(manager)
            renamed = manager.rename(f, {"a": "d", "b": "e", "c": "f"})
            back = manager.rename(renamed, {"d": "a", "e": "b", "f": "c"})
            assert back is f

    def test_restrict_agrees_with_compose_of_constants(self, manager):
        rng = random.Random(SEED + 16)
        for _ in range(CASES):
            f = random_expression(rng, 4, VARIABLES)[0](manager)
            names = rng.sample(VARIABLES, rng.randrange(1, 4))
            assignment = {name: rng.random() < 0.5 for name in names}
            restricted = manager.restrict(f, assignment)
            composed = manager.compose(
                f, {name: manager.constant(value) for name, value in assignment.items()}
            )
            assert restricted is composed


class TestCountingQueries:
    def test_sat_count_matches_brute_force(self, manager):
        rng = random.Random(SEED + 17)
        for index in range(CASES):
            build, evaluate = random_expression(rng, 4, VARIABLES)
            node = build(manager)
            expected = sum(1 for env in assignments(VARIABLES) if evaluate(env))
            assert manager.sat_count(node, VARIABLES) == expected, f"case {index}"

    def test_pick_assignment_satisfies(self, manager):
        rng = random.Random(SEED + 18)
        for _ in range(CASES):
            node = random_expression(rng, 4, VARIABLES)[0](manager)
            witness = manager.pick_assignment(node)
            if node is manager.zero:
                assert witness is None
            else:
                env = {name: witness.get(name, False) for name in VARIABLES}
                assert manager.evaluate(node, env) is True
