"""The resilience layer: fault injection, supervision, checkpoint/resume (PR 10).

The engine's standing invariant — byte-identical verdicts on every
path — must extend to the *failure* paths.  This suite pins it
differentially: a campaign run under a seeded, quiescent fault
schedule (store I/O errors, record corruption, worker crashes, hangs,
scenario exceptions) reports verdicts byte-identical to the fault-free
run, serially and in parallel; a campaign interrupted mid-run and
resumed against its checkpoint journal replays only the finished
scenarios and still reproduces the fault-free bytes.
"""

import json

import pytest

from repro.engine import (
    CampaignRunner,
    FaultPlan,
    FaultSpec,
    Scenario,
    SupervisionPolicy,
    campaign_fingerprint,
)
from repro.resilience import (
    CRASH_EXIT_CODE,
    CampaignJournal,
    FaultInjector,
    InjectedError,
    InjectedFault,
    InjectedIOError,
    faults,
    transient,
)
from repro.strings import CONTROL, NORMAL

#: A small mixed campaign: two variable-order signatures, a shared
#: golden specification and a bug, so the parallel scheduler builds at
#: least two work units (each of two workers receives one).
CAMPAIGN = [
    Scenario(name="vsm/golden", slots=(NORMAL, NORMAL)),
    Scenario(name="vsm/bug", slots=(NORMAL, NORMAL), bug="no_bypass"),
    Scenario(name="vsm/branchy", slots=(CONTROL, NORMAL)),
]


@pytest.fixture(autouse=True)
def _injection_off():
    """Every test starts and ends with fault injection disabled."""
    faults.configure(None)
    yield
    faults.configure(None)


@pytest.fixture(scope="module")
def baseline_verdicts():
    """The fault-free serial verdict bytes every faulted run must match."""
    return CampaignRunner().run(CAMPAIGN).verdict_json()


# ----------------------------------------------------------------------
# The fault plan: pure, seeded, budgeted
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_decisions_are_pure_and_seeded(self):
        plan = FaultPlan(seed=7, sites={"scenario.run": FaultSpec(kind="error", rate=0.5)})
        first = [plan.should_fire("scenario.run", i) for i in range(64)]
        second = [plan.should_fire("scenario.run", i) for i in range(64)]
        assert first == second
        assert any(first) and not all(first)
        other = FaultPlan(seed=8, sites={"scenario.run": FaultSpec(kind="error", rate=0.5)})
        assert [other.should_fire("scenario.run", i) for i in range(64)] != first

    def test_explicit_indices_union_with_rate(self):
        plan = FaultPlan(seed=0, sites={"scenario.run": FaultSpec(kind="error", at=(3,))})
        assert plan.should_fire("scenario.run", 3)
        assert not plan.should_fire("scenario.run", 2)

    def test_unknown_site_and_kind_are_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(sites={"store.read.nonsense": FaultSpec()})
        with pytest.raises(ValueError):
            FaultSpec(kind="meltdown")
        with pytest.raises(ValueError):
            FaultSpec(rate=1.5)

    def test_round_trips_through_dict(self):
        plan = FaultPlan(
            seed=11,
            sites={
                "store.read.results": FaultSpec(kind="io", rate=0.25, at=(1, 5)),
                "worker.hang": FaultSpec(kind="hang", payload=2.5),
            },
        )
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone == plan

    def test_max_fires_budget_makes_plans_quiescent(self):
        injector = FaultInjector(
            FaultPlan(sites={"scenario.run": FaultSpec(kind="error", rate=1.0, max_fires=2)})
        )
        fired = 0
        for _ in range(10):
            try:
                injector.fire("scenario.run")
            except InjectedError:
                fired += 1
        assert fired == 2
        stats = injector.statistics()
        assert stats["fires"] == 2
        assert stats["sites"]["scenario.run"]["invocations"] == 10

    def test_mangle_is_deterministic_and_budgeted(self):
        spec = FaultSpec(kind="corrupt", at=(0,), max_fires=1)
        data = b"0123456789abcdef"
        one = FaultInjector(FaultPlan(sites={"store.corrupt.results": spec}))
        two = FaultInjector(FaultPlan(sites={"store.corrupt.results": spec}))
        assert one.mangle("store.corrupt.results", data) == two.mangle(
            "store.corrupt.results", data
        )
        assert one.mangle("store.corrupt.results", data) == data  # budget spent

    def test_disabled_injection_is_a_no_op(self):
        faults.configure(None)
        faults.fire("scenario.run")  # must not raise
        assert faults.mangle("store.corrupt.results", b"data") == b"data"
        assert faults.statistics() is None

    def test_active_scope_restores_previous_injector(self):
        plan = FaultPlan(sites={"scenario.run": FaultSpec(kind="error", at=(0,))})
        assert faults.get_injector() is None
        with faults.active(plan) as injector:
            assert faults.get_injector() is injector
        assert faults.get_injector() is None

    def test_injected_exception_taxonomy(self):
        assert issubclass(InjectedIOError, OSError)
        assert issubclass(InjectedIOError, InjectedFault)
        assert issubclass(InjectedError, InjectedFault)
        assert not issubclass(InjectedError, OSError)


# ----------------------------------------------------------------------
# The supervision policy: seeded backoff, transient classification
# ----------------------------------------------------------------------
class TestSupervisionPolicy:
    def test_transient_classification(self):
        assert transient(InjectedError("x"))
        assert transient(InjectedIOError("x"))
        assert transient(OSError("disk"))
        assert transient(TimeoutError("slow"))
        assert not transient(KeyboardInterrupt())
        assert not transient(SystemExit())
        assert not transient(ValueError("deterministic bug"))

    def test_backoff_is_exponential_bounded_and_pure(self):
        policy = SupervisionPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3, jitter=0.0
        )
        assert policy.backoff_seconds("k", 1) == pytest.approx(0.1)
        assert policy.backoff_seconds("k", 2) == pytest.approx(0.2)
        assert policy.backoff_seconds("k", 3) == pytest.approx(0.3)  # capped
        assert policy.backoff_seconds("k", 9) == pytest.approx(0.3)

    def test_jitter_is_seeded_not_random(self):
        policy = SupervisionPolicy(jitter=0.5, seed=3)
        values = {policy.backoff_seconds("key", 1) for _ in range(5)}
        assert len(values) == 1  # pure function, no live RNG
        raw = SupervisionPolicy(jitter=0.0).backoff_seconds("key", 1)
        jittered = policy.backoff_seconds("key", 1)
        assert raw * 0.5 <= jittered <= raw
        assert policy.with_seed(4).backoff_seconds("key", 1) != jittered

    def test_retryable_requires_budget_and_transience(self):
        assert SupervisionPolicy(max_attempts=3).retryable(OSError("x"))
        assert not SupervisionPolicy(max_attempts=1).retryable(OSError("x"))
        assert not SupervisionPolicy(max_attempts=3).retryable(ValueError("x"))

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            SupervisionPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            SupervisionPolicy(soft_timeout=0.0)

    def test_round_trips_through_dict(self):
        policy = SupervisionPolicy(max_attempts=5, soft_timeout=2.0, seed=9)
        assert SupervisionPolicy.from_dict(policy.to_dict()) == policy


# ----------------------------------------------------------------------
# The checkpoint journal
# ----------------------------------------------------------------------
class TestCampaignJournal:
    def test_fresh_journal_then_resume(self, tmp_path):
        path = tmp_path / "c.journal"
        with CampaignJournal(path, key="k1", total=3) as journal:
            assert not journal.resumed and journal.remaining == 3
            journal.mark(0, "fp0")
            journal.mark(1, "fp1")
        with CampaignJournal(path, key="k1", total=3) as journal:
            assert journal.resumed
            assert journal.completed == {"fp0", "fp1"}
            assert journal.remaining == 1
            assert journal.is_complete("fp0") and not journal.is_complete("fp2")

    def test_foreign_journal_starts_fresh(self, tmp_path):
        path = tmp_path / "c.journal"
        with CampaignJournal(path, key="k1", total=3) as journal:
            journal.mark(0, "fp0")
        # Different campaign key: marks must not leak.
        with CampaignJournal(path, key="k2", total=3) as journal:
            assert not journal.resumed and journal.completed == set()
        # Same key, different total: also foreign.
        with CampaignJournal(path, key="k2", total=4) as journal:
            assert not journal.resumed

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "c.journal"
        with CampaignJournal(path, key="k", total=3) as journal:
            journal.mark(0, "fp0")
            journal.mark(1, "fp1")
        # Simulate a crash mid-append: the final line is truncated.
        text = path.read_text()
        path.write_text(text[: text.rindex("fp1") + 1])
        with CampaignJournal(path, key="k", total=3) as journal:
            assert journal.resumed
            assert journal.completed == {"fp0"}
            # And the journal keeps accepting marks after the tear.
            journal.mark(1, "fp1")
        with CampaignJournal(path, key="k", total=3) as journal:
            assert journal.completed == {"fp0", "fp1"}

    def test_marks_are_deduplicated(self, tmp_path):
        path = tmp_path / "c.journal"
        with CampaignJournal(path, key="k", total=2) as journal:
            journal.mark(0, "fp0")
            journal.mark(0, "fp0")
        assert sum(1 for line in path.read_text().splitlines() if "done" in line) == 1

    def test_campaign_fingerprint_is_order_sensitive(self):
        forward = campaign_fingerprint(CAMPAIGN, "salt")
        assert forward == campaign_fingerprint(list(CAMPAIGN), "salt")
        assert forward != campaign_fingerprint(list(reversed(CAMPAIGN)), "salt")
        assert forward != campaign_fingerprint(CAMPAIGN, "other-salt")


# ----------------------------------------------------------------------
# Differential: byte-identical verdicts under seeded fault schedules
# ----------------------------------------------------------------------
#: The acceptance schedules: every plan is quiescent (finite budgets),
#: so bounded retries/respawns must fully absorb it.
SCHEDULES = {
    "store-io-and-corruption": FaultPlan(
        seed=101,
        sites={
            "store.read.results": FaultSpec(kind="io", at=(0,), max_fires=1),
            "store.write.results": FaultSpec(kind="io", at=(1,), max_fires=1),
            "store.corrupt.snapshots": FaultSpec(kind="corrupt", at=(0,), max_fires=1),
        },
    ),
    "scenario-errors-retried": FaultPlan(
        seed=202,
        sites={"scenario.run": FaultSpec(kind="error", at=(0, 2), max_fires=2)},
    ),
    "worker-crash-respawned": FaultPlan(
        seed=303,
        sites={"worker.crash": FaultSpec(kind="crash", at=(0,), max_fires=1)},
    ),
}

POLICY = SupervisionPolicy(max_attempts=3, backoff_base=0.001, backoff_max=0.01)


class TestDifferentialFaultSchedules:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_serial_verdicts_survive_the_schedule(
        self, name, tmp_path, baseline_verdicts
    ):
        with faults.active(SCHEDULES[name]):
            report = CampaignRunner(store_path=tmp_path / "store").run(
                CAMPAIGN, supervision=POLICY
            )
        assert report.verdict_json() == baseline_verdicts
        assert report.resilience.get("faults", {}).get("seed") == SCHEDULES[name].seed

    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_parallel_verdicts_survive_the_schedule(
        self, name, tmp_path, baseline_verdicts
    ):
        with faults.active(SCHEDULES[name]):
            report = CampaignRunner(store_path=tmp_path / "store").run(
                CAMPAIGN, parallel=True, max_workers=2, supervision=POLICY
            )
        assert report.verdict_json() == baseline_verdicts

    def test_store_faults_leave_the_store_consistent(self, tmp_path, baseline_verdicts):
        with faults.active(SCHEDULES["store-io-and-corruption"]):
            CampaignRunner(store_path=tmp_path / "store").run(
                CAMPAIGN, supervision=POLICY
            )
        # A clean re-run against the surviving store replays warm.
        report = CampaignRunner(store_path=tmp_path / "store").run(CAMPAIGN)
        assert report.verdict_json() == baseline_verdicts
        assert not list((tmp_path / "store").rglob("*.tmp"))


# ----------------------------------------------------------------------
# Supervised retry (serial)
# ----------------------------------------------------------------------
class TestSupervisedRetry:
    def test_transient_error_is_retried_and_counted(self, baseline_verdicts):
        plan = FaultPlan(sites={"scenario.run": FaultSpec(kind="error", at=(1,))})
        with faults.active(plan):
            report = CampaignRunner().run(CAMPAIGN, supervision=POLICY)
        assert report.verdict_json() == baseline_verdicts
        assert report.resilience["retries"] == 1
        assert report.resilience["policy"]["max_attempts"] == 3

    def test_without_supervision_the_fault_is_a_failure_outcome(self):
        plan = FaultPlan(sites={"scenario.run": FaultSpec(kind="error", at=(1,))})
        with faults.active(plan):
            report = CampaignRunner().run(CAMPAIGN)
        assert not report.passed
        failed = report.outcomes[1]
        assert failed.error is not None and "InjectedError" in failed.error
        # The other scenarios were isolated from the failure.
        assert report.outcomes[0].passed

    def test_retry_budget_exhaustion_fails_the_scenario(self):
        plan = FaultPlan(
            sites={"scenario.run": FaultSpec(kind="error", rate=1.0, max_fires=100)}
        )
        with faults.active(plan):
            report = CampaignRunner().run(
                CAMPAIGN[:1], supervision=SupervisionPolicy(max_attempts=2, backoff_base=0.0)
            )
        assert report.outcomes[0].error is not None
        assert report.resilience["retries"] == 1  # one retry, then it stood

    def test_store_write_failure_degrades_to_unpublished(self, tmp_path, baseline_verdicts):
        plan = FaultPlan(
            sites={"store.write.results": FaultSpec(kind="io", rate=1.0, max_fires=100)}
        )
        with faults.active(plan):
            report = CampaignRunner(store_path=tmp_path / "store").run(
                CAMPAIGN, supervision=POLICY
            )
        assert report.verdict_json() == baseline_verdicts
        assert all(o.store.get("status") == "write_failed" for o in report.outcomes)
        assert report.resilience["write_failures"] == len(CAMPAIGN)
        assert report.resilience["write_retries"] > 0


# ----------------------------------------------------------------------
# Worker supervision (parallel affinity)
# ----------------------------------------------------------------------
class TestWorkerSupervision:
    def test_crashed_worker_is_respawned_and_unit_redispatched(
        self, baseline_verdicts
    ):
        plan = FaultPlan(
            sites={"worker.crash": FaultSpec(kind="crash", at=(0,), max_fires=1)}
        )
        with faults.active(plan):
            report = CampaignRunner().run(CAMPAIGN, parallel=True, max_workers=2)
        assert report.verdict_json() == baseline_verdicts
        workers = report.resilience["workers"]
        assert workers["respawned"] == 1
        assert workers["redispatched_units"] == 1

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE == 47

    def test_hung_worker_is_terminated_and_unit_redispatched(
        self, baseline_verdicts
    ):
        plan = FaultPlan(
            sites={"worker.hang": FaultSpec(kind="hang", at=(0,), payload=60.0)}
        )
        policy = SupervisionPolicy(max_attempts=1, soft_timeout=1.0)
        with faults.active(plan):
            report = CampaignRunner().run(
                CAMPAIGN, parallel=True, max_workers=2, supervision=policy
            )
        assert report.verdict_json() == baseline_verdicts
        workers = report.resilience["workers"]
        assert workers["hung_terminated"] == 1
        assert workers["respawned"] == 1

    def test_exhausted_respawn_budget_fails_instead_of_hanging(self):
        # Both initial workers crash and the budget allows no replacement:
        # the campaign must complete with failure outcomes, not deadlock.
        plan = FaultPlan(
            sites={"worker.crash": FaultSpec(kind="crash", at=(0, 1), max_fires=2)}
        )
        policy = SupervisionPolicy(max_attempts=1, max_respawns=0, max_redispatches=0)
        with faults.active(plan):
            report = CampaignRunner().run(
                CAMPAIGN, parallel=True, max_workers=2, supervision=policy
            )
        assert not report.passed
        assert any(
            outcome.error is not None and "worker" in outcome.error
            for outcome in report.outcomes
        )

    def test_respawned_worker_does_not_inherit_the_crash_schedule(self):
        # rate=1.0 keyed by worker id would crash every worker including
        # replacements if decisions used invocation counts; keying by
        # worker id plus the fire budget keeps the campaign finishable.
        plan = FaultPlan(
            sites={"worker.crash": FaultSpec(kind="crash", at=(0, 1), max_fires=2)}
        )
        with faults.active(plan):
            report = CampaignRunner().run(CAMPAIGN, parallel=True, max_workers=2)
        assert report.passed or all(o.error is None for o in report.outcomes)
        assert report.resilience["workers"]["respawned"] == 2


# ----------------------------------------------------------------------
# Checkpoint/resume through the runner
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_journal_requires_a_store(self, tmp_path):
        with pytest.raises(ValueError, match="persistent store"):
            CampaignRunner().run(CAMPAIGN, journal=tmp_path / "c.journal")

    def test_interrupted_campaign_resumes_with_identical_bytes(
        self, tmp_path, baseline_verdicts
    ):
        store = tmp_path / "store"
        journal = tmp_path / "campaign.journal"
        # Injected KeyboardInterrupt mid-campaign: scenario index 2 of 3.
        plan = FaultPlan(
            sites={"scenario.run": FaultSpec(kind="interrupt", at=(2,), max_fires=1)}
        )
        with faults.active(plan):
            with pytest.raises(KeyboardInterrupt):
                CampaignRunner(store_path=store).run(CAMPAIGN, journal=journal)
        # The kill left a replayable journal and no partial records.
        assert journal.exists()
        assert not list(store.rglob("*.tmp"))
        resumed = CampaignRunner(store_path=store).run(CAMPAIGN, journal=journal)
        assert resumed.verdict_json() == baseline_verdicts
        section = resumed.resilience["journal"]
        assert section["resumed"] is True
        assert section["replayed"] == 2
        assert section["completed"] == len(CAMPAIGN)
        # Only the unfinished scenario was re-executed; the journalled
        # ones replayed from the store.
        hits = sum(1 for o in resumed.outcomes if o.store.get("status") == "hit")
        assert hits == 2

    def test_completed_journal_replays_everything(self, tmp_path, baseline_verdicts):
        store = tmp_path / "store"
        journal = tmp_path / "campaign.journal"
        CampaignRunner(store_path=store).run(CAMPAIGN, journal=journal)
        replayed = CampaignRunner(store_path=store).run(CAMPAIGN, journal=journal)
        assert replayed.verdict_json() == baseline_verdicts
        assert all(o.store.get("status") == "hit" for o in replayed.outcomes)

    def test_lying_journal_costs_recompute_never_a_wrong_verdict(
        self, tmp_path, baseline_verdicts
    ):
        store = tmp_path / "store"
        journal = tmp_path / "campaign.journal"
        CampaignRunner(store_path=store).run(CAMPAIGN, journal=journal)
        # Delete the store out from under a complete journal: the
        # journal is a hint, so everything silently re-executes.
        for path in store.rglob("*.json"):
            path.unlink()
        report = CampaignRunner(store_path=store).run(CAMPAIGN, journal=journal)
        assert report.verdict_json() == baseline_verdicts
        assert all(o.store.get("status") != "hit" for o in report.outcomes)

    def test_parallel_campaign_journals_and_resumes(self, tmp_path, baseline_verdicts):
        store = tmp_path / "store"
        journal = tmp_path / "campaign.journal"
        CampaignRunner(store_path=store).run(
            CAMPAIGN, parallel=True, max_workers=2, journal=journal
        )
        resumed = CampaignRunner(store_path=store).run(
            CAMPAIGN, parallel=True, max_workers=2, journal=journal
        )
        assert resumed.verdict_json() == baseline_verdicts
        assert resumed.resilience["journal"]["resumed"] is True
        assert all(o.store.get("status") == "hit" for o in resumed.outcomes)


# ----------------------------------------------------------------------
# Report integration
# ----------------------------------------------------------------------
class TestResilienceReporting:
    def test_fault_free_unsupervised_run_keeps_an_empty_section(self):
        report = CampaignRunner().run(CAMPAIGN[:1])
        assert report.resilience == {}
        assert json.loads(report.to_json())["resilience"] == {}

    def test_supervised_retries_flag_in_telemetry_anomalies(self):
        from repro import telemetry

        plan = FaultPlan(sites={"scenario.run": FaultSpec(kind="error", at=(0,))})
        try:
            telemetry.enable()
            with faults.active(plan):
                report = CampaignRunner().run(CAMPAIGN[:1], supervision=POLICY)
        finally:
            telemetry.disable()
        anomalies = report.telemetry["trace"]["anomalies"]
        flags = [a for a in anomalies if a["kind"] == "supervised-retries"]
        assert len(flags) == 1
        assert flags[0]["count"] == 1

    def test_report_summary_mentions_resilience_activity(self):
        plan = FaultPlan(sites={"scenario.run": FaultSpec(kind="error", at=(0,))})
        with faults.active(plan):
            report = CampaignRunner().run(CAMPAIGN[:1], supervision=POLICY)
        assert "resilience" in report.summary()
        assert "1 scenario retry(ies)" in report.summary()
