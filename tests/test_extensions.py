"""Tests for the advanced-pipeline extensions: events/interrupts (Section 5.5),
dynamic scheduling (5.6), superscalar issue (5.7) and the Burch-Dill style
flushing comparison point."""

import random

import pytest

from repro.bdd import BDDManager
from repro.core import SimulationInfo, VSMArchitecture, all_normal, vsm_default
from repro.core.dynamic_beta import verify_superscalar_schedule, verify_with_events
from repro.core.flushing import verify_by_flushing
from repro.isa import VSMInstruction, assemble_vsm
from repro.isa import vsm as isa
from repro.logic import BitVec
from repro.processors.interrupts import (
    INTERRUPT_HANDLER_ADDRESS,
    INTERRUPT_LINK_REGISTER,
    SymbolicPipelinedVSMWithEvents,
    SymbolicUnpipelinedVSMWithEvents,
)
from repro.processors.scoreboard import ScoreboardVSM
from repro.processors.superscalar import SuperscalarVSM
from repro.processors.vsm_unpipelined import UnpipelinedVSM
from repro.strings import CONTROL, NORMAL


def constant_instruction(manager, instruction):
    return BitVec.constant(manager, instruction.encode(), isa.INSTRUCTION_WIDTH)


class TestInterruptModels:
    def test_specification_trap_semantics(self):
        manager = BDDManager()
        machine = SymbolicUnpipelinedVSMWithEvents(manager)
        add = VSMInstruction("add", literal_flag=True, ra=0, rb=5, rc=1)
        machine.execute_instruction(constant_instruction(manager, add))
        observation = machine.execute_instruction(constant_instruction(manager, add), event=True)
        # The trapped instruction did not execute; the link holds its PC.
        assert observation[f"reg{INTERRUPT_LINK_REGISTER}"].as_constant() == 1
        assert observation["pc_next"].as_constant() == INTERRUPT_HANDLER_ADDRESS
        assert observation["reg1"].as_constant() == 5  # from the first instruction only

    def test_pipelined_trap_matches_specification(self):
        report = verify_with_events(vsm_default(), event_slots=[1])
        assert report.passed, report.summary()
        assert report.extra["event_slots"] == [1]

    def test_event_on_every_slot_passes(self):
        for slot in range(4):
            report = verify_with_events(all_normal(4), event_slots=[slot])
            assert report.passed, f"event at slot {slot}: {report.summary()}"

    def test_broken_link_save_is_caught(self):
        report = verify_with_events(
            all_normal(4), event_slots=[2], impl_kwargs={"break_event_link": True}
        )
        assert not report.passed
        assert any(m.observable == f"reg{INTERRUPT_LINK_REGISTER}" for m in report.mismatches)

    def test_event_slot_bounds_checked(self):
        with pytest.raises(ValueError):
            verify_with_events(all_normal(4), event_slots=[9])

    def test_dynamic_filter_marks_event_slot_like_control(self):
        report = verify_with_events(all_normal(4), event_slots=[0])
        assert report.slot_kinds[0] == CONTROL
        assert report.implementation_cycles == len(report.implementation_filter)


class TestSuperscalarVSM:
    def test_independent_instructions_pair_up(self):
        program = assemble_vsm(
            """
            add r1, r0, #1
            add r2, r0, #2
            add r3, r0, #3
            add r4, r0, #4
            """
        )
        machine = SuperscalarVSM(issue_width=2)
        completions, _ = machine.run(program)
        assert completions == [2, 2]
        assert machine.instructions_retired == 4

    def test_dependent_instructions_split_groups(self):
        program = assemble_vsm("add r1, r0, #1\nadd r2, r1, #2")
        completions, _ = SuperscalarVSM(issue_width=2).run(program)
        assert completions == [1, 1]

    def test_branch_ends_group(self):
        program = assemble_vsm("add r1, r0, #1\nbr r7, 2\nadd r2, r0, #2")
        completions, _ = SuperscalarVSM(issue_width=2).run(program)
        assert completions[0] == 1 or completions[0] == 2
        assert sum(completions) == 3

    def test_issue_width_validation(self):
        with pytest.raises(ValueError):
            SuperscalarVSM(issue_width=0)

    def test_dynamic_beta_check_passes(self):
        rng = random.Random(11)
        program = isa.random_program(rng, 12, allow_control_transfer=False)
        result = verify_superscalar_schedule(program, issue_width=2)
        assert result.passed, result.mismatches
        assert result.instructions_executed == 12
        assert 1.0 <= result.speedup <= 2.0
        assert sum(result.completions_per_cycle) == 12

    def test_dynamic_beta_check_with_branches(self):
        program = assemble_vsm(
            """
            add r1, r0, #1
            add r2, r0, #2
            br r7, 3
            xor r3, r1, r2
            """
        )
        result = verify_superscalar_schedule(program, issue_width=2)
        assert result.passed, result.mismatches


class TestScoreboardVSM:
    def test_out_of_order_completion_happens(self):
        # A two-cycle add followed by an independent one-cycle or: the or
        # completes first.
        program = assemble_vsm("add r1, r0, #1\nor r2, r0, #2")
        trace = ScoreboardVSM(functional_units=2).run(program)
        assert trace.completion_order == [1, 0]

    def test_dependent_instructions_stay_in_order(self):
        program = assemble_vsm("add r1, r0, #1\nor r2, r1, #2")
        trace = ScoreboardVSM(functional_units=2).run(program)
        assert trace.completion_order == [0, 1]

    def test_final_state_matches_specification(self):
        rng = random.Random(3)
        for _ in range(10):
            program = isa.random_program(rng, 8, allow_control_transfer=False)
            scoreboard = ScoreboardVSM(functional_units=3)
            trace = scoreboard.run(program)
            spec = UnpipelinedVSM()
            for instruction in program:
                spec.execute_instruction(instruction.encode())
            assert scoreboard.state.registers == spec.state.registers
            assert scoreboard.state.pc == spec.state.pc

    def test_in_order_points_allow_dynamic_beta_comparison(self):
        program = assemble_vsm(
            """
            add r1, r0, #1
            or  r2, r0, #2
            add r3, r2, #3
            """
        )
        scoreboard = ScoreboardVSM(functional_units=2)
        trace = scoreboard.run(program)
        spec = UnpipelinedVSM()
        spec_states = [spec.observe()]
        for instruction in program:
            spec_states.append(spec.execute_instruction(instruction.encode()))
        points = trace.in_order_points()
        assert points  # at least the final state is comparable
        for cycle, completed in points:
            impl_obs = trace.observations[cycle]
            spec_obs = spec_states[completed]
            for name, value in spec_obs.items():
                if name.startswith("reg") or name == "pc_next":
                    assert impl_obs[name] == value

    def test_functional_unit_validation(self):
        with pytest.raises(ValueError):
            ScoreboardVSM(functional_units=0)


class TestFlushingCheck:
    def test_correct_vsm_passes(self):
        report = verify_by_flushing(VSMArchitecture(), warmup_instructions=2)
        assert report.passed, report.summary()
        assert report.flush_cycles == 4

    def test_bypass_bug_is_caught(self):
        report = verify_by_flushing(
            VSMArchitecture(), warmup_instructions=2, impl_kwargs={"bug": "no_bypass"}
        )
        assert not report.passed

    def test_branch_probe_passes(self):
        report = verify_by_flushing(
            VSMArchitecture(), warmup_instructions=1, step_kind=CONTROL
        )
        assert report.passed, report.summary()

    def test_summary_text(self):
        report = verify_by_flushing(VSMArchitecture(), warmup_instructions=1)
        assert "flushing" in report.summary()
