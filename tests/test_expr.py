"""Unit tests for the behavioural expression DSL and its synthesis."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager
from repro.logic import Const, Netlist, Signal, mux, signals


class TestEvaluation:
    def test_signal_and_const(self):
        a = Signal("a")
        assert a.evaluate({"a": True}) is True
        assert Const(True).evaluate({}) is True
        assert Const(False).evaluate({}) is False

    def test_connectives(self):
        a, b = signals("a", "b")
        env = {"a": True, "b": False}
        assert (a & b).evaluate(env) is False
        assert (a | b).evaluate(env) is True
        assert (a ^ b).evaluate(env) is True
        assert (~a).evaluate(env) is False
        assert a.iff(b).evaluate(env) is False
        assert a.implies(b).evaluate(env) is False
        assert b.implies(a).evaluate(env) is True

    def test_mux(self):
        s, a, b = signals("s", "a", "b")
        expr = mux(s, a, b)
        assert expr.evaluate({"s": True, "a": True, "b": False}) is True
        assert expr.evaluate({"s": False, "a": True, "b": False}) is False

    def test_coercion_of_constants(self):
        a = Signal("a")
        assert (a & 1).evaluate({"a": True}) is True
        assert (a | 0).evaluate({"a": False}) is False

    def test_coercion_rejects_garbage(self):
        with pytest.raises(TypeError):
            Signal("a") & "nonsense"

    def test_signals_collection(self):
        a, b, c = signals("a", "b", "c")
        expr = (a & b) | (~c)
        assert expr.signals() == ("a", "b", "c")
        assert Const(True).signals() == ()


class TestBDDElaboration:
    def test_to_bdd_matches_evaluate(self):
        a, b, c = signals("a", "b", "c")
        expr = mux(a, b ^ c, b & c)
        manager = BDDManager(["a", "b", "c"])
        node = expr.to_bdd(manager)
        for values in itertools.product([False, True], repeat=3):
            env = dict(zip(("a", "b", "c"), values))
            assert manager.evaluate(node, env) == expr.evaluate(env)


class TestSynthesis:
    def test_synthesize_declares_inputs(self):
        a, b = signals("a", "b")
        netlist = Netlist()
        out = (a & b).synthesize(netlist)
        netlist.set_outputs([out])
        netlist.validate()
        assert set(netlist.primary_inputs) == {"a", "b"}

    def test_synthesized_netlist_matches_expression(self):
        a, b, c = signals("a", "b", "c")
        expr = (a ^ b).iff(c) | (~a & b)
        netlist = Netlist()
        out = expr.synthesize(netlist)
        netlist.set_outputs([out])
        netlist.validate()
        state = netlist.reset_state()
        for values in itertools.product([False, True], repeat=3):
            env = dict(zip(("a", "b", "c"), values))
            outputs, _ = netlist.step(env, state)
            assert outputs[out] == expr.evaluate(env)

    def test_synthesize_constants(self):
        expr = Const(True) & Signal("a")
        netlist = Netlist()
        out = expr.synthesize(netlist)
        netlist.set_outputs([out])
        netlist.validate()
        outputs, _ = netlist.step({"a": True}, netlist.reset_state())
        assert outputs[out] is True

    def test_signal_reuses_existing_driver(self):
        netlist = Netlist()
        netlist.add_latch("s", "s_next")
        expr = Signal("s") ^ Signal("x")
        out = expr.synthesize(netlist)
        netlist.add_gate("s_next", "BUF", [out])
        netlist.set_outputs([out])
        netlist.validate()
        assert "s" not in netlist.primary_inputs


def expression_strategy():
    leaves = st.sampled_from([Signal("a"), Signal("b"), Signal("c"), Const(True), Const(False)])

    def extend(children):
        return st.one_of(
            children.map(lambda e: ~e),
            st.tuples(children, children).map(lambda t: t[0] & t[1]),
            st.tuples(children, children).map(lambda t: t[0] | t[1]),
            st.tuples(children, children).map(lambda t: t[0] ^ t[1]),
            st.tuples(children, children, children).map(lambda t: mux(t[0], t[1], t[2])),
        )

    return st.recursive(leaves, extend, max_leaves=8)


@settings(max_examples=60, deadline=None)
@given(expression_strategy())
def test_property_three_elaborations_agree(expr):
    """Direct evaluation, BDD elaboration and netlist synthesis all agree."""
    manager = BDDManager(["a", "b", "c"])
    node = expr.to_bdd(manager)
    netlist = Netlist()
    out = expr.synthesize(netlist)
    netlist.set_outputs([out])
    netlist.validate()
    state = netlist.reset_state()
    for values in itertools.product([False, True], repeat=3):
        env = dict(zip(("a", "b", "c"), values))
        expected = expr.evaluate(env)
        assert manager.evaluate(node, env) == expected
        outputs, _ = netlist.step(env, state)
        assert outputs[out] == expected
