"""Unit and property tests for the relational beta backend.

``repro.relational.beta`` rests on three claims, each pinned here:

* **Extraction fidelity** — advancing a machine through its extracted
  per-bit beta-correspondence relation yields observables that are
  *node identical* (same canonical ROBDD objects on one manager) to
  functional simulation, for every product strategy;
* **Guard soundness** — zeroing latch fields whose validity guard is
  the constant-0 function never changes an observable formula;
* **Protocol completeness** — the four bundled symbolic processor
  models expose a coherent state-injection protocol (layout partitions
  the state, observables map onto layout fields, guards name real
  fields, the Alpha0 decode-latch word round-trips).

All scenarios are tiny and deterministic; the backend-vs-backend
verdict byte-identity at engine level lives in
``tests/test_engine_differential.py``.
"""

import pytest

from repro.bdd import BDDManager
from repro.core.architectures import Alpha0Architecture, VSMArchitecture
from repro.core.siminfo import SimulationInfo
from repro.core.verifier import build_stimulus, verify_beta_relation
from repro.logic import BitVec
from repro.processors import SymbolicAlpha0Options
from repro.processors.sym_alpha0 import decode_fields, encode_fields
from repro.relational import (
    BETA_COMPOSE,
    RelationalPolicy,
    beta_stimulus_order,
    extract_steppers,
    supports_state_injection,
)
from repro.strings import CONTROL, NORMAL

SMALL_ALPHA0 = Alpha0Architecture(
    options=SymbolicAlpha0Options(
        data_width=3, num_registers=4, memory_words=2, alu_subset=("and", "or", "cmpeq")
    )
)


def functional_samples(architecture, siminfo, manager, observation):
    """Reference run: functional simulation on ``manager`` (classic loop)."""
    from repro.strings import pipelined_filter, sample_cycles

    specification, implementation = architecture.make_models(manager)
    plan = build_stimulus(manager, architecture, siminfo)
    specification.reset()
    implementation.reset()
    samples = [observation.select(specification.observe())]
    for instruction in plan.slot_instructions:
        samples.append(observation.select(specification.execute_instruction(instruction)))

    wanted = set(
        sample_cycles(
            pipelined_filter(
                architecture.order_k,
                siminfo.slots,
                architecture.delay_slots,
                siminfo.reset_cycles,
            )
        )
    )
    cycle = siminfo.reset_cycles - 1
    by_cycle = {cycle: observation.select(implementation.observe())}
    nop = BitVec.constant(manager, 0, architecture.instruction_width)

    def advance(word, fetch_valid):
        nonlocal cycle
        observed = implementation.step(word, fetch_valid=fetch_valid)
        cycle += 1
        if cycle in wanted:
            by_cycle[cycle] = observation.select(observed)

    for index, instruction in enumerate(plan.slot_instructions):
        advance(instruction, manager.one)
        for delay in plan.delay_instructions.get(index, []):
            advance(delay, manager.one)
    for _ in range(architecture.order_k - 1):
        advance(nop, manager.zero)
    return samples, [by_cycle[c] for c in sorted(by_cycle)], plan


def relational_samples(
    architecture, siminfo, manager, observation, plan, policy=None, strip_guards=False
):
    """The backend's stepping, replayed manually on the same manager."""
    from repro.strings import pipelined_filter, sample_cycles

    specification, implementation = architecture.make_models(manager)
    spec_stepper, impl_stepper = extract_steppers(
        manager, specification, implementation, architecture.instruction_width, policy
    )
    if strip_guards:
        for stepper in (spec_stepper, impl_stepper):
            stepper.guards = {}
            stepper._gated_by = {}
    specification.reset()
    implementation.reset()

    samples = [observation.select(specification.observe())]
    state = spec_stepper.initial_state()
    for instruction in plan.slot_instructions:
        state = spec_stepper.advance(state, instruction)
        spec_stepper.install(state)
        samples.append(observation.select(specification.observe()))

    wanted = set(
        sample_cycles(
            pipelined_filter(
                architecture.order_k,
                siminfo.slots,
                architecture.delay_slots,
                siminfo.reset_cycles,
            )
        )
    )
    cycle = siminfo.reset_cycles - 1
    by_cycle = {cycle: observation.select(implementation.observe())}
    impl_state = impl_stepper.initial_state()
    nop = BitVec.constant(manager, 0, architecture.instruction_width)

    def advance(word, fetch_valid):
        nonlocal cycle, impl_state
        impl_state = impl_stepper.advance(impl_state, word, fetch_valid)
        cycle += 1
        if cycle in wanted:
            impl_stepper.install(impl_state)
            by_cycle[cycle] = observation.select(implementation.observe())

    for index, instruction in enumerate(plan.slot_instructions):
        advance(instruction, manager.one)
        for delay in plan.delay_instructions.get(index, []):
            advance(delay, manager.one)
    for _ in range(architecture.order_k - 1):
        advance(nop, manager.zero)
    return samples, [by_cycle[c] for c in sorted(by_cycle)], impl_stepper


def assert_node_identical(reference, candidate):
    assert len(reference) == len(candidate)
    for index, (left, right) in enumerate(zip(reference, candidate)):
        for name in left:
            assert left[name].identical(right[name]), (index, name)


class TestExtractionFidelity:
    """Stepper observables are node identical to functional simulation."""

    @pytest.mark.parametrize("slots", [(NORMAL,), (NORMAL, CONTROL), (CONTROL, NORMAL)])
    def test_vsm_windows(self, slots):
        architecture = VSMArchitecture()
        siminfo = SimulationInfo(reset_cycles=1, slots=slots)
        observation = architecture.observation_spec()
        manager = BDDManager()
        spec_ref, impl_ref, plan = functional_samples(
            architecture, siminfo, manager, observation
        )
        spec_rel, impl_rel, _ = relational_samples(
            architecture, siminfo, manager, observation, plan
        )
        assert_node_identical(spec_ref, spec_rel)
        assert_node_identical(impl_ref, impl_rel)

    def test_alpha0_window(self):
        siminfo = SimulationInfo(reset_cycles=1, slots=(NORMAL, NORMAL))
        observation = SMALL_ALPHA0.observation_spec()
        manager = BDDManager()
        spec_ref, impl_ref, plan = functional_samples(
            SMALL_ALPHA0, siminfo, manager, observation
        )
        spec_rel, impl_rel, _ = relational_samples(
            SMALL_ALPHA0, siminfo, manager, observation, plan
        )
        assert_node_identical(spec_ref, spec_rel)
        assert_node_identical(impl_ref, impl_rel)

    def test_schedule_product_is_node_identical_too(self):
        architecture = VSMArchitecture()
        siminfo = SimulationInfo(reset_cycles=1, slots=(NORMAL,))
        observation = architecture.observation_spec()
        manager = BDDManager()
        spec_ref, impl_ref, plan = functional_samples(
            architecture, siminfo, manager, observation
        )
        policy = RelationalPolicy(beta_product="schedule")
        spec_rel, impl_rel, _ = relational_samples(
            architecture, siminfo, manager, observation, plan, policy
        )
        assert_node_identical(spec_ref, spec_rel)
        assert_node_identical(impl_ref, impl_rel)


class TestGuardSoundness:
    """Annulment short-circuits fire and never touch an observable."""

    def test_guards_fire_on_annulled_delay_slots(self):
        architecture = VSMArchitecture()
        siminfo = SimulationInfo(reset_cycles=1, slots=(NORMAL, CONTROL))
        observation = architecture.observation_spec()
        manager = BDDManager()
        _, _, plan = functional_samples(architecture, siminfo, manager, observation)
        _, _, impl_stepper = relational_samples(
            architecture, siminfo, manager, observation, plan
        )
        # The control slot's annulled delay instruction makes if.valid a
        # constant 0, so the gated fetch/decode fields must be skipped.
        assert impl_stepper.gated_skips > 0

    def test_disabling_guards_changes_no_observable(self):
        architecture = VSMArchitecture()
        siminfo = SimulationInfo(reset_cycles=1, slots=(NORMAL, CONTROL))
        observation = architecture.observation_spec()
        manager = BDDManager()
        _, _, plan = functional_samples(architecture, siminfo, manager, observation)
        spec_a, impl_a, _ = relational_samples(
            architecture, siminfo, manager, observation, plan
        )

        # Re-run with guards stripped from the steppers: every latch bit
        # is computed in full.  The observables must not move by a node.
        spec_b, impl_b, stepper_b = relational_samples(
            architecture, siminfo, manager, observation, plan, strip_guards=True
        )
        assert stepper_b.gated_skips == 0
        assert_node_identical(spec_a, spec_b)
        assert_node_identical(impl_a, impl_b)


class TestProtocolCompleteness:
    """Static coherence of the state-injection protocol on every model."""

    def models(self):
        manager = BDDManager()
        vsm_spec, vsm_impl = VSMArchitecture().make_models(manager)
        a0_spec, a0_impl = SMALL_ALPHA0.make_models(manager)
        return [vsm_spec, vsm_impl, a0_spec, a0_impl]

    def test_all_bundled_models_support_the_protocol(self):
        for model in self.models():
            assert supports_state_injection(model), type(model).__name__

    def test_layout_formulae_and_guards_are_coherent(self):
        for model in self.models():
            layout = dict(model.state_layout())
            formulae = model.state_formulae()
            assert set(layout) == set(formulae), type(model).__name__
            for field, width in layout.items():
                assert formulae[field].width == width, (type(model).__name__, field)
            for name, field in model.observable_fields().items():
                assert field in layout, (type(model).__name__, name)
            for guard, gated in model.state_guards().items():
                assert layout.get(guard) == 1, (type(model).__name__, guard)
                observables = set(model.observable_fields().values())
                for field in gated:
                    assert field in layout, (type(model).__name__, field)
                    assert field not in observables, (type(model).__name__, field)

    def test_load_state_round_trips(self):
        for model in self.models():
            before = model.state_formulae()
            model.load_state(before)
            after = model.state_formulae()
            for field, vector in before.items():
                assert vector.identical(after[field]), (type(model).__name__, field)

    def test_alpha0_decode_latch_word_round_trips(self):
        manager = BDDManager()
        word = BitVec.inputs(manager, "w", 32)
        fields = decode_fields(word)
        assert encode_fields(manager, fields).identical(word)

    def test_object_without_protocol_is_rejected(self):
        assert not supports_state_injection(object())


class TestBackendDispatch:
    """run_beta routes, falls back and marks backends correctly."""

    def test_custom_architecture_falls_back_to_compose(self):
        """Models without the protocol run classically, same as ever."""

        class Stripped(VSMArchitecture):
            def make_models(self, manager, impl_kwargs=None):
                specification, implementation = super().make_models(
                    manager, impl_kwargs=impl_kwargs
                )

                class Opaque:
                    def __init__(self, inner):
                        self._inner = inner

                    def __getattr__(self, name):
                        if name in ("state_layout", "load_state"):
                            raise AttributeError(name)
                        return getattr(self._inner, name)

                return Opaque(specification), Opaque(implementation)

        report = verify_beta_relation(
            Stripped(), SimulationInfo(reset_cycles=1, slots=(NORMAL,))
        )
        assert report.passed
        assert report.backend == "compose"

    def test_backend_markers(self):
        siminfo = SimulationInfo(reset_cycles=1, slots=(NORMAL,))
        relational = verify_beta_relation(VSMArchitecture(), siminfo)
        assert relational.backend == "relational"
        compose = verify_beta_relation(
            VSMArchitecture(), siminfo, relational=RelationalPolicy(beta_backend=BETA_COMPOSE)
        )
        assert compose.backend == "compose"
        failing = verify_beta_relation(
            VSMArchitecture(), siminfo, impl_kwargs={"bug": "and_becomes_or"}
        )
        assert not failing.passed
        assert failing.backend == "relational+fallback"

    def test_stimulus_order_matches_the_stimulus_plan(self):
        """Pre-declared names are exactly the plan's variable families."""
        architecture = VSMArchitecture()
        siminfo = SimulationInfo(reset_cycles=1, slots=(NORMAL, CONTROL, NORMAL))
        names = beta_stimulus_order(architecture, siminfo)
        assert len(names) == len(set(names))
        # Later slots strictly precede earlier slots; delay words sit
        # directly above their control slot.
        first_of = {}
        for position, name in enumerate(names):
            label = name.split("[")[0]
            first_of.setdefault(label, position)
        assert first_of["instr2"] < first_of["delay1.0"] < first_of["instr1"] < first_of["instr0"]
        # Every free variable build_stimulus creates is pre-declared.
        manager = BDDManager()
        manager.declare_all(names)
        declared = set(manager.variables)
        plan = build_stimulus(manager, architecture, siminfo)
        assert set(manager.variables) == declared  # nothing new appeared
        assert plan.free_variable_count > 0