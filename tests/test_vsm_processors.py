"""Tests for the concrete VSM processor models and their co-simulation.

The central invariant (the one the paper verifies symbolically) is
checked here concretely: feeding the same instruction stream to the
unpipelined specification and the pipelined implementation yields the
same architectural state at corresponding completion points.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import VSMInstruction, assemble_vsm
from repro.isa import vsm as isa
from repro.processors import PipelinedVSM, UnpipelinedVSM


def drive_unpipelined(program):
    """Execute `program` (a list of instructions) on the specification."""
    machine = UnpipelinedVSM()
    for instruction in program:
        machine.execute_instruction(instruction.encode())
    return machine


def drive_pipelined(program, **kwargs):
    """Feed `program` instruction-by-instruction to the implementation.

    A NOP-like padding instruction that writes register 0 with its own
    value is used to drain the pipeline; after a control transfer the
    delay slot receives an arbitrary instruction which must be annulled.
    """
    machine = PipelinedVSM(**kwargs)
    junk = VSMInstruction("xor", ra=1, rb=1, rc=1)  # would corrupt r1 if not annulled
    drain = VSMInstruction("add", ra=0, rb=0, rc=0)
    for instruction in program:
        machine.step(instruction.encode())
        if instruction.is_control_transfer:
            machine.step(junk.encode())  # delay slot, must be annulled
    for _ in range(isa.PIPELINE_DEPTH):
        machine.step(drain.encode(), fetch_valid=False)
    return machine


class TestUnpipelinedVSM:
    def test_reset_observation(self):
        machine = UnpipelinedVSM()
        observation = machine.observe()
        assert observation["pc_next"] == 0
        assert all(observation[f"reg{i}"] == 0 for i in range(8))

    def test_instruction_takes_k_cycles(self):
        machine = UnpipelinedVSM()
        machine.execute_instruction(VSMInstruction("add", literal_flag=True, ra=0, rb=5, rc=1).encode())
        assert machine.cycle_count == isa.PIPELINE_DEPTH
        assert machine.instructions_retired == 1
        assert machine.state.registers[1] == 5

    def test_state_changes_only_at_last_cycle(self):
        machine = UnpipelinedVSM()
        word = VSMInstruction("add", literal_flag=True, ra=0, rb=3, rc=2).encode()
        machine.step(word)
        machine.step(None)
        machine.step(None)
        assert machine.state.registers[2] == 0
        machine.step(None)
        assert machine.state.registers[2] == 3

    def test_requires_instruction_at_fetch_cycle(self):
        machine = UnpipelinedVSM()
        with pytest.raises(ValueError):
            machine.step(None)

    def test_accepts_instruction_flag(self):
        machine = UnpipelinedVSM()
        assert machine.accepts_instruction
        machine.step(VSMInstruction("add").encode())
        assert not machine.accepts_instruction

    def test_reset(self):
        machine = UnpipelinedVSM()
        machine.execute_instruction(VSMInstruction("add", literal_flag=True, rb=7, rc=3).encode())
        machine.reset()
        assert machine.state.registers == [0] * 8
        assert machine.cycle_count == 0

    def test_branch_updates_pc_and_link(self):
        machine = UnpipelinedVSM()
        machine.execute_instruction(VSMInstruction("add", literal_flag=True, rb=1, rc=0).encode())
        machine.execute_instruction(VSMInstruction("br", ra=4, rc=7).encode())
        assert machine.state.pc == 1 + 4
        assert machine.state.registers[7] == 1  # PC of the branch itself

    def test_run_program(self):
        program = assemble_vsm(
            """
            add r1, r0, #3
            add r2, r1, #2
            xor r3, r1, r2
            """
        )
        machine = UnpipelinedVSM()
        machine.run_program([i.encode() for i in program])
        assert machine.state.registers[1] == 3
        assert machine.state.registers[2] == 5
        assert machine.state.registers[3] == 3 ^ 5

    def test_invalid_cycles_per_instruction(self):
        with pytest.raises(ValueError):
            UnpipelinedVSM(cycles_per_instruction=0)


class TestPipelinedVSM:
    def test_latency_is_pipeline_depth(self):
        machine = PipelinedVSM()
        word = VSMInstruction("add", literal_flag=True, ra=0, rb=5, rc=1).encode()
        nop = VSMInstruction("add").encode()
        machine.step(word)
        machine.step(nop, fetch_valid=False)
        machine.step(nop, fetch_valid=False)
        assert machine.state.registers[1] == 0  # not yet written back
        machine.step(nop, fetch_valid=False)
        assert machine.state.registers[1] == 5
        assert machine.instructions_retired == 1

    def test_throughput_one_per_cycle(self):
        program = [
            VSMInstruction("add", literal_flag=True, ra=0, rb=i, rc=i % 8) for i in range(1, 6)
        ]
        machine = drive_pipelined(program)
        assert machine.instructions_retired == 5

    def test_bypass_resolves_raw_hazard(self):
        program = assemble_vsm(
            """
            add r1, r0, #3
            add r2, r1, #2   ; reads r1 immediately (distance-1 RAW)
            add r3, r2, r1   ; distance-1 and distance-2
            """
        )
        machine = drive_pipelined(program)
        assert machine.state.registers[1] == 3
        assert machine.state.registers[2] == 5
        assert machine.state.registers[3] == (5 + 3) % 8

    def test_missing_bypass_breaks_raw_hazard(self):
        program = assemble_vsm("add r1, r0, #3\nadd r2, r1, #2")
        machine = drive_pipelined(program, enable_bypassing=False)
        assert machine.state.registers[2] != 5

    def test_branch_annuls_delay_slot(self):
        program = assemble_vsm("add r1, r0, #3\nbr r7, 2")
        machine = drive_pipelined(program)
        # The junk delay-slot instruction xor r1,r1,r1 would clear r1.
        assert machine.state.registers[1] == 3
        assert machine.state.registers[7] == 1  # link = PC of the branch
        assert machine.fetch_pc != 0

    def test_no_annul_bug_corrupts_state(self):
        program = assemble_vsm("add r1, r0, #3\nbr r7, 2")
        machine = drive_pipelined(program, bug="no_annul")
        assert machine.state.registers[1] == 0  # junk executed

    def test_branch_redirects_fetch_pc(self):
        machine = PipelinedVSM()
        machine.step(VSMInstruction("br", ra=5, rc=7).encode())  # fetched at PC 0
        machine.step(VSMInstruction("add").encode())  # delay slot (annulled)
        assert machine.fetch_pc == 5

    def test_wrong_branch_target_bug(self):
        machine = PipelinedVSM(bug="wrong_branch_target")
        machine.step(VSMInstruction("br", ra=5, rc=7).encode())
        machine.step(VSMInstruction("add").encode())
        assert machine.fetch_pc == 6

    def test_and_becomes_or_bug(self):
        program = assemble_vsm("add r1, r0, #5\nadd r2, r0, #3\nand r3, r1, r2")
        good = drive_pipelined(program)
        bad = drive_pipelined(program, bug="and_becomes_or")
        assert good.state.registers[3] == 5 & 3
        assert bad.state.registers[3] == 5 | 3

    def test_drop_write_bug(self):
        program = assemble_vsm("add r3, r0, #5")
        machine = drive_pipelined(program, bug="drop_write_r3")
        assert machine.state.registers[3] == 0

    def test_unknown_bug_code_rejected(self):
        with pytest.raises(ValueError):
            PipelinedVSM(bug="gremlins")

    def test_reset(self):
        machine = PipelinedVSM()
        machine.step(VSMInstruction("add", literal_flag=True, rb=7, rc=1).encode())
        machine.reset()
        assert machine.state.registers == [0] * 8
        assert machine.cycle_count == 0
        assert not machine.if_id.valid

    def test_run_program_from_memory(self):
        program = assemble_vsm(
            """
            add r1, r0, #2
            add r2, r1, r1
            br r7, 2
            add r2, r0, #7   ; delay slot position: skipped by the taken branch
            xor r3, r2, r1
            """
        )
        words = [i.encode() for i in program]
        machine = PipelinedVSM()
        machine.run_program(words, cycles=12)
        assert machine.state.registers[1] == 2
        assert machine.state.registers[2] == 4
        assert machine.state.registers[3] == 4 ^ 2


class TestCoSimulation:
    """The pipelined implementation matches the unpipelined specification."""

    def check_program(self, program, **pipeline_kwargs):
        spec = drive_unpipelined(program)
        impl = drive_pipelined(program, **pipeline_kwargs)
        assert impl.state.registers == spec.state.registers
        assert impl.instructions_retired == len(program)
        assert impl.observe()["pc_next"] == spec.observe()["pc_next"]

    def test_straightline_alu_program(self):
        program = assemble_vsm(
            """
            add r1, r0, #1
            add r2, r1, #1
            xor r3, r2, r1
            or  r4, r3, #4
            and r5, r4, r2
            add r6, r5, r5
            """
        )
        self.check_program(program)

    def test_program_with_branches(self):
        program = [
            VSMInstruction("add", literal_flag=True, ra=0, rb=3, rc=1),
            VSMInstruction("br", ra=4, rc=7),
            VSMInstruction("add", literal_flag=True, ra=1, rb=2, rc=2),
            VSMInstruction("br", ra=1, rc=6),
            VSMInstruction("xor", ra=2, rb=1, rc=3),
        ]
        self.check_program(program)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_random_alu_programs(self, seed):
        rng = random.Random(seed)
        program = isa.random_program(rng, rng.randint(1, 12), allow_control_transfer=False)
        self.check_program(program)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_random_programs_with_branches(self, seed):
        rng = random.Random(seed)
        program = isa.random_program(rng, rng.randint(1, 10), allow_control_transfer=True)
        self.check_program(program)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_bugs_are_detectable_on_directed_program(self, seed):
        """Each injected bug diverges from the specification on a directed workload."""
        program = assemble_vsm(
            """
            add r1, r0, #3
            add r3, r1, #2
            and r3, r3, r1
            br r7, 2
            xor r2, r1, r3
            """
        )
        spec = drive_unpipelined(program)
        diverged = []
        for bug in ("no_bypass", "no_annul", "wrong_branch_target", "and_becomes_or", "drop_write_r3"):
            impl = drive_pipelined(program, bug=bug)
            diverged.append(
                impl.state.registers != spec.state.registers
                or impl.observe()["pc_next"] != spec.observe()["pc_next"]
            )
        assert all(diverged)
