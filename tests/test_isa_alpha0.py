"""Tests for the Alpha0 instruction set: encoding, decoding, semantics (Table 2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Alpha0Config, Alpha0EncodingError, Alpha0Instruction, CONDENSED_CONFIG
from repro.isa import alpha0


CONFIG = Alpha0Config(data_width=4, memory_words=8)


def fresh_state():
    registers = [(3 * i + 1) % 16 for i in range(32)]
    memory = [(5 * i + 2) % 16 for i in range(8)]
    return registers, memory


class TestEncodingDecoding:
    def test_operate_register_form_packing(self):
        instruction = Alpha0Instruction("add", ra=1, rb=2, rc=3)
        word = instruction.encode()
        assert (word >> 26) & 0x3F == 0x10
        assert (word >> 21) & 0x1F == 1
        assert (word >> 16) & 0x1F == 2
        assert (word >> 12) & 1 == 0
        assert (word >> 5) & 0x7F == 0x20
        assert word & 0x1F == 3

    def test_operate_literal_form_packing(self):
        instruction = Alpha0Instruction("and", ra=4, rc=5, literal_flag=True, literal=0xAB)
        word = instruction.encode()
        assert (word >> 12) & 1 == 1
        assert (word >> 13) & 0xFF == 0xAB
        assert (word >> 5) & 0x7F == 0x00

    def test_memory_format_packing(self):
        instruction = Alpha0Instruction("ld", ra=7, rb=9, displacement=-4)
        word = instruction.encode()
        assert (word >> 26) & 0x3F == 0x29
        assert word & 0xFFFF == (-4) & 0xFFFF

    def test_branch_format_packing(self):
        instruction = Alpha0Instruction("bt", ra=2, displacement=-3)
        word = instruction.encode()
        assert (word >> 26) & 0x3F == 0x3D
        assert word & ((1 << 21) - 1) == (-3) & ((1 << 21) - 1)

    def test_roundtrip_all_mnemonics(self):
        examples = [
            Alpha0Instruction("add", ra=1, rb=2, rc=3),
            Alpha0Instruction("sub", ra=1, rb=2, rc=3),
            Alpha0Instruction("cmpeq", ra=4, rb=5, rc=6),
            Alpha0Instruction("cmplt", ra=4, rb=5, rc=6),
            Alpha0Instruction("cmple", ra=4, rb=5, rc=6),
            Alpha0Instruction("and", ra=7, rb=8, rc=9),
            Alpha0Instruction("or", ra=7, rc=9, literal_flag=True, literal=3),
            Alpha0Instruction("xor", ra=7, rb=8, rc=9),
            Alpha0Instruction("sll", ra=1, rb=2, rc=3),
            Alpha0Instruction("srl", ra=1, rc=3, literal_flag=True, literal=2),
            Alpha0Instruction("ld", ra=3, rb=4, displacement=8),
            Alpha0Instruction("st", ra=3, rb=4, displacement=-8),
            Alpha0Instruction("br", ra=26, displacement=5),
            Alpha0Instruction("bf", ra=2, displacement=-1),
            Alpha0Instruction("bt", ra=2, displacement=1),
            Alpha0Instruction("jmp", ra=26, rb=27),
        ]
        for instruction in examples:
            assert alpha0.decode(instruction.encode()) == instruction

    def test_decode_rejects_bad_words(self):
        with pytest.raises(Alpha0EncodingError):
            alpha0.decode(1 << 32)
        with pytest.raises(Alpha0EncodingError):
            alpha0.decode(0x3F << 26)  # undefined opcode
        with pytest.raises(Alpha0EncodingError):
            alpha0.decode((0x10 << 26) | (0x7F << 5))  # undefined function
        assert not alpha0.is_valid_encoding(0x3F << 26)

    def test_constructor_validation(self):
        with pytest.raises(Alpha0EncodingError):
            Alpha0Instruction("nope")
        with pytest.raises(Alpha0EncodingError):
            Alpha0Instruction("add", ra=32)
        with pytest.raises(Alpha0EncodingError):
            Alpha0Instruction("add", literal=256)
        with pytest.raises(Alpha0EncodingError):
            Alpha0Instruction("ld", displacement=1 << 16)
        with pytest.raises(Alpha0EncodingError):
            Alpha0Instruction("br", displacement=1 << 21)

    def test_sign_extend(self):
        assert alpha0.sign_extend(0xF, 4) == -1
        assert alpha0.sign_extend(0x7, 4) == 7
        assert alpha0.sign_extend(0xFFFF, 16) == -1

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 31), st.integers(0, 31), st.integers(0, 31), st.booleans(), st.integers(0, 255))
    def test_property_operate_roundtrip(self, ra, rb, rc, literal_flag, literal):
        instruction = Alpha0Instruction(
            "xor",
            ra=ra,
            rb=0 if literal_flag else rb,
            rc=rc,
            literal_flag=literal_flag,
            literal=literal if literal_flag else 0,
        )
        assert alpha0.decode(instruction.encode()) == instruction


class TestClassification:
    def test_control_transfer_and_memory_flags(self):
        assert Alpha0Instruction("br", ra=1).is_control_transfer
        assert Alpha0Instruction("jmp", ra=1, rb=2).is_control_transfer
        assert Alpha0Instruction("ld", ra=1, rb=2).is_memory
        assert not Alpha0Instruction("add").is_control_transfer
        assert Alpha0Instruction("add").is_alu

    def test_destinations(self):
        assert Alpha0Instruction("add", rc=9).destination() == 9
        assert Alpha0Instruction("ld", ra=7, rb=1).destination() == 7
        assert Alpha0Instruction("br", ra=26).destination() == 26
        assert Alpha0Instruction("st", ra=7, rb=1).destination() is None
        assert Alpha0Instruction("bf", ra=3).destination() is None

    def test_sources(self):
        assert Alpha0Instruction("add", ra=1, rb=2).sources() == (1, 2)
        assert Alpha0Instruction("add", ra=1, literal_flag=True, literal=4).sources() == (1,)
        assert Alpha0Instruction("ld", ra=3, rb=4).sources() == (4,)
        assert Alpha0Instruction("st", ra=3, rb=4).sources() == (3, 4)
        assert Alpha0Instruction("bt", ra=5).sources() == (5,)
        assert Alpha0Instruction("jmp", ra=5, rb=6).sources() == (6,)
        assert Alpha0Instruction("br", ra=5).sources() == ()

    def test_str_forms(self):
        assert str(Alpha0Instruction("add", ra=1, rb=2, rc=3)) == "add r3, r1, r2"
        assert str(Alpha0Instruction("ld", ra=1, rb=2, displacement=-4)) == "ld r1, -4(r2)"
        assert str(Alpha0Instruction("jmp", ra=1, rb=2)) == "jmp r1, (r2)"
        assert str(Alpha0Instruction("bf", ra=1, displacement=2)) == "bf r1, 2"


class TestALUOperations:
    @pytest.mark.parametrize(
        "mnemonic,left,right,expected",
        [
            ("add", 9, 9, 2),
            ("sub", 3, 5, 14),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("cmpeq", 7, 7, 1),
            ("cmpeq", 7, 6, 0),
            ("cmplt", 0b1111, 0b0001, 1),  # -1 < 1 signed
            ("cmplt", 0b0001, 0b1111, 0),
            ("cmple", 5, 5, 1),
            ("sll", 0b0011, 2, 0b1100),
            ("sll", 0b0011, 9, 0),
            ("srl", 0b1100, 2, 0b0011),
            ("srl", 0b1100, 8, 0),
        ],
    )
    def test_alu_operation_table(self, mnemonic, left, right, expected):
        assert alpha0.alu_operation(mnemonic, left, right, CONFIG) == expected

    def test_alu_operation_rejects_non_operate(self):
        with pytest.raises(Alpha0EncodingError):
            alpha0.alu_operation("ld", 0, 0, CONFIG)


class TestExecute:
    def test_alu_register_form(self):
        registers, memory = fresh_state()
        instruction = Alpha0Instruction("add", ra=1, rb=2, rc=3)
        new_registers, pc, new_memory = alpha0.execute(instruction, registers, 0, memory, CONFIG)
        assert new_registers[3] == (registers[1] + registers[2]) % 16
        assert pc == 4
        assert new_memory == memory

    def test_alu_literal_form(self):
        registers, memory = fresh_state()
        instruction = Alpha0Instruction("xor", ra=1, rc=0, literal_flag=True, literal=0b0101)
        new_registers, _, _ = alpha0.execute(instruction, registers, 0, memory, CONFIG)
        assert new_registers[0] == (registers[1] ^ 0b0101) % 16

    def test_load(self):
        registers, memory = fresh_state()
        registers[2] = 8  # byte address 8 -> word 2
        instruction = Alpha0Instruction("ld", ra=5, rb=2, displacement=0)
        new_registers, _, _ = alpha0.execute(instruction, registers, 0, memory, CONFIG)
        assert new_registers[5] == memory[2]

    def test_store(self):
        registers, memory = fresh_state()
        registers[2] = 4
        registers[6] = 0b1010
        instruction = Alpha0Instruction("st", ra=6, rb=2, displacement=0)
        _, _, new_memory = alpha0.execute(instruction, registers, 0, memory, CONFIG)
        assert new_memory[1] == 0b1010
        assert memory[1] != 0b1010 or memory[1] == 0b1010  # original untouched check below
        assert new_memory[:1] + new_memory[2:] == memory[:1] + memory[2:]

    def test_load_displacement_wraps_in_data_width(self):
        registers, memory = fresh_state()
        registers[2] = 2
        instruction = Alpha0Instruction("ld", ra=5, rb=2, displacement=6)
        new_registers, _, _ = alpha0.execute(instruction, registers, 0, memory, CONFIG)
        # EA = (2 + 6) mod 16 = 8 -> word 2.
        assert new_registers[5] == memory[2]

    def test_unconditional_branch(self):
        registers, memory = fresh_state()
        instruction = Alpha0Instruction("br", ra=26, displacement=2)
        new_registers, pc, _ = alpha0.execute(instruction, registers, 8, memory, CONFIG)
        # Link register gets the updated PC (12), target is 12 + 8 = 20.
        assert new_registers[26] == 12
        assert pc == 20

    def test_conditional_branches(self):
        registers, memory = fresh_state()
        registers[2] = 0
        taken_bf = Alpha0Instruction("bf", ra=2, displacement=1)
        _, pc, _ = alpha0.execute(taken_bf, registers, 0, memory, CONFIG)
        assert pc == 8  # 4 + 4*1
        not_taken_bt = Alpha0Instruction("bt", ra=2, displacement=1)
        _, pc, _ = alpha0.execute(not_taken_bt, registers, 0, memory, CONFIG)
        assert pc == 4
        registers[2] = 3
        taken_bt = Alpha0Instruction("bt", ra=2, displacement=2)
        _, pc, _ = alpha0.execute(taken_bt, registers, 0, memory, CONFIG)
        assert pc == 12

    def test_jump(self):
        registers, memory = fresh_state()
        registers[7] = 0b1110  # target 12 after clearing the low bits
        instruction = Alpha0Instruction("jmp", ra=26, rb=7)
        new_registers, pc, _ = alpha0.execute(instruction, registers, 16, memory, CONFIG)
        assert pc == 12
        assert new_registers[26] == (16 + 4) & 0xF

    def test_pc_wraps_at_5_bits(self):
        registers, memory = fresh_state()
        instruction = Alpha0Instruction("add", ra=0, rb=0, rc=0)
        _, pc, _ = alpha0.execute(instruction, registers, 28, memory, CONFIG)
        assert pc == 0

    def test_condensed_subset_enforced(self):
        registers, memory = fresh_state()
        with pytest.raises(Alpha0EncodingError):
            alpha0.execute(
                Alpha0Instruction("add", ra=0, rb=0, rc=0),
                registers,
                0,
                memory,
                CONDENSED_CONFIG,
            )
        # The retained subset works.
        alpha0.execute(
            Alpha0Instruction("and", ra=0, rb=0, rc=0), registers, 0, memory, CONDENSED_CONFIG
        )

    def test_execute_validates_shapes(self):
        registers, memory = fresh_state()
        with pytest.raises(Alpha0EncodingError):
            alpha0.execute(Alpha0Instruction("add"), registers[:5], 0, memory, CONFIG)
        with pytest.raises(Alpha0EncodingError):
            alpha0.execute(Alpha0Instruction("add"), registers, 0, memory[:2], CONFIG)

    def test_inputs_not_mutated(self):
        registers, memory = fresh_state()
        snapshot_regs, snapshot_mem = list(registers), list(memory)
        alpha0.execute(Alpha0Instruction("st", ra=1, rb=2), registers, 0, memory, CONFIG)
        assert registers == snapshot_regs and memory == snapshot_mem

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 3))
    def test_property_random_programs_stay_in_range(self, seed):
        rng = random.Random(seed)
        registers, memory = fresh_state()
        pc = 0
        for _ in range(30):
            instruction = alpha0.random_instruction(rng, config=CONFIG)
            registers, pc, memory = alpha0.execute(instruction, registers, pc, memory, CONFIG)
            assert all(0 <= value < 16 for value in registers)
            assert all(0 <= value < 16 for value in memory)
            assert 0 <= pc < 32


class TestRandomGeneration:
    def test_random_instruction_is_decodable(self):
        rng = random.Random(23)
        for _ in range(100):
            instruction = alpha0.random_instruction(rng, config=CONFIG)
            assert alpha0.decode(instruction.encode()) == instruction

    def test_random_program_respects_flags(self):
        rng = random.Random(5)
        program = alpha0.random_program(
            rng, 30, config=CONFIG, allow_control_transfer=False, allow_memory=False
        )
        assert all(instr.is_alu for instr in program)

    def test_random_condensed_instructions_use_subset(self):
        rng = random.Random(5)
        for _ in range(50):
            instruction = alpha0.random_instruction(
                rng, config=CONDENSED_CONFIG, allow_control_transfer=False, allow_memory=False
            )
            assert instruction.mnemonic in CONDENSED_CONFIG.alu_subset
