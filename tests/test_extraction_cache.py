"""Session-scoped extraction cache + pool arena accounting (PR 4).

The relational beta backend's fixed per-run cost is extracting the
per-bit beta-correspondence relations.  On a pooled manager that cost
is now paid once per campaign session: the extracted relations live in
``manager.session_cache`` keyed by the model construction, re-bound to
each run's fresh model instances, with hits surfaced as
``outcome.extraction_cache``.  The pool's node accounting reads through
the kernel's arena statistics.  Verdicts must be byte-identical with
the cache in play — the relation payload is canonical nodes on the
shared manager, so a hit changes wall-clock only.
"""

import copy

from repro.engine import CampaignRunner, Scenario, execute_scenario
from repro.strings import NORMAL


def scenario(name, bug=None):
    return Scenario(name=name, slots=(NORMAL,), bug=bug)


class TestExtractionCache:
    def test_repeat_scenario_hits_the_session_cache(self):
        runner = CampaignRunner(memoize=False)
        first = runner.run_one(scenario("vsm/first"))
        again = runner.run_one(scenario("vsm/again"))
        assert first.passed and again.passed
        assert first.extraction_cache["spec"] == "miss"
        assert first.extraction_cache["impl"] == "miss"
        assert again.extraction_cache["spec"] == "hit"
        assert again.extraction_cache["impl"] == "hit"
        assert again.extraction_cache["session_hits"] == 2
        assert again.extraction_cache["session_misses"] == 2

    def test_bug_variant_shares_the_specification_relation(self):
        runner = CampaignRunner(memoize=False)
        golden = runner.run_one(scenario("vsm/golden"))
        buggy = runner.run_one(scenario("vsm/bug", bug="and_becomes_or"))
        assert golden.passed and not buggy.passed
        # Same architecture -> the specification relation is reused; the
        # injected bug changes the implementation model -> re-extracted.
        assert buggy.extraction_cache["spec"] == "hit"
        assert buggy.extraction_cache["impl"] == "miss"

    def test_cached_runs_keep_verdicts_byte_identical(self):
        runner = CampaignRunner(memoize=False)
        runner.run_one(scenario("vsm/warmup"))
        pooled = runner.run_one(scenario("vsm/check", bug="no_bypass"))
        fresh = execute_scenario(scenario("vsm/check", bug="no_bypass"))
        assert pooled.extraction_cache["spec"] == "hit"
        assert fresh.extraction_cache["spec"] == "miss"
        assert pooled.verdict() == fresh.verdict()

    def test_memoised_outcomes_report_no_extraction_activity(self):
        runner = CampaignRunner(memoize=True)
        first = runner.run_one(scenario("vsm/memo"))
        second = runner.run_one(scenario("vsm/memo"))
        assert first.extraction_cache and not second.extraction_cache
        assert second.memoized

    def test_classical_backend_reports_no_extraction(self):
        from repro.relational import BETA_COMPOSE, RelationalPolicy

        outcome = execute_scenario(
            Scenario(
                name="vsm/compose",
                slots=(NORMAL,),
                relational=RelationalPolicy(beta_backend=BETA_COMPOSE),
            )
        )
        assert outcome.passed
        assert outcome.extraction_cache == {}


class TestPoolArenaAccounting:
    def test_statistics_read_through_the_arena(self):
        runner = CampaignRunner(memoize=False)
        runner.run_one(scenario("vsm/a"))
        stats = runner.pool.statistics()
        arena = stats["arena"]
        # live counts terminals (2 per pooled manager); total_nodes keeps
        # the historical non-terminal meaning.
        assert arena["live"] - 2 * stats["managers"] == stats["total_nodes"]
        assert arena["capacity"] == arena["live"] + arena["free"]
        assert arena["allocated_total"] >= arena["live"] - 2 * stats["managers"]

    def test_counters_stay_monotonic_across_runs_and_retirement(self):
        runner = CampaignRunner(memoize=False)
        runner.run_one(scenario("vsm/a"))
        before = copy.deepcopy(runner.pool.statistics())
        runner.run_one(scenario("vsm/b", bug="drop_write_r3"))
        after = runner.pool.statistics()
        assert after["arena"]["allocated_total"] >= before["arena"]["allocated_total"]
        assert after["cache"]["hits"] >= before["cache"]["hits"]
        # Retiring every manager folds its counters instead of losing them.
        runner.pool.clear()
        cleared = runner.pool.statistics()
        assert cleared["arena"]["allocated_total"] >= after["arena"]["allocated_total"]
        assert cleared["arena"]["live"] == 0
        assert cleared["cache"]["hits"] >= after["cache"]["hits"]
