"""Session-scoped extraction cache + pool arena accounting (PR 4).

The relational beta backend's fixed per-run cost is extracting the
per-bit beta-correspondence relations.  On a pooled manager that cost
is now paid once per campaign session: the extracted relations live in
``manager.session_cache`` keyed by the model construction, re-bound to
each run's fresh model instances, with hits surfaced as
``outcome.extraction_cache``.  The pool's node accounting reads through
the kernel's arena statistics.  Verdicts must be byte-identical with
the cache in play — the relation payload is canonical nodes on the
shared manager, so a hit changes wall-clock only.
"""

import copy

from repro.engine import CampaignRunner, Scenario, execute_scenario
from repro.strings import NORMAL


def scenario(name, bug=None):
    return Scenario(name=name, slots=(NORMAL,), bug=bug)


class TestExtractionCache:
    def test_repeat_scenario_hits_the_session_cache(self):
        runner = CampaignRunner(memoize=False)
        first = runner.run_one(scenario("vsm/first"))
        again = runner.run_one(scenario("vsm/again"))
        assert first.passed and again.passed
        assert first.extraction_cache["spec"] == "miss"
        assert first.extraction_cache["impl"] == "miss"
        assert again.extraction_cache["spec"] == "hit"
        assert again.extraction_cache["impl"] == "hit"
        assert again.extraction_cache["session_hits"] == 2
        assert again.extraction_cache["session_misses"] == 2

    def test_bug_variant_shares_the_specification_relation(self):
        runner = CampaignRunner(memoize=False)
        golden = runner.run_one(scenario("vsm/golden"))
        buggy = runner.run_one(scenario("vsm/bug", bug="and_becomes_or"))
        assert golden.passed and not buggy.passed
        # Same architecture -> the specification relation is reused; the
        # injected bug changes the implementation model -> re-extracted.
        assert buggy.extraction_cache["spec"] == "hit"
        assert buggy.extraction_cache["impl"] == "miss"

    def test_cached_runs_keep_verdicts_byte_identical(self):
        runner = CampaignRunner(memoize=False)
        runner.run_one(scenario("vsm/warmup"))
        pooled = runner.run_one(scenario("vsm/check", bug="no_bypass"))
        fresh = execute_scenario(scenario("vsm/check", bug="no_bypass"))
        assert pooled.extraction_cache["spec"] == "hit"
        assert fresh.extraction_cache["spec"] == "miss"
        assert pooled.verdict() == fresh.verdict()

    def test_memoised_outcomes_report_no_extraction_activity(self):
        runner = CampaignRunner(memoize=True)
        first = runner.run_one(scenario("vsm/memo"))
        second = runner.run_one(scenario("vsm/memo"))
        assert first.extraction_cache and not second.extraction_cache
        assert second.memoized

    def test_classical_backend_reports_no_extraction(self):
        from repro.relational import BETA_COMPOSE, RelationalPolicy

        outcome = execute_scenario(
            Scenario(
                name="vsm/compose",
                slots=(NORMAL,),
                relational=RelationalPolicy(beta_backend=BETA_COMPOSE),
            )
        )
        assert outcome.passed
        assert outcome.extraction_cache == {}


class TestRelationSnapshots:
    """snapshot -> restore -> differential-check against fresh extraction.

    The persistent layer serialises an extracted beta relation as an
    arena snapshot and rehydrates it on another manager.  The check
    here is structural and total: the rehydrated relation's canonical
    form — node structure with levels mapped back to variable names —
    must be identical to a freshly extracted one's, for VSM and Alpha0.
    """

    @staticmethod
    def extract_payloads(architecture, slots):
        from repro.bdd import BDDManager
        from repro.core.siminfo import SimulationInfo
        from repro.relational.beta import (
            IMPL_PREFIX,
            SPEC_PREFIX,
            _stepper_payload,
            beta_stimulus_order,
            extract_steppers,
        )

        manager = BDDManager()
        siminfo = SimulationInfo(reset_cycles=1, slots=slots)
        specification, implementation = architecture.make_models(manager)
        manager.declare_all(beta_stimulus_order(architecture, siminfo))
        spec_stepper, impl_stepper = extract_steppers(
            manager, specification, implementation, architecture.instruction_width
        )
        return (
            manager,
            {
                SPEC_PREFIX: _stepper_payload(spec_stepper),
                IMPL_PREFIX: _stepper_payload(impl_stepper),
            },
        )

    @staticmethod
    def canonical(blob):
        from repro.bdd.kernel import unpack_snapshot

        arena = unpack_snapshot(blob["arena"])
        names = {level: name for level, name in arena["level_names"]}
        return {
            "layout": blob["layout"],
            "input_names": blob["input_names"],
            "fetch_valid_name": blob["fetch_valid_name"],
            "supports": blob["supports"],
            "declares": arena["declares"],
            "levels": [names[level] for level in arena["levels"]],
            "lows": arena["lows"],
            "highs": arena["highs"],
            "roots": arena["roots"],
        }

    def roundtrip(self, architecture, slots):
        import json

        from repro.bdd import BDDManager
        from repro.relational.beta import (
            _deserialize_stepper_payload,
            _serialize_stepper_payload,
        )

        manager, payloads = self.extract_payloads(architecture, slots)
        for prefix, payload in payloads.items():
            blob = json.loads(
                json.dumps(_serialize_stepper_payload(manager, payload, prefix))
            )
            # Fresh manager: only the architecture's own declarations
            # precede the restore, exactly like a cold worker process.
            target = BDDManager()
            architecture.make_models(target)
            from repro.core.siminfo import SimulationInfo
            from repro.relational.beta import beta_stimulus_order

            target.declare_all(
                beta_stimulus_order(
                    architecture, SimulationInfo(reset_cycles=1, slots=slots)
                )
            )
            restored = _deserialize_stepper_payload(target, blob, prefix)
            reserialized = _serialize_stepper_payload(target, restored, prefix)
            assert self.canonical(blob) == self.canonical(reserialized), prefix

    def test_vsm_relation_survives_snapshot_round_trip(self):
        from repro.core import VSMArchitecture

        self.roundtrip(VSMArchitecture(), (NORMAL, NORMAL))

    def test_alpha0_relation_survives_snapshot_round_trip(self):
        from repro.core import Alpha0Architecture
        from repro.processors import SymbolicAlpha0Options

        architecture = Alpha0Architecture(
            options=SymbolicAlpha0Options(
                data_width=3, num_registers=4, memory_words=2,
                alu_subset=("and", "or", "cmpeq"),
            )
        )
        self.roundtrip(architecture, (NORMAL,))

    def test_corrupted_bookkeeping_is_refused_before_touching_the_manager(self):
        """A blob whose input_names disagree with the arena's recorded
        declarations must raise SnapshotError (fallback to extraction)
        rather than rehydrate a stepper bound to undeclared variables."""
        import json

        import pytest

        from repro.bdd import BDDManager
        from repro.bdd.kernel import SnapshotError
        from repro.core import VSMArchitecture
        from repro.relational.beta import (
            SPEC_PREFIX,
            _deserialize_stepper_payload,
            _serialize_stepper_payload,
        )

        architecture = VSMArchitecture()
        manager, payloads = self.extract_payloads(architecture, (NORMAL,))
        blob = json.loads(
            json.dumps(
                _serialize_stepper_payload(manager, payloads[SPEC_PREFIX], SPEC_PREFIX)
            )
        )
        blob["input_names"][0] = "beta.s.in[999]"  # envelope-valid corruption
        target = BDDManager()
        with pytest.raises(SnapshotError):
            _deserialize_stepper_payload(target, blob, SPEC_PREFIX)
        assert target.variables == ()

    def test_alpha0_rehydrated_campaign_verdicts_byte_identical(self, tmp_path):
        import shutil

        from repro.engine import Alpha0Spec, CampaignRunner

        small = Alpha0Spec(data_width=3, num_registers=4, memory_words=2)
        campaign = [
            Scenario(name="alpha0/golden", design="alpha0", slots=(NORMAL,), alpha0=small),
            Scenario(
                name="alpha0/bug",
                design="alpha0",
                slots=(NORMAL, NORMAL),
                bug="no_bypass",
                alpha0=small,
            ),
        ]
        cold = CampaignRunner(store_path=tmp_path / "store").run(campaign)
        shutil.rmtree(tmp_path / "store" / "results")
        rehydrated = CampaignRunner(store_path=tmp_path / "store").run(campaign)
        assert rehydrated.verdict_json() == cold.verdict_json()
        golden = rehydrated.outcome("alpha0/golden")
        assert golden.extraction_cache["spec"] == "snapshot"
        assert golden.snapshot["spec"]["status"] == "restored"


class TestPoolArenaAccounting:
    def test_statistics_read_through_the_arena(self):
        runner = CampaignRunner(memoize=False)
        runner.run_one(scenario("vsm/a"))
        stats = runner.pool.statistics()
        arena = stats["arena"]
        # live counts terminals (2 per pooled manager); total_nodes keeps
        # the historical non-terminal meaning.
        assert arena["live"] - 2 * stats["managers"] == stats["total_nodes"]
        assert arena["capacity"] == arena["live"] + arena["free"]
        assert arena["allocated_total"] >= arena["live"] - 2 * stats["managers"]

    def test_counters_stay_monotonic_across_runs_and_retirement(self):
        runner = CampaignRunner(memoize=False)
        runner.run_one(scenario("vsm/a"))
        before = copy.deepcopy(runner.pool.statistics())
        runner.run_one(scenario("vsm/b", bug="drop_write_r3"))
        after = runner.pool.statistics()
        assert after["arena"]["allocated_total"] >= before["arena"]["allocated_total"]
        assert after["cache"]["hits"] >= before["cache"]["hits"]
        # Retiring every manager folds its counters instead of losing them.
        runner.pool.clear()
        cleared = runner.pool.statistics()
        assert cleared["arena"]["allocated_total"] >= after["arena"]["allocated_total"]
        assert cleared["arena"]["live"] == 0
        assert cleared["cache"]["hits"] >= after["cache"]["hits"]
