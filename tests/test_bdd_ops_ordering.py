"""Tests for derived BDD vector operations and static ordering helpers."""

import pytest

from repro.bdd import (
    BDDManager,
    bit_names,
    bits_to_int,
    compose_vector,
    cycle_major_order,
    encode_value,
    evaluate_vector,
    find_distinguishing_assignment,
    first_use_order,
    int_to_bits,
    interleave,
    restrict_vector,
    state_then_inputs,
    vector_equal,
    vector_node_count,
    vector_support,
    vectors_identical,
)


class TestBitConversions:
    def test_int_to_bits_little_endian(self):
        assert int_to_bits(6, 4) == [False, True, True, False]

    def test_int_to_bits_negative_wraps(self):
        assert int_to_bits(-1, 3) == [True, True, True]

    def test_bits_to_int_roundtrip(self):
        for value in range(16):
            assert bits_to_int(int_to_bits(value, 4)) == value

    def test_bits_to_int_empty(self):
        assert bits_to_int([]) == 0


class TestVectorOps:
    @pytest.fixture()
    def manager(self):
        return BDDManager(["x[0]", "x[1]", "y[0]", "y[1]"])

    def test_encode_value_cube(self, manager):
        cube = encode_value(manager, ["x[0]", "x[1]"], 2)
        assert manager.evaluate(cube, {"x[0]": False, "x[1]": True}) is True
        assert manager.evaluate(cube, {"x[0]": True, "x[1]": True}) is False

    def test_vector_equal(self, manager):
        x = [manager.var("x[0]"), manager.var("x[1]")]
        y = [manager.var("y[0]"), manager.var("y[1]")]
        eq = vector_equal(manager, x, y)
        assert manager.evaluate(
            eq, {"x[0]": True, "x[1]": False, "y[0]": True, "y[1]": False}
        ) is True
        assert manager.evaluate(
            eq, {"x[0]": True, "x[1]": False, "y[0]": False, "y[1]": False}
        ) is False

    def test_vector_equal_width_mismatch(self, manager):
        with pytest.raises(ValueError):
            vector_equal(manager, [manager.one], [manager.one, manager.zero])

    def test_vectors_identical(self, manager):
        x = [manager.var("x[0]"), manager.var("x[1]")]
        assert vectors_identical(x, list(x))
        assert not vectors_identical(x, [manager.var("x[0]"), manager.var("y[1]")])
        assert not vectors_identical(x, x[:1])

    def test_restrict_vector(self, manager):
        x = [manager.var("x[0]"), manager.var("x[1]")]
        restricted = restrict_vector(manager, x, {"x[0]": True})
        assert restricted[0] is manager.one
        assert restricted[1] is manager.var("x[1]")

    def test_compose_vector(self, manager):
        x = [manager.var("x[0]"), manager.var("x[1]")]
        composed = compose_vector(manager, x, {"x[0]": manager.var("y[0]")})
        assert composed[0] is manager.var("y[0]")

    def test_vector_support_and_node_count(self, manager):
        x = [manager.var("x[0]"), manager.apply_and(manager.var("x[1]"), manager.var("y[0]"))]
        assert vector_support(manager, x) == ("x[0]", "x[1]", "y[0]")
        assert vector_node_count(manager, x) >= 4

    def test_evaluate_vector(self, manager):
        x = [manager.var("x[0]"), manager.var("x[1]")]
        value = evaluate_vector(manager, x, {"x[0]": True, "x[1]": True})
        assert value == 3

    def test_find_distinguishing_assignment_none_when_equal(self, manager):
        x = [manager.var("x[0]")]
        assert find_distinguishing_assignment(manager, x, list(x)) is None

    def test_find_distinguishing_assignment_found(self, manager):
        left = [manager.var("x[0]")]
        right = [manager.var("y[0]")]
        witness = find_distinguishing_assignment(manager, left, right)
        assert witness is not None
        full = {"x[0]": False, "y[0]": False}
        full.update(witness)
        assert manager.evaluate(left[0], full) != manager.evaluate(right[0], full)


class TestOrderingHelpers:
    def test_bit_names(self):
        assert bit_names("pc", 3) == ["pc[0]", "pc[1]", "pc[2]"]

    def test_interleave_equal_groups(self):
        assert interleave(["a0", "a1"], ["b0", "b1"]) == ["a0", "b0", "a1", "b1"]

    def test_interleave_ragged_groups(self):
        assert interleave(["a0", "a1", "a2"], ["b0"]) == ["a0", "b0", "a1", "a2"]

    def test_interleave_empty(self):
        assert interleave() == []

    def test_cycle_major_order(self):
        order = cycle_major_order(["instr"], {"instr": 2}, cycles=2)
        assert order == ["instr@0[0]", "instr@0[1]", "instr@1[0]", "instr@1[1]"]

    def test_state_then_inputs_removes_duplicates(self):
        order = state_then_inputs(["s0", "s1"], ["i0", "s1", "i1"])
        assert order == ["s0", "s1", "i0", "i1"]

    def test_first_use_order(self):
        assert first_use_order([["a", "b"], ["b", "c"], ["a"]]) == ["a", "b", "c"]

    def test_interleaved_adder_order_is_smaller(self):
        """The paper's example: interleaving adder operands shrinks the BDD."""
        width = 6

        def build_adder_msb(manager, a_names, b_names):
            carry = manager.zero
            result = None
            for a_name, b_name in zip(a_names, b_names):
                a, b = manager.var(a_name), manager.var(b_name)
                result = manager.apply_xor(manager.apply_xor(a, b), carry)
                carry = manager.apply_or(
                    manager.apply_and(a, b), manager.apply_and(carry, manager.apply_xor(a, b))
                )
            return result

        a_names = bit_names("a", width)
        b_names = bit_names("b", width)
        good = BDDManager(interleave(a_names, b_names))
        bad = BDDManager(a_names + b_names)
        good_node = build_adder_msb(good, a_names, b_names)
        bad_node = build_adder_msb(bad, a_names, b_names)
        assert good.count_nodes(good_node) < bad.count_nodes(bad_node)
