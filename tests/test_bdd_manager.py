"""Unit tests for the ROBDD manager: construction, connectives, queries."""

import pytest

from repro.bdd import BDDManager, BDDOrderError


@pytest.fixture()
def manager():
    return BDDManager(["a", "b", "c", "d"])


class TestVariableOrder:
    def test_declared_order_is_preserved(self, manager):
        assert manager.variables == ("a", "b", "c", "d")

    def test_level_lookup(self, manager):
        assert manager.level("a") == 0
        assert manager.level("d") == 3

    def test_redeclaration_is_idempotent(self, manager):
        manager.declare("b")
        assert manager.variables == ("a", "b", "c", "d")

    def test_var_use_auto_declares(self):
        m = BDDManager()
        m.var("x")
        assert "x" in m.variables

    def test_level_of_unknown_variable_raises(self, manager):
        with pytest.raises(BDDOrderError):
            manager.level("nope")

    def test_name_at_level(self, manager):
        assert manager.name_at_level(2) == "c"

    def test_num_vars(self, manager):
        assert manager.num_vars() == 4


class TestConstruction:
    def test_terminals_are_distinct(self, manager):
        assert manager.zero is not manager.one
        assert manager.zero.is_terminal and manager.one.is_terminal

    def test_constant(self, manager):
        assert manager.constant(True) is manager.one
        assert manager.constant(False) is manager.zero

    def test_var_is_hash_consed(self, manager):
        assert manager.var("a") is manager.var("a")

    def test_nvar_is_negation_of_var(self, manager):
        a = manager.var("a")
        assert manager.nvar("a") is manager.apply_not(a)

    def test_redundant_node_is_reduced(self, manager):
        # ite(a, b, b) must collapse to b.
        b = manager.var("b")
        assert manager.ite(manager.var("a"), b, b) is b


class TestConnectives:
    def test_and_truth_table(self, manager):
        f = manager.apply_and(manager.var("a"), manager.var("b"))
        assert manager.evaluate(f, {"a": True, "b": True}) is True
        assert manager.evaluate(f, {"a": True, "b": False}) is False
        assert manager.evaluate(f, {"a": False, "b": True}) is False

    def test_or_truth_table(self, manager):
        f = manager.apply_or(manager.var("a"), manager.var("b"))
        assert manager.evaluate(f, {"a": False, "b": False}) is False
        assert manager.evaluate(f, {"a": False, "b": True}) is True

    def test_xor_and_xnor_are_complements(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.apply_not(manager.apply_xor(a, b)) is manager.apply_xnor(a, b)

    def test_nand_nor(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.apply_nand(a, b) is manager.apply_not(manager.apply_and(a, b))
        assert manager.apply_nor(a, b) is manager.apply_not(manager.apply_or(a, b))

    def test_implies(self, manager):
        a, b = manager.var("a"), manager.var("b")
        f = manager.apply_implies(a, b)
        assert manager.evaluate(f, {"a": True, "b": False}) is False
        assert manager.evaluate(f, {"a": False, "b": False}) is True

    def test_double_negation(self, manager):
        a = manager.var("a")
        assert manager.apply_not(manager.apply_not(a)) is a

    def test_conjoin_disjoin(self, manager):
        literals = [manager.var(n) for n in ("a", "b", "c")]
        conj = manager.conjoin(literals)
        disj = manager.disjoin(literals)
        assert manager.evaluate(conj, {"a": True, "b": True, "c": True}) is True
        assert manager.evaluate(conj, {"a": True, "b": False, "c": True}) is False
        assert manager.evaluate(disj, {"a": False, "b": False, "c": False}) is False
        assert manager.evaluate(disj, {"a": False, "b": True, "c": False}) is True

    def test_conjoin_empty_is_one(self, manager):
        assert manager.conjoin([]) is manager.one
        assert manager.disjoin([]) is manager.zero

    def test_paper_example_function(self, manager):
        # Figure 3 of the paper: f = x1*x3 + x1'*x2*x3 which simplifies to x3*(x1 + x2).
        m = BDDManager(["x1", "x2", "x3"])
        x1, x2, x3 = m.var("x1"), m.var("x2"), m.var("x3")
        f = m.apply_or(m.apply_and(x1, x3), m.conjoin([m.apply_not(x1), x2, x3]))
        simplified = m.apply_and(x3, m.apply_or(x1, x2))
        assert f is simplified


class TestCanonicity:
    def test_equivalent_constructions_share_node(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        # Distributivity: a(b+c) == ab + ac
        left = manager.apply_and(a, manager.apply_or(b, c))
        right = manager.apply_or(manager.apply_and(a, b), manager.apply_and(a, c))
        assert left is right

    def test_de_morgan(self, manager):
        a, b = manager.var("a"), manager.var("b")
        left = manager.apply_not(manager.apply_and(a, b))
        right = manager.apply_or(manager.apply_not(a), manager.apply_not(b))
        assert left is right

    def test_tautology_collapses_to_one(self, manager):
        a = manager.var("a")
        assert manager.apply_or(a, manager.apply_not(a)) is manager.one

    def test_contradiction_collapses_to_zero(self, manager):
        a = manager.var("a")
        assert manager.apply_and(a, manager.apply_not(a)) is manager.zero


class TestRestrictAndQuantify:
    def test_restrict_single_literal(self, manager):
        a, b = manager.var("a"), manager.var("b")
        f = manager.apply_and(a, b)
        assert manager.cofactor(f, "a", True) is b
        assert manager.cofactor(f, "a", False) is manager.zero

    def test_restrict_multiple(self, manager):
        f = manager.conjoin([manager.var("a"), manager.var("b"), manager.var("c")])
        g = manager.restrict(f, {"a": True, "b": True})
        assert g is manager.var("c")

    def test_restrict_empty_assignment(self, manager):
        a = manager.var("a")
        assert manager.restrict(a, {}) is a

    def test_exists_removes_variable_from_support(self, manager):
        f = manager.apply_and(manager.var("a"), manager.var("b"))
        g = manager.exists(["a"], f)
        assert "a" not in manager.support(g)
        assert g is manager.var("b")

    def test_exists_is_disjunction_of_cofactors(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        f = manager.apply_or(manager.apply_and(a, b), manager.apply_and(manager.apply_not(a), c))
        expected = manager.apply_or(manager.cofactor(f, "a", False), manager.cofactor(f, "a", True))
        assert manager.exists(["a"], f) is expected

    def test_forall_is_conjunction_of_cofactors(self, manager):
        a, b = manager.var("a"), manager.var("b")
        f = manager.apply_or(a, b)
        expected = manager.apply_and(manager.cofactor(f, "a", False), manager.cofactor(f, "a", True))
        assert manager.forall(["a"], f) is expected

    def test_and_exists_equals_exists_of_and(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        f = manager.apply_or(a, b)
        g = manager.apply_and(b, c)
        direct = manager.and_exists(["b"], f, g)
        indirect = manager.exists(["b"], manager.apply_and(f, g))
        assert direct is indirect

    def test_and_exists_empty_variable_set(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.and_exists([], a, b) is manager.apply_and(a, b)


class TestComposeRename:
    def test_compose_substitutes_function(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        f = manager.apply_and(a, b)
        g = manager.compose(f, {"a": manager.apply_or(b, c)})
        expected = manager.apply_and(manager.apply_or(b, c), b)
        assert g is expected

    def test_compose_empty_substitution(self, manager):
        a = manager.var("a")
        assert manager.compose(a, {}) is a

    def test_compose_simultaneous(self, manager):
        # Simultaneous substitution a<->b must swap, not chain.
        a, b = manager.var("a"), manager.var("b")
        f = manager.apply_and(a, manager.apply_not(b))
        g = manager.compose(f, {"a": b, "b": a})
        expected = manager.apply_and(b, manager.apply_not(a))
        assert g is expected

    def test_rename(self, manager):
        f = manager.apply_and(manager.var("a"), manager.var("b"))
        g = manager.rename(f, {"a": "c"})
        assert g is manager.apply_and(manager.var("c"), manager.var("b"))


class TestQueries:
    def test_tautology_and_contradiction(self, manager):
        assert manager.is_tautology(manager.one)
        assert manager.is_contradiction(manager.zero)
        assert not manager.is_tautology(manager.var("a"))

    def test_satisfiable(self, manager):
        assert manager.is_satisfiable(manager.var("a"))
        assert not manager.is_satisfiable(manager.zero)

    def test_support(self, manager):
        f = manager.apply_and(manager.var("a"), manager.var("c"))
        assert manager.support(f) == ("a", "c")

    def test_support_of_constant_is_empty(self, manager):
        assert manager.support(manager.one) == ()

    def test_count_nodes(self, manager):
        a = manager.var("a")
        # A single-variable function: 1 decision node + 2 terminals.
        assert manager.count_nodes(a) == 3

    def test_sat_count_over_support(self, manager):
        f = manager.apply_or(manager.var("a"), manager.var("b"))
        assert manager.sat_count(f) == 3

    def test_sat_count_over_larger_universe(self, manager):
        f = manager.var("a")
        assert manager.sat_count(f, ["a", "b", "c"]) == 4

    def test_sat_count_missing_support_raises(self, manager):
        f = manager.apply_and(manager.var("a"), manager.var("b"))
        with pytest.raises(ValueError):
            manager.sat_count(f, ["a"])

    def test_sat_count_constants(self, manager):
        assert manager.sat_count(manager.one, ["a", "b"]) == 4
        assert manager.sat_count(manager.zero, ["a", "b"]) == 0

    def test_pick_assignment_satisfies(self, manager):
        f = manager.apply_and(manager.var("a"), manager.apply_not(manager.var("c")))
        assignment = manager.pick_assignment(f)
        assert assignment is not None
        assert manager.restrict(f, assignment) is manager.one

    def test_pick_assignment_of_zero_is_none(self, manager):
        assert manager.pick_assignment(manager.zero) is None

    def test_iter_assignments(self, manager):
        f = manager.apply_xor(manager.var("a"), manager.var("b"))
        models = list(manager.iter_assignments(f, ["a", "b"]))
        assert len(models) == 2
        for model in models:
            assert manager.evaluate(f, model) is True

    def test_cube(self, manager):
        cube = manager.cube({"a": True, "b": False})
        assert manager.evaluate(cube, {"a": True, "b": False}) is True
        assert manager.evaluate(cube, {"a": True, "b": True}) is False

    def test_evaluate_missing_variable_raises(self, manager):
        f = manager.var("a")
        with pytest.raises(KeyError):
            manager.evaluate(f, {})

    def test_statistics_and_clear_caches(self, manager):
        manager.apply_and(manager.var("a"), manager.var("b"))
        stats = manager.statistics()
        assert stats["variables"] == 4
        assert stats["unique_table_nodes"] >= 1
        manager.clear_caches()
        assert manager.statistics()["ite_cache_entries"] == 0

    def test_size_counts_unique_nodes(self, manager):
        before = manager.size()
        manager.apply_and(manager.var("a"), manager.var("b"))
        assert manager.size() > before
