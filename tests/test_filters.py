"""Tests for the output filtering function generators (SH1 / SH2)."""

import pytest

from repro.strings import (
    CONTROL,
    NORMAL,
    annul_cycles,
    format_filter,
    insert_event_window,
    pipelined_cycle_count,
    pipelined_filter,
    sample_cycles,
    superscalar_completion_filter,
    superscalar_specification_filter,
    unpipelined_cycle_count,
    unpipelined_filter,
)

# Simulation info from the paper: VSM = `r 0 0 1 0`, Alpha0 = `r 0 0 1 0 0`.
VSM_SLOTS = (NORMAL, NORMAL, CONTROL, NORMAL)
ALPHA0_SLOTS = (NORMAL, NORMAL, CONTROL, NORMAL, NORMAL)


class TestCycleCounts:
    def test_vsm_counts_match_paper(self):
        # k^2 + r and 2k-1 + r + c*d from Section 6.2.
        assert unpipelined_cycle_count(4, 4, reset_cycles=1) == 17
        assert pipelined_cycle_count(4, VSM_SLOTS, delay_slots=1, reset_cycles=1) == 9

    def test_alpha0_counts_match_paper(self):
        assert unpipelined_cycle_count(5, 5, reset_cycles=1) == 26
        assert pipelined_cycle_count(5, ALPHA0_SLOTS, delay_slots=1, reset_cycles=1) == 11

    def test_unknown_slot_kind_rejected(self):
        with pytest.raises(ValueError):
            pipelined_cycle_count(4, ("weird",), 1)


class TestPaperFilterSequences:
    def test_vsm_unpipelined_sequence(self):
        expected = "1 0 0 0 1 0 0 0 1 0 0 0 1 0 0 0 1"
        assert format_filter(unpipelined_filter(4, 4)) == expected

    def test_vsm_pipelined_sequence(self):
        expected = "1 0 0 0 1 1 1 0 1"
        assert format_filter(pipelined_filter(4, VSM_SLOTS, delay_slots=1)) == expected

    def test_alpha0_unpipelined_sequence(self):
        expected = "1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1 0 0 0 0 1"
        assert format_filter(unpipelined_filter(5, 5)) == expected

    def test_alpha0_pipelined_sequence(self):
        expected = "1 0 0 0 0 1 1 1 0 1 1"
        assert format_filter(pipelined_filter(5, ALPHA0_SLOTS, delay_slots=1)) == expected

    def test_both_machines_sample_the_same_number_of_points(self):
        spec = unpipelined_filter(4, 4)
        impl = pipelined_filter(4, VSM_SLOTS, delay_slots=1)
        assert sum(spec) == sum(impl) == 5

    def test_no_control_transfer_means_dense_sampling(self):
        impl = pipelined_filter(4, (NORMAL,) * 4, delay_slots=1)
        assert format_filter(impl) == "1 0 0 0 1 1 1 1"

    def test_multiple_control_transfers(self):
        impl = pipelined_filter(3, (CONTROL, CONTROL, NORMAL), delay_slots=2)
        # reset sample, 2 fill cycles, then 1 00 1 00 1.
        assert format_filter(impl) == "1 0 0 1 0 0 1 0 0 1"

    def test_reset_cycles_shift_the_first_sample(self):
        spec = unpipelined_filter(2, 2, reset_cycles=3)
        assert format_filter(spec) == "0 0 1 0 1 0 1"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            unpipelined_filter(0, 4)
        with pytest.raises(ValueError):
            pipelined_filter(4, VSM_SLOTS, delay_slots=-1)


class TestSampleCycles:
    def test_sample_cycles_of_vsm(self):
        assert sample_cycles(unpipelined_filter(4, 4)) == (0, 4, 8, 12, 16)
        assert sample_cycles(pipelined_filter(4, VSM_SLOTS, delay_slots=1)) == (0, 4, 5, 6, 8)


class TestDynamicBetaEdits:
    def test_insert_event_window(self):
        base = pipelined_filter(4, (NORMAL,) * 4, delay_slots=1)
        edited = insert_event_window(base, event_cycle=5, handler_cycles=3)
        assert len(edited) == len(base) + 3
        assert edited[5:8] == (0, 0, 0)
        assert sum(edited) == sum(base)

    def test_insert_event_window_bounds(self):
        with pytest.raises(ValueError):
            insert_event_window((1, 0), event_cycle=5, handler_cycles=1)
        with pytest.raises(ValueError):
            insert_event_window((1, 0), event_cycle=0, handler_cycles=-1)

    def test_annul_cycles(self):
        base = (1, 1, 1, 1)
        assert annul_cycles(base, [1, 3]) == (1, 0, 1, 0)
        with pytest.raises(ValueError):
            annul_cycles(base, [9])

    def test_superscalar_filters_align(self):
        # A 2-wide machine retiring 2, 1, 2 instructions over three cycles.
        completions = (2, 1, 2)
        impl = superscalar_completion_filter(completions)
        spec = superscalar_specification_filter(completions, k=4)
        assert impl == (1, 1, 1, 1)
        # Specification samples after 2, 3 and 5 completed instructions.
        assert sample_cycles(spec) == (0, 8, 12, 20)
        assert sum(impl) == sum(spec)

    def test_superscalar_idle_cycles_not_sampled(self):
        impl = superscalar_completion_filter((2, 0, 1))
        assert impl == (1, 1, 0, 1)

    def test_superscalar_negative_completions_rejected(self):
        with pytest.raises(ValueError):
            superscalar_completion_filter((1, -1))
