"""Tests for the VSM instruction set: encoding, decoding, semantics (Table 1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import VSMEncodingError, VSMInstruction
from repro.isa import vsm


class TestEncodingDecoding:
    def test_field_packing(self):
        instruction = VSMInstruction("add", literal_flag=True, ra=5, rb=3, rc=6)
        word = instruction.encode()
        assert (word >> 10) & 0b111 == 0b000
        assert (word >> 9) & 1 == 1
        assert (word >> 6) & 0b111 == 5
        assert (word >> 3) & 0b111 == 3
        assert word & 0b111 == 6

    def test_roundtrip_all_opcodes(self):
        for mnemonic in vsm.OPCODES:
            instruction = VSMInstruction(mnemonic, ra=1, rb=2, rc=3)
            assert vsm.decode(instruction.encode()) == instruction

    def test_decode_rejects_out_of_range_word(self):
        with pytest.raises(VSMEncodingError):
            vsm.decode(1 << 13)
        with pytest.raises(VSMEncodingError):
            vsm.decode(-1)

    def test_decode_rejects_undefined_opcode(self):
        # Opcodes 101, 110, 111 are undefined.
        with pytest.raises(VSMEncodingError):
            vsm.decode(0b111 << 10)
        assert not vsm.is_valid_encoding(0b101 << 10)
        assert vsm.is_valid_encoding(VSMInstruction("or", ra=1, rb=1, rc=1).encode())

    def test_constructor_validation(self):
        with pytest.raises(VSMEncodingError):
            VSMInstruction("mul")
        with pytest.raises(VSMEncodingError):
            VSMInstruction("add", ra=8)

    @settings(max_examples=100, deadline=None)
    @given(
        st.sampled_from(sorted(vsm.OPCODES)),
        st.booleans(),
        st.integers(0, 7),
        st.integers(0, 7),
        st.integers(0, 7),
    )
    def test_property_roundtrip(self, mnemonic, literal_flag, ra, rb, rc):
        instruction = VSMInstruction(mnemonic, literal_flag=literal_flag, ra=ra, rb=rb, rc=rc)
        word = instruction.encode()
        assert 0 <= word < (1 << vsm.INSTRUCTION_WIDTH)
        assert vsm.decode(word) == instruction


class TestClassification:
    def test_branch_is_control_transfer(self):
        branch = VSMInstruction("br", ra=2, rc=7)
        assert branch.is_control_transfer
        assert not branch.is_alu
        assert branch.displacement == 2
        assert branch.sources() == ()
        assert branch.destination() == 7

    def test_alu_sources_and_destination(self):
        register_form = VSMInstruction("add", ra=1, rb=2, rc=3)
        literal_form = VSMInstruction("add", literal_flag=True, ra=1, rb=5, rc=3)
        assert register_form.sources() == (1, 2)
        assert literal_form.sources() == (1,)
        assert literal_form.literal == 5
        assert register_form.destination() == 3

    def test_str_forms(self):
        assert str(VSMInstruction("and", ra=1, rb=2, rc=3)) == "and r3, r1, r2"
        assert str(VSMInstruction("or", literal_flag=True, ra=1, rb=6, rc=2)) == "or r2, r1, #6"
        assert str(VSMInstruction("br", ra=3, rc=7)) == "br r7, 3"


class TestSemantics:
    def setup_method(self):
        self.registers = [0, 1, 2, 3, 4, 5, 6, 7]

    @pytest.mark.parametrize(
        "mnemonic,expected",
        [("add", (2 + 5) % 8), ("xor", 2 ^ 5), ("and", 2 & 5), ("or", 2 | 5)],
    )
    def test_alu_register_forms(self, mnemonic, expected):
        instruction = VSMInstruction(mnemonic, ra=2, rb=5, rc=0)
        registers, pc = vsm.execute(instruction, self.registers, pc=9)
        assert registers[0] == expected
        assert pc == 10
        # Other registers untouched.
        assert registers[1:] == self.registers[1:]

    def test_alu_literal_form(self):
        instruction = VSMInstruction("add", literal_flag=True, ra=7, rb=6, rc=1)
        registers, pc = vsm.execute(instruction, self.registers, pc=0)
        assert registers[1] == (7 + 6) % 8
        assert pc == 1

    def test_branch_semantics(self):
        instruction = VSMInstruction("br", ra=3, rc=4)
        registers, pc = vsm.execute(instruction, self.registers, pc=10)
        # Rc <- PC (masked to the 3-bit data width), PC <- PC + Disp.
        assert registers[4] == 10 & 0b111
        assert pc == 13

    def test_branch_pc_wraps(self):
        instruction = VSMInstruction("br", ra=7, rc=0)
        _, pc = vsm.execute(instruction, self.registers, pc=30)
        assert pc == (30 + 7) % 32

    def test_pc_increment_wraps(self):
        instruction = VSMInstruction("add", ra=0, rb=0, rc=0)
        _, pc = vsm.execute(instruction, self.registers, pc=31)
        assert pc == 0

    def test_execute_validates_register_count(self):
        with pytest.raises(VSMEncodingError):
            vsm.execute(VSMInstruction("add"), [0, 1, 2], pc=0)

    def test_alu_operation_rejects_branch(self):
        with pytest.raises(VSMEncodingError):
            vsm.alu_operation("br", 0, 0)

    def test_inputs_not_mutated(self):
        registers = [1] * 8
        vsm.execute(VSMInstruction("add", ra=0, rb=0, rc=5), registers, pc=0)
        assert registers == [1] * 8

    @settings(max_examples=100, deadline=None)
    @given(
        st.sampled_from(["add", "xor", "and", "or"]),
        st.lists(st.integers(0, 7), min_size=8, max_size=8),
        st.integers(0, 7),
        st.integers(0, 7),
        st.integers(0, 7),
        st.integers(0, 31),
    )
    def test_property_alu_results_in_range(self, mnemonic, registers, ra, rb, rc, pc):
        instruction = VSMInstruction(mnemonic, ra=ra, rb=rb, rc=rc)
        new_registers, new_pc = vsm.execute(instruction, registers, pc)
        assert all(0 <= value < 8 for value in new_registers)
        assert 0 <= new_pc < 32
        assert new_pc == (pc + 1) % 32


class TestRandomGeneration:
    def test_random_instruction_is_decodable(self):
        rng = random.Random(7)
        for _ in range(50):
            instruction = vsm.random_instruction(rng)
            assert vsm.decode(instruction.encode()) == instruction

    def test_random_program_without_control_transfer(self):
        rng = random.Random(11)
        program = vsm.random_program(rng, 40, allow_control_transfer=False)
        assert len(program) == 40
        assert all(not instruction.is_control_transfer for instruction in program)

    def test_random_instruction_restricted_mnemonics(self):
        rng = random.Random(3)
        instruction = vsm.random_instruction(rng, mnemonics=["and"])
        assert instruction.mnemonic == "and"
