"""Tests for the concrete Alpha0 processor models and their co-simulation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Alpha0Config, Alpha0Instruction, assemble_alpha0
from repro.isa import alpha0 as isa
from repro.processors import PipelinedAlpha0, UnpipelinedAlpha0

CONFIG = Alpha0Config(data_width=4, memory_words=8)


def drive_unpipelined(program, config=CONFIG):
    machine = UnpipelinedAlpha0(config=config)
    for instruction in program:
        machine.execute_instruction(instruction.encode())
    return machine


def drive_pipelined(program, config=CONFIG, **kwargs):
    machine = PipelinedAlpha0(config=config, **kwargs)
    junk = Alpha0Instruction("xor", ra=1, rb=1, rc=1)  # corrupts r1 unless annulled
    drain = Alpha0Instruction("and", ra=0, rb=0, rc=0)
    for instruction in program:
        machine.step(instruction.encode())
        if instruction.is_control_transfer:
            machine.step(junk.encode())
    for _ in range(isa.PIPELINE_DEPTH):
        machine.step(drain.encode(), fetch_valid=False)
    return machine


class TestUnpipelinedAlpha0:
    def test_reset_observation(self):
        machine = UnpipelinedAlpha0(config=CONFIG)
        observation = machine.observe()
        assert observation["pc_next"] == 0
        assert observation["reg5"] == 0
        assert observation["mem3"] == 0

    def test_instruction_takes_k_cycles(self):
        machine = UnpipelinedAlpha0(config=CONFIG)
        machine.execute_instruction(
            Alpha0Instruction("or", ra=0, rc=1, literal_flag=True, literal=9).encode()
        )
        assert machine.cycle_count == isa.PIPELINE_DEPTH
        assert machine.state.registers[1] == 9

    def test_load_store_roundtrip(self):
        program = assemble_alpha0(
            """
            or r1, r0, #13
            or r2, r0, #8
            st r1, 0(r2)
            ld r3, 0(r2)
            """
        )
        machine = drive_unpipelined(program)
        assert machine.state.memory[2] == 13 & 0xF
        assert machine.state.registers[3] == 13 & 0xF

    def test_observed_subsets(self):
        machine = UnpipelinedAlpha0(
            config=CONFIG, observed_registers=(1, 2), observed_memory=(0,)
        )
        observation = machine.observe()
        assert set(observation) == {"reg1", "reg2", "mem0", "pc_next", "retired_op", "retired_dest"}

    def test_requires_instruction_at_fetch_cycle(self):
        machine = UnpipelinedAlpha0(config=CONFIG)
        with pytest.raises(ValueError):
            machine.step(None)

    def test_run_program(self):
        program = assemble_alpha0("or r1, r0, #5\nand r2, r1, #3\nxor r3, r1, r2")
        machine = UnpipelinedAlpha0(config=CONFIG)
        machine.run_program([i.encode() for i in program])
        assert machine.state.registers[3] == 5 ^ (5 & 3)


class TestPipelinedAlpha0:
    def test_latency_is_pipeline_depth(self):
        machine = PipelinedAlpha0(config=CONFIG)
        word = Alpha0Instruction("or", ra=0, rc=1, literal_flag=True, literal=7).encode()
        nop = Alpha0Instruction("and", ra=0, rb=0, rc=0).encode()
        machine.step(word)
        for _ in range(isa.PIPELINE_DEPTH - 2):
            machine.step(nop, fetch_valid=False)
        assert machine.state.registers[1] == 0
        machine.step(nop, fetch_valid=False)
        assert machine.state.registers[1] == 7

    def test_bypass_distance_one_and_two(self):
        program = assemble_alpha0(
            """
            or  r1, r0, #6
            add r2, r1, #1
            add r3, r2, r1
            """
        )
        machine = drive_pipelined(program, config=Alpha0Config(data_width=4, memory_words=8))
        assert machine.state.registers[1] == 6
        assert machine.state.registers[2] == 7
        assert machine.state.registers[3] == (7 + 6) % 16

    def test_missing_bypass_breaks_hazard(self):
        program = assemble_alpha0("or r1, r0, #6\nadd r2, r1, #1")
        machine = drive_pipelined(program, bug="no_bypass")
        assert machine.state.registers[2] != 7

    def test_load_use_forwarding(self):
        program = assemble_alpha0(
            """
            or r1, r0, #9
            or r2, r0, #4
            st r1, 0(r2)
            ld r3, 0(r2)
            add r4, r3, #1
            """
        )
        machine = drive_pipelined(program)
        assert machine.state.registers[3] == 9
        assert machine.state.registers[4] == 10

    def test_branch_annuls_delay_slot(self):
        program = assemble_alpha0("or r1, r0, #3\nbr r26, 2")
        machine = drive_pipelined(program)
        assert machine.state.registers[1] == 3  # junk xor r1 annulled
        assert machine.state.registers[26] == 8 & 0xF  # link = PC of branch + 4

    def test_conditional_branch_taken_and_not_taken(self):
        taken = drive_pipelined(assemble_alpha0("or r1, r0, #0\nbf r1, 3"))
        not_taken = drive_pipelined(assemble_alpha0("or r1, r0, #5\nbf r1, 3"))
        # bf at PC 4: sequential 8, target 8 + 12 = 20.
        assert taken.observe()["pc_next"] == 20
        assert not_taken.observe()["pc_next"] == 8

    def test_jump_uses_register_target(self):
        program = assemble_alpha0("or r7, r0, #12\njmp r26, (r7)")
        machine = drive_pipelined(program)
        assert machine.observe()["pc_next"] == 12
        assert machine.state.registers[26] == 8

    def test_store_wrong_word_bug(self):
        program = assemble_alpha0("or r1, r0, #9\nor r2, r0, #4\nst r1, 0(r2)")
        good = drive_pipelined(program)
        bad = drive_pipelined(program, bug="store_wrong_word")
        assert good.state.memory[1] == 9
        assert bad.state.memory[1] == 0 and bad.state.memory[2] == 9

    def test_cmpeq_inverted_bug(self):
        config = Alpha0Config(data_width=4, memory_words=8)
        program = assemble_alpha0("or r1, r0, #5\nor r2, r0, #5\ncmpeq r3, r1, r2")
        good = drive_pipelined(program, config=config)
        bad = drive_pipelined(program, config=config, bug="cmpeq_inverted")
        assert good.state.registers[3] == 1
        assert bad.state.registers[3] == 0

    def test_unknown_bug_code_rejected(self):
        with pytest.raises(ValueError):
            PipelinedAlpha0(bug="gremlins")

    def test_reset(self):
        machine = PipelinedAlpha0(config=CONFIG)
        machine.step(Alpha0Instruction("or", ra=0, rc=1, literal_flag=True, literal=7).encode())
        machine.reset()
        assert machine.state.registers == [0] * 32
        assert machine.cycle_count == 0

    def test_run_program_from_memory(self):
        program = assemble_alpha0(
            """
            or r1, r0, #2
            add r2, r1, r1
            br r26, 1
            xor r2, r2, r2     ; skipped: sits in the annulled/jumped-over slot
            add r3, r2, r1
            """
        )
        words = [i.encode() for i in program]
        machine = PipelinedAlpha0(config=Alpha0Config(data_width=4, memory_words=8))
        machine.run_program(words, cycles=14)
        assert machine.state.registers[3] == 4 + 2


class TestCoSimulation:
    def check_program(self, program, config=None, **pipeline_kwargs):
        config = config or Alpha0Config(data_width=4, memory_words=8)
        spec = drive_unpipelined(program, config=config)
        impl = drive_pipelined(program, config=config, **pipeline_kwargs)
        assert impl.state.registers == spec.state.registers
        assert impl.state.memory == spec.state.memory
        assert impl.observe()["pc_next"] == spec.observe()["pc_next"]
        assert impl.instructions_retired == len(program)

    def test_alu_and_memory_program(self):
        program = assemble_alpha0(
            """
            or  r1, r0, #11
            add r2, r1, #3
            st  r2, 0(r1)
            ld  r4, 0(r1)
            sub r5, r4, r1
            cmplt r6, r5, r2
            sll r7, r1, #1
            srl r8, r1, #2
            """
        )
        self.check_program(program)

    def test_control_transfer_program(self):
        program = assemble_alpha0(
            """
            or r1, r0, #0
            bf r1, 1
            or r2, r0, #7
            bt r2, -2
            add r3, r2, r2
            """
        )
        self.check_program(program)

    def test_wider_datapath(self):
        config = Alpha0Config(data_width=8, memory_words=16)
        program = assemble_alpha0("or r1, r0, #200\nadd r2, r1, #100\nxor r3, r2, r1")
        self.check_program(program, config=config)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_random_programs(self, seed):
        rng = random.Random(seed)
        config = Alpha0Config(data_width=4, memory_words=8)
        program = isa.random_program(
            rng, rng.randint(1, 10), config=config, allow_control_transfer=False
        )
        self.check_program(program, config=config)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_random_programs_with_branches(self, seed):
        rng = random.Random(seed)
        config = Alpha0Config(data_width=4, memory_words=8)
        program = isa.random_program(
            rng, rng.randint(1, 8), config=config, allow_control_transfer=True
        )
        self.check_program(program, config=config)

    def test_bugs_diverge_from_specification(self):
        program = assemble_alpha0(
            """
            or r1, r0, #6
            add r2, r1, #1
            cmpeq r3, r1, r1
            or r4, r0, #4
            st r2, 0(r4)
            br r26, 2
            ld r5, 0(r4)
            """
        )
        config = Alpha0Config(data_width=4, memory_words=8)
        spec = drive_unpipelined(program, config=config)
        for bug in ("no_bypass", "no_annul", "wrong_branch_target", "cmpeq_inverted", "store_wrong_word"):
            impl = drive_pipelined(program, config=config, bug=bug)
            assert (
                impl.state.registers != spec.state.registers
                or impl.state.memory != spec.state.memory
                or impl.observe()["pc_next"] != spec.observe()["pc_next"]
            ), f"bug {bug} was not detected"
