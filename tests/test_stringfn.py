"""Unit tests for strings, string functions and primitive operations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.strings import (
    EMPTY,
    ComposedFunction,
    ConstantFunction,
    LiftedFunction,
    MachineFunction,
    RegisterFunction,
    at,
    concat,
    filter_from_sequence,
    last,
    length,
    modulo_counter_filter,
    one,
    past,
    periodic_filter,
    power,
    prefix,
    string,
    substring,
    zero,
)


class TestStringOperations:
    def test_string_and_concat(self):
        assert string([1, 2]) == (1, 2)
        assert concat((1, 2), (3,)) == (1, 2, 3)
        assert concat((), ()) == ()

    def test_length(self):
        assert length(()) == 0
        assert length((1, 2, 3)) == 3

    def test_prefix(self):
        assert prefix((), (1, 2))
        assert prefix((1,), (1, 2))
        assert prefix((1, 2), (1, 2))
        assert not prefix((2,), (1, 2))
        assert not prefix((1, 2, 3), (1, 2))

    def test_last_and_past(self):
        assert last((1, 2, 3)) == 3
        assert past((1, 2, 3)) == (1, 2)
        # Totality conventions from the paper.
        assert last(()) == EMPTY
        assert past(()) == ()

    def test_power(self):
        assert power(0, 3) == (0, 0, 0)
        assert power("a", 0) == ()

    def test_at_is_one_based(self):
        assert at((10, 20, 30), 1) == 10
        assert at((10, 20, 30), 3) == 30
        with pytest.raises(IndexError):
            at((10,), 0)
        with pytest.raises(IndexError):
            at((10,), 2)

    def test_substring(self):
        assert substring((1, 2, 3, 4), 2, 3) == (2, 3)
        assert substring((1, 2, 3, 4), 1, 4) == (1, 2, 3, 4)
        with pytest.raises(IndexError):
            substring((1, 2), 0, 1)


class TestStringFunctions:
    def test_lifted_function(self):
        double = LiftedFunction(lambda u: 2 * u)
        assert double((1, 2, 3)) == (2, 4, 6)
        assert double(()) == ()

    def test_register_function(self):
        reg = RegisterFunction(0)
        assert reg((5, 6, 7)) == (0, 5, 6)
        assert reg(()) == ()

    def test_machine_function_is_stateless_between_calls(self):
        accumulate = MachineFunction(lambda s, u: (s + u, s + u), 0)
        assert accumulate((1, 2, 3)) == (1, 3, 6)
        assert accumulate((1, 2, 3)) == (1, 3, 6)

    def test_composed_function(self):
        double = LiftedFunction(lambda u: 2 * u)
        reg = RegisterFunction(0)
        composed = ComposedFunction(double, reg)
        assert composed((1, 2)) == (0, 2)

    def test_constant_functions(self):
        assert zero((7, 8, 9)) == (0, 0, 0)
        assert one((7, 8)) == (1, 1)
        assert ConstantFunction("x")((1, 2)) == ("x", "x")

    def test_modulo_counter_filter(self):
        counter = modulo_counter_filter(2)
        assert counter((0,) * 6) == (1, 0, 1, 0, 1, 0)
        phased = modulo_counter_filter(3, phase=2)
        assert phased((0,) * 6) == (0, 0, 1, 0, 0, 1)

    def test_periodic_filter(self):
        assert periodic_filter(4, offset=3)((0,) * 9) == (0, 0, 0, 1, 0, 0, 0, 1, 0)

    def test_filter_from_sequence(self):
        fixed = filter_from_sequence([1, 0, 1])
        assert fixed((9, 9, 9, 9, 9)) == (1, 0, 1, 0, 0)


class TestStringFunctionLaws:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 3), max_size=8))
    def test_length_preservation(self, values):
        x = tuple(values)
        for function in (
            LiftedFunction(lambda u: u + 1),
            RegisterFunction(0),
            MachineFunction(lambda s, u: (u, s), 0),
            zero,
        ):
            assert function.check_length_preserving(x)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 3), max_size=8))
    def test_prefix_preservation(self, values):
        x = tuple(values)
        for function in (
            LiftedFunction(lambda u: u * 2),
            RegisterFunction(7),
            MachineFunction(lambda s, u: (s ^ u, s ^ u), 0),
            modulo_counter_filter(2),
        ):
            assert function.check_prefix_preserving(x)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=8))
    def test_register_shifts_by_one(self, values):
        x = tuple(values)
        reg = RegisterFunction("init")
        assert reg(x) == ("init",) + x[:-1]
