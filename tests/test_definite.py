"""Tests for definite-machine theory (order detection, canonical realization,
Theorem 4.3.1.1 verification)."""

import pytest

from repro.bdd import BDDManager
from repro.fsm import (
    SymbolicFSM,
    canonical_realization,
    definiteness_order,
    is_definite_of_order,
    verify_definite_equivalence,
)
from repro.logic import Signal, counter, parity_shift_register, shift_register


class TestOrderDetection:
    def test_shift_register_order_equals_length(self):
        manager = BDDManager()
        for length in (1, 2, 3, 4):
            fsm = SymbolicFSM.from_netlist(shift_register(length), manager, prefix=f"sr{length}.")
            assert definiteness_order(fsm, max_order=6) == length

    def test_parity_shift_register_is_definite(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(parity_shift_register(3), manager)
        assert definiteness_order(fsm, max_order=6) == 3

    def test_counter_is_not_definite(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(counter(2), manager)
        assert definiteness_order(fsm, max_order=6) is None
        assert not is_definite_of_order(fsm, 4)

    def test_higher_orders_also_hold(self):
        """A k-definite machine is also definite at any order above k."""
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(shift_register(2), manager)
        assert not is_definite_of_order(fsm, 1)
        assert is_definite_of_order(fsm, 2)
        assert is_definite_of_order(fsm, 3)

    def test_order_zero_only_for_stateless_machines(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(shift_register(1), manager)
        assert not is_definite_of_order(fsm, 0)

    def test_negative_order_rejected(self):
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(shift_register(1), manager)
        with pytest.raises(ValueError):
            is_definite_of_order(fsm, -1)


class TestCanonicalRealization:
    def test_structure_matches_figure_4(self):
        netlist = canonical_realization(3, lambda stages: Signal(stages[0]) ^ Signal(stages[2]))
        assert netlist.latch_count() == 3
        assert netlist.primary_inputs == ["din"]
        assert netlist.primary_outputs == ["out"]

    def test_realization_is_k_definite(self):
        netlist = canonical_realization(3, lambda stages: Signal(stages[0]) & Signal(stages[1]))
        manager = BDDManager()
        fsm = SymbolicFSM.from_netlist(netlist, manager)
        assert definiteness_order(fsm, max_order=5) == 3

    def test_zero_order_rejected(self):
        with pytest.raises(ValueError):
            canonical_realization(0, lambda stages: Signal("x"))

    def test_behaviour(self):
        netlist = canonical_realization(2, lambda stages: Signal(stages[0]) | Signal(stages[1]))
        stimulus = [{"din": bit} for bit in (True, False, False, True, False)]
        outputs = [t["out"] for t in netlist.simulate(stimulus)]
        # OR of the last two inputs, delayed by one cycle into the registers.
        assert outputs == [False, True, True, False, True]


class TestTheorem4311:
    def test_equivalent_realizations_verify(self):
        """A shift register vs. its canonical re-realization."""
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(shift_register(3), manager, prefix="L.")
        right_netlist = canonical_realization(3, lambda stages: Signal(stages[2]))
        right = SymbolicFSM.from_netlist(right_netlist, manager, prefix="R.")
        # Align the port names: unify inputs by renaming through constraints.
        result = verify_shared_input(left, right, 3, ("stage2", "out"))
        assert result.equivalent
        assert result.cycles_simulated == 4
        assert result.sequences_covered == 2 ** 3

    def test_inequivalent_machines_detected(self):
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(shift_register(3), manager, prefix="L.")
        right_netlist = canonical_realization(
            3, lambda stages: Signal(stages[2]) ^ Signal(stages[0])
        )
        right = SymbolicFSM.from_netlist(right_netlist, manager, prefix="R.")
        result = verify_shared_input(left, right, 3, ("stage2", "out"))
        assert not result.equivalent
        assert result.mismatched_outputs
        assert result.counterexample is not None

    def test_insufficient_order_fails_conservatively(self):
        """Using k smaller than the true order cannot certify equivalence."""
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(shift_register(3), manager, prefix="L.")
        right = SymbolicFSM.from_netlist(shift_register(3), manager, prefix="R.")
        result = verify_shared_input(left, right, 2, ("stage2", "stage2"))
        assert not result.equivalent

    def test_requires_shared_manager(self):
        left = SymbolicFSM.from_netlist(shift_register(2), BDDManager(), prefix="L.")
        right = SymbolicFSM.from_netlist(shift_register(2), BDDManager(), prefix="R.")
        with pytest.raises(ValueError):
            verify_definite_equivalence(left, right, 2)

    def test_requires_same_input_names(self):
        manager = BDDManager()
        left = SymbolicFSM.from_netlist(shift_register(2), manager, prefix="L.")
        right = SymbolicFSM.from_netlist(shift_register(2), manager, prefix="R.")
        with pytest.raises(ValueError):
            verify_definite_equivalence(left, right, 2)


def verify_shared_input(left, right, order, output_pair):
    """Run verify_definite_equivalence after unifying the single input name."""
    # Rebuild the right machine with the left machine's input name so the
    # shared-stimulus requirement of the procedure is met.
    manager = left.manager
    mapping = dict(zip(sorted(right.input_names), sorted(left.input_names)))
    renamed_next = {
        name: manager.rename(fn, mapping) for name, fn in right.next_state.items()
    }
    renamed_outputs = {
        name: manager.rename(fn, mapping) for name, fn in right.outputs.items()
    }
    from repro.fsm import SymbolicFSM as FSM

    right_aligned = FSM(
        manager,
        input_names=list(left.input_names),
        state_names=list(right.state_names),
        next_state=renamed_next,
        outputs=renamed_outputs,
        reset_state=right.reset_state,
        name=right.name + ".aligned",
    )
    return verify_definite_equivalence(
        left, right_aligned, order, output_pairs=[output_pair]
    )
