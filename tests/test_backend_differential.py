"""Differential suite: the vector kernel backend vs. the dict baseline.

The vector backend (:mod:`repro.bdd.vector`) reroutes large snapshot
restores and level-swap planning through numpy batch kernels while the
per-level dict table stays authoritative.  Its contract is stronger
than semantic equivalence: every operation sequence must leave the two
backends *handle-identical* — same arena arrays, same free-list, same
snapshots, byte for byte.  These tests drive random operation / GC /
swap / sift sequences and cold/warm/overlapping restores through both
backends with the batch thresholds forced down so even small inputs
take the vectorized paths, then assert exact equality; golden engine
verdicts must match the stored counterexample records on the vector
backend too.

All randomness is seeded; the suite is deterministic.  The whole module
is skipped when numpy is unavailable (the vector backend then falls
back to the scalar loops, which the ordinary kernel suite covers).
"""

import json
import pathlib
import random

import pytest

from repro.bdd import (
    BDDManager,
    KERNEL_BACKENDS,
    KERNEL_DICT,
    KERNEL_VECTOR,
    converge_sift,
    create_manager,
    default_kernel_backend,
    swap_adjacent,
)
from repro.bdd import vector as vector_mod
from repro.bdd.vector import VectorBDDManager, numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

SEED = 20260808


@pytest.fixture(autouse=True)
def force_vector_paths(monkeypatch):
    """Drop the batch thresholds so small test inputs vectorize too."""
    monkeypatch.setattr(vector_mod, "VECTOR_RESTORE_MIN", 1)
    monkeypatch.setattr(vector_mod, "VECTOR_SWAP_MIN", 1)


def random_function(manager, rng, names, depth=4):
    if depth == 0 or rng.random() < 0.25:
        name = rng.choice(names)
        return manager.var(name) if rng.random() < 0.5 else manager.nvar(name)
    left = random_function(manager, rng, names, depth - 1)
    right = random_function(manager, rng, names, depth - 1)
    op = rng.randrange(5)
    if op == 0:
        return manager.apply_and(left, right)
    if op == 1:
        return manager.apply_or(left, right)
    if op == 2:
        return manager.apply_xor(left, right)
    if op == 3:
        return manager.exists([rng.choice(names)], left)
    return manager.ite(left, right, manager.apply_not(right))


def assert_arenas_identical(dict_mgr, vec_mgr):
    """The strong contract: same arrays, same table, same free-list."""
    assert dict_mgr._level == vec_mgr._level
    assert dict_mgr._low == vec_mgr._low
    assert dict_mgr._high == vec_mgr._high
    assert dict_mgr._free == vec_mgr._free
    assert dict_mgr._table == vec_mgr._table
    assert dict_mgr._live == vec_mgr._live
    assert {lvl: set(b) for lvl, b in dict_mgr._level_index.items()} == {
        lvl: set(b) for lvl, b in vec_mgr._level_index.items()
    }


class TestFactorySelection:
    def test_backend_classes(self):
        assert type(create_manager(backend=KERNEL_DICT)) is BDDManager
        assert type(create_manager(backend=KERNEL_VECTOR)) is VectorBDDManager

    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert default_kernel_backend() == KERNEL_DICT
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "vector")
        assert default_kernel_backend() == KERNEL_VECTOR
        assert type(create_manager()) is VectorBDDManager
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "no-such-backend")
        with pytest.raises(ValueError):
            default_kernel_backend()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            create_manager(backend="no-such-backend")

    def test_policy_field_roundtrip(self):
        from repro.relational.policy import (
            RelationalPolicy,
            effective_kernel_backend,
        )

        policy = RelationalPolicy(kernel_backend=KERNEL_VECTOR)
        assert policy.to_dict()["kernel_backend"] == KERNEL_VECTOR
        assert RelationalPolicy.from_dict(policy.to_dict()) == policy
        assert effective_kernel_backend(policy) == KERNEL_VECTOR
        with pytest.raises(ValueError):
            RelationalPolicy(kernel_backend="no-such-backend")

    def test_policy_none_defers_to_env(self, monkeypatch):
        from repro.relational.policy import effective_kernel_backend

        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "vector")
        assert effective_kernel_backend(None) == KERNEL_VECTOR

    def test_order_signature_carries_explicit_backend(self, monkeypatch):
        from repro.engine.scenario import Scenario
        from repro.relational.policy import RelationalPolicy

        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        scenario = Scenario(
            name="sig-test", design="vsm", kind="beta", slots=("normal",)
        )
        base = scenario.order_signature()
        assert ("kernel", KERNEL_VECTOR) not in base
        # The env toggle must NOT move content addresses: committed
        # fuzz-corpus witness keys embed the signature, and backends
        # are byte-identical by construction — only an *explicit*
        # policy choice tags the signature.
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "vector")
        assert scenario.order_signature() == base
        pinned = Scenario(
            name="sig-test-pinned",
            design="vsm",
            kind="beta",
            slots=("normal",),
            relational=RelationalPolicy(kernel_backend=KERNEL_VECTOR),
        )
        tagged = pinned.order_signature()
        assert ("kernel", KERNEL_VECTOR) in tagged
        assert tagged != base

    def test_pool_respects_signature_backend(self, monkeypatch):
        from repro.engine.pool import ManagerPool

        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        pool = ManagerPool()
        assert type(pool.acquire(("plain",))) is BDDManager
        vec = pool.acquire(("plain", ("kernel", KERNEL_VECTOR)))
        assert type(vec) is VectorBDDManager
        # Same signature reuses the same manager; private managers
        # follow the signature too.
        assert pool.acquire(("plain", ("kernel", KERNEL_VECTOR))) is vec
        assert (
            type(pool.private_manager(("x", ("kernel", KERNEL_VECTOR))))
            is VectorBDDManager
        )
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "vector")
        assert type(pool.private_manager()) is VectorBDDManager
        # Untagged signatures defer to the process default too (the
        # env toggle changes the backend without moving store keys).
        assert type(pool.private_manager(("plain",))) is VectorBDDManager
        assert type(pool.acquire(("plain-2",))) is VectorBDDManager


class TestOperationSequences:
    """Random op/GC/swap/sift interleavings leave identical arenas."""

    NAMES = [f"v{i}" for i in range(10)]

    def drive(self, manager, seed):
        rng = random.Random(seed)
        roots = []
        for round_index in range(14):
            roots.append(
                random_function(manager, rng, self.NAMES, depth=4)
            )
            action = rng.random()
            if action < 0.25 and len(roots) > 2:
                del roots[rng.randrange(len(roots))]
                manager.collect()
            elif action < 0.5:
                swap_adjacent(manager, rng.randrange(len(self.NAMES) - 1))
            elif action < 0.6:
                converge_sift(manager)
        return roots

    @pytest.mark.parametrize("seed", [SEED, SEED + 1, SEED + 2])
    def test_sequences_handle_identical(self, seed):
        dict_mgr = create_manager(self.NAMES, backend=KERNEL_DICT)
        vec_mgr = create_manager(self.NAMES, backend=KERNEL_VECTOR)
        dict_roots = self.drive(dict_mgr, seed)
        vec_roots = self.drive(vec_mgr, seed)
        assert [r._h for r in dict_roots] == [r._h for r in vec_roots]
        assert_arenas_identical(dict_mgr, vec_mgr)
        # Same variable order after any sifting, same minterm counts,
        # byte-identical snapshots.
        assert [
            dict_mgr.name_at_level(i) for i in range(dict_mgr.num_vars())
        ] == [vec_mgr.name_at_level(i) for i in range(vec_mgr.num_vars())]
        for d, v in zip(dict_roots, vec_roots):
            assert dict_mgr.sat_count(d, self.NAMES) == vec_mgr.sat_count(
                v, self.NAMES
            )
        assert dict_mgr.snapshot(dict_roots) == vec_mgr.snapshot(vec_roots)
        stats = vec_mgr._vector_stats
        assert stats["bulk_swap_plans"] + stats["scalar_fallbacks"] > 0


class TestRestoreDifferential:
    """Cold, warm and overlapping restores are handle-identical."""

    NAMES = [f"v{i}" for i in range(12)]

    def snapshot_payload(self, seed=SEED + 50):
        rng = random.Random(seed)
        source = create_manager(self.NAMES, backend=KERNEL_DICT)
        roots = [
            random_function(source, rng, self.NAMES, depth=5)
            for _ in range(4)
        ]
        return source, roots, source.snapshot(roots, declares=source.variables)

    def test_cold_restore(self):
        _, _, payload = self.snapshot_payload()
        dict_mgr = create_manager(backend=KERNEL_DICT)
        vec_mgr = create_manager(backend=KERNEL_VECTOR)
        dict_roots = dict_mgr.restore(payload)
        vec_roots = vec_mgr.restore(payload)
        assert vec_mgr._vector_stats["bulk_restores"] == 1
        assert [r._h for r in dict_roots] == [r._h for r in vec_roots]
        assert_arenas_identical(dict_mgr, vec_mgr)

    def test_warm_restore_allocates_nothing(self):
        _, _, payload = self.snapshot_payload()
        vec_mgr = create_manager(backend=KERNEL_VECTOR)
        first = vec_mgr.restore(payload)
        live = vec_mgr._live
        second = vec_mgr.restore(payload)
        assert vec_mgr._live == live
        assert [r._h for r in first] == [r._h for r in second]
        assert vec_mgr._vector_stats["bulk_restores"] == 2

    def test_overlapping_restore(self):
        """Restore into arenas already holding related functions."""
        _, _, payload = self.snapshot_payload()
        rng_seed = SEED + 99
        dict_mgr = create_manager(self.NAMES, backend=KERNEL_DICT)
        vec_mgr = create_manager(self.NAMES, backend=KERNEL_VECTOR)
        for manager in (dict_mgr, vec_mgr):
            rng = random.Random(rng_seed)
            keep = [
                random_function(manager, rng, self.NAMES, depth=5)
                for _ in range(3)
            ]
            manager._pin = keep  # keep wrappers alive
        dict_roots = dict_mgr.restore(payload)
        vec_roots = vec_mgr.restore(payload)
        assert [r._h for r in dict_roots] == [r._h for r in vec_roots]
        assert_arenas_identical(dict_mgr, vec_mgr)

    def test_restore_after_gc_reuses_free_list_identically(self):
        _, _, payload = self.snapshot_payload()
        managers = []
        for backend in (KERNEL_DICT, KERNEL_VECTOR):
            manager = create_manager(self.NAMES, backend=backend)
            rng = random.Random(SEED + 7)
            garbage = [
                random_function(manager, rng, self.NAMES, depth=5)
                for _ in range(3)
            ]
            del garbage
            manager.collect()
            assert manager._free
            managers.append(manager)
        dict_mgr, vec_mgr = managers
        dict_roots = dict_mgr.restore(payload)
        vec_roots = vec_mgr.restore(payload)
        assert [r._h for r in dict_roots] == [r._h for r in vec_roots]
        assert_arenas_identical(dict_mgr, vec_mgr)

    def test_corrupt_payloads_raise_identically(self):
        from repro.bdd.kernel import SnapshotError

        _, _, payload = self.snapshot_payload()
        cases = []
        truncated = json.loads(json.dumps(payload))
        truncated["highs"] = truncated["highs"][:-2]
        cases.append(truncated)
        forward = json.loads(json.dumps(payload))
        forward["lows"][0] = 5000
        cases.append(forward)
        redundant = json.loads(json.dumps(payload))
        redundant["lows"][-1] = redundant["highs"][-1]
        cases.append(redundant)
        nonmono = json.loads(json.dumps(payload))
        # Pull a child up to its parent's level: "does not sit below".
        child = next(c for c in nonmono["lows"] if c >= 2)
        parent = nonmono["lows"].index(child)
        nonmono["levels"][child - 2] = nonmono["levels"][parent]
        cases.append(nonmono)
        for case in cases:
            errors = []
            for backend in (KERNEL_DICT, KERNEL_VECTOR):
                with pytest.raises(SnapshotError) as excinfo:
                    create_manager(backend=backend).restore(case)
                errors.append(str(excinfo.value))
            assert errors[0] == errors[1]

    def test_non_integer_payload_falls_back_to_scalar_error(self):
        from repro.bdd.kernel import SnapshotError

        _, _, payload = self.snapshot_payload()
        bad = json.loads(json.dumps(payload))
        bad["lows"][0] = 2.5
        vec_mgr = create_manager(backend=KERNEL_VECTOR)
        with pytest.raises((SnapshotError, TypeError)):
            vec_mgr.restore(bad)


class TestTelemetryPlumbing:
    def test_vector_counters_in_arena_statistics(self):
        _, _, payload = TestRestoreDifferential().snapshot_payload()
        vec_mgr = create_manager(backend=KERNEL_VECTOR)
        vec_mgr.restore(payload)
        arena = vec_mgr.arena_statistics()
        assert arena["vector_bulk_restores"] == 1
        assert arena["vector_bulk_restore_nodes"] > 0

    def test_pool_statistics_fold_vector_counters(self):
        from repro.engine.pool import ManagerPool

        _, _, payload = TestRestoreDifferential().snapshot_payload()
        pool = ManagerPool()
        manager = pool.acquire((("kernel", KERNEL_VECTOR),))
        manager.restore(payload)
        stats = pool.statistics()
        assert stats["arena"]["vector_bulk_restores"] == 1
        # Retired managers keep their monotonic vector counters.
        pool.clear()
        stats = pool.statistics()
        assert stats["arena"]["vector_bulk_restores"] == 1


GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_counterexamples.json"


class TestGoldenVerdictsOnVectorBackend:
    """Stored golden counterexamples are backend-invariant, byte for byte."""

    @pytest.fixture(scope="class")
    def goldens(self):
        with GOLDEN_PATH.open() as handle:
            return json.load(handle)["scenarios"]

    @pytest.mark.parametrize(
        "name", ["vsm/bug/drop_write_r3", "vsm/bug/and_becomes_or"]
    )
    def test_golden_records_byte_identical_on_vector(
        self, goldens, name, monkeypatch
    ):
        from repro.engine import Scenario
        from repro.engine.executor import run_beta

        entry = goldens[name]
        scenario = Scenario.from_dict(entry["scenario"])
        manager = create_manager(backend=KERNEL_VECTOR)
        report = run_beta(
            scenario.architecture(),
            scenario.siminfo(),
            manager=manager,
            impl_kwargs=scenario.impl_kwargs(),
            observation=scenario.observation(),
            relational=scenario.relational,
        )
        assert not report.passed
        assert len(report.mismatches) == entry["mismatch_count"]
        for expected, actual in zip(entry["first_mismatches"], report.mismatches):
            assert actual.observable == expected["observable"]
            assert actual.sample_index == expected["sample_index"]
            assert actual.decoded_instructions == expected["decoded"]
            assert actual.instruction_words == {
                k: int(v) for k, v in expected["words"].items()
            }
            assert {
                k: bool(v) for k, v in actual.counterexample.items()
            } == expected["counterexample"]
