"""Tests of the generative bug-hunt campaign layer (:mod:`repro.campaigns`).

Covers the seed protocol (cross-process determinism, prefix stability),
the ground-truth audit, the counterexample corpus (golden anchoring,
fingerprint dedup, persistence), the witness minimizer (never flips a
verdict, strictly shrinks, converges across seeds) and the campaign
runner's batched execution mode the fuzz campaigns ride on.

The symbolic mutation classes are covered end to end by the golden
replay / differential suites; here the end-to-end campaigns restrict to
the concrete (superscalar/scoreboard) classes so the property tests
stay fast.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.campaigns import (
    CLASS_NAMES,
    CounterexampleCorpus,
    EXPECT_FAIL,
    EXPECT_PASS,
    MinimizationResult,
    generate_scenario,
    generate_scenarios,
    minimize_witness,
    planted_bug_catalog,
    planted_class,
    run_fuzz_campaign,
    witness_key,
    witness_record,
)
from repro.engine import CampaignRunner, Scenario
from repro.strings import NORMAL

#: The concrete mutation classes — no BDD work, so campaigns over them
#: run in milliseconds.
FAST_CLASSES = (
    "superscalar_width",
    "superscalar_hazard",
    "scoreboard_variant",
    "scoreboard_raw",
)


# ----------------------------------------------------------------------
# Generator: seed protocol and ground-truth tagging
# ----------------------------------------------------------------------
class TestGenerator:
    def test_same_seed_same_scenarios(self):
        first = [scenario.to_dict() for scenario in generate_scenarios(11, 40)]
        second = [scenario.to_dict() for scenario in generate_scenarios(11, 40)]
        assert first == second

    def test_prefix_stability(self):
        long = generate_scenarios(5, 50)
        short = generate_scenarios(5, 20)
        assert [s.to_dict() for s in long[:20]] == [s.to_dict() for s in short]

    def test_different_seeds_differ(self):
        a = [scenario.to_dict() for scenario in generate_scenarios(1, 20)]
        b = [scenario.to_dict() for scenario in generate_scenarios(2, 20)]
        assert a != b

    def test_round_robin_classes_and_tags(self):
        scenarios = generate_scenarios(9, 25)
        for index, scenario in enumerate(scenarios):
            expected_class = CLASS_NAMES[index % len(CLASS_NAMES)]
            assert planted_class(scenario) == expected_class
            assert "fuzz" in scenario.tags
            assert f"seed:9" in scenario.tags
            assert (EXPECT_PASS in scenario.tags) != (EXPECT_FAIL in scenario.tags)
            if EXPECT_FAIL in scenario.tags:
                assert any(tag.startswith("planted:") for tag in scenario.tags)

    def test_class_filter_preserves_indices(self):
        everything = generate_scenarios(4, 30)
        filtered = generate_scenarios(4, 30, classes=("planted_bug",))
        expected = [s for s in everything if planted_class(s) == "planted_bug"]
        assert [s.to_dict() for s in filtered] == [s.to_dict() for s in expected]

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation classes"):
            generate_scenarios(0, 10, classes=("no_such_class",))

    def test_cross_process_determinism(self):
        """Same seed → byte-identical specs and fingerprints in a fresh
        interpreter (the seed protocol survives hash randomisation)."""
        code = (
            "import json\n"
            "from repro.campaigns import generate_scenarios\n"
            "scenarios = generate_scenarios(23, 30)\n"
            "print(json.dumps({\n"
            "    'specs': [s.to_dict() for s in scenarios],\n"
            "    'fingerprints': [s.fingerprint('') for s in scenarios],\n"
            "}, sort_keys=True))\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def spawn():
            return subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout.strip()

        remote_a, remote_b = spawn(), spawn()
        assert remote_a == remote_b
        local = generate_scenarios(23, 30)
        payload = json.loads(remote_a)
        assert payload["specs"] == [s.to_dict() for s in local]
        assert payload["fingerprints"] == [s.fingerprint("") for s in local]

    def test_planted_catalog_covers_every_failing_class(self):
        catalog = planted_bug_catalog()
        classes = {planted_class(scenario) for scenario in catalog}
        assert classes == {
            "planted_bug",
            "alpha0_case",
            "bypass_drop",
            "branch_skew",
            "event_storm",
            "superscalar_hazard",
            "scoreboard_raw",
        }
        for scenario in catalog:
            assert EXPECT_FAIL in scenario.tags

    def test_scenarios_round_trip_and_resolve(self):
        for scenario in generate_scenarios(2, 20):
            assert Scenario.from_dict(scenario.to_dict()) == scenario


# ----------------------------------------------------------------------
# Corpus: golden anchoring, dedup, persistence
# ----------------------------------------------------------------------
class TestCorpus:
    def test_goldens_are_known(self):
        corpus = CounterexampleCorpus()
        stats = corpus.statistics()
        assert stats["golden"] >= 10
        # A catalogue planted bug at its canonical workload is content-
        # identical to its golden record: the corpus must flag it.
        planted = [
            s for s in planted_bug_catalog() if planted_class(s) == "planted_bug"
        ]
        assert planted
        for scenario in planted:
            assert corpus.is_known(scenario)
            assert corpus.source_of(scenario).startswith("golden:")

    def test_witness_key_ignores_name_and_tags(self):
        a = Scenario(name="x", slots=(NORMAL, NORMAL), bug="no_bypass")
        b = Scenario(name="y", slots=(NORMAL, NORMAL), bug="no_bypass", tags=("t",))
        assert witness_key(a) == witness_key(b)

    def test_add_and_reload(self, tmp_path):
        runner = CampaignRunner()
        scenario = next(
            s
            for s in generate_scenarios(3, 40, classes=("superscalar_hazard",))
        )
        outcome = runner.run_one(scenario)
        assert not outcome.passed

        corpus = CounterexampleCorpus(root=tmp_path)
        assert not corpus.is_known(scenario)
        record = corpus.add(scenario, outcome, provenance={"seed": 3}, write=True)
        assert corpus.is_known(scenario)
        path = tmp_path / f"{record['fingerprint']}.json"
        assert path.is_file()
        assert json.loads(path.read_text()) == record

        reloaded = CounterexampleCorpus(root=tmp_path)
        assert reloaded.is_known(scenario)
        assert reloaded.source_of(scenario).startswith("corpus:")

    def test_duplicate_add_rejected(self, tmp_path):
        runner = CampaignRunner()
        scenario = generate_scenarios(3, 40, classes=("superscalar_hazard",))[0]
        outcome = runner.run_one(scenario)
        corpus = CounterexampleCorpus(root=tmp_path)
        corpus.add(scenario, outcome)
        with pytest.raises(ValueError, match="already known"):
            corpus.add(scenario, outcome)

    def test_passing_outcome_is_not_a_witness(self):
        runner = CampaignRunner()
        scenario = generate_scenarios(3, 40, classes=("superscalar_width",))[0]
        outcome = runner.run_one(scenario)
        assert outcome.passed
        with pytest.raises(ValueError, match="refuting"):
            witness_record(scenario, outcome)


# ----------------------------------------------------------------------
# Minimizer: verdict preservation, shrinking, convergence
# ----------------------------------------------------------------------
class TestMinimizer:
    def test_minimized_witness_still_refutes(self):
        runner = CampaignRunner()
        for scenario in generate_scenarios(
            7, 40, classes=("superscalar_hazard", "scoreboard_raw")
        ):
            result = minimize_witness(scenario, runner)
            assert isinstance(result, MinimizationResult)
            # The invariant the corpus depends on: minimization never
            # flips a verdict — the output still refutes, re-verified.
            check = runner.run_one(result.scenario)
            assert not check.passed and check.error is None
            assert result.fingerprint == witness_key(result.scenario)

    def test_minimizer_shrinks_jitter(self):
        runner = CampaignRunner()
        scenario = generate_scenarios(7, 40, classes=("superscalar_hazard",))[0]
        assert len(scenario.program) >= 2
        result = minimize_witness(scenario, runner)
        assert result.reduced
        assert len(result.scenario.program) == 2  # the bare RAW pair

    def test_minimizer_converges_across_seeds(self):
        """Equivalent planted defects from different seeds shrink to the
        same canonical witness (same content fingerprint)."""
        runner = CampaignRunner()
        fingerprints = set()
        for seed in (1, 2, 3):
            scenario = generate_scenarios(
                seed, 40, classes=("superscalar_hazard",)
            )[0]
            fingerprints.add(
                minimize_witness(scenario, runner, narrow_observe=False).fingerprint
            )
        assert len(fingerprints) == 1

    def test_passing_scenario_rejected(self):
        runner = CampaignRunner()
        scenario = generate_scenarios(3, 40, classes=("superscalar_width",))[0]
        with pytest.raises(ValueError, match="does not refute"):
            minimize_witness(scenario, runner)

    def test_minimized_name_is_content_addressed(self):
        runner = CampaignRunner()
        scenario = generate_scenarios(7, 40, classes=("scoreboard_raw",))[0]
        result = minimize_witness(scenario, runner)
        assert result.scenario.name == f"fuzz/min/{result.fingerprint[:12]}"
        assert "minimized" in result.scenario.tags


# ----------------------------------------------------------------------
# End-to-end campaign over the concrete classes
# ----------------------------------------------------------------------
class TestFuzzCampaign:
    def test_ground_truth_and_dedup(self, tmp_path):
        result = run_fuzz_campaign(
            3,
            80,
            classes=FAST_CLASSES,
            corpus_root=tmp_path / "corpus",
            write_corpus=True,
        )
        assert result.ok, result.ground_truth_violations
        assert result.planted_detected == {
            "superscalar_hazard": True,
            "scoreboard_raw": True,
        }
        assert result.witnesses_found == 16
        # Minimization collapses equivalent witnesses: only a handful of
        # canonical records survive, everything else dedupes.
        assert result.new_records
        assert result.duplicates
        assert len(result.new_records) + len(result.duplicates) == 16
        written = sorted((tmp_path / "corpus").glob("*.json"))
        assert len(written) == len(result.new_records)

        # Re-running the campaign against the now-populated corpus finds
        # nothing new: every witness is a known duplicate.
        rerun = run_fuzz_campaign(
            3, 80, classes=FAST_CLASSES, corpus_root=tmp_path / "corpus"
        )
        assert rerun.ok
        assert rerun.new_records == []
        assert len(rerun.duplicates) == 16

    def test_campaign_is_deterministic(self):
        first = run_fuzz_campaign(5, 40, classes=FAST_CLASSES, minimize=False)
        second = run_fuzz_campaign(5, 40, classes=FAST_CLASSES, minimize=False)
        assert first.report.verdict_json() == second.report.verdict_json()

    def test_batched_campaign_matches_unbatched(self, tmp_path):
        unbatched = run_fuzz_campaign(5, 40, classes=FAST_CLASSES, minimize=False)
        batched = run_fuzz_campaign(
            5, 40, classes=FAST_CLASSES, minimize=False, batch_size=3
        )
        assert batched.report.verdict_json() == unbatched.report.verdict_json()
        assert batched.report.pool["batches"] == 6  # ceil(16 / 3)

    def test_max_minimize_caps_runs(self):
        result = run_fuzz_campaign(
            3, 80, classes=FAST_CLASSES, max_minimize=2
        )
        assert result.minimization["runs"] == 2


# ----------------------------------------------------------------------
# Runner batching and store census (the engine support this PR added)
# ----------------------------------------------------------------------
class TestRunBatched:
    def test_verdicts_match_plain_run(self):
        scenarios = generate_scenarios(5, 30, classes=FAST_CLASSES)
        plain = CampaignRunner().run(scenarios)
        batched = CampaignRunner().run_batched(scenarios, batch_size=4)
        assert batched.verdict_json() == plain.verdict_json()
        assert batched.pool["batches"] == 3  # ceil(12 / 4)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            CampaignRunner().run_batched([], batch_size=0)

    def test_empty_campaign(self):
        report = CampaignRunner().run_batched([], batch_size=4)
        assert report.outcomes == []

    def test_disk_statistics(self, tmp_path):
        from repro.engine import ResultStore

        store = ResultStore(tmp_path / "store")
        empty = store.disk_statistics()
        assert empty["results"] == {"records": 0, "bytes": 0}
        runner = CampaignRunner(store=store)
        runner.run(generate_scenarios(5, 20, classes=("superscalar_width",)))
        census = store.disk_statistics()
        assert census["results"]["records"] == 2
        assert census["results"]["bytes"] > 0
        assert census["root"] == str(tmp_path / "store")
