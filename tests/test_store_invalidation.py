"""Surgical store invalidation: per-component dependency vectors (PR 6).

The persistent store used to be invalidated by one monolithic code
salt — any bump cold-invalidated every verdict and snapshot, even for
scenarios whose inputs didn't change.  These tests lock down the
compositional replacement: every record envelope carries the
``{component: source-hash}`` vector of the code its verdict depends on
(:mod:`repro.engine.codehash`), and a lookup refuses the record — as
*invalidated*, degrading to recompute — exactly when one of *its own*
components changed.

The differential bar, from the paper's incremental-verification story:
after editing exactly one architecture model module, a warm-store re-run
recomputes only that architecture's scenarios, with byte-identical
verdicts throughout.  The safety direction stays absolute: stale always
degrades to recompute, never a wrong verdict.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import (
    Alpha0Spec,
    CampaignRunner,
    ResultStore,
    Scenario,
    alpha0_operate_scenario,
    codehash,
    event_scenarios,
)
from repro.strings import NORMAL

SMALL_ALPHA0 = Alpha0Spec(data_width=3, num_registers=4, memory_words=2)

#: One scenario per dependency profile: two VSM beta runs (shared model),
#: one Alpha0 beta run, one interrupt run (VSM models + interrupt models).
MIXED = [
    Scenario(name="vsm/golden", slots=(NORMAL, NORMAL)),
    Scenario(name="vsm/bug", slots=(NORMAL, NORMAL), bug="no_bypass"),
    alpha0_operate_scenario(alpha0=SMALL_ALPHA0),
    event_scenarios(num_slots=1)[0],
]

EVENTS_NAME = MIXED[3].name
ALPHA0_NAME = MIXED[2].name


@pytest.fixture(autouse=True)
def _clean_overrides():
    """Every test starts and ends with pristine component hashes."""
    codehash.clear_overrides()
    yield
    codehash.clear_overrides()


def run_with_store(tmp_path, scenarios=MIXED, **kwargs):
    # A fresh runner per call: each run is a separate "process" as far
    # as in-memory reuse goes, so only the on-disk store carries over.
    runner = CampaignRunner(store_path=tmp_path / "store", **kwargs)
    return runner.run(scenarios)


class TestComponentRegistry:
    def test_every_scenario_dependency_is_a_known_component(self):
        for scenario in MIXED:
            for name in scenario.dependencies():
                assert name in codehash.COMPONENTS

    def test_component_files_exist(self):
        for component in codehash.COMPONENTS:
            files = codehash.component_files(component)
            assert files, component
            for path in files:
                assert path.is_file(), f"{component}: {path}"

    def test_unknown_component_is_rejected(self):
        with pytest.raises(KeyError):
            codehash.component_hash("model:nonexistent")
        with pytest.raises(KeyError):
            codehash.set_override("model:nonexistent", "x")

    def test_override_changes_exactly_one_component(self):
        before = {name: codehash.component_hash(name) for name in codehash.COMPONENTS}
        codehash.set_override("model:vsm", "simulated edit")
        after = {name: codehash.component_hash(name) for name in codehash.COMPONENTS}
        changed = {name for name in before if before[name] != after[name]}
        assert changed == {"model:vsm"}
        codehash.clear_overrides()
        assert codehash.component_hash("model:vsm") == before["model:vsm"]


class TestSurgicalInvalidation:
    """Edit one component; exactly its dependents recompute."""

    def test_model_edit_invalidates_only_that_architectures_scenarios(self, tmp_path):
        cold = run_with_store(tmp_path)
        codehash.set_override("model:alpha0", "edited")
        warm = run_with_store(tmp_path)
        # Byte-identical verdicts: the running model objects are
        # unchanged, so the recomputed record must reproduce the cold one.
        assert warm.verdict_json().encode() == cold.verdict_json().encode()
        results = warm.store["results"]
        assert results["hits"] == len(MIXED) - 1
        assert results["invalidated"] == 1
        assert results["misses"] == 0 and results["stale"] == 0
        # The recompute republished the record in place.
        assert results["writes"] == 1
        by_status = {o.scenario: o.store.get("status") for o in warm.outcomes}
        assert by_status[ALPHA0_NAME] == "invalidated"
        assert all(
            status == "hit" for name, status in by_status.items() if name != ALPHA0_NAME
        )

    def test_interrupt_model_edit_invalidates_only_events(self, tmp_path):
        cold = run_with_store(tmp_path)
        codehash.set_override("model:interrupts", "edited")
        warm = run_with_store(tmp_path)
        assert warm.verdict_json() == cold.verdict_json()
        assert warm.store["results"]["invalidated"] == 1
        assert warm.store["results"]["hits"] == len(MIXED) - 1
        assert warm.outcome(EVENTS_NAME).store["status"] == "invalidated"

    def test_vsm_model_edit_invalidates_vsm_and_events(self, tmp_path):
        """The interrupt models subclass the VSM models, so a VSM edit
        takes the events scenario down with the two VSM beta runs."""
        cold = run_with_store(tmp_path)
        codehash.set_override("model:vsm", "edited")
        warm = run_with_store(tmp_path)
        assert warm.verdict_json() == cold.verdict_json()
        assert warm.store["results"]["invalidated"] == 3
        assert warm.store["results"]["hits"] == 1
        assert warm.outcome(ALPHA0_NAME).store["status"] == "hit"

    def test_unrelated_component_edit_keeps_every_record_warm(self, tmp_path):
        """The headline fix: the old monolithic salt would have lost
        everything here; the component vector loses nothing."""
        run_with_store(tmp_path)
        codehash.set_override("model:superscalar", "edited")
        warm = run_with_store(tmp_path)
        assert warm.store["results"]["hits"] == len(MIXED)
        assert warm.store["results"]["invalidated"] == 0
        assert warm.store["results"]["survival_rate"] == 1.0

    def test_invalidated_record_heals_after_recompute(self, tmp_path):
        run_with_store(tmp_path)
        codehash.set_override("model:alpha0", "edited")
        run_with_store(tmp_path)  # recomputes + republishes under new vector
        healed = run_with_store(tmp_path)  # override still active: must hit
        assert healed.store["results"]["hits"] == len(MIXED)
        assert healed.store["results"]["invalidated"] == 0

    def test_survival_stats_surface_in_campaign_report(self, tmp_path):
        run_with_store(tmp_path)
        codehash.set_override("model:alpha0", "edited")
        warm = run_with_store(tmp_path)
        results = warm.store["results"]
        assert results["survival_rate"] == pytest.approx(
            (len(MIXED) - 1) / len(MIXED)
        )
        payload = json.loads(warm.to_json())
        assert payload["store"]["results"]["invalidated"] == 1
        assert "invalidated by code changes" in warm.summary()


class TestRealOnDiskEdit:
    """The acceptance-criteria scenario: edit a model module on disk."""

    def test_editing_interrupts_module_recomputes_only_events(self, tmp_path):
        cold = run_with_store(tmp_path)
        module = Path(codehash.PACKAGE_ROOT) / "processors" / "interrupts.py"
        original = module.read_bytes()
        original_hash = codehash.component_hash("model:interrupts")
        try:
            module.write_bytes(original + b"\n# design edit under test\n")
            # Force a fresh stat signature even on coarse filesystem
            # timestamps (the size change alone would already do it).
            stat = module.stat()
            os.utime(module, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
            assert codehash.component_hash("model:interrupts") != original_hash
            warm = run_with_store(tmp_path)
        finally:
            module.write_bytes(original)
        # The loaded module objects are untouched by the on-disk edit, so
        # the recomputed verdicts are byte-identical to the cold run.
        assert warm.verdict_json().encode() == cold.verdict_json().encode()
        assert warm.store["results"]["invalidated"] == 1
        assert warm.store["results"]["hits"] == len(MIXED) - 1
        assert warm.outcome(EVENTS_NAME).store["status"] == "invalidated"
        # Restoring the file restores the hash; the events record was
        # republished under the *edited* hash, so it is invalidated once
        # more (content hashes, not version counters), and the store is
        # fully warm again on the run after that.
        assert codehash.component_hash("model:interrupts") == original_hash
        healed = run_with_store(tmp_path)
        assert healed.store["results"]["hits"] == len(MIXED) - 1
        assert healed.store["results"]["invalidated"] == 1
        settled = run_with_store(tmp_path)
        assert settled.store["results"]["hits"] == len(MIXED)


class TestSnapshotInvalidation:
    """Relation snapshots carry the same dependency vectors."""

    def test_snapshots_of_edited_model_are_refused(self, tmp_path):
        import shutil

        cold = run_with_store(tmp_path)
        assert cold.store["snapshots"]["writes"] >= 5
        codehash.set_override("model:alpha0", "edited")
        # Drop the result records so every scenario actually re-runs and
        # confronts the stored snapshots.
        shutil.rmtree(tmp_path / "store" / "results")
        warm = run_with_store(tmp_path)
        assert warm.verdict_json() == cold.verdict_json()
        snapshots = warm.store["snapshots"]
        # Alpha0's spec+impl relations were refused and re-extracted;
        # the VSM relations (spec + two impls) were served.
        assert snapshots["invalidated"] == 2
        assert snapshots["hits"] == 3
        alpha0 = warm.outcome(ALPHA0_NAME)
        assert alpha0.snapshot["spec"]["status"] == "saved"
        vsm = warm.outcome("vsm/golden")
        assert vsm.snapshot["spec"]["status"] == "restored"


class TestInvalidationVsStale:
    """Salt bumps and component edits are different failure classes."""

    def test_salt_bump_rekeys_component_edit_invalidates_in_place(self, tmp_path):
        run_with_store(tmp_path)
        store = ResultStore(tmp_path / "store")
        fingerprint = MIXED[0].fingerprint(store.salt)
        # A salt bump changes the fingerprint itself: old records become
        # unreachable (counted as plain misses), nothing is invalidated.
        bumped = CampaignRunner(
            store=ResultStore(tmp_path / "store", salt="bumped")
        ).run(MIXED)
        assert bumped.store["results"]["misses"] == len(MIXED)
        assert bumped.store["results"]["invalidated"] == 0
        assert MIXED[0].fingerprint("bumped") != fingerprint
        # A component edit keeps the address stable — same path, record
        # refused by its envelope, rewritten in place.
        path = store.result_path(fingerprint)
        assert path.is_file()
        codehash.set_override("model:vsm", "edited")
        warm = run_with_store(tmp_path)
        assert warm.store["results"]["invalidated"] == 3
        assert store.result_path(MIXED[0].fingerprint(store.salt)) == path

    def test_record_without_component_vector_is_invalidated(self, tmp_path):
        """A record predating dependency tracking (or with a stripped
        vector) must degrade to recompute, not serve."""
        cold = run_with_store(tmp_path)
        store = ResultStore(tmp_path / "store")
        path = store.result_path(MIXED[0].fingerprint(store.salt))
        envelope = json.loads(path.read_bytes())
        del envelope["components"]
        path.write_bytes(json.dumps(envelope).encode())
        warm = run_with_store(tmp_path)
        assert warm.verdict_json() == cold.verdict_json()
        assert warm.store["results"]["invalidated"] == 1
        assert warm.store["results"]["hits"] == len(MIXED) - 1

    def test_envelope_records_exactly_the_declared_dependencies(self, tmp_path):
        run_with_store(tmp_path)
        store = ResultStore(tmp_path / "store")
        for scenario in MIXED:
            path = store.result_path(scenario.fingerprint(store.salt))
            envelope = json.loads(path.read_bytes())
            assert set(envelope["components"]) == set(scenario.dependencies())
            assert envelope["components"] == store.component_vector(
                scenario.dependencies()
            )


class TestFingerprintStability:
    """Satellite: fingerprints must not depend on process or field order."""

    def test_fingerprint_is_stable_across_process_boundaries(self):
        scenario = MIXED[1]
        code = (
            "from repro.engine import Scenario\n"
            "from repro.strings import NORMAL\n"
            "s = Scenario(name='vsm/bug', slots=(NORMAL, NORMAL), bug='no_bypass')\n"
            "print(s.fingerprint('cross-process-salt'))\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        remote = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.strip()
        assert remote == scenario.fingerprint("cross-process-salt")

    def test_fingerprint_ignores_keyword_order(self):
        a = Scenario(name="x", slots=(NORMAL, NORMAL), bug="no_bypass")
        b = Scenario(bug="no_bypass", slots=(NORMAL, NORMAL), name="x")
        assert a.fingerprint("s") == b.fingerprint("s")

    def test_component_vector_is_order_insensitive_and_deduplicated(self):
        store_vector = codehash.component_vector(["relational", "bdd", "bdd"])
        assert list(store_vector) == ["bdd", "relational"]
        assert store_vector == codehash.component_vector(("bdd", "relational"))
