"""Parametric netlist generators used by tests and benchmarks.

These mirror the small circuits that appear throughout the paper:
counters (the modulo-2 counter filter of Figure 1), shift registers (the
canonical realization of a definite machine, Figure 4), ripple-carry
adders (the variable-ordering example of Section 3.2), word
comparators, and the serially-scheduled datapath of Figure 2.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from .netlist import Netlist


def counter(width: int, name: str = "counter") -> Netlist:
    """A free-running modulo-2**width counter with the count as output.

    With ``width == 1`` this is the modulo-2 counter used as the
    filtering function H in Figure 1 of the paper.
    """
    netlist = Netlist(name)
    state = [f"q{i}" for i in range(width)]
    for net in state:
        netlist.add_latch(net, f"{net}_next", reset_value=False)
    carry = None
    for i, net in enumerate(state):
        if i == 0:
            netlist.add_gate(f"{net}_next", "NOT", [net])
            carry = net
        else:
            netlist.add_gate(f"{net}_next", "XOR", [net, carry])
            new_carry = f"carry{i}"
            netlist.add_gate(new_carry, "AND", [net, carry])
            carry = new_carry
    netlist.set_outputs(state)
    return netlist


def shift_register(length: int, name: str = "shift_register") -> Netlist:
    """A 1-bit-wide shift register of the given length.

    This is the canonical realization of a ``length``-definite machine
    (Figure 4): the state is exactly the last ``length`` inputs.
    """
    netlist = Netlist(name)
    netlist.add_input("din")
    previous = "din"
    for i in range(length):
        stage = f"stage{i}"
        netlist.add_latch(stage, previous, reset_value=False)
        previous = stage
    netlist.set_outputs([previous])
    return netlist


def parity_shift_register(length: int, name: str = "parity_shift_register") -> Netlist:
    """A shift register whose output is the parity of the last ``length`` inputs.

    A second, functionally equivalent realization of a definite machine;
    used to exercise FSM equivalence checks.
    """
    netlist = Netlist(name)
    netlist.add_input("din")
    previous = "din"
    stages: List[str] = []
    for i in range(length):
        stage = f"stage{i}"
        netlist.add_latch(stage, previous, reset_value=False)
        stages.append(stage)
        previous = stage
    parity = stages[0]
    for i, stage in enumerate(stages[1:], start=1):
        next_parity = f"parity{i}"
        netlist.add_gate(next_parity, "XOR", [parity, stage])
        parity = next_parity
    netlist.set_outputs([parity])
    return netlist


def ripple_adder(width: int, name: str = "ripple_adder", registered: bool = False) -> Netlist:
    """A ``width``-bit ripple-carry adder (optionally with registered output).

    Inputs ``a{i}`` and ``b{i}``, outputs ``s{i}`` plus carry-out ``cout``.
    """
    netlist = Netlist(name)
    a = [netlist.add_input(f"a{i}") for i in range(width)]
    b = [netlist.add_input(f"b{i}") for i in range(width)]
    carry = None
    outputs = []
    for i in range(width):
        axb = f"axb{i}"
        netlist.add_gate(axb, "XOR", [a[i], b[i]])
        if carry is None:
            sum_net = f"sum{i}"
            netlist.add_gate(sum_net, "BUF", [axb])
            carry_net = f"c{i}"
            netlist.add_gate(carry_net, "AND", [a[i], b[i]])
        else:
            sum_net = f"sum{i}"
            netlist.add_gate(sum_net, "XOR", [axb, carry])
            and1 = f"and1_{i}"
            and2 = f"and2_{i}"
            netlist.add_gate(and1, "AND", [a[i], b[i]])
            netlist.add_gate(and2, "AND", [axb, carry])
            carry_net = f"c{i}"
            netlist.add_gate(carry_net, "OR", [and1, and2])
        carry = carry_net
        if registered:
            reg = f"s{i}"
            netlist.add_latch(reg, sum_net, reset_value=False)
            outputs.append(reg)
        else:
            outputs.append(sum_net)
    if registered:
        netlist.add_latch("cout", carry, reset_value=False)
        outputs.append("cout")
    else:
        netlist.add_gate("cout", "BUF", [carry])
        outputs.append("cout")
    netlist.set_outputs(outputs)
    return netlist


def equality_comparator(width: int, name: str = "comparator") -> Netlist:
    """Combinational equality comparator of two ``width``-bit words."""
    netlist = Netlist(name)
    terms = []
    for i in range(width):
        a = netlist.add_input(f"a{i}")
        b = netlist.add_input(f"b{i}")
        term = f"eq{i}"
        netlist.add_gate(term, "XNOR", [a, b])
        terms.append(term)
    netlist.add_gate("equal", "AND", terms)
    netlist.set_outputs(["equal"])
    return netlist


def random_netlist(
    seed: int,
    num_inputs: int = 3,
    num_latches: int = 4,
    num_gates: int = 12,
    name: str = "random",
) -> Netlist:
    """A seeded pseudo-random sequential netlist.

    Used by the property tests: the relational subsystem's image
    computation and the dynamic-reordering invariants are checked
    against machines with no hand-designed structure.  The same seed
    always produces the same netlist.
    """
    rng = random.Random(seed)
    netlist = Netlist(f"{name}{seed}")
    readable: List[str] = []
    for i in range(num_inputs):
        netlist.add_input(f"in{i}")
        readable.append(f"in{i}")
    for i in range(num_latches):
        netlist.add_latch(f"state{i}", f"state{i}_next", reset_value=rng.random() < 0.5)
        readable.append(f"state{i}")
    gates: List[str] = []
    for i in range(num_gates):
        net = f"g{i}"
        kind = rng.choice(["AND", "OR", "XOR", "XNOR", "NOT", "BUF"])
        arity = 1 if kind in ("NOT", "BUF") else 2
        netlist.add_gate(net, kind, [rng.choice(readable) for _ in range(arity)])
        readable.append(net)
        gates.append(net)
    for i in range(num_latches):
        netlist.add_gate(f"state{i}_next", "BUF", [rng.choice(gates)])
    outputs = rng.sample(gates, k=min(2, len(gates)))
    netlist.set_outputs(outputs)
    return netlist


def toggle_machine(name: str = "toggle") -> Netlist:
    """A machine whose single output toggles whenever the input is 1."""
    netlist = Netlist(name)
    netlist.add_input("enable")
    netlist.add_latch("state", "state_next", reset_value=False)
    netlist.add_gate("state_next", "XOR", ["state", "enable"])
    netlist.set_outputs(["state"])
    return netlist


def serial_accumulator(name: str = "serial_accumulator", stages: int = 6) -> Netlist:
    """The Figure-2 style serial implementation skeleton.

    A controller sequences through ``stages`` states; the single data
    latch accumulates the XOR of the sampled inputs taken in state 0.
    The output is only meaningful in the last state, so the machine is
    in beta-relation with a purely combinational specification that
    produces a result every cycle.
    """
    netlist = Netlist(name)
    netlist.add_input("x")
    # One-hot controller over `stages` states.
    for i in range(stages):
        netlist.add_latch(f"ctrl{i}", f"ctrl{i}_next", reset_value=(i == 0))
    for i in range(stages):
        previous = (i - 1) % stages
        netlist.add_gate(f"ctrl{i}_next", "BUF", [f"ctrl{previous}"])
    # Data path: sample x in state 0, hold otherwise.
    netlist.add_latch("acc", "acc_next", reset_value=False)
    netlist.add_gate("sampled", "AND", ["x", "ctrl0"])
    netlist.add_gate("acc_next", "XOR", ["acc", "sampled"])
    netlist.add_gate("valid", "BUF", [f"ctrl{stages - 1}"])
    netlist.set_outputs(["acc", "valid"])
    return netlist
