"""Primitive gate library for the netlist substrate.

The paper's designs are synthesised with BDSYN into ``slif`` netlists of
simple gates and latches before being handed to the verifier inside
``sis``.  This module defines the gate types of our equivalent netlist
representation together with their concrete (Python ``bool``) and
symbolic (BDD) evaluation semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..bdd import BDDManager, BDDNode

#: Concrete evaluation functions for every supported gate type.
CONCRETE_SEMANTICS: Dict[str, Callable[[Sequence[bool]], bool]] = {
    "AND": lambda inputs: all(inputs),
    "OR": lambda inputs: any(inputs),
    "NOT": lambda inputs: not inputs[0],
    "NAND": lambda inputs: not all(inputs),
    "NOR": lambda inputs: not any(inputs),
    "XOR": lambda inputs: sum(map(bool, inputs)) % 2 == 1,
    "XNOR": lambda inputs: sum(map(bool, inputs)) % 2 == 0,
    "BUF": lambda inputs: bool(inputs[0]),
    "MUX": lambda inputs: bool(inputs[2]) if inputs[0] else bool(inputs[1]),
    "CONST0": lambda inputs: False,
    "CONST1": lambda inputs: True,
}

#: Required input counts per gate type; ``None`` means variadic (>= 1).
INPUT_ARITY: Dict[str, int] = {
    "NOT": 1,
    "BUF": 1,
    "MUX": 3,
    "CONST0": 0,
    "CONST1": 0,
}

GATE_TYPES = tuple(CONCRETE_SEMANTICS)


def validate_gate(gate_type: str, num_inputs: int) -> None:
    """Raise ``ValueError`` for an unknown gate type or a bad arity."""
    if gate_type not in CONCRETE_SEMANTICS:
        raise ValueError(f"unknown gate type {gate_type!r}")
    required = INPUT_ARITY.get(gate_type)
    if required is not None:
        if num_inputs != required:
            raise ValueError(f"{gate_type} expects {required} inputs, got {num_inputs}")
    elif num_inputs < 1:
        raise ValueError(f"{gate_type} expects at least one input")


def evaluate_gate(gate_type: str, inputs: Sequence[bool]) -> bool:
    """Concrete evaluation of a gate."""
    return CONCRETE_SEMANTICS[gate_type](inputs)


def symbolic_gate(manager: BDDManager, gate_type: str, inputs: Sequence[BDDNode]) -> BDDNode:
    """Symbolic (BDD) evaluation of a gate.

    The MUX convention matches the concrete one: ``inputs[0]`` is the
    select, ``inputs[1]`` the value when the select is 0 and
    ``inputs[2]`` the value when it is 1.
    """
    if gate_type == "AND":
        return manager.conjoin(inputs)
    if gate_type == "OR":
        return manager.disjoin(inputs)
    if gate_type == "NOT":
        return manager.apply_not(inputs[0])
    if gate_type == "NAND":
        return manager.apply_not(manager.conjoin(inputs))
    if gate_type == "NOR":
        return manager.apply_not(manager.disjoin(inputs))
    if gate_type == "XOR":
        result = manager.zero
        for node in inputs:
            result = manager.apply_xor(result, node)
        return result
    if gate_type == "XNOR":
        result = manager.zero
        for node in inputs:
            result = manager.apply_xor(result, node)
        return manager.apply_not(result)
    if gate_type == "BUF":
        return inputs[0]
    if gate_type == "MUX":
        return manager.ite(inputs[0], inputs[2], inputs[1])
    if gate_type == "CONST0":
        return manager.zero
    if gate_type == "CONST1":
        return manager.one
    raise ValueError(f"unknown gate type {gate_type!r}")
