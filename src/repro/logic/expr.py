"""Behavioural Boolean expression DSL (the "BDS" analogue).

The paper's machine descriptions are written in BDS, a small behavioural
language, and synthesised into gate netlists with BDSYN.  This module
provides the equivalent front end of this reproduction: an expression
AST over named signals that can be

* evaluated concretely,
* elaborated into gates of a :class:`~repro.logic.netlist.Netlist`
  (the "synthesis" step), or
* elaborated directly into BDDs.

Only single-bit expressions live here; word-level design entry uses
:class:`~repro.logic.bitvec.BitVec`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Mapping, Tuple

from ..bdd import BDDManager, BDDNode
from .netlist import Netlist


class Expr:
    """Base class of all Boolean expressions."""

    def __and__(self, other: "Expr") -> "Expr":
        return Op("AND", (self, _coerce(other)))

    def __or__(self, other: "Expr") -> "Expr":
        return Op("OR", (self, _coerce(other)))

    def __xor__(self, other: "Expr") -> "Expr":
        return Op("XOR", (self, _coerce(other)))

    def __invert__(self) -> "Expr":
        return Op("NOT", (self,))

    def iff(self, other: "Expr") -> "Expr":
        """Logical equivalence."""
        return Op("XNOR", (self, _coerce(other)))

    def implies(self, other: "Expr") -> "Expr":
        """Logical implication."""
        return Op("OR", (Op("NOT", (self,)), _coerce(other)))

    # Evaluation --------------------------------------------------------
    def evaluate(self, environment: Mapping[str, bool]) -> bool:
        """Concrete evaluation under an assignment to signal names."""
        raise NotImplementedError

    def signals(self) -> Tuple[str, ...]:
        """Names of the signals the expression reads, sorted."""
        collected: Dict[str, None] = {}
        self._collect_signals(collected)
        return tuple(sorted(collected))

    def _collect_signals(self, into: Dict[str, None]) -> None:
        raise NotImplementedError

    # Elaboration -------------------------------------------------------
    def to_bdd(self, manager: BDDManager) -> BDDNode:
        """Build the BDD of the expression (signals become variables)."""
        raise NotImplementedError

    def synthesize(self, netlist: Netlist, counter=None) -> str:
        """Add gates computing this expression to ``netlist``.

        Signals that are not yet driven in the netlist are declared as
        primary inputs.  Returns the name of the net carrying the result.
        """
        if counter is None:
            counter = itertools.count()
        return self._synthesize(netlist, counter)

    def _synthesize(self, netlist: Netlist, counter) -> str:
        raise NotImplementedError


def _coerce(value) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool) or value in (0, 1):
        return Const(bool(value))
    raise TypeError(f"cannot use {value!r} in a Boolean expression")


class Signal(Expr):
    """A named single-bit signal (primary input or state bit)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, environment: Mapping[str, bool]) -> bool:
        return bool(environment[self.name])

    def _collect_signals(self, into: Dict[str, None]) -> None:
        into.setdefault(self.name, None)

    def to_bdd(self, manager: BDDManager) -> BDDNode:
        return manager.var(self.name)

    def _synthesize(self, netlist: Netlist, counter) -> str:
        already_driven = (
            self.name in netlist.primary_inputs
            or any(g.output == self.name for g in netlist.gates)
            or any(l.output == self.name for l in netlist.latches)
        )
        if not already_driven:
            netlist.add_input(self.name)
        return self.name

    def __repr__(self) -> str:  # pragma: no cover
        return f"Signal({self.name!r})"


class Const(Expr):
    """A Boolean constant."""

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def evaluate(self, environment: Mapping[str, bool]) -> bool:
        return self.value

    def _collect_signals(self, into: Dict[str, None]) -> None:
        return None

    def to_bdd(self, manager: BDDManager) -> BDDNode:
        return manager.constant(self.value)

    def _synthesize(self, netlist: Netlist, counter) -> str:
        net = f"_const{1 if self.value else 0}_{next(counter)}"
        netlist.add_gate(net, "CONST1" if self.value else "CONST0", [])
        return net

    def __repr__(self) -> str:  # pragma: no cover
        return f"Const({self.value})"


class Op(Expr):
    """An operator node (AND, OR, XOR, XNOR, NOT, MUX)."""

    def __init__(self, op: str, operands: Tuple[Expr, ...]) -> None:
        self.op = op
        self.operands = operands

    def evaluate(self, environment: Mapping[str, bool]) -> bool:
        values = [operand.evaluate(environment) for operand in self.operands]
        if self.op == "AND":
            return all(values)
        if self.op == "OR":
            return any(values)
        if self.op == "XOR":
            return (values[0] != values[1])
        if self.op == "XNOR":
            return (values[0] == values[1])
        if self.op == "NOT":
            return not values[0]
        if self.op == "MUX":
            select, when_false, when_true = values
            return when_true if select else when_false
        raise ValueError(f"unknown operator {self.op!r}")

    def _collect_signals(self, into: Dict[str, None]) -> None:
        for operand in self.operands:
            operand._collect_signals(into)

    def to_bdd(self, manager: BDDManager) -> BDDNode:
        nodes = [operand.to_bdd(manager) for operand in self.operands]
        if self.op == "AND":
            return manager.conjoin(nodes)
        if self.op == "OR":
            return manager.disjoin(nodes)
        if self.op == "XOR":
            return manager.apply_xor(nodes[0], nodes[1])
        if self.op == "XNOR":
            return manager.apply_xnor(nodes[0], nodes[1])
        if self.op == "NOT":
            return manager.apply_not(nodes[0])
        if self.op == "MUX":
            return manager.ite(nodes[0], nodes[2], nodes[1])
        raise ValueError(f"unknown operator {self.op!r}")

    def _synthesize(self, netlist: Netlist, counter) -> str:
        nets = [operand._synthesize(netlist, counter) for operand in self.operands]
        output = f"_n{next(counter)}"
        netlist.add_gate(output, self.op, nets)
        return output

    def __repr__(self) -> str:  # pragma: no cover
        return f"Op({self.op}, {self.operands!r})"


def mux(select: Expr, when_true: Expr, when_false: Expr) -> Expr:
    """If-then-else on single-bit expressions."""
    return Op("MUX", (_coerce(select), _coerce(when_false), _coerce(when_true)))


def signals(*names: str) -> Tuple[Signal, ...]:
    """Convenience constructor for several signals at once."""
    return tuple(Signal(name) for name in names)
