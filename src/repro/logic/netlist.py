"""Gate-level sequential netlists (the ``slif`` analogue).

A :class:`Netlist` is a synchronous circuit made of primary inputs,
combinational gates and latches (D flip-flops with reset values).  It
supports:

* concrete cycle-by-cycle simulation,
* extraction of BDDs for every output and next-state function,
* conversion to a symbolic FSM (see :mod:`repro.fsm.machine`),
* structural statistics used in benchmark reports.

The FSM verification substrate (Chapter 3 of the paper) operates on
netlists; the processor models use the higher-level
:class:`~repro.logic.bitvec.BitVec` layer directly, mirroring how the
paper treats datapaths versus control examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..bdd import BDDManager, BDDNode
from .gates import evaluate_gate, symbolic_gate, validate_gate


class NetlistError(ValueError):
    """Raised for structural errors in a netlist."""


@dataclass
class Gate:
    """A combinational gate driving a single net."""

    output: str
    gate_type: str
    inputs: Tuple[str, ...]


@dataclass
class Latch:
    """A D flip-flop: ``output`` takes the value of ``data`` at each clock."""

    output: str
    data: str
    reset_value: bool = False


class Netlist:
    """A synchronous gate-level netlist."""

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self.gates: List[Gate] = []
        self.latches: List[Latch] = []
        self._drivers: Dict[str, Gate] = {}
        self._latch_outputs: Dict[str, Latch] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input net."""
        if name in self.primary_inputs:
            return name
        self._check_undriven(name)
        self.primary_inputs.append(name)
        return name

    def add_gate(self, output: str, gate_type: str, inputs: Sequence[str]) -> str:
        """Add a combinational gate driving the net ``output``."""
        validate_gate(gate_type, len(inputs))
        self._check_undriven(output)
        gate = Gate(output=output, gate_type=gate_type, inputs=tuple(inputs))
        self.gates.append(gate)
        self._drivers[output] = gate
        return output

    def add_latch(self, output: str, data: str, reset_value: bool = False) -> str:
        """Add a latch whose state net is ``output`` and data input is ``data``."""
        self._check_undriven(output)
        latch = Latch(output=output, data=data, reset_value=reset_value)
        self.latches.append(latch)
        self._latch_outputs[output] = latch
        return output

    def set_outputs(self, names: Iterable[str]) -> None:
        """Declare the primary outputs of the circuit."""
        self.primary_outputs = list(names)

    def _check_undriven(self, name: str) -> None:
        if name in self._drivers or name in self._latch_outputs or name in self.primary_inputs:
            raise NetlistError(f"net {name!r} already has a driver")

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def state_nets(self) -> List[str]:
        """Names of the latch output nets (the state variables)."""
        return [latch.output for latch in self.latches]

    def net_names(self) -> List[str]:
        """All net names in the design."""
        names = list(self.primary_inputs)
        names.extend(latch.output for latch in self.latches)
        names.extend(gate.output for gate in self.gates)
        return names

    def gate_count(self) -> int:
        """Number of combinational gates."""
        return len(self.gates)

    def latch_count(self) -> int:
        """Number of latches."""
        return len(self.latches)

    def validate(self) -> None:
        """Check that every referenced net has a driver and no combinational cycles exist."""
        known = set(self.primary_inputs) | set(self._latch_outputs) | set(self._drivers)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in known:
                    raise NetlistError(f"gate {gate.output!r} reads undriven net {net!r}")
        for latch in self.latches:
            if latch.data not in known:
                raise NetlistError(f"latch {latch.output!r} reads undriven net {latch.data!r}")
        for net in self.primary_outputs:
            if net not in known:
                raise NetlistError(f"primary output {net!r} is undriven")
        self._topological_gate_order()

    def _topological_gate_order(self) -> List[Gate]:
        """Gates in dependency order; raises on combinational cycles."""
        order: List[Gate] = []
        visiting: Dict[str, int] = {}  # 1 = in progress, 2 = done

        def visit(net: str) -> None:
            if net in self.primary_inputs or net in self._latch_outputs:
                return
            gate = self._drivers.get(net)
            if gate is None:
                return
            state = visiting.get(net, 0)
            if state == 2:
                return
            if state == 1:
                raise NetlistError(f"combinational cycle through net {net!r}")
            visiting[net] = 1
            for source in gate.inputs:
                visit(source)
            visiting[net] = 2
            order.append(gate)

        for gate in self.gates:
            visit(gate.output)
        return order

    # ------------------------------------------------------------------
    # Concrete simulation
    # ------------------------------------------------------------------
    def reset_state(self) -> Dict[str, bool]:
        """Initial latch values."""
        return {latch.output: bool(latch.reset_value) for latch in self.latches}

    def evaluate_combinational(
        self, inputs: Mapping[str, bool], state: Mapping[str, bool]
    ) -> Dict[str, bool]:
        """Values of every net given primary inputs and the current state."""
        values: Dict[str, bool] = {}
        for name in self.primary_inputs:
            if name not in inputs:
                raise NetlistError(f"missing value for primary input {name!r}")
            values[name] = bool(inputs[name])
        for latch in self.latches:
            values[latch.output] = bool(state[latch.output])
        for gate in self._topological_gate_order():
            values[gate.output] = evaluate_gate(
                gate.gate_type, [values[net] for net in gate.inputs]
            )
        return values

    def step(
        self, inputs: Mapping[str, bool], state: Mapping[str, bool]
    ) -> Tuple[Dict[str, bool], Dict[str, bool]]:
        """One clock cycle: returns ``(outputs, next_state)``."""
        values = self.evaluate_combinational(inputs, state)
        outputs = {name: values[name] for name in self.primary_outputs}
        next_state = {latch.output: values[latch.data] for latch in self.latches}
        return outputs, next_state

    def simulate(
        self, input_sequence: Sequence[Mapping[str, bool]], state: Optional[Mapping[str, bool]] = None
    ) -> List[Dict[str, bool]]:
        """Simulate a sequence of input vectors from reset (or ``state``)."""
        current = dict(state) if state is not None else self.reset_state()
        trace: List[Dict[str, bool]] = []
        for inputs in input_sequence:
            outputs, current = self.step(inputs, current)
            trace.append(outputs)
        return trace

    # ------------------------------------------------------------------
    # Symbolic extraction
    # ------------------------------------------------------------------
    def build_bdds(
        self, manager: BDDManager, prefix: str = ""
    ) -> Tuple[Dict[str, BDDNode], Dict[str, BDDNode]]:
        """BDDs of the primary outputs and of every latch's next-state function.

        Primary inputs and latch outputs become BDD variables named
        ``prefix + net``.  Returns ``(output_functions, next_state_functions)``,
        both keyed by un-prefixed net name.
        """
        values: Dict[str, BDDNode] = {}
        for name in self.primary_inputs:
            values[name] = manager.var(prefix + name)
        for latch in self.latches:
            values[latch.output] = manager.var(prefix + latch.output)
        for gate in self._topological_gate_order():
            values[gate.output] = symbolic_gate(
                manager, gate.gate_type, [values[net] for net in gate.inputs]
            )
        outputs = {name: values[name] for name in self.primary_outputs}
        next_state = {latch.output: values[latch.data] for latch in self.latches}
        return outputs, next_state

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, int]:
        """Structural statistics (inputs, outputs, gates, latches)."""
        return {
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
            "gates": len(self.gates),
            "latches": len(self.latches),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.statistics()
        return (
            f"<Netlist {self.name!r} inputs={stats['primary_inputs']} "
            f"outputs={stats['primary_outputs']} gates={stats['gates']} "
            f"latches={stats['latches']}>"
        )
