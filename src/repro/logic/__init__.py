"""Word-level and gate-level logic substrates.

* :mod:`repro.logic.bitvec` — symbolic bit-vectors over BDDs (the word-level
  design-entry layer used by the processor models).
* :mod:`repro.logic.expr` — single-bit behavioural expressions (the "BDS"
  analogue) that synthesise to gates or BDDs.
* :mod:`repro.logic.netlist` / :mod:`repro.logic.gates` — sequential
  gate-level netlists (the "slif" analogue) with concrete simulation and
  BDD extraction.
* :mod:`repro.logic.generators` — parametric circuits used in tests and
  benchmarks (counters, shift registers, adders, the Figure-2 serial
  datapath).
"""

from .bitvec import BitVec
from .expr import Const, Expr, Op, Signal, mux, signals
from .gates import GATE_TYPES, evaluate_gate, symbolic_gate, validate_gate
from .netlist import Gate, Latch, Netlist, NetlistError
from .generators import (
    counter,
    equality_comparator,
    parity_shift_register,
    random_netlist,
    ripple_adder,
    serial_accumulator,
    shift_register,
    toggle_machine,
)

__all__ = [
    "BitVec",
    "Const",
    "Expr",
    "GATE_TYPES",
    "Gate",
    "Latch",
    "Netlist",
    "NetlistError",
    "Op",
    "Signal",
    "counter",
    "equality_comparator",
    "evaluate_gate",
    "mux",
    "parity_shift_register",
    "random_netlist",
    "ripple_adder",
    "serial_accumulator",
    "shift_register",
    "signals",
    "symbolic_gate",
    "toggle_machine",
    "validate_gate",
]
