"""Symbolic bit-vectors over BDDs.

The paper enters designs in BDS (a word-level behavioural language) and
synthesises them to bit-level logic with BDSYN.  In this reproduction
the same role is played by :class:`BitVec`: a fixed-width little-endian
vector of BDD functions with the usual word-level operators (addition,
subtraction, comparisons, shifts, multiplexing, concatenation).  The
symbolic processor models in :mod:`repro.processors` are written
entirely in terms of ``BitVec`` operations, which elaborate directly to
BDDs managed by a single :class:`~repro.bdd.BDDManager`.

All operators are purely combinational and side-effect free; registers
and sequencing live in the symbolic simulator, not here.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

from ..bdd import BDDManager, BDDNode, bit_names, bits_to_int

IntOrVec = Union[int, "BitVec"]


class BitVec:
    """A fixed-width vector of Boolean functions (bit 0 = LSB)."""

    __slots__ = ("manager", "bits")

    def __init__(self, manager: BDDManager, bits: Sequence[BDDNode]) -> None:
        self.manager = manager
        self.bits = list(bits)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, manager: BDDManager, value: int, width: int) -> "BitVec":
        """A constant bit-vector of the given width."""
        masked = value & ((1 << width) - 1)
        return cls(manager, [manager.constant(bool((masked >> i) & 1)) for i in range(width)])

    @classmethod
    def inputs(cls, manager: BDDManager, prefix: str, width: int) -> "BitVec":
        """Fresh symbolic input variables named ``prefix[i]``."""
        return cls(manager, [manager.var(name) for name in bit_names(prefix, width)])

    @classmethod
    def from_bits(cls, manager: BDDManager, bits: Sequence[BDDNode]) -> "BitVec":
        """Wrap an existing list of BDD functions."""
        return cls(manager, bits)

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of bits."""
        return len(self.bits)

    def __len__(self) -> int:
        return len(self.bits)

    def __getitem__(self, index) -> Union[BDDNode, "BitVec"]:
        if isinstance(index, slice):
            return BitVec(self.manager, self.bits[index])
        return self.bits[index]

    def slice(self, low: int, high: int) -> "BitVec":
        """Bits ``low`` .. ``high`` inclusive (like a Verilog part-select)."""
        if low < 0 or high >= self.width or low > high:
            raise IndexError(f"slice [{high}:{low}] out of range for width {self.width}")
        return BitVec(self.manager, self.bits[low : high + 1])

    def concat(self, upper: "BitVec") -> "BitVec":
        """Concatenate ``upper`` above self (self keeps the low bits)."""
        return BitVec(self.manager, self.bits + upper.bits)

    def zero_extend(self, width: int) -> "BitVec":
        """Zero-extend to ``width`` bits (no-op if already wide enough)."""
        if width < self.width:
            raise ValueError("cannot zero-extend to a smaller width")
        extra = [self.manager.zero] * (width - self.width)
        return BitVec(self.manager, self.bits + extra)

    def sign_extend(self, width: int) -> "BitVec":
        """Sign-extend to ``width`` bits using the current MSB."""
        if width < self.width:
            raise ValueError("cannot sign-extend to a smaller width")
        if not self.bits:
            return BitVec(self.manager, [self.manager.zero] * width)
        extra = [self.bits[-1]] * (width - self.width)
        return BitVec(self.manager, self.bits + extra)

    def truncate(self, width: int) -> "BitVec":
        """Keep only the ``width`` least significant bits."""
        return BitVec(self.manager, self.bits[:width])

    def resize(self, width: int) -> "BitVec":
        """Zero-extend or truncate to exactly ``width`` bits."""
        if width <= self.width:
            return self.truncate(width)
        return self.zero_extend(width)

    # ------------------------------------------------------------------
    # Bitwise logic
    # ------------------------------------------------------------------
    def _coerce(self, other: IntOrVec) -> "BitVec":
        if isinstance(other, BitVec):
            if other.width != self.width:
                raise ValueError(f"width mismatch: {self.width} vs {other.width}")
            return other
        return BitVec.constant(self.manager, other, self.width)

    def __invert__(self) -> "BitVec":
        return BitVec(self.manager, [self.manager.apply_not(bit) for bit in self.bits])

    def __and__(self, other: IntOrVec) -> "BitVec":
        rhs = self._coerce(other)
        return BitVec(
            self.manager,
            [self.manager.apply_and(a, b) for a, b in zip(self.bits, rhs.bits)],
        )

    def __or__(self, other: IntOrVec) -> "BitVec":
        rhs = self._coerce(other)
        return BitVec(
            self.manager,
            [self.manager.apply_or(a, b) for a, b in zip(self.bits, rhs.bits)],
        )

    def __xor__(self, other: IntOrVec) -> "BitVec":
        rhs = self._coerce(other)
        return BitVec(
            self.manager,
            [self.manager.apply_xor(a, b) for a, b in zip(self.bits, rhs.bits)],
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def add(self, other: IntOrVec, carry_in: Optional[BDDNode] = None) -> "BitVec":
        """Modular addition (result has the same width as the operands)."""
        rhs = self._coerce(other)
        manager = self.manager
        carry = carry_in if carry_in is not None else manager.zero
        out: List[BDDNode] = []
        for a, b in zip(self.bits, rhs.bits):
            partial = manager.apply_xor(a, b)
            out.append(manager.apply_xor(partial, carry))
            carry = manager.apply_or(
                manager.apply_and(a, b), manager.apply_and(carry, partial)
            )
        return BitVec(manager, out)

    def __add__(self, other: IntOrVec) -> "BitVec":
        return self.add(other)

    def negate(self) -> "BitVec":
        """Two's-complement negation."""
        return (~self).add(BitVec.constant(self.manager, 1, self.width))

    def sub(self, other: IntOrVec) -> "BitVec":
        """Modular subtraction: ``self - other``."""
        rhs = self._coerce(other)
        return self.add(~rhs, carry_in=self.manager.one)

    def __sub__(self, other: IntOrVec) -> "BitVec":
        return self.sub(other)

    # ------------------------------------------------------------------
    # Comparisons (all return a single BDD function)
    # ------------------------------------------------------------------
    def eq(self, other: IntOrVec) -> BDDNode:
        """Equality comparison."""
        rhs = self._coerce(other)
        manager = self.manager
        result = manager.one
        for a, b in zip(self.bits, rhs.bits):
            result = manager.apply_and(result, manager.apply_xnor(a, b))
        return result

    def ne(self, other: IntOrVec) -> BDDNode:
        """Inequality comparison."""
        return self.manager.apply_not(self.eq(other))

    def ult(self, other: IntOrVec) -> BDDNode:
        """Unsigned less-than."""
        rhs = self._coerce(other)
        manager = self.manager
        result = manager.zero
        # Scan from LSB to MSB so higher bits dominate.
        for a, b in zip(self.bits, rhs.bits):
            a_lt_b = manager.apply_and(manager.apply_not(a), b)
            a_eq_b = manager.apply_xnor(a, b)
            result = manager.apply_or(a_lt_b, manager.apply_and(a_eq_b, result))
        return result

    def ule(self, other: IntOrVec) -> BDDNode:
        """Unsigned less-or-equal."""
        rhs = self._coerce(other)
        return self.manager.apply_or(self.ult(rhs), self.eq(rhs))

    def slt(self, other: IntOrVec) -> BDDNode:
        """Signed (two's complement) less-than."""
        rhs = self._coerce(other)
        manager = self.manager
        if not self.bits:
            return manager.zero
        sign_a, sign_b = self.bits[-1], rhs.bits[-1]
        signs_differ = manager.apply_xor(sign_a, sign_b)
        # If signs differ, a < b iff a is negative.
        return manager.ite(signs_differ, sign_a, self.ult(rhs))

    def sle(self, other: IntOrVec) -> BDDNode:
        """Signed less-or-equal."""
        rhs = self._coerce(other)
        return self.manager.apply_or(self.slt(rhs), self.eq(rhs))

    def is_zero(self) -> BDDNode:
        """Function that is 1 exactly when the vector is all-zero."""
        manager = self.manager
        any_bit = manager.disjoin(self.bits)
        return manager.apply_not(any_bit)

    def is_nonzero(self) -> BDDNode:
        """Function that is 1 exactly when at least one bit is 1."""
        return self.manager.disjoin(self.bits)

    def reduce_and(self) -> BDDNode:
        """AND of all bits."""
        return self.manager.conjoin(self.bits)

    def reduce_xor(self) -> BDDNode:
        """XOR (parity) of all bits."""
        result = self.manager.zero
        for bit in self.bits:
            result = self.manager.apply_xor(result, bit)
        return result

    # ------------------------------------------------------------------
    # Shifts
    # ------------------------------------------------------------------
    def shift_left_const(self, amount: int) -> "BitVec":
        """Logical left shift by a constant amount."""
        manager = self.manager
        amount = min(amount, self.width)
        bits = [manager.zero] * amount + self.bits[: self.width - amount]
        return BitVec(manager, bits)

    def shift_right_const(self, amount: int) -> "BitVec":
        """Logical right shift by a constant amount."""
        manager = self.manager
        amount = min(amount, self.width)
        bits = self.bits[amount:] + [manager.zero] * amount
        return BitVec(manager, bits)

    def shift_left(self, amount: "BitVec") -> "BitVec":
        """Logical left shift by a symbolic amount (barrel shifter)."""
        return self._barrel(amount, lambda vec, distance: vec.shift_left_const(distance))

    def shift_right(self, amount: "BitVec") -> "BitVec":
        """Logical right shift by a symbolic amount (barrel shifter)."""
        return self._barrel(amount, lambda vec, distance: vec.shift_right_const(distance))

    def _barrel(self, amount: "BitVec", shifter) -> "BitVec":
        result = self
        for stage, select in enumerate(amount.bits):
            distance = 1 << stage
            if distance >= self.width and stage > 0:
                # Shifting by >= width always yields zero when selected.
                shifted = BitVec.constant(self.manager, 0, self.width)
            else:
                shifted = shifter(result, distance)
            result = BitVec.mux(select, shifted, result)
        return result

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    @staticmethod
    def mux(select: BDDNode, when_true: "BitVec", when_false: "BitVec") -> "BitVec":
        """Two-way multiplexer on a single select function."""
        if when_true.width != when_false.width:
            raise ValueError("mux operands must have the same width")
        manager = when_true.manager
        return BitVec(
            manager,
            [manager.ite(select, t, f) for t, f in zip(when_true.bits, when_false.bits)],
        )

    @staticmethod
    def case(
        default: "BitVec", branches: Sequence[tuple]
    ) -> "BitVec":
        """Priority selector: the first branch whose condition holds wins.

        ``branches`` is a sequence of ``(condition, value)`` pairs, earliest
        having highest priority; ``default`` applies when none hold.
        """
        result = default
        for condition, value in reversed(list(branches)):
            result = BitVec.mux(condition, value, result)
        return result

    @staticmethod
    def select_word(index: "BitVec", words: Sequence["BitVec"]) -> "BitVec":
        """Select ``words[index]`` symbolically (used for register files)."""
        if not words:
            raise ValueError("select_word needs at least one word")
        manager = index.manager
        result = BitVec.constant(manager, 0, words[0].width)
        for position, word in enumerate(words):
            matches = index.eq(position)
            result = BitVec.mux(matches, word, result)
        return result

    # ------------------------------------------------------------------
    # Evaluation / restriction
    # ------------------------------------------------------------------
    def restrict(self, assignment: Mapping[str, bool]) -> "BitVec":
        """Cofactor every bit by the same assignment."""
        return BitVec(self.manager, [self.manager.restrict(bit, assignment) for bit in self.bits])

    def compose(self, substitution: Mapping[str, BDDNode]) -> "BitVec":
        """Compose every bit with the same substitution."""
        return BitVec(self.manager, [self.manager.compose(bit, substitution) for bit in self.bits])

    def evaluate(self, assignment: Mapping[str, bool]) -> int:
        """Evaluate to an integer under a concrete assignment."""
        return bits_to_int([self.manager.evaluate(bit, assignment) for bit in self.bits])

    def as_constant(self) -> Optional[int]:
        """The integer value if every bit is constant, else ``None``."""
        value = 0
        for i, bit in enumerate(self.bits):
            if bit is self.manager.one:
                value |= 1 << i
            elif bit is not self.manager.zero:
                return None
        return value

    def identical(self, other: "BitVec") -> bool:
        """Canonical equality: every bit is the same BDD node."""
        return self.width == other.width and all(a is b for a, b in zip(self.bits, other.bits))

    def node_count(self) -> int:
        """Number of distinct BDD nodes in the shared DAG of all bits."""
        seen = set()

        def walk(node: BDDNode) -> None:
            if node.node_id in seen:
                return
            seen.add(node.node_id)
            if not node.is_terminal:
                walk(node.low)
                walk(node.high)

        for bit in self.bits:
            walk(bit)
        return len(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        constant = self.as_constant()
        if constant is not None:
            return f"BitVec(width={self.width}, value={constant})"
        return f"BitVec(width={self.width}, symbolic)"
