"""Deterministic, seeded fault injection for the campaign engine.

The engine's resilience machinery — supervised retries, worker respawn,
store quarantine, checkpoint/resume — is failure-handling code, and
failure-handling code that is never exercised rots silently.  This
module makes failures *first-class test inputs*: a :class:`FaultPlan`
describes, as a pure function of ``(seed, site, invocation_index)``,
exactly which invocations of which engine seams fail and how, so a
campaign run under an injected fault schedule is as reproducible as a
fault-free one.  The standing invariant the differential suite pins:
under **any** plan whose per-site fire budgets are finite, the
campaign report's verdicts are byte-identical to the fault-free run —
faults cause retries and recomputes, never wrong answers.

Design rules (mirroring :mod:`repro.telemetry`):

1. **Off means free.**  Injection is disabled by default; the engine's
   seams call :func:`fire` / :func:`mangle` unconditionally, and the
   disabled path is one module-global read returning immediately — no
   plan lookup, no lock, no allocation.
2. **Deterministic.**  Whether invocation ``index`` of ``site`` fires
   is ``hash(seed, site, index)`` against the site's rate, unioned with
   an explicit ``at`` index set — the same decision in every process
   and on every platform (the hash is SHA-256, not Python's salted
   ``hash``).  Per-site budgets (``max_fires``) make every plan
   quiescent: after the budget is spent the site never fires again in
   that process, which is what lets bounded retries drain any schedule.
3. **Faults are exceptions (or process actions), never wrong data on
   the success path.**  An ``io`` fault raises
   :class:`InjectedIOError` (an ``OSError``, so the store's existing
   total read paths degrade to a miss); a ``corrupt`` fault mangles the
   bytes a reader is about to parse (exercising the corrupt-record +
   quarantine path); ``error`` raises :class:`InjectedError` into the
   scenario isolation; ``interrupt`` raises ``KeyboardInterrupt`` (the
   checkpoint tests' mid-campaign kill); ``crash`` hard-exits the
   worker process; ``hang`` sleeps past the supervisor's soft timeout.

Site catalog (the engine seams that are wrapped):

====================  =====================================================
``store.read.results``     result-record read I/O (``io``)
``store.read.snapshots``   snapshot-record read I/O (``io``)
``store.write.results``    result-record publish (``io``)
``store.write.snapshots``  snapshot-record publish (``io``)
``store.corrupt.results``  result bytes mangled before parse (``corrupt``)
``store.corrupt.snapshots`` snapshot bytes mangled before parse (``corrupt``)
``scenario.run``           scenario execution raises (``error``/``interrupt``)
``worker.crash``           affinity worker hard-exits (``crash``);
                           invocation index = worker id
``worker.hang``            affinity worker sleeps (``hang``);
                           invocation index = worker id
====================  =====================================================
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from threading import Lock
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedError",
    "InjectedFault",
    "InjectedIOError",
    "active",
    "config_state",
    "configure",
    "fire",
    "get_injector",
    "mangle",
    "statistics",
]

#: Fault kinds a site can be scheduled with.
FAULT_KINDS = ("io", "corrupt", "error", "interrupt", "crash", "hang")

#: The seams the engine wraps (see module docstring).
FAULT_SITES = (
    "store.read.results",
    "store.read.snapshots",
    "store.write.results",
    "store.write.snapshots",
    "store.corrupt.results",
    "store.corrupt.snapshots",
    "scenario.run",
    "worker.crash",
    "worker.hang",
)

#: Exit code of an injected worker crash (distinguishable from real
#: failures in process-status forensics).
CRASH_EXIT_CODE = 47


class InjectedFault(Exception):
    """Marker base of every injected failure (supervision retries these)."""


class InjectedIOError(InjectedFault, OSError):
    """An injected storage I/O failure (caught wherever OSError is)."""


class InjectedError(InjectedFault):
    """An injected scenario-level exception (transient by construction)."""


@dataclass(frozen=True)
class FaultSpec:
    """Schedule of one fault site.

    ``rate`` fires probabilistically (decided by the plan's seeded hash,
    not a live RNG); ``at`` fires at explicit invocation indices; the
    two are unioned.  ``max_fires`` bounds total fires per process so
    every plan is quiescent.  ``payload`` parameterises the kind
    (``hang`` sleep seconds; ignored elsewhere).
    """

    kind: str = "io"
    rate: float = 0.0
    at: Tuple[int, ...] = ()
    max_fires: int = 1
    payload: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; valid: {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be a probability in [0, 1]")
        if self.max_fires < 0:
            raise ValueError("max_fires must be >= 0")
        object.__setattr__(self, "at", tuple(sorted(set(int(i) for i in self.at))))

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "at": list(self.at),
            "max_fires": self.max_fires,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        return cls(
            kind=payload.get("kind", "io"),
            rate=payload.get("rate", 0.0),
            at=tuple(payload.get("at", ())),
            max_fires=payload.get("max_fires", 1),
            payload=payload.get("payload", 0.0),
        )


def _decision_hash(seed: int, site: str, index: int) -> float:
    """A uniform [0, 1) value that is a pure function of its arguments.

    SHA-256 rather than ``random.Random``: one hash per decision keeps
    the per-invocation cost flat (no stream state), and the value is
    identical across processes, platforms and Python versions.
    """
    blob = f"{seed}:{site}:{index}".encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic per-campaign fault schedule.

    ``should_fire(site, index)`` is a pure function of
    ``(seed, site, index)`` — no injector state enters the decision
    (budgets are enforced by the :class:`FaultInjector`, which tracks
    how many decisions have actually fired in its process).
    """

    seed: int = 0
    sites: Dict[str, FaultSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for site, spec in self.sites.items():
            if site not in FAULT_SITES:
                raise ValueError(f"unknown fault site {site!r}; valid: {FAULT_SITES}")
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"site {site!r} needs a FaultSpec, got {type(spec).__name__}")

    def should_fire(self, site: str, index: int) -> bool:
        spec = self.sites.get(site)
        if spec is None:
            return False
        if index in spec.at:
            return True
        if spec.rate <= 0.0:
            return False
        return _decision_hash(self.seed, site, index) < spec.rate

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "sites": {site: spec.to_dict() for site, spec in sorted(self.sites.items())},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        return cls(
            seed=payload.get("seed", 0),
            sites={
                site: FaultSpec.from_dict(spec)
                for site, spec in payload.get("sites", {}).items()
            },
        )


class FaultInjector:
    """Executes a :class:`FaultPlan` against the engine's seams.

    Tracks per-site invocation indices and fire counts (thread-safe:
    the serial runner and any embedding daemon may hit the store from
    several threads).  The *decision* stays the plan's pure function;
    the injector only supplies the per-process invocation numbering and
    enforces the ``max_fires`` budget.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = Lock()
        self._invocations: Dict[str, int] = {}
        self._fires: Dict[str, int] = {}

    def _decide(self, site: str, index: Optional[int]) -> Tuple[bool, Optional[FaultSpec]]:
        spec = self.plan.sites.get(site)
        with self._lock:
            if index is None:
                index = self._invocations.get(site, 0)
                self._invocations[site] = index + 1
            if spec is None:
                return False, None
            if self._fires.get(site, 0) >= spec.max_fires:
                return False, spec
            if not self.plan.should_fire(site, index):
                return False, spec
            self._fires[site] = self._fires.get(site, 0) + 1
        return True, spec

    def fire(self, site: str, index: Optional[int] = None) -> None:
        """Count one invocation of ``site``; act if the plan fires.

        ``index`` overrides the per-process invocation counter (the
        worker seams key decisions by worker id so a respawned
        replacement — which gets a fresh id — does not inherit its
        predecessor's crash schedule).
        """
        fired, spec = self._decide(site, index)
        if not fired:
            return
        assert spec is not None
        if spec.kind == "io":
            raise InjectedIOError(f"injected I/O fault at {site}")
        if spec.kind == "error":
            raise InjectedError(f"injected fault at {site}")
        if spec.kind == "interrupt":
            raise KeyboardInterrupt(f"injected interrupt at {site}")
        if spec.kind == "crash":
            # A hard exit, not an exception: models a segfaulted/killed
            # worker. Nothing downstream (finally blocks, closing
            # records) runs — which is exactly the failure the parent's
            # respawn path must survive.
            os._exit(CRASH_EXIT_CODE)
        if spec.kind == "hang":
            time.sleep(spec.payload if spec.payload > 0 else 3600.0)
            return
        raise InjectedError(f"injected fault at {site} (kind {spec.kind!r})")

    def mangle(self, site: str, data: bytes, index: Optional[int] = None) -> bytes:
        """Return ``data``, corrupted when the plan fires at ``site``.

        The corruption is deterministic (truncate to half and flip the
        leading bytes) so a quarantined artefact is reproducible.
        """
        fired, _spec = self._decide(site, index)
        if not fired:
            return data
        keep = len(data) // 2
        mangled = bytearray(data[:keep] if keep else b"\x00")
        for position in range(min(4, len(mangled))):
            mangled[position] ^= 0xFF
        return bytes(mangled)

    def statistics(self) -> Dict[str, object]:
        """Per-site invocation/fire counts (measurement, not verdict)."""
        with self._lock:
            sites = {
                site: {
                    "invocations": self._invocations.get(site, 0),
                    "fires": self._fires.get(site, 0),
                }
                for site in sorted(set(self._invocations) | set(self._fires))
            }
        return {
            "seed": self.plan.seed,
            "fires": sum(record["fires"] for record in sites.values()),
            "sites": sites,
        }


# ----------------------------------------------------------------------
# Module-level switch (telemetry's NULL_SPAN pattern: off means free)
# ----------------------------------------------------------------------
#: The active injector, or ``None`` while injection is disabled.  A
#: plain module global: the disabled fast path is one load + ``is None``.
_INJECTOR: Optional[FaultInjector] = None


def get_injector() -> Optional[FaultInjector]:
    """The active injector (``None`` when injection is disabled)."""
    return _INJECTOR


def configure(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Install ``plan`` (fresh counters); ``None`` disables injection."""
    global _INJECTOR
    _INJECTOR = FaultInjector(plan) if plan is not None else None
    return _INJECTOR


def fire(site: str, index: Optional[int] = None) -> None:
    """Engine seam: maybe raise/act per the active plan (no-op when off)."""
    injector = _INJECTOR
    if injector is None:
        return
    injector.fire(site, index)


def mangle(site: str, data: bytes) -> bytes:
    """Engine seam: maybe corrupt ``data`` per the active plan."""
    injector = _INJECTOR
    if injector is None:
        return data
    return injector.mangle(site, data)


def statistics() -> Optional[Dict[str, object]]:
    """The active injector's per-site counts, or ``None`` when off."""
    injector = _INJECTOR
    if injector is None:
        return None
    return injector.statistics()


@contextmanager
def active(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultInjector]]:
    """Scope a plan to a ``with`` block, restoring the previous injector."""
    global _INJECTOR
    previous = _INJECTOR
    injector = configure(plan)
    try:
        yield injector
    finally:
        _INJECTOR = previous


def config_state() -> Optional[Dict[str, object]]:
    """Picklable injection configuration for parallel workers.

    Workers rebuild the plan with fresh per-process counters — fire
    budgets are per-process, and the worker seams key their decisions
    by worker id precisely so that stays deterministic.
    """
    injector = _INJECTOR
    if injector is None:
        return None
    return injector.plan.to_dict()


def configure_from_state(state: Optional[Dict[str, object]]) -> None:
    """Apply a :func:`config_state` dict in a worker process."""
    configure(FaultPlan.from_dict(state) if state else None)
