"""Campaign checkpoint journal: crash-consistent completion marks.

A :class:`CampaignJournal` is an append-only JSONL file recording which
scenarios of one campaign have *completed* — their verdict computed and
(when a store is attached) published.  An interrupted campaign resumed
against the same journal replays only unfinished work: the runner
serves journalled scenarios straight from the persistent result store
(whose content addressing guarantees the replayed verdicts are
byte-identical to what the interrupted run computed) and executes the
rest.  The journal is a *hint*, never an authority: if a journalled
scenario's store record is missing, stale or invalidated by a code
edit, the runner simply re-executes it — a lying or deleted journal can
cost recomputation, never a wrong verdict.

File format (one JSON object per line)::

    {"type": "campaign", "key": "<campaign key>", "total": 12}
    {"type": "done", "index": 0, "fingerprint": "<scenario fingerprint>"}
    ...

The header's ``key`` identifies the campaign (the runner derives it
from the ordered scenario fingerprints, see
:func:`repro.engine.scenario.campaign_fingerprint`); opening a journal
whose header disagrees with the requested key starts fresh — a journal
can never leak completion marks across different campaigns.  Marks are
appended and flushed one line at a time, so a campaign killed at any
instant leaves at worst one truncated final line, which :meth:`load`
skips — everything before it replays.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Set, Tuple, Union

__all__ = ["CampaignJournal"]


class CampaignJournal:
    """Append-only completion journal of one campaign (see module doc)."""

    def __init__(
        self,
        path: Union[str, Path],
        key: str,
        total: int,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.key = key
        self.total = total
        #: Whether every mark is fsynced (durability against power loss;
        #: off by default — the atomic store publish is the authority).
        self.fsync = fsync
        #: Completed scenario fingerprints replayable on resume.
        self.completed: Set[str] = set()
        #: Whether this journal resumed an existing compatible file.
        self.resumed = False
        self._handle = None
        self._load_or_start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _load_or_start(self) -> None:
        existing = self._read_compatible()
        if existing is not None:
            self.completed, valid_bytes = existing
            self.resumed = True
            # Drop any torn tail before appending: a line the writer
            # died inside must not have new marks glued onto it.
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
            self._handle = open(self.path, "a", encoding="utf-8")
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._append({"type": "campaign", "key": self.key, "total": self.total})

    def _read_compatible(self) -> Optional[Tuple[Set[str], int]]:
        """Completion marks of an existing journal for *this* campaign.

        ``None`` when the file is absent, unreadable, or belongs to a
        different campaign (key or total mismatch) — the caller then
        truncates and starts fresh.  Otherwise returns the marks plus
        the byte length of the committed prefix: a torn final line (the
        writer died mid-append, no trailing newline or unparseable) is
        excluded; every whole line before it counts.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return None
        completed: Set[str] = set()
        header: Optional[Dict[str, object]] = None
        valid_bytes = 0
        for raw in text.splitlines(keepends=True):
            line = raw.strip()
            if not raw.endswith("\n"):
                # The final line never got its newline: a torn append.
                break
            if not line:
                valid_bytes += len(raw.encode("utf-8"))
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A torn write: ignore this line and everything after
                # (later lines could only exist if this one were whole).
                break
            if not isinstance(record, dict):
                break
            if header is None:
                if record.get("type") != "campaign":
                    return None
                if record.get("key") != self.key or record.get("total") != self.total:
                    return None
                header = record
            elif record.get("type") == "done":
                fingerprint = record.get("fingerprint")
                if isinstance(fingerprint, str):
                    completed.add(fingerprint)
            valid_bytes += len(raw.encode("utf-8"))
        if header is None:
            return None
        return completed, valid_bytes

    def _append(self, record: Dict[str, object]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    # Marks
    # ------------------------------------------------------------------
    def mark(self, index: int, fingerprint: str) -> None:
        """Record scenario ``index`` (store key ``fingerprint``) complete."""
        if fingerprint in self.completed:
            return
        self.completed.add(fingerprint)
        self._append({"type": "done", "index": index, "fingerprint": fingerprint})

    def is_complete(self, fingerprint: str) -> bool:
        return fingerprint in self.completed

    @property
    def remaining(self) -> int:
        return max(0, self.total - len(self.completed))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def statistics(self) -> Dict[str, object]:
        """Measurement record for the campaign report."""
        return {
            "path": str(self.path),
            "key": self.key,
            "total": self.total,
            "completed": len(self.completed),
            "resumed": self.resumed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CampaignJournal path={str(self.path)!r} "
            f"{len(self.completed)}/{self.total} complete>"
        )
