"""Supervision policy: bounded retries, seeded backoff, worker respawn.

One :class:`SupervisionPolicy` configures every resilience decision the
campaign runner makes:

* **Scenario retries** — a scenario that fails with a *transient* error
  (an injected fault, an ``OSError`` from storage, a timeout) is re-run
  up to ``max_attempts`` times with exponential backoff before its
  failure outcome stands.  Deterministic verification failures (a real
  counterexample, a model bug) are not errors at all — they are
  verdicts — and deterministic *crashes* re-raise the same exception on
  every attempt, so retrying them costs bounded time and changes
  nothing: the surviving outcome is byte-identical either way.
* **Backoff** — ``backoff_seconds(key, attempt)`` is exponential with
  *seeded* jitter: a pure function of ``(seed, key, attempt)``, so two
  runs of the same campaign sleep identically (no live RNG enters the
  engine; determinism is the house rule even for failure paths).
* **Worker supervision** — the affinity scheduler respawns dead
  workers (``max_respawns`` per campaign) and re-dispatches their
  in-flight work units (``max_redispatches`` per unit); with
  ``soft_timeout`` set, a worker that stops reporting progress for that
  long is presumed hung, terminated, and treated as dead.

The policy is plain data (picklable) so parallel workers apply the
same retry rules as the serial path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

from .faults import InjectedFault

__all__ = ["SupervisionPolicy", "transient"]


def transient(error: BaseException) -> bool:
    """Whether ``error`` is worth retrying.

    Injected faults are transient by construction (their plans are
    budgeted); ``OSError`` covers real storage hiccups (the seam the
    ``io`` fault kind models); ``TimeoutError`` covers supervised
    timeouts.  ``KeyboardInterrupt``/``SystemExit`` are never retried —
    they propagate (campaign isolation must not swallow a user
    interrupt), which is what keeps the checkpoint journal's
    interrupted-campaign semantics exact.
    """
    if isinstance(error, (KeyboardInterrupt, SystemExit)):
        return False
    return isinstance(error, (InjectedFault, OSError, TimeoutError))


@dataclass(frozen=True)
class SupervisionPolicy:
    """Retry/backoff/respawn configuration of one campaign run."""

    #: Total attempts per scenario (1 = no retries).
    max_attempts: int = 3
    #: First backoff sleep; attempt ``n`` waits ``base * factor**(n-1)``.
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff sleep.
    backoff_max: float = 1.0
    #: Jitter fraction: the seeded hash scales the sleep within
    #: ``[1 - jitter, 1]`` (decorrelates retry convoys without an RNG).
    jitter: float = 0.5
    #: Seed of the backoff jitter (pure function, see module docstring).
    seed: int = 0
    #: Store-write publish attempts (verdicts never depend on a write
    #: succeeding, so exhausting these degrades to an unpublished record).
    max_write_attempts: int = 3
    #: Parallel mode: dead/hung workers respawned per campaign.
    max_respawns: int = 3
    #: Parallel mode: times one work unit may be re-dispatched before
    #: its remaining scenarios are failed outright.
    max_redispatches: int = 2
    #: Parallel mode: seconds without progress before a live worker is
    #: presumed hung and terminated (``None`` disables the watchdog).
    soft_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.max_write_attempts < 1:
            raise ValueError("max_write_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff times must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.max_respawns < 0 or self.max_redispatches < 0:
            raise ValueError("respawn/redispatch caps must be >= 0")
        if self.soft_timeout is not None and self.soft_timeout <= 0:
            raise ValueError("soft_timeout must be positive (or None)")

    def retryable(self, error: BaseException) -> bool:
        """Whether the policy retries ``error`` (see :func:`transient`)."""
        return self.max_attempts > 1 and transient(error)

    def backoff_seconds(self, key: str, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based) of the work item ``key``.

        Exponential in ``attempt`` with seeded jitter — a pure function
        of ``(seed, key, attempt)``, identical in every process.
        """
        if attempt < 1:
            return 0.0
        raw = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        raw = min(raw, self.backoff_max)
        if self.jitter <= 0.0:
            return raw
        blob = f"{self.seed}:{key}:{attempt}".encode("utf-8")
        digest = hashlib.sha256(blob).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return raw * (1.0 - self.jitter * fraction)

    def with_seed(self, seed: int) -> "SupervisionPolicy":
        """A copy of the policy jittered under a different seed."""
        return replace(self, seed=seed)

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "jitter": self.jitter,
            "seed": self.seed,
            "max_write_attempts": self.max_write_attempts,
            "max_respawns": self.max_respawns,
            "max_redispatches": self.max_redispatches,
            "soft_timeout": self.soft_timeout,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SupervisionPolicy":
        return cls(**payload)
