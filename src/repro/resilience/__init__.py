"""Resilience layer: fault injection, supervised retry, checkpoint/resume.

The campaign engine's standing invariant is *byte-identical verdicts on
every path*; this package extends "every path" to the failure paths.
Three pieces, all deterministic and all off-by-default-free:

* :mod:`repro.resilience.faults` — a seeded fault-injection harness
  wrapping the engine's seams (store read/write I/O, record corruption,
  worker crash/hang, scenario exceptions).  A :class:`FaultPlan` is a
  pure function of ``(seed, site, invocation_index)``; disabled
  injection costs one module-global read (telemetry's NULL_SPAN
  pattern).
* :mod:`repro.resilience.supervision` — the :class:`SupervisionPolicy`
  behind the runner's bounded retries with seeded exponential backoff,
  store-write retry, affinity-worker respawn and the hung-worker
  watchdog.
* :mod:`repro.resilience.journal` — the :class:`CampaignJournal`:
  append-only JSONL completion marks that let an interrupted campaign
  resume executing only unfinished scenarios, with the content-
  addressed store guaranteeing the replayed verdicts byte-identical.

The engine imports this package; this package imports nothing from the
engine (plain data crosses the boundary), mirroring how
:mod:`repro.telemetry` stays a leaf dependency.
"""

from .faults import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedError,
    InjectedFault,
    InjectedIOError,
)
from .journal import CampaignJournal
from .supervision import SupervisionPolicy, transient
from . import faults

__all__ = [
    "CRASH_EXIT_CODE",
    "CampaignJournal",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedError",
    "InjectedFault",
    "InjectedIOError",
    "SupervisionPolicy",
    "faults",
    "transient",
]
