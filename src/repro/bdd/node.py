"""BDD node handles.

A reduced ordered binary decision diagram (ROBDD) is a DAG of decision
nodes.  Since the array-kernel refactor the nodes themselves live in
the manager's parallel arrays (:mod:`repro.bdd.kernel`): a node *is* an
integer handle — an index into ``level[]`` / ``low[]`` / ``high[]`` —
and the two terminals are the fixed handles 0 and 1.

What this module defines is the :class:`BDD` *wrapper*: a lightweight
immutable (manager, handle) pair that gives consumer code the classic
object view — ``level``, ``low``, ``high``, ``value``, ``is_terminal``,
``node_id`` — without ever exposing raw indices.  Wrappers are interned
per handle by the manager (one live wrapper per handle), so structural
equality still coincides with object identity: two functions over the
same manager are equal if and only if their wrappers are the same
object (paper, Section 3.2).  The interning table is weak: a wrapper
no external code holds disappears, which is exactly what marks its
handle as garbage for the manager's mark-and-sweep collector.
"""

from __future__ import annotations

from typing import Optional

#: Level assigned to terminal nodes.  Terminals sit "below" every
#: variable in the order, so any real variable level compares smaller.
TERMINAL_LEVEL = 1 << 60


class BDD:
    """Immutable handle wrapper: one ROBDD function on one manager.

    Attributes:
        manager: The owning :class:`~repro.bdd.manager.BDDManager`.
        _h: The integer handle (index into the manager's node arrays).
            Handle 0 is the constant-0 terminal, handle 1 the constant-1
            terminal; decision nodes start at 2.  ``node_id`` is the
            handle itself, which keeps it a stable small-integer cache
            key exactly as before the array refactor.
    """

    __slots__ = ("manager", "_h", "__weakref__")

    def __init__(self, manager, handle: int) -> None:
        self.manager = manager
        self._h = handle

    @property
    def node_id(self) -> int:
        """The handle: a small unique integer, stable for a node's lifetime."""
        return self._h

    @property
    def level(self) -> int:
        """Position of the node's variable in the manager's order."""
        h = self._h
        if h < 2:
            return TERMINAL_LEVEL
        return self.manager._level[h]

    @property
    def low(self) -> Optional["BDD"]:
        """Child followed when the variable is 0 (``None`` for terminals)."""
        h = self._h
        if h < 2:
            return None
        return self.manager._wrap(self.manager._low[h])

    @property
    def high(self) -> Optional["BDD"]:
        """Child followed when the variable is 1 (``None`` for terminals)."""
        h = self._h
        if h < 2:
            return None
        return self.manager._wrap(self.manager._high[h])

    @property
    def value(self) -> Optional[int]:
        """Terminal value (0 or 1) for terminal nodes, ``None`` otherwise."""
        h = self._h
        return h if h < 2 else None

    @property
    def is_terminal(self) -> bool:
        """Whether this node is one of the constant nodes 0 or 1."""
        return self._h < 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        h = self._h
        if h < 2:
            return f"<BDD terminal {h}>"
        return f"<BDD node id={h} level={self.manager._level[h]}>"


#: Backwards-compatible name: consumer modules (and type annotations)
#: written against the object-graph kernel keep importing ``BDDNode``.
BDDNode = BDD
