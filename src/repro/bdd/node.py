"""BDD node representation.

A reduced ordered binary decision diagram (ROBDD) is a DAG of decision
nodes.  Each non-terminal node tests one Boolean variable and has a
``low`` child (variable = 0) and a ``high`` child (variable = 1).  The
two terminal nodes represent the constant functions 0 and 1.

Nodes are created exclusively by :class:`repro.bdd.manager.BDDManager`,
which hash-conses them so that structural equality coincides with object
identity.  That property is what makes ROBDDs canonical: two functions
over the same variable order are equal if and only if their root nodes
are the same object (paper, Section 3.2).
"""

from __future__ import annotations

from typing import Optional

#: Level assigned to terminal nodes.  Terminals sit "below" every
#: variable in the order, so any real variable level compares smaller.
TERMINAL_LEVEL = 1 << 60


class BDDNode:
    """A single node of an ROBDD.

    Attributes:
        level: Position of the node's variable in the manager's variable
            order (smaller = closer to the root).  Terminals use
            :data:`TERMINAL_LEVEL`.
        low: Child followed when the variable is 0 (``None`` for terminals).
        high: Child followed when the variable is 1 (``None`` for terminals).
        value: Terminal value (0 or 1) for terminal nodes, ``None`` otherwise.
        node_id: Small unique integer assigned by the manager; used as a
            stable key for operation caches.
    """

    __slots__ = ("level", "low", "high", "value", "node_id")

    def __init__(
        self,
        level: int,
        low: Optional["BDDNode"],
        high: Optional["BDDNode"],
        value: Optional[int],
        node_id: int,
    ) -> None:
        self.level = level
        self.low = low
        self.high = high
        self.value = value
        self.node_id = node_id

    @property
    def is_terminal(self) -> bool:
        """Whether this node is one of the constant nodes 0 or 1."""
        return self.value is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_terminal:
            return f"<BDD terminal {self.value}>"
        return f"<BDD node id={self.node_id} level={self.level}>"
