"""Vectorized kernel backend: numpy bulk paths behind the manager facade.

ROADMAP item 3's escape hatch from the pure-Python node floor.  The
measured physics of the dict kernel is ~4 CPython dict operations and
~1 µs per constructed node; no per-node Python code can beat that by
much, but the *batch* paths — snapshot restore and level-swap planning,
where whole node columns move at once — can leave the interpreter
entirely.  :class:`VectorBDDManager` keeps every scalar operation of
:class:`~repro.bdd.manager.BDDManager` byte-identical (the per-level
dict unique table stays authoritative, so ITE chains, GC and wrapper
interning are exactly the inherited code) and replaces only the bulk
work:

* **Bulk restore** (:meth:`VectorBDDManager._restore_build`): the
  snapshot's structural validation — child-reference bounds, redundant
  nodes, level monotonicity along every edge — runs as whole-column
  numpy predicates, then nodes are consed level-by-level (deepest
  first, so every child is already resolved) with bulk handle
  assignment, C-speed list extends and one ``dict.update`` per level.
  Dedup against a warm arena probes a transient
  :class:`FlatUniqueTable` seeded from the affected subtables instead
  of probing per-node.
* **Bulk swap planning** (:meth:`VectorBDDManager._plan_swap`): the
  read-only classification pass of an adjacent level swap (which upper
  nodes depend on the lower variable, and their Shannon grandchildren)
  becomes masked numpy gathers; the in-place mutation half of the swap
  is shared with the dict backend.

Honest negatives (measured, recorded in ROADMAP):

* A *persistent* open-addressed unique table in pure Python/numpy loses
  to CPython's C dicts for scalar hash-consing — one-element numpy
  operations cost more than a tuple allocation plus a dict probe — so
  the flat table is transient and bulk-only, and every vectorized path
  falls back to the scalar loop below a measured batch-size threshold
  (:data:`VECTOR_RESTORE_MIN`, :data:`VECTOR_SWAP_MIN`).
* With the dict table authoritative, *cold* bulk restore only reaches
  parity (0.92-1.00x at 3k-98k nodes): every new node still pays the
  C-dict insert, which dominates once validation and handle assignment
  are vectorized.  The wins are warm restores into a populated arena
  (1.17x at 49k nodes, 1.90x at 98k — hit classification is where
  columns beat probes), hence the restore threshold.
* Bulk swap *planning* loses outright — 0.25-0.32x vs. the scalar
  planner at every measured size (see :data:`VECTOR_SWAP_MIN`) — so the
  default threshold disables it and reorder keeps the scalar plan.
* At engine level the snapshot-rehydration ratio barely moves: restore
  of a 1.7M-node extracted relation is 10.9% of extraction on the dict
  backend and 10.4% here, because JSON decode + decompression dominate
  the rehydration wall-clock, not kernel consing.  The ``<= 0.05``
  target is unreachable at the kernel layer.

numpy itself is import-gated: without it this class *is* the dict
backend plus a few counters, which is what lets CI legs toggle
``REPRO_KERNEL_BACKEND=vector`` on images that only ship the test
toolchain.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from .kernel import SnapshotError
from .manager import BDDManager
from .node import TERMINAL_LEVEL

try:  # Gated: the CI test image ships no numpy; every vector path
    import numpy as _np  # checks this and degrades to the scalar kernel.
except ImportError:  # pragma: no cover - exercised on numpy-free images
    _np = None

#: Snapshot node count below which the scalar restore loop wins.
#: Measured crossover on the bench box (comparator snapshots, best-of-3):
#: warm restore into a populated arena is 0.56x at 3k nodes, 0.90x at
#: 12k, 1.17x at 49k and 1.90x at 98k; cold restore is 0.92-1.00x
#: throughout (the C-dict insert floor, see the module docstring).  The
#: threshold sits above the measured break-even so the vector path only
#: engages where it wins or ties.
VECTOR_RESTORE_MIN = 32768
#: Upper-level population below which the scalar swap planner wins.
#: Measured: *always* — the vectorized planner is 0.26x/0.25x/0.32x the
#: scalar one at 514/2050/8194 boundary nodes (``np.fromiter`` gathers
#: from Python lists plus rebuild-tuple materialisation cost more than
#: the C-speed scalar list walk at every size), so the default
#: effectively disables it; the implementation stays for the
#: differential suite and the benchmark, which lower the threshold
#: explicitly.
VECTOR_SWAP_MIN = 1 << 60

#: 64-bit mixing constants (splitmix64 / xxhash finalizers) for the
#: flat table's key hash.
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xC2B2AE3D27D4EB4F
_MIX_C = 0x165667B19E3779F9


def numpy_available() -> bool:
    """Whether the vectorized paths are live (numpy importable)."""
    return _np is not None


class FlatUniqueTable:
    """Open-addressed ``(level, low, high) -> handle`` table over numpy.

    The bulk-dedup structure of the vectorized restore path: seeded once
    per restore from the target levels' dict subtables, then probed with
    whole key columns — linear probing over a power-of-two capacity,
    keys in three parallel ``int64`` arrays, no per-key tuple
    allocation.  Deliberately *transient*: the dict subtables stay the
    authoritative unique table (see the module docstring's recorded
    negative on persistent flat tables), so this class only ever answers
    "which of these N keys already have handles" in O(probe-rounds)
    vectorized passes instead of N dict lookups.
    """

    __slots__ = ("_lvl", "_lo", "_hi", "_val", "_mask", "_size")

    def __init__(self, expected: int) -> None:
        if _np is None:  # pragma: no cover - guarded by every caller
            raise RuntimeError("FlatUniqueTable requires numpy")
        capacity = 16
        # Keep load factor under 1/2 for short probe chains.
        while capacity < 2 * max(1, expected):
            capacity <<= 1
        self._lvl = _np.zeros(capacity, dtype=_np.int64)
        self._lo = _np.zeros(capacity, dtype=_np.int64)
        self._hi = _np.zeros(capacity, dtype=_np.int64)
        self._val = _np.full(capacity, -1, dtype=_np.int64)
        self._mask = capacity - 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._mask + 1

    @staticmethod
    def _hash(lvl, lo, hi):
        # Vectorized 64-bit key mix; uint64 arithmetic wraps, which is
        # exactly the modular mixing the constants are designed for.
        h = (
            lvl.astype(_np.uint64) * _np.uint64(_MIX_A)
            ^ lo.astype(_np.uint64) * _np.uint64(_MIX_B)
            ^ hi.astype(_np.uint64) * _np.uint64(_MIX_C)
        )
        h ^= h >> _np.uint64(29)
        return h.astype(_np.int64)

    def _find_slots(self, lvl, lo, hi):
        """Per key: its occupied slot if present, else its first empty slot.

        One vectorized probe round per collision depth — all keys still
        unresolved advance together — so the loop count is the longest
        probe chain, not the key count.
        """
        mask = self._mask
        slot = self._hash(lvl, lo, hi) & mask
        out = _np.empty(len(slot), dtype=_np.int64)
        pending = _np.arange(len(slot))
        while len(pending):
            s = slot[pending]
            occupied = self._val[s] >= 0
            match = occupied & (
                (self._lvl[s] == lvl[pending])
                & (self._lo[s] == lo[pending])
                & (self._hi[s] == hi[pending])
            )
            done = match | ~occupied
            out[pending[done]] = s[done]
            pending = pending[~done]
            if len(pending):
                slot[pending] = (slot[pending] + 1) & mask
        return out

    def lookup(self, lvl, lo, hi):
        """Handles for the key columns (``-1`` where absent)."""
        if isinstance(lvl, int):
            lvl = _np.full(lo.shape, lvl, dtype=_np.int64)
        slots = self._find_slots(lvl, lo, hi)
        return self._val[slots]

    def insert(self, lvl, lo, hi, handles) -> None:
        """Bulk-insert keys assumed absent (later duplicates win).

        Two distinct new keys can race for the same empty slot; the
        claim loop writes the first claimant per slot and re-probes the
        rest — each round strictly shrinks the pending set.
        """
        if isinstance(lvl, int):
            lvl = _np.full(lo.shape, lvl, dtype=_np.int64)
        if 2 * (self._size + len(lo)) > self._mask + 1:
            self._grow(self._size + len(lo))
        pending = _np.arange(len(lo))
        while len(pending):
            slots = self._find_slots(lvl[pending], lo[pending], hi[pending])
            # First claimant per distinct slot wins this round.
            uniq, first = _np.unique(slots, return_index=True)
            claim = pending[first]
            self._lvl[uniq] = lvl[claim]
            self._lo[uniq] = lo[claim]
            self._hi[uniq] = hi[claim]
            self._val[uniq] = handles[claim]
            self._size += len(uniq)
            if len(uniq) == len(pending):
                break
            keep = _np.ones(len(pending), dtype=bool)
            keep[first] = False
            pending = pending[keep]

    def _grow(self, needed: int) -> None:
        occupied = self._val >= 0
        lvl = self._lvl[occupied]
        lo = self._lo[occupied]
        hi = self._hi[occupied]
        val = self._val[occupied]
        capacity = self._mask + 1
        while capacity < 4 * max(1, needed):
            capacity <<= 1
        self._lvl = _np.zeros(capacity, dtype=_np.int64)
        self._lo = _np.zeros(capacity, dtype=_np.int64)
        self._hi = _np.zeros(capacity, dtype=_np.int64)
        self._val = _np.full(capacity, -1, dtype=_np.int64)
        self._mask = capacity - 1
        self._size = 0
        if len(val):
            self.insert(lvl, lo, hi, val)

    def seed_level(self, lvl: int, sub: Dict[Tuple[int, int], int]) -> None:
        """Bulk-load one level's dict subtable into the flat table."""
        if not sub:
            return
        keys = _np.array(list(sub.keys()), dtype=_np.int64).reshape(len(sub), 2)
        vals = _np.fromiter(sub.values(), dtype=_np.int64, count=len(sub))
        self.insert(lvl, keys[:, 0].copy(), keys[:, 1].copy(), vals)


def _gather(source: List[int], indices: List[int]):
    """numpy column gathered from a Python list at C speed."""
    return _np.fromiter(
        map(source.__getitem__, indices), dtype=_np.int64, count=len(indices)
    )


class VectorBDDManager(BDDManager):
    """:class:`BDDManager` with numpy-vectorized batch paths.

    Scalar semantics are inherited unchanged — same dict unique table,
    same ITE core, same GC — so every function this backend builds is
    byte-identical to the dict backend's (the backend-differential suite
    asserts node counts, minterms and campaign verdict bytes).  Only the
    batch paths differ; each gates on numpy availability and a measured
    batch-size threshold, falling back to the inherited scalar loop.
    """

    #: Backend name, mirrored by :data:`repro.bdd.KERNEL_VECTOR`.
    KERNEL_BACKEND = "vector"

    def __init__(
        self,
        variables: Optional[Sequence[str]] = None,
        cache_limit: Optional[int] = None,
    ) -> None:
        super().__init__(variables, cache_limit=cache_limit)
        #: Vector-path activity, surfaced through ``arena_statistics``
        #: (and from there the pool's ``pool.arena.*`` telemetry
        #: gauges): bulk_* count work done on the numpy paths,
        #: ``scalar_fallbacks`` how often a batch was below threshold
        #: (or numpy absent) and ran the inherited loop instead.
        self._vector_stats = {
            "bulk_restores": 0,
            "bulk_restore_nodes": 0,
            "bulk_swap_plans": 0,
            "bulk_swap_nodes": 0,
            "scalar_fallbacks": 0,
        }

    # ------------------------------------------------------------------
    # Bulk restore
    # ------------------------------------------------------------------
    def _restore_build(
        self,
        mapped_levels: List[int],
        lows: List[int],
        highs: List[int],
    ) -> List[int]:
        n = len(mapped_levels)
        if _np is None or n < VECTOR_RESTORE_MIN:
            self._vector_stats["scalar_fallbacks"] += 1
            return super()._restore_build(mapped_levels, lows, highs)
        try:
            lv = _np.asarray(mapped_levels)
            lo_ids = _np.asarray(lows)
            hi_ids = _np.asarray(highs)
        except (TypeError, ValueError, OverflowError):
            # Malformed payloads take the scalar loop so the error
            # messages (and SnapshotError guarantees) stay canonical.
            return super()._restore_build(mapped_levels, lows, highs)
        if not (
            lv.shape == lo_ids.shape == hi_ids.shape == (n,)
            and _np.issubdtype(lv.dtype, _np.integer)
            and _np.issubdtype(lo_ids.dtype, _np.integer)
            and _np.issubdtype(hi_ids.dtype, _np.integer)
        ):
            return super()._restore_build(mapped_levels, lows, highs)
        lv = lv.astype(_np.int64)
        lo_ids = lo_ids.astype(_np.int64)
        hi_ids = hi_ids.astype(_np.int64)
        # --- whole-column structural validation -----------------------
        bound = _np.arange(2, n + 2, dtype=_np.int64)
        bad = (lo_ids < 0) | (lo_ids >= bound) | (hi_ids < 0) | (hi_ids >= bound)
        if bad.any():
            i = int(_np.flatnonzero(bad)[0])
            raise SnapshotError(
                f"node {i}: child reference out of range (truncated?)"
            )
        bad = lo_ids == hi_ids
        if bad.any():
            i = int(_np.flatnonzero(bad)[0])
            raise SnapshotError(f"node {i}: redundant node (low == high)")
        # Level per snapshot id (terminals included) makes the edge
        # monotonicity check two gathers and a compare.
        id_level = _np.empty(n + 2, dtype=_np.int64)
        id_level[0] = id_level[1] = TERMINAL_LEVEL
        id_level[2:] = lv
        bad = (id_level[lo_ids] <= lv) | (id_level[hi_ids] <= lv)
        if bad.any():
            i = int(_np.flatnonzero(bad)[0])
            raise SnapshotError(
                f"node {i}: child does not sit below level {int(lv[i])}"
            )
        # --- bulk cons ------------------------------------------------
        # Two phases keep the result *handle-identical* to the scalar
        # loop (the differential suite asserts it):
        #
        # 1. Hit/miss resolution, deepest level first.  Children sit at
        #    strictly greater levels (just validated), so each level's
        #    children are fully classified before its own pass.  A node
        #    with any freshly-built child is necessarily new — existing
        #    table entries can only reference pre-existing handles — so
        #    only nodes whose children all resolved to existing handles
        #    probe the flat table (seeded once from the affected
        #    subtables).
        # 2. Handle assignment in snapshot-id order: the scalar loop
        #    numbers new nodes as it meets them (free-list LIFO first,
        #    then appended slots), and snapshot ids are exactly that
        #    meeting order.
        #
        # ``code`` carries, per snapshot id, the real handle for hits
        # and an injective negative stand-in for misses; stand-ins keep
        # the within-level duplicate check sound before numbering.
        table = self._table
        lidx = self._level_index
        free = self._free
        level_list = self._level
        low_list = self._low
        high_list = self._high
        code = _np.empty(n + 2, dtype=_np.int64)
        code[0] = 0
        code[1] = 1
        miss_by_id = _np.zeros(n + 2, dtype=bool)
        order = _np.argsort(-lv, kind="stable")
        cuts = _np.flatnonzero(_np.diff(lv[order])) + 1
        groups = _np.split(order, cuts)
        for ids in groups:
            L = int(lv[ids[0]])
            node_lo = lo_ids[ids]
            node_hi = hi_ids[ids]
            lo_c = code[node_lo]
            hi_c = code[node_hi]
            # A snapshot from one canonical arena cannot contain two
            # nodes with equal (level, low, high); a corrupt one could,
            # and the scalar loop would silently dedup them — so detect
            # and route the whole payload to the scalar path (safe: no
            # state has been touched yet).  Packed-key sort instead of
            # ``np.unique(axis=0)``: the latter costs more than the
            # whole scalar restore.  Codes are > -(n+2) (stand-ins) and
            # bounded above by the arena size, so the shifted pair fits
            # int64 comfortably.
            if len(ids) > 1:
                shift = n + 2
                span = int(max(lo_c.max(), hi_c.max())) + shift + 1
                packed = (lo_c + shift) * span + (hi_c + shift)
                packed.sort()
                if (packed[1:] == packed[:-1]).any():
                    self._vector_stats["scalar_fallbacks"] += 1
                    return super()._restore_build(mapped_levels, lows, highs)
            hit = _np.zeros(len(ids), dtype=bool)
            sub = table.get(L)
            if sub:
                candidates = _np.flatnonzero(
                    ~(miss_by_id[node_lo] | miss_by_id[node_hi])
                )
                if len(candidates):
                    cand_lo = lo_c[candidates]
                    cand_hi = hi_c[candidates]
                    if 4 * len(sub) <= len(candidates):
                        # Subtable much smaller than the batch: one
                        # transient numpy hash of it, then a single
                        # vectorized probe round.
                        flat = FlatUniqueTable(len(sub))
                        flat.seed_level(L, sub)
                        found = flat.lookup(L, cand_lo, cand_hi)
                    else:
                        # Comparable or larger subtable: hashing it
                        # costs more than letting the C dict answer the
                        # batch directly — map(get, keys, repeat(-1))
                        # keeps the whole probe round in C (the measured
                        # break-even, see the module docstring).
                        found = _np.fromiter(
                            map(
                                sub.get,
                                zip(cand_lo.tolist(), cand_hi.tolist()),
                                itertools.repeat(-1),
                            ),
                            _np.int64,
                            len(candidates),
                        )
                    resolved = found >= 0
                    hit_rows = candidates[resolved]
                    hit[hit_rows] = True
                    code[ids[hit_rows] + 2] = found[resolved]
            miss_rows = ids[~hit]
            code[miss_rows + 2] = -(miss_rows + 2)
            miss_by_id[miss_rows + 2] = True
        # --- phase 2: number and write the new nodes, in id order -----
        miss_ids = _np.flatnonzero(miss_by_id)  # ascending snapshot ids
        m = len(miss_ids)
        if m:
            k = min(m, len(free))
            new_handles = _np.empty(m, dtype=_np.int64)
            if k:
                reused = [free.pop() for _ in range(k)]
                new_handles[:k] = reused
            if m > k:
                base = len(level_list)
                new_handles[k:] = _np.arange(base, base + (m - k))
            code[miss_ids] = new_handles
            rows = miss_ids - 2
            lv_py = lv[rows].tolist()
            lo_py = code[lo_ids[rows]].tolist()
            hi_py = code[hi_ids[rows]].tolist()
            if k:
                list(map(level_list.__setitem__, reused, lv_py[:k]))
                list(map(low_list.__setitem__, reused, lo_py[:k]))
                list(map(high_list.__setitem__, reused, hi_py[:k]))
            if m > k:
                level_list.extend(lv_py[k:])
                low_list.extend(lo_py[k:])
                high_list.extend(hi_py[k:])
            # Subtable and index updates, one dict/set bulk op per level
            # over contiguous level-sorted slices (plain list slicing +
            # zip keeps the per-entry work entirely in C).
            by_level = _np.argsort(lv[rows], kind="stable")
            sorted_rows = rows[by_level]
            lv_sorted = lv[rows][by_level]
            slo_py = code[lo_ids[sorted_rows]].tolist()
            shi_py = code[hi_ids[sorted_rows]].tolist()
            sh_py = code[sorted_rows + 2].tolist()
            bounds = (
                [0] + (_np.flatnonzero(_np.diff(lv_sorted)) + 1).tolist() + [m]
            )
            lv_sorted_py = lv_sorted.tolist()
            for b0, b1 in zip(bounds, bounds[1:]):
                L = lv_sorted_py[b0]
                sub = table.get(L)
                if sub is None:
                    sub = table[L] = {}
                sub.update(
                    zip(zip(slo_py[b0:b1], shi_py[b0:b1]), sh_py[b0:b1])
                )
                bucket = lidx.get(L)
                if bucket is None:
                    bucket = lidx[L] = self._new_bucket()
                bucket.update(sh_py[b0:b1])
        self._vector_stats["bulk_restores"] += 1
        self._vector_stats["bulk_restore_nodes"] += n
        return code.tolist()

    # ------------------------------------------------------------------
    # Bulk swap planning
    # ------------------------------------------------------------------
    def _plan_swap(
        self, y_level: int, x_nodes: List[int]
    ) -> Tuple[List[int], List[Tuple[int, int, int, int, int]]]:
        m = len(x_nodes)
        if _np is None or m < VECTOR_SWAP_MIN:
            self._vector_stats["scalar_fallbacks"] += 1
            return super()._plan_swap(y_level, x_nodes)
        lv_a = self._level
        lo_a = self._low
        hi_a = self._high
        lo = _gather(lo_a, x_nodes)
        hi = _gather(hi_a, x_nodes)
        lo_y = _gather(lv_a, lo.tolist()) == y_level
        hi_y = _gather(lv_a, hi.tolist()) == y_level
        dep = lo_y | hi_y
        xs = _np.fromiter(x_nodes, dtype=_np.int64, count=m)
        independent = xs[~dep].tolist()
        self._vector_stats["bulk_swap_plans"] += 1
        self._vector_stats["bulk_swap_nodes"] += m
        if not dep.any():
            return independent, []
        d = _np.flatnonzero(dep)
        dlo = lo[d]
        dhi = hi[d]
        dlo_y = lo_y[d]
        dhi_y = hi_y[d]
        dlo_py = dlo.tolist()
        dhi_py = dhi.tolist()
        # Shannon grandchildren: where the child tests y, split it; where
        # it does not, both cofactors are the child itself.
        f00 = _np.where(dlo_y, _gather(lo_a, dlo_py), dlo)
        f01 = _np.where(dlo_y, _gather(hi_a, dlo_py), dlo)
        f10 = _np.where(dhi_y, _gather(lo_a, dhi_py), dhi)
        f11 = _np.where(dhi_y, _gather(hi_a, dhi_py), dhi)
        rebuilds = list(
            zip(
                xs[d].tolist(),
                f00.tolist(),
                f01.tolist(),
                f10.tolist(),
                f11.tolist(),
            )
        )
        return independent, rebuilds

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def arena_statistics(self) -> Dict[str, int]:
        stats = super().arena_statistics()
        for key, value in self._vector_stats.items():
            stats[f"vector_{key}"] = value
        return stats
