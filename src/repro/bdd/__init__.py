"""Reduced ordered binary decision diagrams (ROBDDs).

This package is the Boolean-function substrate of the reproduction
(paper Chapter 3): canonical ROBDDs with the apply/ite operation,
cofactoring, the smoothing operator, relational products, composition
and counting queries, plus static variable-ordering helpers and dynamic
reordering (sifting) in :mod:`repro.bdd.reorder`.

Representation: an array-backed integer-handle kernel
(:mod:`repro.bdd.kernel` — struct-of-arrays node storage, one iterative
ITE core, mark-and-sweep arena GC) beneath the
:class:`~repro.bdd.manager.BDDManager` facade; consumers see immutable
:class:`~repro.bdd.node.BDD` wrappers (``BDDNode`` is the same class).
"""

from .kernel import BDDKernel
from .manager import BDDManager, BDDOrderError
from .node import BDD, BDDNode, TERMINAL_LEVEL
from .ops import (
    bits_to_int,
    compose_vector,
    encode_value,
    evaluate_vector,
    find_distinguishing_assignment,
    int_to_bits,
    restrict_vector,
    vector_equal,
    vector_node_count,
    vector_support,
    vectors_identical,
)
from .ordering import (
    bit_names,
    cycle_major_order,
    first_use_order,
    interleave,
    state_then_inputs,
)
from .reorder import (
    SiftResult,
    converge_sift,
    live_size,
    sift_to_order,
    sift_variable,
    swap_adjacent,
)

__all__ = [
    "BDD",
    "BDDKernel",
    "BDDManager",
    "BDDNode",
    "BDDOrderError",
    "SiftResult",
    "TERMINAL_LEVEL",
    "bit_names",
    "converge_sift",
    "sift_to_order",
    "sift_variable",
    "swap_adjacent",
    "bits_to_int",
    "compose_vector",
    "cycle_major_order",
    "encode_value",
    "evaluate_vector",
    "find_distinguishing_assignment",
    "first_use_order",
    "int_to_bits",
    "interleave",
    "live_size",
    "restrict_vector",
    "state_then_inputs",
    "vector_equal",
    "vector_node_count",
    "vector_support",
    "vectors_identical",
]
