"""Reduced ordered binary decision diagrams (ROBDDs).

This package is the Boolean-function substrate of the reproduction
(paper Chapter 3): canonical ROBDDs with the apply/ite operation,
cofactoring, the smoothing operator, relational products, composition
and counting queries, plus static variable-ordering helpers and dynamic
reordering (sifting) in :mod:`repro.bdd.reorder`.

Representation: an array-backed integer-handle kernel
(:mod:`repro.bdd.kernel` — struct-of-arrays node storage, one iterative
ITE core, mark-and-sweep arena GC) beneath the
:class:`~repro.bdd.manager.BDDManager` facade; consumers see immutable
:class:`~repro.bdd.node.BDD` wrappers (``BDDNode`` is the same class).

Two interchangeable kernel backends implement that facade:

* ``dict`` — the pure-Python baseline (per-level dict subtables);
* ``vector`` — :class:`~repro.bdd.vector.VectorBDDManager`, which keeps
  the dict table authoritative but routes large snapshot restores and
  level-swap planning through numpy batch kernels.  Handle-identical to
  ``dict`` by construction; falls back to the scalar paths for small
  batches or when numpy is absent.

Construct managers through :func:`create_manager` so the backend can be
chosen per call site, per policy, or fleet-wide via the
``REPRO_KERNEL_BACKEND`` environment variable.
"""

import os
from typing import Optional

from .kernel import BDDKernel
from .manager import BDDManager, BDDOrderError
from .node import BDD, BDDNode, TERMINAL_LEVEL
from .ops import (
    bits_to_int,
    compose_vector,
    encode_value,
    evaluate_vector,
    find_distinguishing_assignment,
    int_to_bits,
    restrict_vector,
    vector_equal,
    vector_node_count,
    vector_support,
    vectors_identical,
)
from .ordering import (
    bit_names,
    cycle_major_order,
    first_use_order,
    interleave,
    state_then_inputs,
)
from .reorder import (
    SiftResult,
    converge_sift,
    live_size,
    sift_to_order,
    sift_variable,
    swap_adjacent,
)

#: Kernel backend names accepted by :func:`create_manager`.
KERNEL_DICT = "dict"
KERNEL_VECTOR = "vector"
KERNEL_BACKENDS = (KERNEL_DICT, KERNEL_VECTOR)

#: Environment toggle: set to ``vector`` to flip every default-backend
#: ``create_manager`` call fleet-wide (used by the CI vector leg).
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"


def default_kernel_backend() -> str:
    """The backend used when no explicit choice is made.

    Reads :data:`KERNEL_BACKEND_ENV` on every call (not at import time)
    so tests and CI legs can flip it with ``monkeypatch.setenv``.
    Unknown values raise rather than silently running the baseline.
    """
    value = os.environ.get(KERNEL_BACKEND_ENV, "").strip().lower()
    if not value:
        return KERNEL_DICT
    if value not in KERNEL_BACKENDS:
        raise ValueError(
            f"{KERNEL_BACKEND_ENV}={value!r} is not a kernel backend; "
            f"valid: {KERNEL_BACKENDS}"
        )
    return value


def create_manager(
    variables=None,
    cache_limit: Optional[int] = None,
    backend: Optional[str] = None,
) -> BDDManager:
    """Construct a :class:`BDDManager` with the requested kernel backend.

    ``backend=None`` defers to :func:`default_kernel_backend`.  The
    ``vector`` backend degrades gracefully: without numpy the returned
    manager still works (every batch path falls back to the scalar
    loops it inherits), so selecting it is always safe.
    """
    if backend is None:
        backend = default_kernel_backend()
    if backend == KERNEL_DICT:
        return BDDManager(variables=variables, cache_limit=cache_limit)
    if backend == KERNEL_VECTOR:
        from .vector import VectorBDDManager

        return VectorBDDManager(variables=variables, cache_limit=cache_limit)
    raise ValueError(
        f"unknown kernel backend {backend!r}; valid: {KERNEL_BACKENDS}"
    )


__all__ = [
    "BDD",
    "BDDKernel",
    "BDDManager",
    "BDDNode",
    "BDDOrderError",
    "KERNEL_BACKENDS",
    "KERNEL_BACKEND_ENV",
    "KERNEL_DICT",
    "KERNEL_VECTOR",
    "SiftResult",
    "TERMINAL_LEVEL",
    "create_manager",
    "default_kernel_backend",
    "bit_names",
    "converge_sift",
    "sift_to_order",
    "sift_variable",
    "swap_adjacent",
    "bits_to_int",
    "compose_vector",
    "cycle_major_order",
    "encode_value",
    "evaluate_vector",
    "find_distinguishing_assignment",
    "first_use_order",
    "int_to_bits",
    "interleave",
    "live_size",
    "restrict_vector",
    "state_then_inputs",
    "vector_equal",
    "vector_node_count",
    "vector_support",
    "vectors_identical",
]
