"""Dynamic variable reordering: level swaps and Rudell-style sifting.

Section 3.2 of the paper stresses that ROBDD size is critically
dependent on the variable order; the static heuristics in
:mod:`repro.bdd.ordering` pick the initial order, and this module moves
variables *after* construction.  The primitive is the classic adjacent
**level swap**: exchanging levels ``i`` and ``i+1`` only touches the
nodes at those two levels.  On the array kernel a swap is in-place
writes to the ``level[]``/``low[]``/``high[]`` words of exactly those
nodes — every handle keeps denoting the same Boolean function before
and after the swap, so canonicity (node identity as equivalence)
survives reordering and every wrapper held by a caller stays valid.
On top of the primitive sit Rudell's **sifting** procedure (move one
variable through every position, keep the best) and its converging
variant.

Every swap invalidates the manager's operation caches and fires the
manager's reorder hooks (see :meth:`BDDManager.add_reorder_hook`); the
campaign engine's :class:`~repro.engine.pool.ManagerPool` uses the hook
to retire a reordered manager from its pool, because pooled scenarios
expect the declared variable order.

Size metric
-----------
Sifting needs "how big are the BDDs right now" after every swap.  With
explicit ``roots`` (the functions the caller still cares about) the
metric counts exactly the live nodes reachable from them — precise, but
a full traversal per swap, so meant for modest tables.  Without roots
the unique-table size is used: O(1) to read, but it also counts dead
intermediate nodes, so swap garbage biases the search toward the
starting position — which is why the sifter periodically hands that
garbage to the kernel's mark-and-sweep collector
(:meth:`~repro.bdd.kernel.BDDKernel.collect`): everything not
reachable from a live wrapper or an explicit root is reclaimed into
the free-list.  Semantics are unaffected either way; ``max_variables``
is the time-budget knob for big tables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .manager import BDDManager
from .node import BDD


def _live_size_h(manager: BDDManager, roots: Sequence[int]) -> int:
    """Number of distinct nodes reachable from root handles."""
    low = manager._low
    high = manager._high
    seen: Set[int] = set()
    stack = list(roots)
    while stack:
        h = stack.pop()
        if h in seen:
            continue
        seen.add(h)
        if h >= 2:
            stack.append(low[h])
            stack.append(high[h])
    return len(seen)


def live_size(manager: BDDManager, roots: Sequence[BDD]) -> int:
    """Number of distinct nodes reachable from ``roots`` (iterative DFS).

    This is sifting's exact size metric; callers budgeting a sift (the
    campaign executor) use it once up front to decide whether the exact
    metric is affordable at all.
    """
    return _live_size_h(manager, [root._h for root in roots])


def _swap_levels(manager: BDDManager, level: int) -> bool:
    """Swap the variables at ``level``/``level + 1`` in place.

    The two levels' handle sets come from the manager's own per-level
    index (maintained on allocation, GC sweep and swap), so the cost of
    a swap is proportional to the two levels' populations — never to
    the whole unique table.  Returns whether any node was *rebuilt*: a
    swap that only relabelled levels (no ``x`` node depended on ``y``)
    cannot change any size metric, which lets sifting skip the per-swap
    size traversal on the — typically dominant — non-interacting steps.

    Let ``x`` be the variable at ``level`` and ``y`` the one below it:

    * nodes testing ``y`` keep their structure — ``y`` simply moved up,
      so only their ``level[]`` word changes;
    * nodes testing ``x`` that do not depend on ``y`` likewise just move
      down one level;
    * nodes testing ``x`` with a ``y``-child are rebuilt through the
      Shannon expansion ``f = y ? (x ? f11 : f01) : (x ? f10 : f00)``
      by overwriting their ``low[]``/``high[]`` words in place, so every
      external handle to ``f`` stays valid.
    """
    table = manager._table
    lv = manager._level
    lo_a = manager._low
    hi_a = manager._high
    lidx = manager._level_index
    y_level = level + 1
    x_bucket = lidx.get(level)
    y_bucket = lidx.get(y_level)
    x_nodes: List[int] = list(x_bucket) if x_bucket else []
    y_nodes: List[int] = list(y_bucket) if y_bucket else []

    # Plan the rebuilds against the *old* structure before any
    # relabelling.  The planning pass is a manager hook so backends can
    # replace the per-node loop (the vectorized backend classifies both
    # levels with numpy bulk gathers); the mutation below is identical
    # for every backend.
    independent, rebuilds = manager._plan_swap(y_level, x_nodes)

    # Per-level subtables make the bulk moves free: a node that only
    # changes *level* keeps its (low, high) key, so the whole y
    # subtable — and the independent slice of the x subtable — move as
    # dicts; only the rebuilt nodes are re-keyed individually.
    x_sub = table.get(level) or {}
    y_sub = table.get(y_level) or {}
    if x_bucket is None:
        x_bucket = manager._new_bucket()
    if y_bucket is None:
        y_bucket = manager._new_bucket()
    for n, _f00, _f01, _f10, _f11 in rebuilds:
        del x_sub[(lo_a[n], hi_a[n])]
        x_bucket.discard(n)
    # Relabelling writes one level word per node; map over the bound
    # __setitem__ keeps the loop in C for fat levels.
    # y moves up: structure unchanged, only the level word changes.
    list(map(lv.__setitem__, y_nodes, itertools.repeat(level)))
    # x-nodes independent of y move down unchanged (they are exactly
    # what is left of the old x subtable and the old x index bucket).
    list(map(lv.__setitem__, independent, itertools.repeat(y_level)))
    table[level] = y_sub
    table[y_level] = x_sub
    # The index buckets swap wholesale too; nodes the rebuild loop
    # hash-conses at ``level + 1`` are appended to ``x_bucket`` (now
    # indexing that level) incrementally by the allocator.
    lidx[level] = y_bucket
    lidx[y_level] = x_bucket
    x_bucket_new = y_bucket
    # Dependent x-nodes are rebuilt in place; their new children at
    # ``level + 1`` test x and are hash-consed against the re-keyed
    # table.  No rebuilt node can collide with a moved y node: both
    # keep denoting their old functions, and equal functions were
    # already the same node (canonicity).
    mk = manager._mk_int
    for n, f00, f01, f10, f11 in rebuilds:
        new_low = mk(y_level, f00, f10)
        new_high = mk(y_level, f01, f11)
        lo_a[n] = new_low
        hi_a[n] = new_high
        y_sub[(new_low, new_high)] = n
        x_bucket_new.add(n)

    # Exchange the variable names and levels.
    names = manager._name_of
    names[level], names[y_level] = names[y_level], names[level]
    manager._level_of[names[level]] = level
    manager._level_of[names[y_level]] = y_level

    manager._note_order_change()
    return bool(rebuilds)


def swap_adjacent(manager: BDDManager, level: int) -> None:
    """Exchange the variables at ``level`` and ``level + 1`` in place.

    The standalone reordering primitive, served entirely from the
    manager's per-level node index.  All affected unique-table entries
    are re-keyed, the operation caches are dropped and the manager's
    reorder hooks fire.
    """
    num = manager.num_vars()
    if not 0 <= level < num - 1:
        raise ValueError(f"cannot swap levels {level} and {level + 1} of {num} variables")
    _swap_levels(manager, level)


@dataclass
class SiftResult:
    """Outcome of a sifting run."""

    initial_size: int
    final_size: int
    passes: int = 0
    swaps: int = 0
    sifted_variables: int = 0
    order: Tuple[str, ...] = ()
    sizes_by_pass: List[int] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return self.final_size < self.initial_size

    def to_dict(self) -> Dict[str, object]:
        return {
            "initial_size": self.initial_size,
            "final_size": self.final_size,
            "passes": self.passes,
            "swaps": self.swaps,
            "sifted_variables": self.sifted_variables,
        }


class _Sifter:
    """Size metric, swap accounting and session cleanup for sifting.

    The per-level handle sets live on the manager itself
    (:meth:`BDDManager.nodes_at_level`), updated by every allocation,
    swap and sweep, so the sifter never scans the unique table — not
    at construction and not per swap.

    Excursions rebuild nodes, and every rebuild can orphan the node it
    replaced; left alone that garbage compounds across sifted variables.
    The sifter therefore periodically runs the kernel's mark-and-sweep
    (:meth:`~repro.bdd.kernel.BDDKernel.collect`): roots are the
    explicit sift roots plus every handle external code still holds a
    wrapper for, so nothing a caller can name is ever reclaimed, while
    dead intermediates — whether created this session or inherited from
    earlier work — return to the free-list for reuse.
    """

    def __init__(self, manager: BDDManager, roots: Optional[Iterable[BDD]]):
        self.manager = manager
        # Holding the wrappers keeps the roots alive (and thus GC roots)
        # for the whole session, even if the caller drops them mid-sift.
        self.roots: Optional[List[BDD]] = list(roots) if roots is not None else None
        self._root_handles: Optional[List[int]] = (
            [root._h for root in self.roots] if self.roots is not None else None
        )
        self.swaps = 0
        self._allocated_at_sweep = manager._nodes_allocated

    def maybe_sweep(self) -> int:
        """Sweep only once enough garbage piled up to matter.

        The mark phase scans the live table, so sweeping after every
        sifted variable costs O(table) x variables even when the
        excursions rebuilt almost nothing.  Deferring until the session
        allocated a table-relative amount of nodes keeps the compounding
        in check at a fraction of the price.
        """
        allocated = self.manager._nodes_allocated - self._allocated_at_sweep
        if allocated <= max(1024, self.manager._live // 8):
            return 0
        return self.sweep()

    def sweep(self) -> int:
        """Reclaim dead nodes into the free-list; return how many dropped."""
        reclaimed = self.manager.collect(self._root_handles)
        self._allocated_at_sweep = self.manager._nodes_allocated
        return reclaimed

    def size(self) -> int:
        if self._root_handles is not None:
            return _live_size_h(self.manager, self._root_handles)
        return self.manager._live

    def population(self) -> Dict[int, int]:
        """Node count per level (live when roots are known, table otherwise)."""
        if self._root_handles is None:
            return self.manager.level_population()
        lv = self.manager._level
        low = self.manager._low
        high = self.manager._high
        counts: Dict[int, int] = {}
        seen: Set[int] = set()
        stack = list(self._root_handles)
        while stack:
            h = stack.pop()
            if h < 2 or h in seen:
                continue
            seen.add(h)
            level = lv[h]
            counts[level] = counts.get(level, 0) + 1
            stack.append(low[h])
            stack.append(high[h])
        return counts

    def swap(self, level: int) -> bool:
        """Swap two levels; returns whether any node was rebuilt."""
        rebuilt = _swap_levels(self.manager, level)
        self.swaps += 1
        return rebuilt

    def sift_variable(self, name: str, max_excursion: Optional[int] = None) -> int:
        """Move ``name`` to its locally optimal level; return the best size.

        ``max_excursion`` bounds how many levels the variable travels in
        each direction (Rudell's bounded-distance sifting): the per-swap
        cost is small thanks to the manager's per-level index, but the
        size *metric* costs a live-node traversal per swap, so the
        excursion length is the remaining time knob for sifting inside
        fast verification runs.  ``None`` keeps the classic full
        excursion.
        """
        manager = self.manager
        num = manager.num_vars()
        position = manager.level(name)
        if max_excursion is not None and max_excursion < 1:
            raise ValueError("max_excursion must be a positive integer or None")
        down_limit = num - 1
        up_limit = 0
        if max_excursion is not None:
            down_limit = min(num - 1, position + max_excursion)
            up_limit = max(0, position - max_excursion)
        size = best_size = self.size()
        best_position = position
        # A relabelling-only swap provably leaves every size metric
        # unchanged, so the (comparatively expensive) metric traversal
        # runs only after swaps that actually rebuilt nodes.
        # Downward excursion...
        for level in range(position, down_limit):
            if self.swap(level):
                size = self.size()
            if size < best_size:
                best_size, best_position = size, level + 1
        # ...then up through every remaining position in range...
        for level in range(down_limit, up_limit, -1):
            if self.swap(level - 1):
                size = self.size()
            if size < best_size:
                best_size, best_position = size, level - 1
        # ...and settle at the best position seen.
        for level in range(up_limit, best_position):
            self.swap(level)
        self.maybe_sweep()
        return best_size


def sift_variable(
    manager: BDDManager,
    name: str,
    roots: Optional[Iterable[BDD]] = None,
    max_excursion: Optional[int] = None,
) -> SiftResult:
    """Sift a single variable to its locally optimal position."""
    sifter = _Sifter(manager, roots)
    initial = sifter.size()
    final = sifter.sift_variable(name, max_excursion=max_excursion)
    # The per-variable sweep is allocation-thresholded; the session end
    # always sweeps so swap garbage is reclaimed into the free-list
    # before the caller measures or builds on the table.
    sifter.sweep()
    return SiftResult(
        initial_size=initial,
        final_size=final,
        passes=1,
        swaps=sifter.swaps,
        sifted_variables=1,
        order=manager.variables,
    )


def converge_sift(
    manager: BDDManager,
    roots: Optional[Iterable[BDD]] = None,
    max_passes: int = 4,
    max_variables: Optional[int] = None,
    max_excursion: Optional[int] = None,
) -> SiftResult:
    """Rudell's converging sifting over the whole variable order.

    Each pass sifts the variables in descending order of their current
    node population (the classic heuristic: fat levels first), then the
    next pass re-ranks and repeats until a pass stops improving the size
    or ``max_passes`` is exhausted.  ``max_variables`` bounds how many
    variables each pass touches and ``max_excursion`` how far each
    travels (the time budgets on big orders).
    """
    if max_passes < 1:
        raise ValueError("max_passes must be at least 1")
    sifter = _Sifter(manager, roots)
    initial = sifter.size()
    best_size = initial
    best_order = manager.variables
    passes = 0
    sifted = 0
    sizes_by_pass: List[int] = []
    for _ in range(max_passes):
        passes += 1
        population = sifter.population()
        ranked = sorted(
            (name for name in manager.variables if population.get(manager.level(name))),
            key=lambda name: population.get(manager.level(name), 0),
            reverse=True,
        )
        if max_variables is not None:
            ranked = ranked[:max_variables]
        for name in ranked:
            sifter.sift_variable(name, max_excursion=max_excursion)
            sifted += 1
        size = sifter.size()
        sizes_by_pass.append(size)
        improved = size < best_size
        if improved:
            best_size, best_order = size, manager.variables
        if not improved:
            break
    # A pass may end worse than the best point seen (the rootless table
    # metric in particular drifts with swap garbage); restore the best
    # order so the result describes the manager's actual state.
    if manager.variables != best_order:
        sifter.swaps += sift_to_order(manager, best_order)
    # Session end always sweeps (see sift_variable): garbage returned to
    # the free-list here is what keeps the arena from growing across
    # repeated reorder sessions.
    sifter.sweep()
    return SiftResult(
        initial_size=initial,
        final_size=sifter.size(),
        passes=passes,
        swaps=sifter.swaps,
        sifted_variables=sifted,
        order=manager.variables,
        sizes_by_pass=sizes_by_pass,
    )


def sift_to_order(manager: BDDManager, order: Sequence[str]) -> int:
    """Reorder the manager to an explicit target ``order`` via level swaps.

    ``order`` must be a permutation of the declared variables.  Returns
    the number of swaps performed.  Mostly useful in tests and for
    restoring a known-good order after an experiment.
    """
    if sorted(order) != sorted(manager.variables):
        raise ValueError("target order must be a permutation of the declared variables")
    swaps = 0
    sifter = _Sifter(manager, roots=None)
    for target_level, name in enumerate(order):
        current = manager.level(name)
        while current > target_level:
            sifter.swap(current - 1)
            swaps += 1
            current -= 1
        sifter.maybe_sweep()
    sifter.sweep()
    return swaps
