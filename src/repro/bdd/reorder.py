"""Dynamic variable reordering: level swaps and Rudell-style sifting.

Section 3.2 of the paper stresses that ROBDD size is critically
dependent on the variable order; the static heuristics in
:mod:`repro.bdd.ordering` pick the initial order, and this module moves
variables *after* construction.  The primitive is the classic adjacent
**level swap**: exchanging levels ``i`` and ``i+1`` only touches the
nodes at those two levels, and every node is mutated
*function-preservingly* — a :class:`~repro.bdd.node.BDDNode` object held
by a caller keeps denoting the same Boolean function before and after
the swap, so canonicity (node identity as equivalence) survives
reordering.  On top of the primitive sit Rudell's **sifting** procedure
(move one variable through every position, keep the best) and its
converging variant.

Every swap invalidates the manager's operation caches and fires the
manager's reorder hooks (see :meth:`BDDManager.add_reorder_hook`); the
campaign engine's :class:`~repro.engine.pool.ManagerPool` uses the hook
to retire a reordered manager from its pool, because pooled scenarios
expect the declared variable order.

Size metric
-----------
Sifting needs "how big are the BDDs right now" after every swap.  With
explicit ``roots`` (the functions the caller still cares about) the
metric counts exactly the live nodes reachable from them — precise, but
a full traversal per swap, so meant for modest tables.  Without roots
the unique-table size is used: O(1) to read, but it also counts dead
intermediate nodes (this manager has no reference counting), so swap
garbage biases the search toward the starting position.  Semantics are
unaffected either way; ``max_variables`` is the time-budget knob for
big tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .manager import BDDManager
from .node import BDDNode


def live_size(manager: BDDManager, roots: Sequence[BDDNode]) -> int:
    """Number of distinct nodes reachable from ``roots`` (iterative DFS).

    This is sifting's exact size metric; callers budgeting a sift (the
    campaign executor) use it once up front to decide whether the exact
    metric is affordable at all.
    """
    seen: Set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.node_id in seen:
            continue
        seen.add(node.node_id)
        if not node.is_terminal:
            stack.append(node.low)
            stack.append(node.high)
    return len(seen)


def _swap_levels(manager: BDDManager, level: int) -> bool:
    """Swap the variables at ``level``/``level + 1`` in place.

    The two levels' node lists come from the manager's own per-level
    index (maintained on allocation, sweep and swap), so the cost of a
    swap is proportional to the two levels' populations — never to the
    whole unique table.  Returns whether any node was *rebuilt*: a swap
    that only relabelled levels (no ``x`` node depended on ``y``) cannot
    change any size metric, which lets sifting skip the per-swap size
    traversal on the — typically dominant — non-interacting steps.

    Let ``x`` be the variable at ``level`` and ``y`` the one below it:

    * nodes testing ``y`` keep their structure — ``y`` simply moved up,
      so only their level number changes;
    * nodes testing ``x`` that do not depend on ``y`` likewise just move
      down one level;
    * nodes testing ``x`` with a ``y``-child are rebuilt through the
      Shannon expansion ``f = y ? (x ? f11 : f01) : (x ? f10 : f00)``,
      reusing the object for the new top node so every external
      reference to ``f`` stays valid.
    """
    unique = manager._unique
    x_nodes = manager.nodes_at_level(level)
    y_nodes = manager.nodes_at_level(level + 1)

    # Plan the rebuilds against the *old* structure before any relabelling.
    y_ids = {node.node_id for node in y_nodes}
    independent: List[BDDNode] = []
    rebuilds: List[Tuple[BDDNode, BDDNode, BDDNode, BDDNode, BDDNode]] = []
    for node in x_nodes:
        low, high = node.low, node.high
        low_tests_y = low.node_id in y_ids
        high_tests_y = high.node_id in y_ids
        if not low_tests_y and not high_tests_y:
            independent.append(node)
            continue
        f00, f01 = (low.low, low.high) if low_tests_y else (low, low)
        f10, f11 = (high.low, high.high) if high_tests_y else (high, high)
        rebuilds.append((node, f00, f01, f10, f11))

    # Drop the affected unique-table entries (their keys are about to change).
    for node in x_nodes:
        unique.pop((level, node.low.node_id, node.high.node_id), None)
    for node in y_nodes:
        unique.pop((level + 1, node.low.node_id, node.high.node_id), None)

    # y moves up: structure unchanged, only the level number changes.
    for node in y_nodes:
        node.level = level
        unique[(level, node.low.node_id, node.high.node_id)] = node
    # x-nodes independent of y move down unchanged.
    for node in independent:
        node.level = level + 1
        unique[(level + 1, node.low.node_id, node.high.node_id)] = node
    # Re-bucket the per-level index before the rebuilds: nodes the
    # rebuild loop hash-conses at ``level + 1`` are appended to the new
    # bucket incrementally by ``_mk``.
    manager._index_set_level(level, y_nodes)
    manager._index_set_level(level + 1, independent)
    # Dependent x-nodes are rebuilt in place; their new children at
    # ``level + 1`` test x and are hash-consed against the re-keyed table.
    for node, f00, f01, f10, f11 in rebuilds:
        new_low = manager._mk(level + 1, f00, f10)
        new_high = manager._mk(level + 1, f01, f11)
        node.low = new_low
        node.high = new_high
        unique[(level, new_low.node_id, new_high.node_id)] = node
        manager._level_index[level][node.node_id] = node

    # Exchange the variable names and levels.
    names = manager._name_of
    names[level], names[level + 1] = names[level + 1], names[level]
    manager._level_of[names[level]] = level
    manager._level_of[names[level + 1]] = level + 1

    manager._note_order_change()
    return bool(rebuilds)


def swap_adjacent(manager: BDDManager, level: int) -> None:
    """Exchange the variables at ``level`` and ``level + 1`` in place.

    The standalone reordering primitive, served entirely from the
    manager's per-level node index.  All affected unique-table entries
    are re-keyed, the operation caches are dropped and the manager's
    reorder hooks fire.
    """
    num = manager.num_vars()
    if not 0 <= level < num - 1:
        raise ValueError(f"cannot swap levels {level} and {level + 1} of {num} variables")
    _swap_levels(manager, level)


@dataclass
class SiftResult:
    """Outcome of a sifting run."""

    initial_size: int
    final_size: int
    passes: int = 0
    swaps: int = 0
    sifted_variables: int = 0
    order: Tuple[str, ...] = ()
    sizes_by_pass: List[int] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return self.final_size < self.initial_size

    def to_dict(self) -> Dict[str, object]:
        return {
            "initial_size": self.initial_size,
            "final_size": self.final_size,
            "passes": self.passes,
            "swaps": self.swaps,
            "sifted_variables": self.sifted_variables,
        }


class _Sifter:
    """Size metric, swap accounting and session cleanup for sifting.

    The per-level node lists live on the manager itself
    (:meth:`BDDManager.nodes_at_level`), updated by every allocation,
    swap and sweep, so the sifter no longer scans the unique table — not
    at construction and not per swap.

    Without reference counting, every rebuild leaves the node it replaced
    in the unique table, and repeated excursions rebuild that garbage
    again — table growth compounds exponentially across sifted variables
    if left alone.  The sifter therefore sweeps after every sifted
    variable: nodes *created during this sifting session* (their ids are
    past ``session_floor``) cannot be referenced by any caller, so the
    ones no longer reachable from pre-session nodes or the roots are
    safely reclaimed.  Pre-session nodes are never collected — external
    code may hold them, and dropping a held node would break canonicity.
    """

    def __init__(self, manager: BDDManager, roots: Optional[Iterable[BDDNode]]):
        self.manager = manager
        self.roots: Optional[List[BDDNode]] = list(roots) if roots is not None else None
        self.swaps = 0
        self.session_floor = manager._next_id
        self._allocated_at_sweep = manager._next_id

    def maybe_sweep(self) -> int:
        """Sweep only once enough session nodes piled up to matter.

        The mark phase scans the whole table, so sweeping after every
        sifted variable costs O(table) x variables even when the
        excursions rebuilt almost nothing.  Deferring until the session
        allocated a table-relative amount of garbage keeps the
        compounding in check at a fraction of the price.
        """
        allocated = self.manager._next_id - self._allocated_at_sweep
        if allocated <= max(1024, len(self.manager._unique) // 8):
            return 0
        return self.sweep()

    def sweep(self) -> int:
        """Reclaim dead session-created nodes; return how many were dropped."""
        unique = self.manager._unique
        floor = self.session_floor
        marked: Set[int] = set()
        stack: List[BDDNode] = [
            node for node in unique.values() if node.node_id < floor
        ]
        if self.roots is not None:
            stack.extend(self.roots)
        while stack:
            node = stack.pop()
            if node.node_id in marked:
                continue
            marked.add(node.node_id)
            if not node.is_terminal:
                stack.append(node.low)
                stack.append(node.high)
        dead = [
            (key, node)
            for key, node in unique.items()
            if node.node_id >= floor and node.node_id not in marked
        ]
        if not dead:
            self._allocated_at_sweep = self.manager._next_id
            return 0
        for key, node in dead:
            del unique[key]
            self.manager._index_discard(node)
        self._allocated_at_sweep = self.manager._next_id
        return len(dead)

    def size(self) -> int:
        if self.roots is not None:
            return live_size(self.manager, self.roots)
        return len(self.manager._unique)

    def population(self) -> Dict[int, int]:
        """Node count per level (live when roots are known, table otherwise)."""
        if self.roots is None:
            return self.manager.level_population()
        counts: Dict[int, int] = {}
        seen: Set[int] = set()
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            if node.node_id in seen or node.is_terminal:
                continue
            seen.add(node.node_id)
            counts[node.level] = counts.get(node.level, 0) + 1
            stack.append(node.low)
            stack.append(node.high)
        return counts

    def swap(self, level: int) -> bool:
        """Swap two levels; returns whether any node was rebuilt."""
        rebuilt = _swap_levels(self.manager, level)
        self.swaps += 1
        return rebuilt

    def sift_variable(self, name: str, max_excursion: Optional[int] = None) -> int:
        """Move ``name`` to its locally optimal level; return the best size.

        ``max_excursion`` bounds how many levels the variable travels in
        each direction (Rudell's bounded-distance sifting): the per-swap
        cost is small thanks to the manager's per-level index, but the
        size *metric* costs a live-node traversal per swap, so the
        excursion length is the remaining time knob for sifting inside
        fast verification runs.  ``None`` keeps the classic full
        excursion.
        """
        manager = self.manager
        num = manager.num_vars()
        position = manager.level(name)
        if max_excursion is not None and max_excursion < 1:
            raise ValueError("max_excursion must be a positive integer or None")
        down_limit = num - 1
        up_limit = 0
        if max_excursion is not None:
            down_limit = min(num - 1, position + max_excursion)
            up_limit = max(0, position - max_excursion)
        size = best_size = self.size()
        best_position = position
        # A relabelling-only swap provably leaves every size metric
        # unchanged, so the (comparatively expensive) metric traversal
        # runs only after swaps that actually rebuilt nodes.
        # Downward excursion...
        for level in range(position, down_limit):
            if self.swap(level):
                size = self.size()
            if size < best_size:
                best_size, best_position = size, level + 1
        # ...then up through every remaining position in range...
        for level in range(down_limit, up_limit, -1):
            if self.swap(level - 1):
                size = self.size()
            if size < best_size:
                best_size, best_position = size, level - 1
        # ...and settle at the best position seen.
        for level in range(up_limit, best_position):
            self.swap(level)
        self.maybe_sweep()
        return best_size


def sift_variable(
    manager: BDDManager,
    name: str,
    roots: Optional[Iterable[BDDNode]] = None,
    max_excursion: Optional[int] = None,
) -> SiftResult:
    """Sift a single variable to its locally optimal position."""
    sifter = _Sifter(manager, roots)
    initial = sifter.size()
    final = sifter.sift_variable(name, max_excursion=max_excursion)
    # The per-variable sweep is allocation-thresholded; the session end
    # always sweeps so no dead session node outlives the sift (a later
    # session's floor would make it uncollectable forever).
    sifter.sweep()
    return SiftResult(
        initial_size=initial,
        final_size=final,
        passes=1,
        swaps=sifter.swaps,
        sifted_variables=1,
        order=manager.variables,
    )


def converge_sift(
    manager: BDDManager,
    roots: Optional[Iterable[BDDNode]] = None,
    max_passes: int = 4,
    max_variables: Optional[int] = None,
    max_excursion: Optional[int] = None,
) -> SiftResult:
    """Rudell's converging sifting over the whole variable order.

    Each pass sifts the variables in descending order of their current
    node population (the classic heuristic: fat levels first), then the
    next pass re-ranks and repeats until a pass stops improving the size
    or ``max_passes`` is exhausted.  ``max_variables`` bounds how many
    variables each pass touches and ``max_excursion`` how far each
    travels (the time budgets on big orders).
    """
    if max_passes < 1:
        raise ValueError("max_passes must be at least 1")
    sifter = _Sifter(manager, roots)
    initial = sifter.size()
    best_size = initial
    best_order = manager.variables
    passes = 0
    sifted = 0
    sizes_by_pass: List[int] = []
    for _ in range(max_passes):
        passes += 1
        population = sifter.population()
        ranked = sorted(
            (name for name in manager.variables if population.get(manager.level(name))),
            key=lambda name: population.get(manager.level(name), 0),
            reverse=True,
        )
        if max_variables is not None:
            ranked = ranked[:max_variables]
        for name in ranked:
            sifter.sift_variable(name, max_excursion=max_excursion)
            sifted += 1
        size = sifter.size()
        sizes_by_pass.append(size)
        improved = size < best_size
        if improved:
            best_size, best_order = size, manager.variables
        if not improved:
            break
    # A pass may end worse than the best point seen (the rootless table
    # metric in particular drifts with swap garbage); restore the best
    # order so the result describes the manager's actual state.
    if manager.variables != best_order:
        sifter.swaps += sift_to_order(manager, best_order)
    # Session end always sweeps (see sift_variable): dead session nodes
    # left behind would sit above every later session's floor, making
    # them permanently uncollectable.
    sifter.sweep()
    return SiftResult(
        initial_size=initial,
        final_size=sifter.size(),
        passes=passes,
        swaps=sifter.swaps,
        sifted_variables=sifted,
        order=manager.variables,
        sizes_by_pass=sizes_by_pass,
    )


def sift_to_order(manager: BDDManager, order: Sequence[str]) -> int:
    """Reorder the manager to an explicit target ``order`` via level swaps.

    ``order`` must be a permutation of the declared variables.  Returns
    the number of swaps performed.  Mostly useful in tests and for
    restoring a known-good order after an experiment.
    """
    if sorted(order) != sorted(manager.variables):
        raise ValueError("target order must be a permutation of the declared variables")
    swaps = 0
    sifter = _Sifter(manager, roots=None)
    for target_level, name in enumerate(order):
        current = manager.level(name)
        while current > target_level:
            sifter.swap(current - 1)
            swaps += 1
            current -= 1
        sifter.sweep()
    return swaps
