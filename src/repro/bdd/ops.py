"""Derived BDD operations used throughout the verification flow.

These helpers sit on top of :class:`repro.bdd.manager.BDDManager` and
provide the few higher-level idioms that the FSM and processor layers
need repeatedly: building cubes for integer-valued signals, comparing
vectors of functions, and summarising BDDs for reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .manager import BDDManager
from .node import BDDNode


def int_to_bits(value: int, width: int) -> List[bool]:
    """Little-endian bit expansion of ``value`` on ``width`` bits."""
    if value < 0:
        value &= (1 << width) - 1
    return [bool((value >> i) & 1) for i in range(width)]


def bits_to_int(bits: Sequence[bool]) -> int:
    """Integer value of a little-endian bit sequence."""
    result = 0
    for i, bit in enumerate(bits):
        if bit:
            result |= 1 << i
    return result


def encode_value(manager: BDDManager, names: Sequence[str], value: int) -> BDDNode:
    """Cube asserting that the bit-vector ``names`` equals ``value``.

    ``names`` are little-endian: ``names[0]`` is the least significant bit.
    """
    assignment = {name: bit for name, bit in zip(names, int_to_bits(value, len(names)))}
    return manager.cube(assignment)

def vector_equal(
    manager: BDDManager, left: Sequence[BDDNode], right: Sequence[BDDNode]
) -> BDDNode:
    """Function that is 1 exactly when the two function vectors agree."""
    if len(left) != len(right):
        raise ValueError("vectors must have the same width")
    result = manager.one
    for a, b in zip(left, right):
        result = manager.apply_and(result, manager.apply_xnor(a, b))
    return result


def vectors_identical(left: Sequence[BDDNode], right: Sequence[BDDNode]) -> bool:
    """Canonical equality of two function vectors (node identity per bit)."""
    return len(left) == len(right) and all(a is b for a, b in zip(left, right))


def restrict_vector(
    manager: BDDManager, vector: Sequence[BDDNode], assignment: Mapping[str, bool]
) -> List[BDDNode]:
    """Cofactor every bit of a function vector by the same assignment."""
    return [manager.restrict(bit, assignment) for bit in vector]


def compose_vector(
    manager: BDDManager, vector: Sequence[BDDNode], substitution: Mapping[str, BDDNode]
) -> List[BDDNode]:
    """Compose every bit of a function vector with the same substitution."""
    return [manager.compose(bit, substitution) for bit in vector]


def vector_support(manager: BDDManager, vector: Sequence[BDDNode]) -> Tuple[str, ...]:
    """Union of the supports of all bits, in variable order."""
    levels = set()
    for bit in vector:
        for name in manager.support(bit):
            levels.add(manager.level(name))
    return tuple(manager.name_at_level(level) for level in sorted(levels))


def vector_node_count(manager: BDDManager, vector: Sequence[BDDNode]) -> int:
    """Number of distinct nodes in the (shared) DAG of a function vector."""
    seen = set()

    def walk(node: BDDNode) -> None:
        if node.node_id in seen:
            return
        seen.add(node.node_id)
        if not node.is_terminal:
            walk(node.low)
            walk(node.high)

    for bit in vector:
        walk(bit)
    return len(seen)


def evaluate_vector(
    manager: BDDManager, vector: Sequence[BDDNode], assignment: Mapping[str, bool]
) -> int:
    """Evaluate a function vector under an assignment to an integer."""
    return bits_to_int([manager.evaluate(bit, assignment) for bit in vector])


def find_distinguishing_assignment(
    manager: BDDManager, left: Sequence[BDDNode], right: Sequence[BDDNode]
) -> Optional[Dict[str, bool]]:
    """An assignment on which the two function vectors differ, if any.

    Used to produce counterexamples when a verification run fails: the
    assignment gives concrete instruction encodings and initial register
    values exhibiting the divergence.
    """
    difference = manager.apply_not(vector_equal(manager, left, right))
    return manager.pick_assignment(difference)
