"""ROBDD manager: the public face of the array-backed kernel.

This module implements the BDD substrate described in Section 3.2 of the
paper.  It provides:

* hash-consed node construction (canonical form),
* the ``apply`` / ``ite`` operations for combining functions,
* cofactoring (restriction) by literals,
* the smoothing operator (existential quantification, Definition 3.3.1),
* universal quantification,
* the combined AND-smooth (relational product) used for image
  computation ([BCMD90] in the paper),
* functional composition and variable renaming,
* satisfiability, tautology and model-counting queries.

The representation lives in :class:`~repro.bdd.kernel.BDDKernel`
(struct-of-arrays, integer handles, arena GC); :class:`BDDManager`
subclasses it and adds what the kernel deliberately does not know
about: the variable *order* (names <-> levels), the weakly-interned
:class:`~repro.bdd.node.BDD` wrappers that give consumers the classic
object API, and the reorder-hook machinery the campaign engine's
manager pool relies on.  All functions handled by one manager share its
order, which is what makes node identity a sound equivalence check.
"""

from __future__ import annotations

import itertools
import weakref
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import telemetry
from .kernel import BDDKernel, OP_EXISTS, OP_FORALL, SnapshotError
from .node import BDD

#: C-level weak reference constructor (hot in :meth:`BDDManager._wrap`).
_weakref_new = weakref.ref
#: C-level instance allocator (hot in :meth:`BDDManager._wrap`).
_bdd_alloc = object.__new__


class BDDOrderError(ValueError):
    """Raised when a variable is used before being declared."""


class _LevelBucket(set):
    """One level's live handles, doubling as a node_id -> node mapping.

    The kernel treats a bucket as a plain set of handles (C-speed
    ``add``/``discard`` on the hot allocation path); the mapping facade
    — ``keys`` / ``items`` / ``__getitem__`` returning interned
    wrappers — serves the diagnostic views (``nodes_at_level``, the
    level-index invariant tests), where ``node_id == handle`` makes the
    set elements the keys.
    """

    __slots__ = ("_manager",)

    def __init__(self, manager: "BDDManager", handles: Iterable[int] = ()) -> None:
        set.__init__(self, handles)
        self._manager = manager

    def keys(self) -> set:
        return set(self)

    def __getitem__(self, handle: int) -> BDD:
        if handle in self:
            return self._manager._wrap(handle)
        raise KeyError(handle)

    def get(self, handle: int, default=None):
        if handle in self:
            return self._manager._wrap(handle)
        return default

    def items(self) -> List[Tuple[int, BDD]]:
        wrap = self._manager._wrap
        return [(handle, wrap(handle)) for handle in self]

    def values(self) -> List[BDD]:
        wrap = self._manager._wrap
        return [wrap(handle) for handle in self]


class _UniqueTableView:
    """Read-only object view of the kernel's int-keyed unique table.

    The kernel splits the table into per-level subtables (``level ->
    {(low, high) -> handle}``); this view re-exposes it flat, keyed by
    the classic ``(level, low, high)`` handle triples (exactly the old
    object-graph keys, since ``node_id == handle``), with values
    materialised as interned wrappers.  Diagnostics and tests read
    this; the kernel itself works on the underlying dicts.
    """

    __slots__ = ("_manager",)

    def __init__(self, manager: "BDDManager") -> None:
        self._manager = manager

    def __len__(self) -> int:
        return self._manager._live

    def __iter__(self):
        for level, sub in self._manager._table.items():
            for low, high in sub:
                yield (level, low, high)

    def __contains__(self, key) -> bool:
        sub = self._manager._table.get(key[0])
        return sub is not None and (key[1], key[2]) in sub

    def keys(self) -> List[Tuple[int, int, int]]:
        return list(self)

    def values(self) -> List[BDD]:
        wrap = self._manager._wrap
        return [
            wrap(handle)
            for sub in self._manager._table.values()
            for handle in sub.values()
        ]

    def items(self) -> List[Tuple[Tuple[int, int, int], BDD]]:
        wrap = self._manager._wrap
        return [
            ((level, low, high), wrap(handle))
            for level, sub in self._manager._table.items()
            for (low, high), handle in sub.items()
        ]


class BDDManager(BDDKernel):
    """Owner of a variable order, unique table and operation caches.

    ``cache_limit`` bounds the number of entries each operation cache may
    hold: when a cache grows past the limit it is dropped wholesale (the
    unique table — and therefore every constructed function — is kept, so
    results are unaffected; only recomputation cost changes).  Long
    campaigns that reuse one manager across many verification runs use
    this to keep memory flat.  ``None`` leaves the caches unbounded.
    """

    def __init__(
        self,
        variables: Optional[Sequence[str]] = None,
        cache_limit: Optional[int] = None,
    ) -> None:
        super().__init__(cache_limit=cache_limit)
        self._level_of: Dict[str, int] = {}
        self._name_of: List[str] = []
        self._reorder_count = 0
        self._reorder_hooks: List[Callable[["BDDManager"], None]] = []
        #: Weakly-interned wrappers: handle -> weakref to the live BDD
        #: object.  One live wrapper per handle keeps node identity a
        #: sound equivalence check; entries whose referent died mark
        #: their handles as GC candidates.  A plain dict of callback-free
        #: ``weakref.ref`` objects, not a ``WeakValueDictionary``: minting
        #: a wrapper is the hot path of every cold apply chain, and the
        #: KeyedRef + removal-callback machinery costs several times the
        #: raw C-level ref.  Dead entries are tolerated until the next
        #: :meth:`collect` (a GC safe point), which purges them.
        self._wrappers: Dict[int, "weakref.ref[BDD]"] = {}
        #: Strong ring of recently minted wrappers.  Without it every
        #: transient intermediate result pays wrapper + weakref churn on
        #: each touch (the dominant cost of warm small operations); the
        #: ring keeps the hot working set interned.  It is flushed by
        #: :meth:`collect`, so the collector still sees exactly the
        #: wrappers external code holds.  Allocated lazily on the first
        #: mint and kept small (256 slots cover the warm working sets
        #: measured in ``bench_bdd_kernel``): the ring's strong wrapper
        #: references are what make a dropped manager *cyclic* garbage,
        #: so every slot is weight the cycle collector must walk — the
        #: measured cold-chain tax of the old eager 1024-slot ring.
        self._recent_wrappers: Optional[List[Optional[BDD]]] = None
        self._recent_index = 0
        # Terminal wrappers without the __init__ dispatch (cold manager
        # construction is a measured regime; see _wrap).
        zero = _bdd_alloc(BDD)
        zero.manager = self
        zero._h = 0
        one = _bdd_alloc(BDD)
        one.manager = self
        one._h = 1
        self.zero = zero
        self.one = one
        self._unique_view: Optional[_UniqueTableView] = None
        #: Session-scoped artifact cache for layers above the kernel
        #: (e.g. the relational backend's extracted beta relations).
        #: Entries hold wrappers, so they double as GC roots; the cache
        #: lives exactly as long as the manager — the pool's session.
        self.session_cache: Dict[object, object] = {}
        if variables:
            # Inlined declare loop: fresh short-lived managers (cold
            # chains, worker rehydration) construct in bulk.
            level_of = self._level_of
            name_of = self._name_of
            for name in variables:
                if name not in level_of:
                    level_of[name] = len(name_of)
                    name_of.append(name)
            self._depth_hint = len(name_of)

    # ------------------------------------------------------------------
    # Kernel hooks & wrapper interning
    # ------------------------------------------------------------------
    def _new_bucket(self, handles: Iterable[int] = ()) -> _LevelBucket:
        if handles:
            return _LevelBucket(self, handles)
        # Empty-bucket fast path: the allocation tails create a bucket
        # the first time a level is populated, and ``set.__new__``
        # already yields an initialised empty set — skipping the
        # __init__ dispatch keeps first-node-per-level cheap on cold
        # managers.
        bucket = set.__new__(_LevelBucket)
        bucket._manager = self
        return bucket

    def _external_roots(self) -> List[int]:
        # Materialising items() pins the mapping for the duration of the
        # walk; dead refs are simply skipped (purged by collect()).
        return [
            handle
            for handle, ref in list(self._wrappers.items())
            if ref() is not None
        ]

    def _wrap(self, handle: int) -> BDD:
        """The canonical wrapper for ``handle`` (interned, weak)."""
        if handle < 2:
            return self.one if handle else self.zero
        ref = self._wrappers.get(handle)
        if ref is not None:
            wrapper = ref()
            if wrapper is not None:
                return wrapper
        # Minting is hot on cold chains: allocate the wrapper without
        # the __init__ dispatch and set its two slots directly.
        wrapper = _bdd_alloc(BDD)
        wrapper.manager = self
        wrapper._h = handle
        self._wrappers[handle] = _weakref_new(wrapper)
        ring = self._recent_wrappers
        if ring is None:
            ring = self._recent_wrappers = [None] * 256
        index = self._recent_index + 1 & 255
        self._recent_index = index
        ring[index] = wrapper
        return wrapper

    @property
    def _unique(self) -> _UniqueTableView:
        """Object view of the unique table (diagnostics and tests)."""
        view = self._unique_view
        if view is None:
            view = self._unique_view = _UniqueTableView(self)
        return view

    def collect(self, roots: Optional[Iterable[object]] = None) -> int:
        """Mark-and-sweep the arena; ``roots`` may be wrappers or handles."""
        handles: Optional[List[int]] = None
        if roots is not None:
            handles = [
                root._h if isinstance(root, BDD) else root for root in roots
            ]
        # Flush the strong wrapper ring: it exists for interning speed,
        # not liveness, and dropping it here (refcounts retire the dead
        # wrappers synchronously) keeps the root set exactly the
        # wrappers external code still holds.  The next mint lazily
        # re-allocates it.
        self._recent_wrappers = None
        reclaimed = super().collect(handles)
        # Purge interning entries whose wrapper died (the mapping uses
        # callback-free refs, so dead entries linger until a safe point).
        wrappers = self._wrappers
        for handle in [h for h, ref in wrappers.items() if ref() is None]:
            del wrappers[handle]
        return reclaimed

    # ------------------------------------------------------------------
    # Arena snapshots (name-aware)
    # ------------------------------------------------------------------
    def snapshot(
        self, roots: Iterable[BDD], declares: Optional[Iterable[str]] = None
    ) -> Dict[str, object]:
        """Name-aware arena snapshot of the functions in ``roots``.

        Extends the kernel's compact serialisation with the variable
        *names* behind the recorded levels, which is what lets another
        manager — with its own (possibly longer or differently prefixed)
        order — rehydrate the functions: :meth:`restore` maps each
        recorded level to the target manager's level of the same name
        and revalidates monotonicity, so only the *relative* order of
        the variables actually used must match.  ``declares`` records a
        declaration sequence to replay verbatim before restoring; it
        defaults to the used variables in this manager's order, and the
        beta backend passes the exact declarations its extraction would
        have performed, keeping the declared order of a rehydrating
        manager byte-identical to a freshly extracting one.
        """
        with telemetry.span("snapshot.serialize", manager=self) as ser_span:
            payload = super().snapshot(
                [root._h if isinstance(root, BDD) else root for root in roots]
            )
            names = self._name_of
            try:
                payload["level_names"] = [
                    [lvl, names[lvl]] for lvl in sorted(set(payload["levels"]))
                ]
            except IndexError:
                raise SnapshotError(
                    "snapshot roots test levels with no declared variable"
                ) from None
            if declares is None:
                declares = [name for _lvl, name in payload["level_names"]]
            payload["declares"] = list(declares)
            ser_span.set(nodes=len(payload.get("levels", ())))
        return payload

    def restore(self, payload: Dict[str, object]) -> List[BDD]:
        """Rehydrate a :meth:`snapshot` payload; returns the root wrappers.

        Replays the recorded declaration sequence, maps recorded levels
        to this manager's levels by variable name, and rebuilds the
        nodes through the hash-consing constructor (see the kernel's
        :meth:`~repro.bdd.kernel.BDDKernel.restore` for the validation
        guarantees).  Raises :class:`~repro.bdd.kernel.SnapshotError` on
        any mismatch — unknown variables, incompatible relative order,
        corrupt payload — without having built a wrong function; the
        declarations it may have replayed are exactly the ones a fresh
        computation would declare, so a failed restore leaves the
        manager in the state that fallback recomputation expects.
        """
        with telemetry.span("snapshot.validate", manager=self) as val_span:
            return self._restore_validated(payload, val_span)

    def _restore_validated(
        self, payload: Dict[str, object], val_span
    ) -> List[BDD]:
        try:
            declares = payload.get("declares", ())
            level_names = payload["level_names"]
        except (TypeError, KeyError, AttributeError) as exc:
            raise SnapshotError(f"malformed snapshot payload: {exc!r}") from None
        # Validate the payload's bookkeeping *before* touching the
        # manager: declare_all mutates the (possibly pooled, shared)
        # variable order, and a malformed record must not leave stray
        # declarations behind — that would silently break the
        # order-signature pooling contract for every later scenario.
        if not isinstance(declares, (list, tuple)) or not all(
            isinstance(name, str) for name in declares
        ):
            raise SnapshotError("malformed snapshot declares (not a name list)")
        try:
            pairs = [(int(lvl), name) for lvl, name in level_names]
        except (TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed level_names entry: {exc!r}") from None
        if not all(isinstance(name, str) for _lvl, name in pairs):
            raise SnapshotError("malformed level_names entry (non-string name)")
        declares_set = set(declares)
        for _lvl, name in pairs:
            if name not in self._level_of and name not in declares_set:
                # Refuse before declaring anything: replaying declares
                # and *then* failing the name mapping would leave stray
                # declarations on this (possibly pooled) manager.
                raise SnapshotError(
                    f"snapshot variable {name!r} is neither declared nor in "
                    "the snapshot's declaration sequence"
                )
        self.declare_all(declares)
        level_map: Dict[int, int] = {}
        level_of = self._level_of
        for lvl, name in pairs:
            target = level_of.get(name)
            if target is None:
                raise SnapshotError(
                    f"snapshot variable {name!r} is not declared on this manager"
                )
            level_map[lvl] = target
        handles = super().restore(payload, level_map)
        val_span.set(roots=len(handles), declares=len(declares))
        wrap = self._wrap
        return [wrap(handle) for handle in handles]

    # ------------------------------------------------------------------
    # Variable order management
    # ------------------------------------------------------------------
    def declare(self, name: str) -> None:
        """Append ``name`` to the variable order if not already present."""
        if name in self._level_of:
            return
        self._level_of[name] = len(self._name_of)
        self._name_of.append(name)
        self._depth_hint = len(self._name_of)

    def declare_all(self, names: Iterable[str]) -> None:
        """Declare several variables in the given order."""
        for name in names:
            self.declare(name)

    @property
    def variables(self) -> Tuple[str, ...]:
        """The current variable order, root-most first."""
        return tuple(self._name_of)

    def level(self, name: str) -> int:
        """Level (order position) of a declared variable."""
        try:
            return self._level_of[name]
        except KeyError:
            raise BDDOrderError(f"variable {name!r} has not been declared") from None

    def name_at_level(self, level: int) -> str:
        """Variable name at a given level."""
        return self._name_of[level]

    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._name_of)

    def _levels_of(self, names: Iterable[str]) -> frozenset:
        """Level set of declared variable names (inlined hot-path form)."""
        lof = self._level_of
        try:
            return frozenset(lof[name] for name in names)
        except KeyError as exc:
            raise BDDOrderError(
                f"variable {exc.args[0]!r} has not been declared"
            ) from None

    def _levels_map(self, pairs: Iterable[Tuple[str, object]]) -> Dict[int, object]:
        """``{level: value}`` from ``(name, value)`` pairs (hot-path form)."""
        lof = self._level_of
        try:
            return {lof[name]: value for name, value in pairs}
        except KeyError as exc:
            raise BDDOrderError(
                f"variable {exc.args[0]!r} has not been declared"
            ) from None

    # ------------------------------------------------------------------
    # Per-level node index
    # ------------------------------------------------------------------
    def nodes_at_level(self, level: int) -> List[BDD]:
        """Live non-terminal nodes currently testing the variable at ``level``.

        Served from the per-level index in O(population) — no unique-table
        scan — which is what makes engine-scale sifting affordable: an
        adjacent level swap reads exactly the two levels it touches.
        """
        bucket = self._level_index.get(level)
        if not bucket:
            return []
        wrap = self._wrap
        return [wrap(handle) for handle in bucket]

    def level_population(self) -> Dict[int, int]:
        """Node count per level (only levels with at least one node)."""
        return {
            level: len(bucket)
            for level, bucket in self._level_index.items()
            if bucket
        }

    # ------------------------------------------------------------------
    # Dynamic reordering support (see repro.bdd.reorder)
    # ------------------------------------------------------------------
    def add_reorder_hook(self, hook: Callable[["BDDManager"], None]) -> None:
        """Register ``hook`` to be called after any variable-order change.

        Hooks let owners of derived state — the campaign engine's manager
        pool, memo tables keyed by variable order — invalidate themselves
        when :mod:`repro.bdd.reorder` changes the order under them.
        """
        self._reorder_hooks.append(hook)

    def remove_reorder_hook(self, hook: Callable[["BDDManager"], None]) -> None:
        """Unregister a previously added reorder hook (no-op if absent)."""
        try:
            self._reorder_hooks.remove(hook)
        except ValueError:
            pass

    @property
    def reorder_count(self) -> int:
        """How many variable-order changes this manager has undergone."""
        return self._reorder_count

    def _note_order_change(self) -> None:
        """Invalidate order-dependent state after a level swap.

        The op cache keys results by levels (through the interned
        level-set/substitution signatures), which a swap renumbers, so
        it is dropped.  The ITE cache is *kept*: its keys and values are
        pure handles, every handle keeps denoting the same Boolean
        function through a function-preserving swap, and the unique
        table keeps every live node canonical under the new order — so
        each cached ``r = ite(f, g, h)`` equation still holds verbatim.
        (The object-graph kernel dropped it anyway for obviousness; at
        array-kernel swap rates the wholesale clear of a warm
        ~10^5-entry cache was the dominant cost of a fat swap.)
        Registered reorder hooks fire last so pool owners can re-key or
        evict this manager.
        """
        if self._op_cache:
            self._drop_cache(self._op_cache)
        self._reorder_count += 1
        for hook in list(self._reorder_hooks):
            hook(self)

    def sift(
        self,
        roots: Optional[Iterable[BDD]] = None,
        converge: bool = True,
        max_passes: int = 4,
        max_variables: Optional[int] = None,
        max_excursion: Optional[int] = None,
    ):
        """Dynamically reorder this manager's variables by Rudell sifting.

        Convenience wrapper over :func:`repro.bdd.reorder.converge_sift`
        (one pass when ``converge`` is false).  ``roots`` — the functions
        the caller still cares about — make the size metric exact; without
        them the unique-table size (which includes dead intermediate
        nodes) is used.  ``max_variables`` bounds how many variables each
        pass sifts and ``max_excursion`` how many levels each travels
        (the time budgets on big tables; swaps themselves are in-place
        array writes over the per-level node index, so the metric
        traversal dominates).  Returns the
        :class:`~repro.bdd.reorder.SiftResult`.
        """
        from .reorder import converge_sift

        return converge_sift(
            self,
            roots=roots,
            max_passes=max_passes if converge else 1,
            max_variables=max_variables,
            max_excursion=max_excursion,
        )

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: BDD, high: BDD) -> BDD:
        """Hash-consed node constructor with the reduction rules applied."""
        return self._wrap(self._mk_int(level, low._h, high._h))

    def constant(self, value: bool) -> BDD:
        """The terminal node for a Boolean constant."""
        return self.one if value else self.zero

    def var(self, name: str) -> BDD:
        """The function of a single positive literal."""
        lvl = self._level_of.get(name)
        if lvl is None:
            self.declare(name)
            lvl = self._level_of[name]
        return self._wrap(self._mk_int(lvl, 0, 1))

    def nvar(self, name: str) -> BDD:
        """The function of a single negative literal."""
        lvl = self._level_of.get(name)
        if lvl is None:
            self.declare(name)
            lvl = self._level_of[name]
        return self._wrap(self._mk_int(lvl, 1, 0))

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: BDD, g: BDD, h: BDD) -> BDD:
        """Compute ``if f then g else h``.

        All binary Boolean connectives are expressed through ``ite``,
        which plays the role of the recursive *apply* operation of
        Section 3.2 (here: one explicit-stack core over the arrays, see
        :meth:`~repro.bdd.kernel.BDDKernel._ite3`).
        """
        return self._wrap(self._ite3(f._h, g._h, h._h))

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def apply_not(self, f: BDD) -> BDD:
        """Negation of ``f``."""
        return self._wrap(self._ite3(f._h, 0, 1))

    def apply_and(self, f: BDD, g: BDD) -> BDD:
        """Conjunction of ``f`` and ``g``."""
        return self._wrap(self._and2(f._h, g._h))

    def apply_or(self, f: BDD, g: BDD) -> BDD:
        """Disjunction of ``f`` and ``g``."""
        return self._wrap(self._or2(f._h, g._h))

    def apply_xor(self, f: BDD, g: BDD) -> BDD:
        """Exclusive or of ``f`` and ``g``."""
        return self._wrap(self._xor2(f._h, g._h))

    def apply_xnor(self, f: BDD, g: BDD) -> BDD:
        """Equivalence (XNOR) of ``f`` and ``g``."""
        return self._wrap(self._xor2(f._h, g._h, xnor=True))

    def apply_nand(self, f: BDD, g: BDD) -> BDD:
        """NAND of ``f`` and ``g``."""
        return self._wrap(self._ite3(self._and2(f._h, g._h), 0, 1))

    def apply_nor(self, f: BDD, g: BDD) -> BDD:
        """NOR of ``f`` and ``g``."""
        return self._wrap(self._ite3(self._or2(f._h, g._h), 0, 1))

    def apply_implies(self, f: BDD, g: BDD) -> BDD:
        """Implication ``f -> g``."""
        return self._wrap(self._ite3(f._h, g._h, 1))

    def conjoin(self, functions: Iterable[BDD]) -> BDD:
        """Conjunction of an iterable of functions (1 for the empty set)."""
        result = 1
        for f in functions:
            result = self._and2(result, f._h)
            if result == 0:
                break
        return self._wrap(result)

    def disjoin(self, functions: Iterable[BDD]) -> BDD:
        """Disjunction of an iterable of functions (0 for the empty set)."""
        result = 0
        for f in functions:
            result = self._or2(result, f._h)
            if result == 1:
                break
        return self._wrap(result)

    # ------------------------------------------------------------------
    # Cofactoring / restriction
    # ------------------------------------------------------------------
    def restrict(self, f: BDD, assignment: Mapping[str, bool]) -> BDD:
        """Cofactor ``f`` by the literals in ``assignment``.

        Cofactoring by a literal is the "trivial operation" of Section
        3.3: the corresponding decision nodes are bypassed in the
        direction of the assigned value.
        """
        if not assignment:
            return f
        by_level = self._levels_map(
            (name, bool(value)) for name, value in assignment.items()
        )
        sig = self._sig(("r", tuple(sorted(by_level.items()))))
        return self._wrap(self._restrict_u(f._h, by_level, sig))

    def cofactor(self, f: BDD, name: str, value: bool) -> BDD:
        """Cofactor ``f`` by a single literal."""
        return self.restrict(f, {name: value})

    # ------------------------------------------------------------------
    # Quantification (smoothing)
    # ------------------------------------------------------------------
    def exists(self, names: Iterable[str], f: BDD) -> BDD:
        """Smoothing operator: existentially quantify ``names`` out of ``f``.

        Implements Definition 3.3.1: ``S_x f = f|x=1 + f|x=0`` applied to
        every variable in ``names``.
        """
        levels = self._levels_of(names)
        if not levels:
            return f
        sig = self._sig(("q", levels))
        return self._wrap(self._quantify_u(OP_EXISTS, f._h, levels, sig))

    def forall(self, names: Iterable[str], f: BDD) -> BDD:
        """Universally quantify ``names`` out of ``f``."""
        levels = self._levels_of(names)
        if not levels:
            return f
        sig = self._sig(("q", levels))
        return self._wrap(self._quantify_u(OP_FORALL, f._h, levels, sig))

    def and_exists(self, names: Iterable[str], f: BDD, g: BDD) -> BDD:
        """Relational product: ``exists names . (f AND g)``.

        The conjunction and the smoothing are performed in one pass, as
        suggested in the paper ([BCMD90]); this avoids building the
        possibly large intermediate conjunction.
        """
        levels = self._levels_of(names)
        if not levels:
            return self.apply_and(f, g)
        sig = self._sig(("q", levels))
        return self._wrap(self._and_exists_u(f._h, g._h, levels, sig))

    # ------------------------------------------------------------------
    # Composition and renaming
    # ------------------------------------------------------------------
    def compose(self, f: BDD, substitution: Mapping[str, BDD]) -> BDD:
        """Simultaneously substitute functions for variables in ``f``.

        This is the workhorse of functional symbolic simulation: the
        next-state function of a register is composed with the formulae
        of the current symbolic state to roll the machine forward one
        cycle.
        """
        if not substitution:
            return f
        by_level = self._levels_map(
            (name, g._h) for name, g in substitution.items()
        )
        sig = self._sig(("c", tuple(sorted(by_level.items()))))
        return self._wrap(self._compose_u(f._h, by_level, sig))

    def rename(self, f: BDD, mapping: Mapping[str, str]) -> BDD:
        """Rename variables of ``f`` according to ``mapping``.

        Implemented through :meth:`compose`; the target variables are
        declared on demand.
        """
        substitution = {old: self.var(new) for old, new in mapping.items()}
        return self.compose(f, substitution)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_tautology(self, f: BDD) -> bool:
        """Whether ``f`` is the constant-1 function."""
        return f._h == 1

    def is_contradiction(self, f: BDD) -> bool:
        """Whether ``f`` is the constant-0 function."""
        return f._h == 0

    def is_satisfiable(self, f: BDD) -> bool:
        """Whether ``f`` has at least one satisfying assignment."""
        return f._h != 0

    def equivalent(self, f: BDD, g: BDD) -> bool:
        """Canonical equivalence check: node (handle) identity."""
        return f._h == g._h

    def evaluate(self, f: BDD, assignment: Mapping[str, bool]) -> bool:
        """Evaluate ``f`` under a (total enough) variable assignment."""
        level = self._level
        low = self._low
        high = self._high
        names = self._name_of
        h = f._h
        while h >= 2:
            name = names[level[h]]
            if name not in assignment:
                raise KeyError(f"assignment missing variable {name!r}")
            h = high[h] if assignment[name] else low[h]
        return bool(h)

    def support(self, f: BDD) -> Tuple[str, ...]:
        """Names of the variables ``f`` actually depends on, in order."""
        level = self._level
        low = self._low
        high = self._high
        seen = set()
        levels = set()
        stack = [f._h]
        while stack:
            h = stack.pop()
            if h < 2 or h in seen:
                continue
            seen.add(h)
            levels.add(level[h])
            stack.append(low[h])
            stack.append(high[h])
        return tuple(self._name_of[lvl] for lvl in sorted(levels))

    def count_nodes(self, f: BDD) -> int:
        """Number of distinct nodes in ``f`` (including terminals reached)."""
        low = self._low
        high = self._high
        seen = set()
        stack = [f._h]
        while stack:
            h = stack.pop()
            if h in seen:
                continue
            seen.add(h)
            if h >= 2:
                stack.append(low[h])
                stack.append(high[h])
        return len(seen)

    def size(self) -> int:
        """Total number of live non-terminal nodes in the unique table."""
        return self._live

    def sat_count(self, f: BDD, variables: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments of ``f`` over ``variables``.

        If ``variables`` is omitted, the support of ``f`` is used.
        """
        if variables is None:
            variables = self.support(f)
        var_levels = sorted(self.level(name) for name in variables)
        support_levels = set(self.level(name) for name in self.support(f))
        if not support_levels.issubset(var_levels):
            missing = support_levels.difference(var_levels)
            names = [self._name_of[level] for level in sorted(missing)]
            raise ValueError(f"sat_count variable set misses support variables {names}")
        index_of = {level: i for i, level in enumerate(var_levels)}
        total = len(var_levels)
        level = self._level
        low = self._low
        high = self._high
        root = f._h
        if root < 2:
            return root * (1 << total)
        cache: Dict[int, int] = {}
        stack = [root]
        while stack:
            h = stack[-1]
            if h in cache:
                stack.pop()
                continue
            lo = low[h]
            hi = high[h]
            pending = False
            if hi >= 2 and hi not in cache:
                stack.append(hi)
                pending = True
            if lo >= 2 and lo not in cache:
                stack.append(lo)
                pending = True
            if pending:
                continue
            position = index_of[level[h]]
            if lo < 2:
                below = lo * (1 << (total - position - 1))
            else:
                below = cache[lo] << (index_of[level[lo]] - position - 1)
            if hi < 2:
                below += hi * (1 << (total - position - 1))
            else:
                below += cache[hi] << (index_of[level[hi]] - position - 1)
            cache[h] = below
            stack.pop()
        return cache[root] << index_of[level[root]]

    def pick_assignment(self, f: BDD) -> Optional[Dict[str, bool]]:
        """One satisfying assignment of ``f`` (minimal: only decided vars)."""
        h = f._h
        if h == 0:
            return None
        level = self._level
        low = self._low
        high = self._high
        names = self._name_of
        assignment: Dict[str, bool] = {}
        while h >= 2:
            name = names[level[h]]
            if low[h] != 0:
                assignment[name] = False
                h = low[h]
            else:
                assignment[name] = True
                h = high[h]
        return assignment

    def iter_assignments(
        self, f: BDD, variables: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, bool]]:
        """Iterate over all satisfying assignments over ``variables``."""
        if variables is None:
            variables = self.support(f)
        names = list(variables)
        for values in itertools.product([False, True], repeat=len(names)):
            assignment = dict(zip(names, values))
            restricted = self.restrict(f, assignment)
            if restricted._h == 1:
                yield assignment

    def cube(self, assignment: Mapping[str, bool]) -> BDD:
        """The conjunction of literals described by ``assignment``."""
        for name in assignment:
            if name not in self._level_of:
                self.declare(name)
        items = sorted(
            ((self._level_of[name], bool(value)) for name, value in assignment.items()),
            reverse=True,
        )
        h = 1
        for lvl, value in items:
            h = self._mk_int(lvl, 0, h) if value else self._mk_int(lvl, h, 0)
        return self._wrap(h)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, int]:
        """Basic manager statistics for reporting."""
        return {
            "variables": self.num_vars(),
            "unique_table_nodes": self._live,
            "ite_cache_entries": len(self._ite_cache),
            "quantify_cache_entries": len(self._op_cache),
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
        }
