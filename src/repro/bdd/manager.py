"""ROBDD manager: construction and manipulation of reduced ordered BDDs.

This module implements the BDD substrate described in Section 3.2 of the
paper.  It provides:

* hash-consed node construction (canonical form),
* the ``apply`` / ``ite`` operations for combining functions,
* cofactoring (restriction) by literals,
* the smoothing operator (existential quantification, Definition 3.3.1),
* universal quantification,
* the combined AND-smooth (relational product) used for image
  computation ([BCMD90] in the paper),
* functional composition and variable renaming,
* satisfiability, tautology and model-counting queries.

The manager owns a total variable order.  Variables are referred to by
name (strings); each name is mapped to a *level*, its position in the
order.  All functions handled by one manager share that order, which is
what makes node identity a sound equivalence check.
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .node import BDDNode, TERMINAL_LEVEL


class BDDOrderError(ValueError):
    """Raised when a variable is used before being declared."""


class BDDManager:
    """Owner of a variable order, unique table and operation caches.

    ``cache_limit`` bounds the number of entries each operation cache may
    hold: when a cache grows past the limit it is dropped wholesale (the
    unique table — and therefore every constructed function — is kept, so
    results are unaffected; only recomputation cost changes).  Long
    campaigns that reuse one manager across many verification runs use
    this to keep memory flat.  ``None`` leaves the caches unbounded.
    """

    def __init__(
        self,
        variables: Optional[Sequence[str]] = None,
        cache_limit: Optional[int] = None,
    ) -> None:
        if cache_limit is not None and cache_limit < 1:
            raise ValueError("cache_limit must be a positive integer or None")
        self._level_of: Dict[str, int] = {}
        self._name_of: List[str] = []
        self._unique: Dict[Tuple[int, int, int], BDDNode] = {}
        #: Per-level node index: level -> {node_id: node} for every live
        #: non-terminal node.  Maintained on allocation (:meth:`_mk`),
        #: reorder sweeps and level swaps (:mod:`repro.bdd.reorder`), so
        #: a level swap touches only the two affected levels' populations
        #: instead of scanning the whole unique table.
        self._level_index: Dict[int, Dict[int, BDDNode]] = {}
        self._ite_cache: Dict[Tuple[int, int, int], BDDNode] = {}
        self._quant_cache: Dict[Tuple[str, int, frozenset], BDDNode] = {}
        self._cache_limit = cache_limit
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evicted_entries = 0
        self._cache_clears = 0
        self._reorder_count = 0
        self._reorder_hooks: List[Callable[["BDDManager"], None]] = []
        self._next_id = 2
        self.zero = BDDNode(TERMINAL_LEVEL, None, None, 0, 0)
        self.one = BDDNode(TERMINAL_LEVEL, None, None, 1, 1)
        if variables:
            for name in variables:
                self.declare(name)

    # ------------------------------------------------------------------
    # Variable order management
    # ------------------------------------------------------------------
    def declare(self, name: str) -> None:
        """Append ``name`` to the variable order if not already present."""
        if name in self._level_of:
            return
        self._level_of[name] = len(self._name_of)
        self._name_of.append(name)

    def declare_all(self, names: Iterable[str]) -> None:
        """Declare several variables in the given order."""
        for name in names:
            self.declare(name)

    @property
    def variables(self) -> Tuple[str, ...]:
        """The current variable order, root-most first."""
        return tuple(self._name_of)

    def level(self, name: str) -> int:
        """Level (order position) of a declared variable."""
        try:
            return self._level_of[name]
        except KeyError:
            raise BDDOrderError(f"variable {name!r} has not been declared") from None

    def name_at_level(self, level: int) -> str:
        """Variable name at a given level."""
        return self._name_of[level]

    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._name_of)

    # ------------------------------------------------------------------
    # Per-level node index
    # ------------------------------------------------------------------
    def nodes_at_level(self, level: int) -> List[BDDNode]:
        """Live non-terminal nodes currently testing the variable at ``level``.

        Served from the per-level index in O(population) — no unique-table
        scan — which is what makes engine-scale sifting affordable: an
        adjacent level swap reads exactly the two levels it touches.
        """
        bucket = self._level_index.get(level)
        return list(bucket.values()) if bucket else []

    def level_population(self) -> Dict[int, int]:
        """Node count per level (only levels with at least one node)."""
        return {
            level: len(bucket)
            for level, bucket in self._level_index.items()
            if bucket
        }

    def _index_discard(self, node: BDDNode) -> None:
        """Drop one node from the per-level index (reorder sweep support)."""
        bucket = self._level_index.get(node.level)
        if bucket is not None:
            bucket.pop(node.node_id, None)

    def _index_set_level(self, level: int, nodes: Iterable[BDDNode]) -> None:
        """Replace one level's index bucket (level-swap support).

        Callers (:mod:`repro.bdd.reorder`) must pass exactly the live
        nodes now testing ``level``; nodes subsequently hash-consed at
        this level by :meth:`_mk` keep being added incrementally.
        """
        self._level_index[level] = {node.node_id: node for node in nodes}

    # ------------------------------------------------------------------
    # Dynamic reordering support (see repro.bdd.reorder)
    # ------------------------------------------------------------------
    def add_reorder_hook(self, hook: Callable[["BDDManager"], None]) -> None:
        """Register ``hook`` to be called after any variable-order change.

        Hooks let owners of derived state — the campaign engine's manager
        pool, memo tables keyed by variable order — invalidate themselves
        when :mod:`repro.bdd.reorder` changes the order under them.
        """
        self._reorder_hooks.append(hook)

    def remove_reorder_hook(self, hook: Callable[["BDDManager"], None]) -> None:
        """Unregister a previously added reorder hook (no-op if absent)."""
        try:
            self._reorder_hooks.remove(hook)
        except ValueError:
            pass

    @property
    def reorder_count(self) -> int:
        """How many variable-order changes this manager has undergone."""
        return self._reorder_count

    def _note_order_change(self) -> None:
        """Invalidate order-dependent state after a level swap.

        The quantification cache keys results by *level sets*, which are
        renumbered by a swap, so it must be dropped; the ``ite`` cache is
        dropped too (entries stay semantically valid because nodes are
        mutated function-preservingly, but correctness is cheap to make
        obvious).  Registered reorder hooks fire last so pool owners can
        re-key or evict this manager.
        """
        for cache in (self._ite_cache, self._quant_cache):
            if cache:
                self._drop_cache(cache)
        self._reorder_count += 1
        for hook in list(self._reorder_hooks):
            hook(self)

    def sift(
        self,
        roots: Optional[Iterable[BDDNode]] = None,
        converge: bool = True,
        max_passes: int = 4,
        max_variables: Optional[int] = None,
        max_excursion: Optional[int] = None,
    ):
        """Dynamically reorder this manager's variables by Rudell sifting.

        Convenience wrapper over :func:`repro.bdd.reorder.converge_sift`
        (one pass when ``converge`` is false).  ``roots`` — the functions
        the caller still cares about — make the size metric exact; without
        them the unique-table size (which includes dead intermediate
        nodes) is used.  ``max_variables`` bounds how many variables each
        pass sifts and ``max_excursion`` how many levels each travels
        (the time budgets on big tables; swaps themselves are served by
        the per-level node index, so the metric traversal dominates).
        Returns the :class:`~repro.bdd.reorder.SiftResult`.
        """
        from .reorder import converge_sift

        return converge_sift(
            self,
            roots=roots,
            max_passes=max_passes if converge else 1,
            max_variables=max_variables,
            max_excursion=max_excursion,
        )

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: BDDNode, high: BDDNode) -> BDDNode:
        """Hash-consed node constructor with the reduction rules applied."""
        if low is high:
            return low
        key = (level, low.node_id, high.node_id)
        node = self._unique.get(key)
        if node is None:
            node = BDDNode(level, low, high, None, self._next_id)
            self._next_id += 1
            self._unique[key] = node
            bucket = self._level_index.get(level)
            if bucket is None:
                bucket = self._level_index[level] = {}
            bucket[node.node_id] = node
        return node

    def constant(self, value: bool) -> BDDNode:
        """The terminal node for a Boolean constant."""
        return self.one if value else self.zero

    def var(self, name: str) -> BDDNode:
        """The function of a single positive literal."""
        if name not in self._level_of:
            self.declare(name)
        return self._mk(self._level_of[name], self.zero, self.one)

    def nvar(self, name: str) -> BDDNode:
        """The function of a single negative literal."""
        if name not in self._level_of:
            self.declare(name)
        return self._mk(self._level_of[name], self.one, self.zero)

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: BDDNode, g: BDDNode, h: BDDNode) -> BDDNode:
        """Compute ``if f then g else h``.

        All binary Boolean connectives are expressed through ``ite``,
        which plays the role of the recursive *apply* operation of
        Section 3.2.
        """
        # Terminal cases.
        if f is self.one:
            return g
        if f is self.zero:
            return h
        if g is h:
            return g
        if g is self.one and h is self.zero:
            return f

        key = (f.node_id, g.node_id, h.node_id)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            return cached
        self._cache_misses += 1

        level = min(f.level, g.level, h.level)
        f0, f1 = self._cofactors_at(f, level)
        g0, g1 = self._cofactors_at(g, level)
        h0, h1 = self._cofactors_at(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        if self._cache_limit is not None and len(self._ite_cache) > self._cache_limit:
            self._drop_cache(self._ite_cache)
        return result

    @staticmethod
    def _cofactors_at(node: BDDNode, level: int) -> Tuple[BDDNode, BDDNode]:
        """Shannon cofactors of ``node`` with respect to the variable at ``level``."""
        if node.level == level:
            return node.low, node.high
        return node, node

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def apply_not(self, f: BDDNode) -> BDDNode:
        """Negation of ``f``."""
        return self.ite(f, self.zero, self.one)

    def apply_and(self, f: BDDNode, g: BDDNode) -> BDDNode:
        """Conjunction of ``f`` and ``g``."""
        return self.ite(f, g, self.zero)

    def apply_or(self, f: BDDNode, g: BDDNode) -> BDDNode:
        """Disjunction of ``f`` and ``g``."""
        return self.ite(f, self.one, g)

    def apply_xor(self, f: BDDNode, g: BDDNode) -> BDDNode:
        """Exclusive or of ``f`` and ``g``."""
        return self.ite(f, self.apply_not(g), g)

    def apply_xnor(self, f: BDDNode, g: BDDNode) -> BDDNode:
        """Equivalence (XNOR) of ``f`` and ``g``."""
        return self.ite(f, g, self.apply_not(g))

    def apply_nand(self, f: BDDNode, g: BDDNode) -> BDDNode:
        """NAND of ``f`` and ``g``."""
        return self.apply_not(self.apply_and(f, g))

    def apply_nor(self, f: BDDNode, g: BDDNode) -> BDDNode:
        """NOR of ``f`` and ``g``."""
        return self.apply_not(self.apply_or(f, g))

    def apply_implies(self, f: BDDNode, g: BDDNode) -> BDDNode:
        """Implication ``f -> g``."""
        return self.ite(f, g, self.one)

    def conjoin(self, functions: Iterable[BDDNode]) -> BDDNode:
        """Conjunction of an iterable of functions (1 for the empty set)."""
        result = self.one
        for f in functions:
            result = self.apply_and(result, f)
            if result is self.zero:
                break
        return result

    def disjoin(self, functions: Iterable[BDDNode]) -> BDDNode:
        """Disjunction of an iterable of functions (0 for the empty set)."""
        result = self.zero
        for f in functions:
            result = self.apply_or(result, f)
            if result is self.one:
                break
        return result

    # ------------------------------------------------------------------
    # Cofactoring / restriction
    # ------------------------------------------------------------------
    def restrict(self, f: BDDNode, assignment: Mapping[str, bool]) -> BDDNode:
        """Cofactor ``f`` by the literals in ``assignment``.

        Cofactoring by a literal is the "trivial operation" of Section
        3.3: the corresponding decision nodes are bypassed in the
        direction of the assigned value.
        """
        if not assignment:
            return f
        levels = {self.level(name): bool(value) for name, value in assignment.items()}
        cache: Dict[int, BDDNode] = {}

        def walk(node: BDDNode) -> BDDNode:
            if node.is_terminal:
                return node
            hit = cache.get(node.node_id)
            if hit is not None:
                return hit
            if node.level in levels:
                result = walk(node.high if levels[node.level] else node.low)
            else:
                result = self._mk(node.level, walk(node.low), walk(node.high))
            cache[node.node_id] = result
            return result

        return walk(f)

    def cofactor(self, f: BDDNode, name: str, value: bool) -> BDDNode:
        """Cofactor ``f`` by a single literal."""
        return self.restrict(f, {name: value})

    # ------------------------------------------------------------------
    # Quantification (smoothing)
    # ------------------------------------------------------------------
    def exists(self, names: Iterable[str], f: BDDNode) -> BDDNode:
        """Smoothing operator: existentially quantify ``names`` out of ``f``.

        Implements Definition 3.3.1: ``S_x f = f|x=1 + f|x=0`` applied to
        every variable in ``names``.
        """
        levels = frozenset(self.level(name) for name in names)
        if not levels:
            return f
        return self._quantify("exists", f, levels)

    def forall(self, names: Iterable[str], f: BDDNode) -> BDDNode:
        """Universally quantify ``names`` out of ``f``."""
        levels = frozenset(self.level(name) for name in names)
        if not levels:
            return f
        return self._quantify("forall", f, levels)

    def _quantify(self, kind: str, f: BDDNode, levels: frozenset) -> BDDNode:
        """Quantify the variables at ``levels`` out of ``f``.

        Implemented with an explicit work stack instead of recursion on the
        BDD structure: quantification descends one level per frame, so a
        deep BDD (late-branch k=4 verification declares hundreds of
        variables) would otherwise flirt with CPython's default recursion
        limit.  The only remaining recursion is inside :meth:`ite` (via
        ``apply_or``/``apply_and``), whose depth is bounded by the number
        of variable levels *below* the quantified node — strictly smaller
        than the bound this method avoids, and halved again because every
        combine step strips at least the topmost quantified level.

        ``memo`` shadows the shared ``_quant_cache`` so that a mid-run
        cache eviction (``cache_limit``) can never drop a result this
        computation still needs.
        """
        combine = self.apply_or if kind == "exists" else self.apply_and
        max_level = max(levels)
        memo: Dict[int, BDDNode] = {}
        shared = self._quant_cache

        def lookup(node: BDDNode) -> Optional[BDDNode]:
            result = memo.get(node.node_id)
            if result is None:
                result = shared.get((kind, node.node_id, levels))
                if result is not None:
                    # One hit per distinct node served by the shared
                    # cache (the memo absorbs repeat visits).
                    self._cache_hits += 1
                    memo[node.node_id] = result
            return result

        top = lookup(f)
        if top is not None:
            return top

        stack: List[BDDNode] = [f]
        while stack:
            node = stack[-1]
            if node.node_id in memo:
                stack.pop()
                continue
            if node.is_terminal or node.level > max_level:
                memo[node.node_id] = node
                stack.pop()
                continue
            low = lookup(node.low)
            high = lookup(node.high)
            if low is None or high is None:
                if high is None:
                    stack.append(node.high)
                if low is None:
                    stack.append(node.low)
                continue
            self._cache_misses += 1
            if node.level in levels:
                result = combine(low, high)
            else:
                result = self._mk(node.level, low, high)
            memo[node.node_id] = result
            shared[(kind, node.node_id, levels)] = result
            if self._cache_limit is not None and len(shared) > self._cache_limit:
                self._drop_cache(shared)
            stack.pop()
        return memo[f.node_id]

    def and_exists(self, names: Iterable[str], f: BDDNode, g: BDDNode) -> BDDNode:
        """Relational product: ``exists names . (f AND g)``.

        The conjunction and the smoothing are performed in one recursive
        pass, as suggested in the paper ([BCMD90]); this avoids building
        the possibly large intermediate conjunction.
        """
        levels = frozenset(self.level(name) for name in names)
        cache: Dict[Tuple[int, int], BDDNode] = {}

        def walk(a: BDDNode, b: BDDNode) -> BDDNode:
            if a is self.zero or b is self.zero:
                return self.zero
            if a is self.one and b is self.one:
                return self.one
            if a is self.one:
                a2, b2 = b, a
            else:
                a2, b2 = a, b
            key = (a2.node_id, b2.node_id)
            hit = cache.get(key)
            if hit is not None:
                return hit
            level = min(a2.level, b2.level)
            if level > max(levels, default=-1):
                # No quantified variable left below this point.
                result = self.apply_and(a2, b2)
            else:
                a0, a1 = self._cofactors_at(a2, level)
                b0, b1 = self._cofactors_at(b2, level)
                low = walk(a0, b0)
                if level in levels and low is self.one:
                    result = self.one
                else:
                    high = walk(a1, b1)
                    if level in levels:
                        result = self.apply_or(low, high)
                    else:
                        result = self._mk(level, low, high)
            cache[key] = result
            return result

        if not levels:
            return self.apply_and(f, g)
        return walk(f, g)

    # ------------------------------------------------------------------
    # Composition and renaming
    # ------------------------------------------------------------------
    def compose(self, f: BDDNode, substitution: Mapping[str, BDDNode]) -> BDDNode:
        """Simultaneously substitute functions for variables in ``f``.

        This is the workhorse of functional symbolic simulation: the
        next-state function of a register is composed with the formulae
        of the current symbolic state to roll the machine forward one
        cycle.
        """
        if not substitution:
            return f
        by_level = {self.level(name): g for name, g in substitution.items()}
        cache: Dict[int, BDDNode] = {}

        def walk(node: BDDNode) -> BDDNode:
            if node.is_terminal:
                return node
            hit = cache.get(node.node_id)
            if hit is not None:
                return hit
            low = walk(node.low)
            high = walk(node.high)
            replacement = by_level.get(node.level)
            if replacement is None:
                var_fn = self._mk(node.level, self.zero, self.one)
            else:
                var_fn = replacement
            result = self.ite(var_fn, high, low)
            cache[node.node_id] = result
            return result

        return walk(f)

    def rename(self, f: BDDNode, mapping: Mapping[str, str]) -> BDDNode:
        """Rename variables of ``f`` according to ``mapping``.

        Implemented through :meth:`compose`; the target variables are
        declared on demand.
        """
        substitution = {old: self.var(new) for old, new in mapping.items()}
        return self.compose(f, substitution)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_tautology(self, f: BDDNode) -> bool:
        """Whether ``f`` is the constant-1 function."""
        return f is self.one

    def is_contradiction(self, f: BDDNode) -> bool:
        """Whether ``f`` is the constant-0 function."""
        return f is self.zero

    def is_satisfiable(self, f: BDDNode) -> bool:
        """Whether ``f`` has at least one satisfying assignment."""
        return f is not self.zero

    def equivalent(self, f: BDDNode, g: BDDNode) -> bool:
        """Canonical equivalence check: node identity."""
        return f is g

    def evaluate(self, f: BDDNode, assignment: Mapping[str, bool]) -> bool:
        """Evaluate ``f`` under a (total enough) variable assignment."""
        node = f
        while not node.is_terminal:
            name = self._name_of[node.level]
            if name not in assignment:
                raise KeyError(f"assignment missing variable {name!r}")
            node = node.high if assignment[name] else node.low
        return bool(node.value)

    def support(self, f: BDDNode) -> Tuple[str, ...]:
        """Names of the variables ``f`` actually depends on, in order."""
        seen = set()
        levels = set()

        def walk(node: BDDNode) -> None:
            if node.is_terminal or node.node_id in seen:
                return
            seen.add(node.node_id)
            levels.add(node.level)
            walk(node.low)
            walk(node.high)

        walk(f)
        return tuple(self._name_of[level] for level in sorted(levels))

    def count_nodes(self, f: BDDNode) -> int:
        """Number of distinct nodes in ``f`` (including terminals reached)."""
        seen = set()

        def walk(node: BDDNode) -> None:
            if node.node_id in seen:
                return
            seen.add(node.node_id)
            if not node.is_terminal:
                walk(node.low)
                walk(node.high)

        walk(f)
        return len(seen)

    def size(self) -> int:
        """Total number of live non-terminal nodes in the unique table."""
        return len(self._unique)

    def sat_count(self, f: BDDNode, variables: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments of ``f`` over ``variables``.

        If ``variables`` is omitted, the support of ``f`` is used.
        """
        if variables is None:
            variables = self.support(f)
        var_levels = sorted(self.level(name) for name in variables)
        support_levels = set(self.level(name) for name in self.support(f))
        if not support_levels.issubset(var_levels):
            missing = support_levels.difference(var_levels)
            names = [self._name_of[level] for level in sorted(missing)]
            raise ValueError(f"sat_count variable set misses support variables {names}")
        index_of = {level: i for i, level in enumerate(var_levels)}
        total = len(var_levels)
        cache: Dict[int, int] = {}

        def walk(node: BDDNode, depth: int) -> int:
            """Count assignments to variables at positions >= depth."""
            if node.is_terminal:
                return node.value * (1 << (total - depth))
            position = index_of[node.level]
            key = node.node_id
            below = cache.get(key)
            if below is None:
                below = walk(node.low, position + 1) + walk(node.high, position + 1)
                cache[key] = below
            return below << (position - depth)

        return walk(f, 0)

    def pick_assignment(self, f: BDDNode) -> Optional[Dict[str, bool]]:
        """One satisfying assignment of ``f`` (minimal: only decided vars)."""
        if f is self.zero:
            return None
        assignment: Dict[str, bool] = {}
        node = f
        while not node.is_terminal:
            name = self._name_of[node.level]
            if node.low is not self.zero:
                assignment[name] = False
                node = node.low
            else:
                assignment[name] = True
                node = node.high
        return assignment

    def iter_assignments(
        self, f: BDDNode, variables: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, bool]]:
        """Iterate over all satisfying assignments over ``variables``."""
        if variables is None:
            variables = self.support(f)
        names = list(variables)
        for values in itertools.product([False, True], repeat=len(names)):
            assignment = dict(zip(names, values))
            restricted = self.restrict(f, assignment)
            if restricted is self.one:
                yield assignment

    def cube(self, assignment: Mapping[str, bool]) -> BDDNode:
        """The conjunction of literals described by ``assignment``."""
        result = self.one
        for name, value in assignment.items():
            literal = self.var(name) if value else self.nvar(name)
            result = self.apply_and(result, literal)
        return result

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def _drop_cache(self, cache: Dict) -> None:
        """Drop one operation cache, keeping the eviction accounting."""
        self._cache_evicted_entries += len(cache)
        cache.clear()
        self._cache_clears += 1

    @property
    def cache_limit(self) -> Optional[int]:
        """Per-cache entry bound (``None`` when unbounded)."""
        return self._cache_limit

    @cache_limit.setter
    def cache_limit(self, limit: Optional[int]) -> None:
        if limit is not None and limit < 1:
            raise ValueError("cache_limit must be a positive integer or None")
        self._cache_limit = limit
        if limit is not None:
            for cache in (self._ite_cache, self._quant_cache):
                if len(cache) > limit:
                    self._drop_cache(cache)

    def cache_size(self) -> int:
        """Total number of entries currently held by the operation caches."""
        return len(self._ite_cache) + len(self._quant_cache)

    def clear_caches(self) -> None:
        """Drop operation caches (the unique table is kept).

        Clearing never changes results — every function already built
        stays canonical in the unique table — it only forces later
        operations to recompute; the property tests pin this down.
        """
        for cache in (self._ite_cache, self._quant_cache):
            if cache:
                self._drop_cache(cache)

    def cache_statistics(self) -> Dict[str, object]:
        """Operation-cache size accounting and hit rates."""
        lookups = self._cache_hits + self._cache_misses
        return {
            "limit": self._cache_limit,
            "ite_entries": len(self._ite_cache),
            "quantify_entries": len(self._quant_cache),
            "total_entries": self.cache_size(),
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "lookups": lookups,
            "hit_rate": (self._cache_hits / lookups) if lookups else 0.0,
            "evicted_entries": self._cache_evicted_entries,
            "clears": self._cache_clears,
        }

    def statistics(self) -> Dict[str, int]:
        """Basic manager statistics for reporting."""
        return {
            "variables": self.num_vars(),
            "unique_table_nodes": len(self._unique),
            "ite_cache_entries": len(self._ite_cache),
            "quantify_cache_entries": len(self._quant_cache),
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
        }
