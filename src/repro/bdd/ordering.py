"""Static variable-ordering heuristics.

Section 3.2 of the paper notes that ROBDD size is critically dependent
on the variable order, and gives the classic example: for an adder the
two operand vectors should be *interleaved* and ordered from least to
most significant bit.  The verification flow in this reproduction uses
static orders built with the helpers below:

* operand interleaving for datapath words,
* cycle-major ordering for the per-cycle instruction variables of the
  symbolic simulator (instruction ``i``'s bits are adjacent and earlier
  instructions come first, matching the order in which they influence
  the machine state),
* a simple greedy reordering of declared groups by first-use, used when
  building BDDs from netlists.

These heuristics pick the *initial* order; when a verification run
outgrows it, :mod:`repro.bdd.reorder` moves variables dynamically
(Rudell-style sifting on top of an adjacent level-swap primitive).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def bit_names(prefix: str, width: int) -> List[str]:
    """Names of the bits of a ``width``-bit signal, little-endian."""
    return [f"{prefix}[{i}]" for i in range(width)]


def interleave(*groups: Sequence[str]) -> List[str]:
    """Interleave several equally long (or ragged) name groups.

    ``interleave(a_bits, b_bits)`` yields ``a[0], b[0], a[1], b[1], ...``,
    the order recommended for word-level arithmetic operands.
    """
    order: List[str] = []
    longest = max((len(group) for group in groups), default=0)
    for position in range(longest):
        for group in groups:
            if position < len(group):
                order.append(group[position])
    return order


def cycle_major_order(
    cycle_prefixes: Sequence[str], widths: Dict[str, int], cycles: int
) -> List[str]:
    """Order for per-cycle input variables of a symbolic simulation.

    For every cycle ``c`` (earliest first), the bits of each input signal
    in ``cycle_prefixes`` are listed contiguously.  Signal bits within a
    cycle are interleaved least-significant first.
    """
    order: List[str] = []
    for cycle in range(cycles):
        groups = [bit_names(f"{prefix}@{cycle}", widths[prefix]) for prefix in cycle_prefixes]
        order.extend(interleave(*groups))
    return order


def state_then_inputs(state_bits: Sequence[str], input_bits: Sequence[str]) -> List[str]:
    """Order with initial-state variables above input variables.

    Initial architectural state (register file, memory) is shared between
    the specification and implementation runs and appears in most
    sampled formulae, so it is placed at the top of the order.
    """
    order = list(state_bits)
    order.extend(name for name in input_bits if name not in set(state_bits))
    return order


def first_use_order(uses: Iterable[Sequence[str]]) -> List[str]:
    """Order variables by their first appearance in a sequence of uses.

    ``uses`` is typically the gate list of a netlist in topological
    order; each element lists the variable names the gate reads.  This
    mirrors the common DFS-from-outputs static ordering heuristic.
    """
    seen: Dict[str, None] = {}
    for group in uses:
        for name in group:
            if name not in seen:
                seen[name] = None
    return list(seen.keys())
