"""Array-backed ROBDD kernel: integer handles, unified ITE core, arena GC.

This module is the representation layer beneath
:class:`~repro.bdd.manager.BDDManager`.  Nodes are not heap objects:
they live in parallel Python lists — ``_level[h]``, ``_low[h]``,
``_high[h]`` plus a ``_mark[h]`` word for the collector — and a node
*is* its index ``h`` (the CUDD-style struct-of-arrays layout).  Handle
0 is the constant-0 terminal, handle 1 the constant-1 terminal,
decision nodes start at 2.  The unique table maps ``(level, low,
high)`` int-triples to handles, which is what keeps the diagrams
reduced and canonical: equal functions have equal handles.

Three properties distinguish this kernel from the object-graph one it
replaced:

* **One ITE core, two gears.**  Every Boolean connective is a call
  into :meth:`BDDKernel._ite3` (or its specialised AND/OR/XOR
  siblings), with CUDD's standard-triple normalisation (``ite(f,f,h) =
  ite(f,1,h)``, commutative AND/OR argument ordering, negation pairs
  cached both ways) ahead of every cache lookup.  Small expansions run
  in a bounded-depth recursive fast path (one cheap Python frame per
  expanded node — the cold-model-construction regime); an expansion
  deeper than the budget is routed, whole, to the explicit-stack form,
  so 3000-level diagrams never touch the native recursion limit.
  Restriction, composition, quantification and the relational product
  are explicit-stack walkers over the same arrays that bottom out in
  the core.
* **Int-tuple-keyed shared memo caches.**  The ITE cache and the
  operation cache (restrict/compose/quantify/and-exists, keyed by a
  small opcode, the operand handles and an interned signature of the
  variable set) carry the hit/miss/eviction accounting the campaign
  engine reports; ``cache_limit`` bounds each cache by wholesale drop,
  exactly as before.
* **Arena GC.**  Dead nodes are reclaimed by mark-and-sweep
  (:meth:`BDDKernel.collect`): roots are every handle external code can
  still name (the manager's weakly-interned wrappers, see
  :mod:`repro.bdd.node`) plus any handles the caller passes; unmarked
  nodes leave the unique table and per-level index and their handles go
  onto a free-list for reuse, so the arena stops growing across
  reorder sessions and long campaigns.  Collection only runs at safe
  points (explicit calls, sifting sweeps) — never inside an operation.
"""

from __future__ import annotations

import base64
import sys
from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from .node import TERMINAL_LEVEL

#: Opcodes of the shared operation cache (first element of every key).
OP_EXISTS = 1
OP_FORALL = 2
OP_RESTRICT = 3
OP_COMPOSE = 4
OP_ANDEX = 5
OP_XOR = 6
OP_XNOR = 7

#: Version tag embedded in :meth:`BDDKernel.snapshot` payloads.
SNAPSHOT_FORMAT = 1

#: Recursion budget of the ITE/AND/OR/XOR fast paths (see
#: :meth:`BDDKernel._ite3`).
ITE_FAST_DEPTH = 24


#: Array typecode used for packed snapshots; the on-disk format tag
#: pins the exact layout (little-endian 4-byte signed ints) so packed
#: records are portable across hosts.
_PACK_TYPECODE = "i"
_PACK_TAG = "<i4"
_PACK_PORTABLE = array(_PACK_TYPECODE).itemsize == 4


def pack_snapshot(payload: Dict[str, object]) -> Dict[str, object]:
    """Binary-pack a snapshot's node arrays for cheap persistence.

    JSON-parsing millions of decimal ints dominates large-snapshot
    deserialisation; packed form stores ``levels``/``lows``/``highs`` as
    base64-coded little-endian int32 arrays (still JSON-embeddable),
    which :func:`unpack_snapshot` turns back into lists at memcpy
    speed.  Idempotent on already-packed payloads; on a platform whose
    C ``int`` is not 4 bytes the payload is left unpacked (plain lists
    remain a valid record form).
    """
    if payload.get("packed") or not _PACK_PORTABLE:
        return payload
    packed = dict(payload)
    for name in ("levels", "lows", "highs"):
        values = array(_PACK_TYPECODE, payload[name])
        if sys.byteorder != "little":
            values.byteswap()
        packed[name] = base64.b64encode(values.tobytes()).decode("ascii")
    packed["packed"] = _PACK_TAG
    return packed


def unpack_snapshot(payload: Dict[str, object]) -> Dict[str, object]:
    """Inverse of :func:`pack_snapshot` (no-op on unpacked payloads)."""
    tag = payload.get("packed")
    if not tag:
        return payload
    if tag != _PACK_TAG or not _PACK_PORTABLE:
        raise SnapshotError(f"unsupported snapshot packing {tag!r}")
    unpacked = dict(payload)
    try:
        for name in ("levels", "lows", "highs"):
            values = array(_PACK_TYPECODE)
            values.frombytes(base64.b64decode(payload[name]))
            if sys.byteorder != "little":
                values.byteswap()
            unpacked[name] = values.tolist()
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed packed snapshot: {exc!r}") from None
    del unpacked["packed"]
    return unpacked


class SnapshotError(ValueError):
    """Raised when an arena snapshot cannot be restored faithfully.

    Restoration validates every structural invariant (array lengths,
    topological child references, strictly increasing levels along
    edges) before hash-consing a node, so a truncated or corrupted
    snapshot can only fail loudly — it can never rebuild a diagram that
    denotes the wrong function.  Callers treat this as a cache miss and
    recompute.
    """


class BDDKernel:
    """Handle-level ROBDD arena: arrays, unique table, caches, GC.

    Knows nothing about variable *names* or wrapper objects — that is
    :class:`~repro.bdd.manager.BDDManager`'s job (which subclasses this
    kernel so the hot loops read the arrays without indirection).  All
    methods here take and return integer handles.
    """

    def __init__(self, cache_limit: Optional[int] = None) -> None:
        if cache_limit is not None and cache_limit < 1:
            raise ValueError("cache_limit must be a positive integer or None")
        # Parallel node arrays; slots 0/1 are the terminals (self-loop
        # children so the arrays are total; traversals stop at h < 2).
        self._level: List[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._mark: List[int] = [0, 0]
        #: Unique table, split into per-level subtables (CUDD-style):
        #: level -> {(low, high) -> handle}.  The split is what makes an
        #: adjacent level swap cheap: nodes that only change *level*
        #: keep their subtable keys and move as a whole dict, so a swap
        #: re-keys only the rebuilt nodes.
        self._table: Dict[int, Dict[Tuple[int, int], int]] = {}
        #: Reclaimed handles awaiting reuse (LIFO).
        self._free: List[int] = []
        #: Per-level index: level -> bucket of live handles at that level.
        #: The bucket type is supplied by the subclass via _new_bucket
        #: (the manager's buckets double as mapping views for tests).
        self._level_index: Dict[int, set] = {}
        # Operation caches (int-tuple keys only).
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._op_cache: Dict[Tuple[int, int, int], int] = {}
        self._sig_intern: Dict[object, int] = {}
        self._cache_limit = cache_limit
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evicted_entries = 0
        self._cache_clears = 0
        #: Total declared levels (maintained by the manager's declare).
        #: The fast paths use ``_depth_hint - top`` — the number of
        #: levels below an operation's top variable — to route deep
        #: expansions straight to the explicit stack in one call
        #: instead of spraying many small stack handoffs at the
        #: recursion-budget frontier.
        self._depth_hint = 0
        # Arena accounting.  ``_live`` and ``_nodes_allocated`` are
        # *derived* (properties below): every non-terminal slot is
        # either keyed in a subtable or parked on the free-list, so the
        # hot allocation tails never touch a counter.  ``_freed_total``
        # only moves inside :meth:`collect`, and the live high-water
        # mark is *sampled* at GC safe points — exact, because the live
        # count is non-decreasing between collections (nodes only die
        # in the sweep).
        self._freed_total = 0
        self._peak_sample = 0
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._mark_epoch = 0

    # ------------------------------------------------------------------
    # Derived arena accounting
    # ------------------------------------------------------------------
    @property
    def _live(self) -> int:
        """Live non-terminal node count (the subtables' total size).

        Derived: every slot past the terminals is either live in a
        subtable or free-listed, so the allocation fast paths pay no
        counter updates.
        """
        return len(self._level) - 2 - len(self._free)

    @property
    def _nodes_allocated(self) -> int:
        """Total allocations, free-list reuse included (derived).

        Fresh slots are array appends (``len(_level) - 2`` of them,
        ever); reuses are pops off the free-list, i.e. everything ever
        freed that is no longer waiting there.
        """
        return len(self._level) - 2 + self._freed_total - len(self._free)

    @property
    def _peak_live(self) -> int:
        """High-water mark of the live count (sampled at safe points)."""
        live = len(self._level) - 2 - len(self._free)
        peak = self._peak_sample
        return live if live > peak else peak

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _new_bucket(self, handles: Iterable[int] = ()) -> set:
        """A fresh per-level index bucket (a set of handles)."""
        return set(handles)

    def _external_roots(self) -> List[int]:
        """Handles external code can still name (GC roots).

        The manager overrides this to report its live weak wrappers.
        """
        return []

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _mk_int(self, lvl: int, lo: int, hi: int) -> int:
        """Hash-consed node constructor on handles (reduction rules applied)."""
        if lo == hi:
            return lo
        sub = self._table.get(lvl)
        if sub is None:
            sub = self._table[lvl] = {}
        key = (lo, hi)
        h = sub.get(key)
        if h is None:
            free = self._free
            if free:
                h = free.pop()
                self._level[h] = lvl
                self._low[h] = lo
                self._high[h] = hi
            else:
                h = len(self._level)
                self._level.append(lvl)
                self._low.append(lo)
                self._high.append(hi)
            sub[key] = h
            bucket = self._level_index.get(lvl)
            if bucket is None:
                bucket = self._level_index[lvl] = self._new_bucket()
            bucket.add(h)
        return h

    # ------------------------------------------------------------------
    # The unified ITE core
    # ------------------------------------------------------------------
    #: Depth budget of the recursive ITE/XOR fast path.  Small (cold)
    #: functions resolve entirely inside plain recursion — one Python
    #: frame per expanded node, no per-node task tuples — while any
    #: subproblem still unresolved past the budget falls over to the
    #: explicit stack, which is recursion-limit-proof.  The budget
    #: bounds native stack use at a few dozen frames regardless of
    #: diagram depth.
    ITE_FAST_DEPTH = ITE_FAST_DEPTH

    def _ite3(self, f: int, g: int, h: int, depth: int = ITE_FAST_DEPTH) -> int:
        """``if f then g else h`` on handles — the one apply operation.

        One self-recursive frame per expanded node: CUDD's
        standard-triple normalisation ahead of every cache lookup
        (``ite(f,f,h)`` becomes the OR form, ``ite(f,g,f)`` the AND
        form, commutative AND/OR operand pairs ordered by handle so both
        argument orders share one cache line; negations ``ite(f,0,1)``
        cached in both directions), then a cache probe, then cofactor
        recursion with the node constructor inlined into the reduce
        step.  ``depth`` is the remaining recursion budget
        (:data:`ITE_FAST_DEPTH` at every external call): cold shallow
        apply chains — model construction from nothing — run entirely in
        this fast path, while a subproblem still unresolved at depth
        zero is delegated to the explicit-stack expansion
        (:meth:`_ite_stack`), so 3000-level diagrams never touch the
        native recursion limit.
        """
        # --- resolve the triple (trivial cases + cache) ----------------
        # Deliberately ahead of the heavy local binding: on warm
        # (pooled) managers most calls end right here.
        if f < 2:
            return g if f else h
        if f == g:
            g = 1
        elif f == h:
            h = 0
        if g == h:
            return g
        if h == 0:
            if g == 1:
                return f
            if g < f:
                f, g = g, f
        elif g == 1 and h < f:
            f, h = h, f
        cache = self._ite_cache
        key = (f, g, h)
        r = cache.get(key)
        if r is not None:
            self._cache_hits += 1
            return r
        level = self._level
        lf = level[f]
        lg = level[g]
        top = lf if lf < lg else lg
        lh = level[h]
        if lh < top:
            top = lh
        if not depth or self._depth_hint - top > depth:
            # Deeper than the recursion budget could cover: expand the
            # whole subproblem on the explicit stack in one go.
            return self._ite_stack(f, g, h, key)
        self._cache_misses += 1
        low = self._low
        high = self._high
        if lf == top:
            f0 = low[f]
            f1 = high[f]
        else:
            f0 = f1 = f
        if lg == top:
            g0 = low[g]
            g1 = high[g]
        else:
            g0 = g1 = g
        if lh == top:
            h0 = low[h]
            h1 = high[h]
        else:
            h0 = h1 = h
        depth -= 1
        # Terminal-test cofactors resolve inline: leaf calls are nearly
        # half of a cold expansion, and each saved frame is pure win.
        # Equal-branch cofactors collapse without a frame either.
        if f0 < 2:
            r0 = g0 if f0 else h0
        elif g0 == h0:
            r0 = g0
        else:
            r0 = self._ite3(f0, g0, h0, depth)
        if f1 < 2:
            r1 = g1 if f1 else h1
        elif g1 == h1:
            r1 = g1
        else:
            r1 = self._ite3(f1, g1, h1, depth)
        # --- reduce, hash-cons and memoise ----------------------------
        if r0 == r1:
            r = r0
        else:
            sub = self._table.get(top)
            if sub is None:
                sub = self._table[top] = {}
            k2 = (r0, r1)
            free = self._free
            if free:
                r = sub.get(k2)
                if r is None:
                    r = free.pop()
                    level[r] = top
                    low[r] = r0
                    high[r] = r1
                    sub[k2] = r
                    bucket = self._level_index.get(top)
                    if bucket is None:
                        bucket = self._level_index[top] = self._new_bucket()
                    bucket.add(r)
            else:
                # Single-probe cons: with the free-list empty the next
                # handle is known up front, so probe and insert in one
                # setdefault (the common cold-allocation case).
                n = len(level)
                r = sub.setdefault(k2, n)
                if r == n:
                    level.append(top)
                    low.append(r0)
                    high.append(r1)
                    bucket = self._level_index.get(top)
                    if bucket is None:
                        bucket = self._level_index[top] = self._new_bucket()
                    bucket.add(r)
        cache[key] = r
        if key[1] == 0 and key[2] == 1:
            cache[(r, 0, 1)] = key[0]
        if self._cache_limit is not None and len(cache) > self._cache_limit:
            self._drop_cache(cache)
        return r

    def _ite_stack(self, f: int, g: int, h: int, key: Tuple[int, int, int]) -> int:
        """Explicit-stack expansion of a known, normalised ITE cache miss.

        No recursion on BDD structure, so 3000-level diagrams are as
        safe as 3-level ones; the node constructor is inlined into the
        reduce step.  Cofactor triples are *resolved inline*: a child
        that is trivial or already cached contributes its result without
        a stack round-trip, and a child that is not carries its
        normalised triple and cache key in its task so nothing is looked
        up twice.  Task tags: 4 = expand a known cache miss; 1/2/3 =
        reduce with both / only-high / only-low results still on the
        result stack.
        """
        cache = self._ite_cache
        level = self._level
        low = self._low
        high = self._high
        table = self._table
        free = self._free
        lidx = self._level_index
        limit = self._cache_limit
        hits = 0
        misses = 0
        bounded = limit is not None
        tasks: List[tuple] = [(4, f, g, h, key)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            t = pop()
            tag = t[0]
            if tag == 4:
                misses += 1
                tag, f, g, h, key = t
                lf = level[f]
                lg = level[g]
                top = lf if lf < lg else lg
                lh = level[h]
                if lh < top:
                    top = lh
                if lf == top:
                    f0 = low[f]
                    f1 = high[f]
                else:
                    f0 = f1 = f
                if lg == top:
                    g0 = low[g]
                    g1 = high[g]
                else:
                    g0 = g1 = g
                if lh == top:
                    h0 = low[h]
                    h1 = high[h]
                else:
                    h0 = h1 = h
                # --- resolve the low cofactor inline -------------------
                if f0 < 2:
                    r0 = g0 if f0 else h0
                    k0 = None
                else:
                    if f0 == g0:
                        g0 = 1
                    elif f0 == h0:
                        h0 = 0
                    if g0 == h0:
                        r0 = g0
                        k0 = None
                    else:
                        if h0 == 0:
                            if g0 == 1:
                                r0 = f0
                                k0 = None
                            else:
                                if g0 < f0:
                                    f0, g0 = g0, f0
                                k0 = (f0, g0, 0)
                                r0 = cache.get(k0)
                        else:
                            if g0 == 1 and h0 < f0:
                                f0, h0 = h0, f0
                            k0 = (f0, g0, h0)
                            r0 = cache.get(k0)
                        if r0 is not None and k0 is not None:
                            # Trivial reductions (k0 is None) are not
                            # cache hits; only real lookups count.
                            hits += 1
                # --- resolve the high cofactor inline ------------------
                if f1 < 2:
                    r1 = g1 if f1 else h1
                    k1 = None
                else:
                    if f1 == g1:
                        g1 = 1
                    elif f1 == h1:
                        h1 = 0
                    if g1 == h1:
                        r1 = g1
                        k1 = None
                    else:
                        if h1 == 0:
                            if g1 == 1:
                                r1 = f1
                                k1 = None
                            else:
                                if g1 < f1:
                                    f1, g1 = g1, f1
                                k1 = (f1, g1, 0)
                                r1 = cache.get(k1)
                        else:
                            if g1 == 1 and h1 < f1:
                                f1, h1 = h1, f1
                            k1 = (f1, g1, h1)
                            r1 = cache.get(k1)
                        if r1 is not None and k1 is not None:
                            hits += 1
                if r0 is None:
                    if r1 is None:
                        push((1, top, key))
                        push((4, f1, g1, h1, k1))
                        push((4, f0, g0, h0, k0))
                    else:
                        push((3, top, key, r1))
                        push((4, f0, g0, h0, k0))
                    continue
                if r1 is None:
                    push((2, top, key, r0))
                    push((4, f1, g1, h1, k1))
                    continue
                lo = r0
                hi = r1
            elif tag == 1:
                hi = rpop()
                lo = rpop()
                key = t[2]
                top = t[1]
            elif tag == 2:
                tag, top, key, lo = t
                hi = rpop()
            else:
                tag, top, key, hi = t
                lo = rpop()
            # --- shared reduce tail: hash-cons and memoise -------------
            if lo == hi:
                r = lo
            else:
                sub = table.get(top)
                if sub is None:
                    sub = table[top] = {}
                k2 = (lo, hi)
                if free:
                    r = sub.get(k2)
                    if r is None:
                        r = free.pop()
                        level[r] = top
                        low[r] = lo
                        high[r] = hi
                        sub[k2] = r
                        bucket = lidx.get(top)
                        if bucket is None:
                            bucket = lidx[top] = self._new_bucket()
                        bucket.add(r)
                else:
                    # Single-probe cons (see _ite3's reduce tail).
                    n = len(level)
                    r = sub.setdefault(k2, n)
                    if r == n:
                        level.append(top)
                        low.append(lo)
                        high.append(hi)
                        bucket = lidx.get(top)
                        if bucket is None:
                            bucket = lidx[top] = self._new_bucket()
                        bucket.add(r)
            cache[key] = r
            if key[1] == 0 and key[2] == 1:
                # r = NOT key[0]; negation is an involution, so the
                # reverse lookup is free to memoise as well.
                cache[(r, 0, 1)] = key[0]
            if bounded and len(cache) > limit:
                self._drop_cache(cache)
            rpush(r)
        self._cache_hits += hits
        self._cache_misses += misses
        return results[0]

    # Convenience forms used by the other walkers.
    def _and_int(self, f: int, g: int) -> int:
        return self._and2(f, g)

    def _or_int(self, f: int, g: int) -> int:
        return self._or2(f, g)

    def _not_int(self, f: int) -> int:
        return self._ite3(f, 0, 1)

    def _and2(self, f: int, g: int, depth: int = ITE_FAST_DEPTH) -> int:
        """Conjunction fast path: ``ite(f, g, 0)`` with two-operand frames.

        Normalisation and cache keys are *identical* to the generic
        core's AND form (operands ordered by handle, key ``(f, g, 0)``),
        so results are shared in both directions with :meth:`_ite3`;
        the specialised frame just skips the third-operand juggling the
        triple form pays on every level.  Recursion budget and stack
        fallback as in :meth:`_ite3`.
        """
        if f < 2:
            return g if f else 0
        if g < 2:
            return f if g else 0
        if f == g:
            return f
        if g < f:
            f, g = g, f
        cache = self._ite_cache
        key = (f, g, 0)
        r = cache.get(key)
        if r is not None:
            self._cache_hits += 1
            return r
        level = self._level
        lf = level[f]
        lg = level[g]
        top = lf if lf < lg else lg
        if not depth or self._depth_hint - top > depth:
            return self._ite_stack(f, g, 0, key)
        self._cache_misses += 1
        low = self._low
        high = self._high
        if lf == top:
            f0 = low[f]
            f1 = high[f]
        else:
            f0 = f1 = f
        if lg == top:
            g0 = low[g]
            g1 = high[g]
        else:
            g0 = g1 = g
        depth -= 1
        if f0 < 2:
            r0 = g0 if f0 else 0
        elif g0 < 2:
            r0 = f0 if g0 else 0
        elif f0 == g0:
            r0 = f0
        else:
            r0 = self._and2(f0, g0, depth)
        if f1 < 2:
            r1 = g1 if f1 else 0
        elif g1 < 2:
            r1 = f1 if g1 else 0
        elif f1 == g1:
            r1 = f1
        else:
            r1 = self._and2(f1, g1, depth)
        # --- reduce, hash-cons and memoise ----------------------------
        if r0 == r1:
            r = r0
        else:
            sub = self._table.get(top)
            if sub is None:
                sub = self._table[top] = {}
            k2 = (r0, r1)
            free = self._free
            if free:
                r = sub.get(k2)
                if r is None:
                    r = free.pop()
                    level[r] = top
                    low[r] = r0
                    high[r] = r1
                    sub[k2] = r
                    bucket = self._level_index.get(top)
                    if bucket is None:
                        bucket = self._level_index[top] = self._new_bucket()
                    bucket.add(r)
            else:
                # Single-probe cons: with the free-list empty the next
                # handle is known up front, so probe and insert in one
                # setdefault (the common cold-allocation case).
                n = len(level)
                r = sub.setdefault(k2, n)
                if r == n:
                    level.append(top)
                    low.append(r0)
                    high.append(r1)
                    bucket = self._level_index.get(top)
                    if bucket is None:
                        bucket = self._level_index[top] = self._new_bucket()
                    bucket.add(r)
        cache[key] = r
        if self._cache_limit is not None and len(cache) > self._cache_limit:
            self._drop_cache(cache)
        return r

    def _or2(self, f: int, g: int, depth: int = ITE_FAST_DEPTH) -> int:
        """Disjunction fast path: ``ite(f, 1, g)`` with two-operand frames.

        Same key discipline as the generic core's OR form (operands
        ordered by handle, key ``(f, 1, g)``); see :meth:`_and2`.
        """
        if f < 2:
            return 1 if f else g
        if g < 2:
            return 1 if g else f
        if f == g:
            return f
        if g < f:
            f, g = g, f
        cache = self._ite_cache
        key = (f, 1, g)
        r = cache.get(key)
        if r is not None:
            self._cache_hits += 1
            return r
        level = self._level
        lf = level[f]
        lg = level[g]
        top = lf if lf < lg else lg
        if not depth or self._depth_hint - top > depth:
            return self._ite_stack(f, 1, g, key)
        self._cache_misses += 1
        low = self._low
        high = self._high
        if lf == top:
            f0 = low[f]
            f1 = high[f]
        else:
            f0 = f1 = f
        if lg == top:
            g0 = low[g]
            g1 = high[g]
        else:
            g0 = g1 = g
        depth -= 1
        if f0 < 2:
            r0 = 1 if f0 else g0
        elif g0 < 2:
            r0 = 1 if g0 else f0
        elif f0 == g0:
            r0 = f0
        else:
            r0 = self._or2(f0, g0, depth)
        if f1 < 2:
            r1 = 1 if f1 else g1
        elif g1 < 2:
            r1 = 1 if g1 else f1
        elif f1 == g1:
            r1 = f1
        else:
            r1 = self._or2(f1, g1, depth)
        # --- reduce, hash-cons and memoise ----------------------------
        if r0 == r1:
            r = r0
        else:
            sub = self._table.get(top)
            if sub is None:
                sub = self._table[top] = {}
            k2 = (r0, r1)
            free = self._free
            if free:
                r = sub.get(k2)
                if r is None:
                    r = free.pop()
                    level[r] = top
                    low[r] = r0
                    high[r] = r1
                    sub[k2] = r
                    bucket = self._level_index.get(top)
                    if bucket is None:
                        bucket = self._level_index[top] = self._new_bucket()
                    bucket.add(r)
            else:
                # Single-probe cons: with the free-list empty the next
                # handle is known up front, so probe and insert in one
                # setdefault (the common cold-allocation case).
                n = len(level)
                r = sub.setdefault(k2, n)
                if r == n:
                    level.append(top)
                    low.append(r0)
                    high.append(r1)
                    bucket = self._level_index.get(top)
                    if bucket is None:
                        bucket = self._level_index[top] = self._new_bucket()
                    bucket.add(r)
        cache[key] = r
        if self._cache_limit is not None and len(cache) > self._cache_limit:
            self._drop_cache(cache)
        return r

    def _xor2(
        self, f: int, g: int, xnor: bool = False, depth: int = ITE_FAST_DEPTH
    ) -> int:
        """XOR (or XNOR) of two handles as a first-class core operation.

        Without complement edges, routing XOR through ``ite(f, NOT g,
        g)`` materialises the full negation of ``g`` before the combine
        even starts; datapath construction (ALU carry chains) and the
        verifier's ``vector_equal`` compare loops are XOR/XNOR-heavy, so
        the core descends on both operands directly and only negates the
        small terminal-adjacent cofactors.  Commutative pairs are
        ordered by handle; results memoised under ``(OP_XOR/OP_XNOR, f,
        g)`` in the shared op cache.
        """
        one_result = 1 if xnor else 0
        if f == g:
            return one_result
        if f < 2:
            if g < 2:  # f != g, both terminal
                return 0 if xnor else 1
            if f == (0 if xnor else 1):
                return self._ite3(g, 0, 1)
            return g
        if g < 2:
            if g == (0 if xnor else 1):
                return self._ite3(f, 0, 1)
            return f
        if g < f:
            f, g = g, f
        op = OP_XNOR if xnor else OP_XOR
        cache = self._op_cache
        key = (op, f, g)
        r = cache.get(key)
        if r is not None:
            self._cache_hits += 1
            return r
        level = self._level
        lf = level[f]
        lg = level[g]
        top = lf if lf < lg else lg
        if not depth or self._depth_hint - top > depth:
            return self._xor_stack(f, g, key, op, xnor)
        self._cache_misses += 1
        low = self._low
        high = self._high
        if lf == top:
            f0 = low[f]
            f1 = high[f]
        else:
            f0 = f1 = f
        if lg == top:
            g0 = low[g]
            g1 = high[g]
        else:
            g0 = g1 = g
        depth -= 1
        # Terminal-adjacent cofactors resolve inline (mirrors the entry
        # tests); only a genuine two-decision XOR pays a frame.
        neg = 0 if xnor else 1
        if f0 == g0:
            r0 = one_result
        elif f0 < 2:
            r0 = self._ite3(g0, 0, 1) if f0 == neg else g0
        elif g0 < 2:
            r0 = self._ite3(f0, 0, 1) if g0 == neg else f0
        else:
            r0 = self._xor2(f0, g0, xnor, depth)
        if f1 == g1:
            r1 = one_result
        elif f1 < 2:
            r1 = self._ite3(g1, 0, 1) if f1 == neg else g1
        elif g1 < 2:
            r1 = self._ite3(f1, 0, 1) if g1 == neg else f1
        else:
            r1 = self._xor2(f1, g1, xnor, depth)
        # --- reduce, hash-cons and memoise ----------------------------
        if r0 == r1:
            r = r0
        else:
            sub = self._table.get(top)
            if sub is None:
                sub = self._table[top] = {}
            k2 = (r0, r1)
            free = self._free
            if free:
                r = sub.get(k2)
                if r is None:
                    r = free.pop()
                    level[r] = top
                    low[r] = r0
                    high[r] = r1
                    sub[k2] = r
                    bucket = self._level_index.get(top)
                    if bucket is None:
                        bucket = self._level_index[top] = self._new_bucket()
                    bucket.add(r)
            else:
                # Single-probe cons: with the free-list empty the next
                # handle is known up front, so probe and insert in one
                # setdefault (the common cold-allocation case).
                n = len(level)
                r = sub.setdefault(k2, n)
                if r == n:
                    level.append(top)
                    low.append(r0)
                    high.append(r1)
                    bucket = self._level_index.get(top)
                    if bucket is None:
                        bucket = self._level_index[top] = self._new_bucket()
                    bucket.add(r)
        cache[key] = r
        if self._cache_limit is not None and len(cache) > self._cache_limit:
            self._drop_cache(cache)
        return r

    def _xor_stack(
        self, f: int, g: int, key: Tuple[int, int, int], op: int, xnor: bool
    ) -> int:
        """Explicit-stack expansion of a known XOR/XNOR cache miss.

        Recursion-limit-proof continuation of :meth:`_xor_rec`; see
        :meth:`_ite_stack` for the task-tag scheme.
        """
        one_result = 1 if xnor else 0
        cache = self._op_cache
        level = self._level
        low = self._low
        high = self._high
        table = self._table
        free = self._free
        lidx = self._level_index
        limit = self._cache_limit
        bounded = limit is not None
        neg_terminal = 0 if xnor else 1
        hits = 0
        misses = 0
        # Task tags: 4 expand (known miss), 1 both pending, 2 low known,
        # 3 high known.
        tasks: List[tuple] = [(4, f, g, key)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            t = pop()
            tag = t[0]
            if tag == 4:
                misses += 1
                tag, f, g, key = t
                lf = level[f]
                lg = level[g]
                top = lf if lf < lg else lg
                if lf == top:
                    f0 = low[f]
                    f1 = high[f]
                else:
                    f0 = f1 = f
                if lg == top:
                    g0 = low[g]
                    g1 = high[g]
                else:
                    g0 = g1 = g
                # --- resolve the low cofactor inline -------------------
                k0 = None
                if f0 == g0:
                    r0 = one_result
                elif f0 < 2:
                    if f0 == neg_terminal:
                        r0 = self._ite3(g0, 0, 1)
                    else:
                        r0 = g0
                elif g0 < 2:
                    if g0 == neg_terminal:
                        r0 = self._ite3(f0, 0, 1)
                    else:
                        r0 = f0
                else:
                    if g0 < f0:
                        f0, g0 = g0, f0
                    k0 = (op, f0, g0)
                    r0 = cache.get(k0)
                    if r0 is not None:
                        hits += 1
                # --- resolve the high cofactor inline ------------------
                k1 = None
                if f1 == g1:
                    r1 = one_result
                elif f1 < 2:
                    if f1 == neg_terminal:
                        r1 = self._ite3(g1, 0, 1)
                    else:
                        r1 = g1
                elif g1 < 2:
                    if g1 == neg_terminal:
                        r1 = self._ite3(f1, 0, 1)
                    else:
                        r1 = f1
                else:
                    if g1 < f1:
                        f1, g1 = g1, f1
                    k1 = (op, f1, g1)
                    r1 = cache.get(k1)
                    if r1 is not None:
                        hits += 1
                if r0 is None:
                    if r1 is None:
                        push((1, top, key))
                        push((4, f1, g1, k1))
                        push((4, f0, g0, k0))
                    else:
                        push((3, top, key, r1))
                        push((4, f0, g0, k0))
                    continue
                if r1 is None:
                    push((2, top, key, r0))
                    push((4, f1, g1, k1))
                    continue
                lo = r0
                hi = r1
            elif tag == 1:
                hi = rpop()
                lo = rpop()
                key = t[2]
                top = t[1]
            elif tag == 2:
                tag, top, key, lo = t
                hi = rpop()
            else:
                tag, top, key, hi = t
                lo = rpop()
            # --- shared reduce tail (see _ite3) ------------------------
            if lo == hi:
                r = lo
            else:
                sub = table.get(top)
                if sub is None:
                    sub = table[top] = {}
                k2 = (lo, hi)
                if free:
                    r = sub.get(k2)
                    if r is None:
                        r = free.pop()
                        level[r] = top
                        low[r] = lo
                        high[r] = hi
                        sub[k2] = r
                        bucket = lidx.get(top)
                        if bucket is None:
                            bucket = lidx[top] = self._new_bucket()
                        bucket.add(r)
                else:
                    # Single-probe cons (see _ite3's reduce tail).
                    n = len(level)
                    r = sub.setdefault(k2, n)
                    if r == n:
                        level.append(top)
                        low.append(lo)
                        high.append(hi)
                        bucket = lidx.get(top)
                        if bucket is None:
                            bucket = lidx[top] = self._new_bucket()
                        bucket.add(r)
            cache[key] = r
            if bounded and len(cache) > limit:
                self._drop_cache(cache)
            rpush(r)
        self._cache_hits += hits
        self._cache_misses += misses
        return results[0]

    # ------------------------------------------------------------------
    # Signature interning (variable-set keys for the op cache)
    # ------------------------------------------------------------------
    #: Bound on the signature-intern table.  One-shot signatures (e.g.
    #: ``iter_assignments`` restricting by every assignment of a large
    #: product) would otherwise accrete forever on session-long pooled
    #: managers.  Dropping the intern table renumbers signatures, so the
    #: op cache — whose keys embed them — must drop with it.
    SIG_INTERN_LIMIT = 1 << 16

    def _sig(self, key: object) -> int:
        """Small-int signature of a variable-set/substitution key.

        Only called at operation *entry* (never mid-walk), so the
        clear-on-overflow below can never renumber a signature an
        in-flight computation still holds.
        """
        intern = self._sig_intern
        s = intern.get(key)
        if s is None:
            if len(intern) >= self.SIG_INTERN_LIMIT:
                intern.clear()
                if self._op_cache:
                    self._drop_cache(self._op_cache)
            s = len(intern)
            intern[key] = s
        return s

    # ------------------------------------------------------------------
    # Restriction (cofactoring)
    # ------------------------------------------------------------------
    def _restrict_u(self, f: int, by_level: Dict[int, int], sig: int) -> int:
        """Cofactor ``f`` by ``{level: 0/1}`` literal bindings.

        Post-order explicit stack; results are memoised in the shared op
        cache under ``(OP_RESTRICT, handle, sig)``.  Nodes entirely
        below the deepest restricted level are returned unchanged (the
        cone cannot mention a restricted variable), which is what makes
        cofactor-specialised relational products cheap.
        """
        level = self._level
        low = self._low
        high = self._high
        shared = self._op_cache
        limit = self._cache_limit
        max_level = max(by_level)
        memo: Dict[int, int] = {}
        stack = [f]
        spush = stack.append
        hits = 0
        misses = 0
        while stack:
            n = stack[-1]
            if n in memo:
                stack.pop()
                continue
            if n < 2 or level[n] > max_level:
                memo[n] = n
                stack.pop()
                continue
            r = shared.get((OP_RESTRICT, n, sig))
            if r is not None:
                hits += 1
                memo[n] = r
                stack.pop()
                continue
            ln = level[n]
            value = by_level.get(ln)
            if value is not None:
                child = high[n] if value else low[n]
                rc = memo.get(child)
                if rc is None:
                    spush(child)
                    continue
                r = rc
            else:
                lo = memo.get(low[n])
                hi = memo.get(high[n])
                if lo is None or hi is None:
                    if hi is None:
                        spush(high[n])
                    if lo is None:
                        spush(low[n])
                    continue
                r = lo if lo == hi else self._mk_int(ln, lo, hi)
            misses += 1
            memo[n] = r
            shared[(OP_RESTRICT, n, sig)] = r
            if limit is not None and len(shared) > limit:
                self._drop_cache(shared)
            stack.pop()
        self._cache_hits += hits
        self._cache_misses += misses
        return memo[f]

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def _compose_u(self, f: int, by_level: Dict[int, int], sig: int) -> int:
        """Simultaneously substitute functions for variables in ``f``.

        Post-order walk bottoming out in the ITE core.  Nodes entirely
        below the deepest substituted level are returned unchanged —
        canonicity guarantees rebuilding them would find the same
        handles, so the walk simply does not descend.
        """
        level = self._level
        low = self._low
        high = self._high
        shared = self._op_cache
        limit = self._cache_limit
        max_level = max(by_level)
        memo: Dict[int, int] = {}
        stack = [f]
        spush = stack.append
        hits = 0
        misses = 0
        while stack:
            n = stack[-1]
            if n in memo:
                stack.pop()
                continue
            if n < 2 or level[n] > max_level:
                memo[n] = n
                stack.pop()
                continue
            r = shared.get((OP_COMPOSE, n, sig))
            if r is not None:
                hits += 1
                memo[n] = r
                stack.pop()
                continue
            lo = memo.get(low[n])
            hi = memo.get(high[n])
            if lo is None or hi is None:
                if hi is None:
                    spush(high[n])
                if lo is None:
                    spush(low[n])
                continue
            ln = level[n]
            replacement = by_level.get(ln)
            if replacement is None:
                replacement = self._mk_int(ln, 0, 1)
            misses += 1
            r = self._ite3(replacement, hi, lo)
            memo[n] = r
            shared[(OP_COMPOSE, n, sig)] = r
            if limit is not None and len(shared) > limit:
                self._drop_cache(shared)
            stack.pop()
        self._cache_hits += hits
        self._cache_misses += misses
        return memo[f]

    # ------------------------------------------------------------------
    # Quantification (smoothing)
    # ------------------------------------------------------------------
    def _quantify_u(self, op: int, f: int, levels: frozenset, sig: int) -> int:
        """Quantify the variables at ``levels`` out of ``f``.

        ``op`` is :data:`OP_EXISTS` or :data:`OP_FORALL`.  The local
        ``memo`` shadows the shared cache so a mid-run eviction
        (``cache_limit``) can never drop a result this computation still
        needs.
        """
        level = self._level
        low = self._low
        high = self._high
        shared = self._op_cache
        limit = self._cache_limit
        exists = op == OP_EXISTS
        max_level = max(levels)
        memo: Dict[int, int] = {}
        hits = 0
        misses = 0
        stack = [f]
        spush = stack.append
        while stack:
            n = stack[-1]
            if n in memo:
                stack.pop()
                continue
            if n < 2 or level[n] > max_level:
                memo[n] = n
                stack.pop()
                continue
            r = shared.get((op, n, sig))
            if r is not None:
                hits += 1
                memo[n] = r
                stack.pop()
                continue
            lo = memo.get(low[n])
            hi = memo.get(high[n])
            if lo is None or hi is None:
                if hi is None:
                    spush(high[n])
                if lo is None:
                    spush(low[n])
                continue
            misses += 1
            ln = level[n]
            if ln in levels:
                if exists:
                    r = self._or2(lo, hi)
                else:
                    r = self._and2(lo, hi)
            else:
                r = lo if lo == hi else self._mk_int(ln, lo, hi)
            memo[n] = r
            shared[(op, n, sig)] = r
            if limit is not None and len(shared) > limit:
                self._drop_cache(shared)
            stack.pop()
        self._cache_hits += hits
        self._cache_misses += misses
        return memo[f]

    # ------------------------------------------------------------------
    # Relational product (AND-smooth)
    # ------------------------------------------------------------------
    def _and_exists_u(self, a: int, b: int, levels: frozenset, sig: int) -> int:
        """``exists levels . (a AND b)`` in one pass over the arrays.

        The conjunction and the smoothing are fused ([BCMD90]): at a
        quantified level the low product short-circuits the high one
        when it is already the constant 1.  Operand pairs are ordered by
        handle (AND commutes) and memoised in the shared op cache under
        ``(OP_ANDEX, a, b, sig)`` — the signature stands in for the
        level set, so repeated image steps with one relation share
        results across calls.
        """
        level = self._level
        low = self._low
        high = self._high
        shared = self._op_cache
        limit = self._cache_limit
        max_level = max(levels)
        memo: Dict[Tuple[int, int], int] = {}
        hits = 0
        misses = 0
        # Task tags: 0 expand, 1 reduce-mk, 2 after-low (quantified),
        # 3 after-high (quantified).
        tasks: List[tuple] = [(0, a, b)]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            t = pop()
            tag = t[0]
            if tag == 0:
                a = t[1]
                b = t[2]
                if a == 0 or b == 0:
                    rpush(0)
                    continue
                if a == 1:
                    if b == 1:
                        rpush(1)
                        continue
                    a, b = b, a
                elif b != 1 and b < a:
                    a, b = b, a
                key = (a, b)
                r = memo.get(key)
                if r is None:
                    r = shared.get((OP_ANDEX, a, b, sig))
                    if r is not None:
                        hits += 1
                        memo[key] = r
                if r is not None:
                    rpush(r)
                    continue
                la = level[a]
                lb = level[b]
                top = la if la < lb else lb
                if top > max_level:
                    # No quantified variable below: a plain conjunction.
                    misses += 1
                    r = self._and2(a, b)
                    memo[key] = r
                    shared[(OP_ANDEX, a, b, sig)] = r
                    if limit is not None and len(shared) > limit:
                        self._drop_cache(shared)
                    rpush(r)
                    continue
                if la == top:
                    a0 = low[a]
                    a1 = high[a]
                else:
                    a0 = a1 = a
                if lb == top:
                    b0 = low[b]
                    b1 = high[b]
                else:
                    b0 = b1 = b
                if top in levels:
                    push((2, key, a1, b1))
                    push((0, a0, b0))
                else:
                    push((1, top, key))
                    push((0, a1, b1))
                    push((0, a0, b0))
            elif tag == 1:
                hi = rpop()
                lo = rpop()
                r = lo if lo == hi else self._mk_int(t[1], lo, hi)
                misses += 1
                key = t[2]
                memo[key] = r
                shared[(OP_ANDEX, key[0], key[1], sig)] = r
                if limit is not None and len(shared) > limit:
                    self._drop_cache(shared)
                rpush(r)
            elif tag == 2:
                lo = rpop()
                key = t[1]
                if lo == 1:
                    # Early exit: OR with 1 — skip the high product.
                    misses += 1
                    memo[key] = 1
                    shared[(OP_ANDEX, key[0], key[1], sig)] = 1
                    if limit is not None and len(shared) > limit:
                        self._drop_cache(shared)
                    rpush(1)
                else:
                    push((3, key, lo))
                    push((0, t[2], t[3]))
            else:
                hi = rpop()
                lo = t[2]
                misses += 1
                r = self._or2(lo, hi)
                key = t[1]
                memo[key] = r
                shared[(OP_ANDEX, key[0], key[1], sig)] = r
                if limit is not None and len(shared) > limit:
                    self._drop_cache(shared)
                rpush(r)
        self._cache_hits += hits
        self._cache_misses += misses
        return results[0]

    # ------------------------------------------------------------------
    # Arena snapshots
    # ------------------------------------------------------------------
    def snapshot(self, roots: Iterable[int]) -> Dict[str, object]:
        """Root-projected snapshot of the arena: compact parallel lists.

        Serialises exactly the nodes reachable from ``roots`` (the arena
        is just parallel int lists, so a snapshot is three lists plus a
        root table).  Compact ids renumber the nodes children-first:
        0/1 are the terminals, decision nodes follow in a deterministic
        post-order of the given root sequence, so every child reference
        points backwards — the property :meth:`restore` validates.  The
        payload is pure JSON-serialisable data (ints and lists).
        """
        level = self._level
        low = self._low
        high = self._high
        id_of: Dict[int, int] = {0: 0, 1: 1}
        levels: List[int] = []
        lows: List[int] = []
        highs: List[int] = []
        root_list = list(roots)
        for root in root_list:
            if root in id_of:
                continue
            stack = [root]
            while stack:
                n = stack[-1]
                if n in id_of:
                    stack.pop()
                    continue
                lo = low[n]
                hi = high[n]
                lo_id = id_of.get(lo)
                hi_id = id_of.get(hi)
                if lo_id is None or hi_id is None:
                    if hi_id is None:
                        stack.append(hi)
                    if lo_id is None:
                        stack.append(lo)
                    continue
                id_of[n] = len(levels) + 2
                levels.append(level[n])
                lows.append(lo_id)
                highs.append(hi_id)
                stack.pop()
        return {
            "format": SNAPSHOT_FORMAT,
            "levels": levels,
            "lows": lows,
            "highs": highs,
            "roots": [id_of[r] for r in root_list],
        }

    def restore(
        self,
        payload: Dict[str, object],
        level_map: Optional[Dict[int, int]] = None,
    ) -> List[int]:
        """Rehydrate a :meth:`snapshot`; returns the restored root handles.

        Every node is rebuilt through the hash-consing constructor, so
        restoring into an arena that already holds (some of) the
        functions dedups onto the existing handles — a restored function
        is *the* canonical function, indistinguishable from one computed
        in place.  ``level_map`` translates recorded levels (the
        manager-level wrapper uses it to map via variable names).

        Every structural invariant is validated before a node is built:
        truncated arrays, forward child references, redundant nodes and
        non-monotone levels all raise :class:`SnapshotError` — a corrupt
        snapshot can fail, never rebuild the wrong function.
        """
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"unsupported snapshot format {payload.get('format')!r}"
            )
        payload = unpack_snapshot(payload)
        try:
            levels = payload["levels"]
            lows = payload["lows"]
            highs = payload["highs"]
            roots = payload["roots"]
        except (TypeError, KeyError) as exc:
            raise SnapshotError(f"malformed snapshot payload: {exc!r}") from None
        if not (len(levels) == len(lows) == len(highs)):
            raise SnapshotError("snapshot arrays disagree in length (truncated?)")
        # Hoist the per-level validation out of the loop: every level a
        # node may carry is either a level_map value or a member of the
        # recorded level set, both checkable once.  The loop then only
        # performs the per-node structural checks (backward references,
        # non-redundancy, strict level monotonicity along edges) with
        # the hash-consing constructor inlined — restore is the latency
        # the snapshot path trades extraction for, so the loop is hot.
        try:
            if level_map is None:
                level_map = {lvl: lvl for lvl in set(levels)}
            for mapped in level_map.values():
                if not isinstance(mapped, int) or mapped < 0 or mapped >= TERMINAL_LEVEL:
                    raise SnapshotError(f"invalid restored level {mapped!r}")
        except TypeError as exc:
            raise SnapshotError(f"malformed snapshot levels: {exc!r}") from None
        try:
            # C-speed translation of the whole level column at once; a
            # level outside the map is a KeyError -> SnapshotError.
            mapped_levels = list(map(level_map.__getitem__, levels))
        except (TypeError, KeyError) as exc:
            raise SnapshotError(f"unmapped snapshot level: {exc!r}") from None
        handles = self._restore_build(mapped_levels, lows, highs)
        try:
            restored = []
            for r in roots:
                if not 0 <= r < len(handles):
                    # Explicit bound check: Python's negative indexing
                    # would otherwise "resolve" a corrupt root to some
                    # valid-looking node — the one failure mode this
                    # method must never have.
                    raise SnapshotError(f"snapshot root {r!r} out of range")
                restored.append(handles[r])
            return restored
        except TypeError as exc:
            raise SnapshotError(
                f"snapshot roots reference missing nodes: {exc!r}"
            ) from None

    def _restore_build(
        self,
        mapped_levels: List[int],
        lows: List[int],
        highs: List[int],
    ) -> List[int]:
        """Validate and hash-cons the snapshot's node records, in order.

        The restore hot loop, factored out so alternative backends can
        replace it wholesale (the vectorized backend rebuilds the node
        column with numpy bulk operations); ``mapped_levels`` has
        already been translated through the level map.  Returns the
        handle of every snapshot id — ``[0, 1]`` for the terminals
        followed by one consed handle per node record — enforcing the
        structural invariants (backward child references, no redundant
        nodes, strictly increasing levels along edges) before any node
        is built.
        """
        level = self._level
        low = self._low
        high = self._high
        table = self._table
        free = self._free
        lidx = self._level_index
        handles: List[int] = [0, 1]
        append = handles.append
        try:
            i = -1
            for i, (lvl, lo_id, hi_id) in enumerate(zip(mapped_levels, lows, highs)):
                if not 0 <= lo_id < i + 2 or not 0 <= hi_id < i + 2:
                    raise SnapshotError(
                        f"node {i}: child reference out of range (truncated?)"
                    )
                if lo_id == hi_id:
                    raise SnapshotError(f"node {i}: redundant node (low == high)")
                lo = handles[lo_id]
                hi = handles[hi_id]
                if (lo >= 2 and level[lo] <= lvl) or (hi >= 2 and level[hi] <= lvl):
                    raise SnapshotError(
                        f"node {i}: child does not sit below level {lvl}"
                    )
                sub = table.get(lvl)
                if sub is None:
                    sub = table[lvl] = {}
                key = (lo, hi)
                h = sub.get(key)
                if h is None:
                    if free:
                        h = free.pop()
                        level[h] = lvl
                        low[h] = lo
                        high[h] = hi
                    else:
                        h = len(level)
                        level.append(lvl)
                        low.append(lo)
                        high.append(hi)
                    sub[key] = h
                    bucket = lidx.get(lvl)
                    if bucket is None:
                        bucket = lidx[lvl] = self._new_bucket()
                    bucket.add(h)
                append(h)
        except (TypeError, KeyError) as exc:
            raise SnapshotError(f"malformed snapshot node {i}: {exc!r}") from None
        return handles

    # ------------------------------------------------------------------
    # Reorder support
    # ------------------------------------------------------------------
    def _plan_swap(
        self, y_level: int, x_nodes: List[int]
    ) -> Tuple[List[int], List[Tuple[int, int, int, int, int]]]:
        """Classify the upper level's nodes for an adjacent level swap.

        ``x_nodes`` are the live handles at the level above ``y_level``.
        Returns ``(independent, rebuilds)``: nodes with no ``y``-level
        child just move down one level, while each rebuild record
        ``(n, f00, f01, f10, f11)`` carries the four grandchildren of
        the Shannon expansion the swap re-wires the node with.  Read-only
        over the *pre-swap* structure, which is what lets the vectorized
        backend replace the per-node loop with bulk gathers
        (:meth:`repro.bdd.vector.VectorBDDManager._plan_swap`); the
        mutation half of the swap lives in
        :func:`repro.bdd.reorder._swap_levels`.
        """
        lv = self._level
        lo_a = self._low
        hi_a = self._high
        independent: List[int] = []
        rebuilds: List[Tuple[int, int, int, int, int]] = []
        for n in x_nodes:
            lo = lo_a[n]
            hi = hi_a[n]
            lo_tests_y = lv[lo] == y_level
            hi_tests_y = lv[hi] == y_level
            if not lo_tests_y and not hi_tests_y:
                independent.append(n)
                continue
            if lo_tests_y:
                f00, f01 = lo_a[lo], hi_a[lo]
            else:
                f00 = f01 = lo
            if hi_tests_y:
                f10, f11 = lo_a[hi], hi_a[hi]
            else:
                f10 = f11 = hi
            rebuilds.append((n, f00, f01, f10, f11))
        return independent, rebuilds

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def collect(self, roots: Optional[Iterable[int]] = None) -> int:
        """Mark-and-sweep the arena; returns how many nodes were reclaimed.

        Live means reachable from a *root*: every handle external code
        can still name (the manager's interned wrappers) plus any extra
        ``roots`` handles.  Dead nodes leave the unique table and the
        per-level index and their handles join the free-list; the
        operation caches are dropped (they may reference reclaimed
        handles, which the free-list is about to re-issue).  Safe-point
        only: never called from inside an operation.
        """
        table = self._table
        live = len(self._level) - 2 - len(self._free)
        if not live:
            return 0
        # Refresh the high-water mark before anything is reclaimed (the
        # hot loops never touch it; live only decreases here, so the
        # sample taken now is the exact running maximum).
        if live > self._peak_sample:
            self._peak_sample = live
        mark = self._mark
        # The allocation fast paths do not grow the mark array (it is
        # only read here); top it up to the arena length in one extend.
        if len(mark) < len(self._level):
            mark.extend(bytes(len(self._level) - len(mark)))
        low = self._low
        high = self._high
        self._mark_epoch += 1
        epoch = self._mark_epoch
        mark[0] = epoch
        mark[1] = epoch
        stack = self._external_roots()
        if roots:
            stack.extend(roots)
        while stack:
            n = stack.pop()
            if mark[n] == epoch:
                continue
            mark[n] = epoch
            c = low[n]
            if mark[c] != epoch:
                stack.append(c)
            c = high[n]
            if mark[c] != epoch:
                stack.append(c)
        dead = [
            (lvl, key, n)
            for lvl, sub in table.items()
            for key, n in sub.items()
            if mark[n] != epoch
        ]
        if not dead:
            return 0
        lidx = self._level_index
        free = self._free
        level = self._level
        for lvl, key, n in dead:
            del table[lvl][key]
            bucket = lidx.get(lvl)
            if bucket is not None:
                bucket.discard(n)
            # Poison the slot so stale reads fail loudly; the handle is
            # only re-armed by the allocator.
            level[n] = -1
            low[n] = 0
            high[n] = 0
            free.append(n)
        self._freed_total += len(dead)
        self._gc_runs += 1
        self._gc_reclaimed += len(dead)
        for cache in (self._ite_cache, self._op_cache):
            if cache:
                self._drop_cache(cache)
        return len(dead)

    # ------------------------------------------------------------------
    # Cache housekeeping & statistics
    # ------------------------------------------------------------------
    def _drop_cache(self, cache: Dict) -> None:
        """Drop one operation cache, keeping the eviction accounting."""
        self._cache_evicted_entries += len(cache)
        cache.clear()
        self._cache_clears += 1

    @property
    def cache_limit(self) -> Optional[int]:
        """Per-cache entry bound (``None`` when unbounded)."""
        return self._cache_limit

    @cache_limit.setter
    def cache_limit(self, limit: Optional[int]) -> None:
        if limit is not None and limit < 1:
            raise ValueError("cache_limit must be a positive integer or None")
        self._cache_limit = limit
        if limit is not None:
            for cache in (self._ite_cache, self._op_cache):
                if len(cache) > limit:
                    self._drop_cache(cache)

    def cache_size(self) -> int:
        """Total number of entries currently held by the operation caches."""
        return len(self._ite_cache) + len(self._op_cache)

    def clear_caches(self) -> None:
        """Drop operation caches (the unique table is kept).

        Clearing never changes results — every function already built
        stays canonical in the unique table — it only forces later
        operations to recompute; the property tests pin this down.
        """
        for cache in (self._ite_cache, self._op_cache):
            if cache:
                self._drop_cache(cache)

    def cache_statistics(self) -> Dict[str, object]:
        """Operation-cache size accounting and hit rates.

        ``quantify_entries`` keeps its historical name but now counts
        the whole shared op cache — quantify, restrict, compose,
        XOR/XNOR and and-exists entries — since those walkers share one
        memo table in the array kernel.
        """
        lookups = self._cache_hits + self._cache_misses
        return {
            "limit": self._cache_limit,
            "ite_entries": len(self._ite_cache),
            "quantify_entries": len(self._op_cache),
            "total_entries": self.cache_size(),
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "lookups": lookups,
            "hit_rate": (self._cache_hits / lookups) if lookups else 0.0,
            "evicted_entries": self._cache_evicted_entries,
            "clears": self._cache_clears,
        }

    def arena_statistics(self) -> Dict[str, int]:
        """Arena accounting: live vs. allocated vs. free-listed handles.

        ``capacity`` is the arena length (terminals included) — the
        high-water mark of simultaneously live nodes, since freed slots
        are reused before the arrays grow.  ``live`` counts current
        unique-table entries plus the two terminals; ``free`` the
        reclaimed handles awaiting reuse.
        """
        live = len(self._level) - 2 - len(self._free)
        if live > self._peak_sample:
            self._peak_sample = live
        return {
            "capacity": len(self._level),
            "live": live + 2,
            "free": len(self._free),
            "peak_live": self._peak_sample + 2,
            "allocated_total": self._nodes_allocated,
            "gc_runs": self._gc_runs,
            "gc_reclaimed": self._gc_reclaimed,
        }
