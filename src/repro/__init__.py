"""repro — reproduction of "Automatic Verification of Pipelined Microprocessors".

The package verifies pipelined microprocessor implementations against
their unpipelined instruction-set specifications using the paper's
beta-relation / definite-machine methodology with BDD-based symbolic
simulation.  See :mod:`repro.core` for the top-level entry points
(:func:`repro.core.verify_beta_relation`), :mod:`repro.engine` for the
campaign engine (:class:`repro.engine.CampaignRunner` over declarative
:class:`repro.engine.Scenario` jobs with pooled BDD managers), and
DESIGN.md for the system inventory and per-experiment index.
"""

__version__ = "1.0.0"
