"""BDD manager pooling for the campaign engine.

Re-constructing a :class:`~repro.bdd.BDDManager` per verification run
throws away every hash-consed node and every warmed operation cache.
The pool keys managers by :meth:`Scenario.order_signature`, so all
scenarios that declare the same variables in the same order — a golden
run and its bug-injection variants, repeated runs of one workload —
share one manager and therefore one unique table: the specification
simulation of the second run re-derives the exact nodes of the first at
cache speed.

Sharing is deliberately *not* extended across different variable orders:
a pooled manager must declare variables in the same order a fresh one
would, which keeps every pooled result (including counterexample
assignments) bit-identical to an isolated run — the property the
parallel campaign mode relies on.  For the same reason a manager whose
order has been *dynamically changed* (sifting,
:mod:`repro.bdd.reorder`) is retired from the pool the moment the first
swap fires: its final variable order no longer matches what the
signature declares, so handing it to the next scenario would silently
break the declared-order contract.  The scenario that triggered the
reorder keeps using it safely — canonicity survives reordering — but
the next acquisition for that signature gets a fresh manager.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..bdd import BDDManager, create_manager


def _signature_backend(signature: Optional[Tuple]) -> Optional[str]:
    """The kernel backend a pool signature requests.

    :meth:`Scenario.order_signature` appends a ``("kernel", <backend>)``
    element exactly when the scenario's policy pins a backend
    explicitly; an untagged signature (like no signature at all) yields
    ``None``, deferring to the process default — the
    ``REPRO_KERNEL_BACKEND`` toggle — at construction time.  Keeping
    the env default out of the signature keeps content addresses
    (store fingerprints, committed witness keys) stable across
    toggles, which is sound because backends produce byte-identical
    results by construction.  Scanned rather than positional because
    the signature layout varies by scenario kind.
    """
    if signature is None:
        return None
    for element in signature:
        if (
            isinstance(element, tuple)
            and len(element) == 2
            and element[0] == "kernel"
        ):
            return element[1]
    return None


class ManagerPool:
    """Managers keyed by variable-order signature, created on demand."""

    def __init__(self, cache_limit: Optional[int] = None) -> None:
        self.cache_limit = cache_limit
        #: Optional persistent snapshot store (see
        #: :class:`repro.engine.store.ResultStore`).  Attached by the
        #: campaign runner (and by every parallel worker to its own
        #: pool); the executor reads it so any scenario running on a
        #: pooled *or* private manager can rehydrate extracted relations
        #: instead of recomputing them.
        self.snapshot_store = None
        self._managers: Dict[Tuple, BDDManager] = {}
        self._acquisitions = 0
        self._reuses = 0
        self._reorder_evictions = 0
        #: Cache activity of managers retired from the pool, folded into
        #: :meth:`statistics` so campaign deltas never go negative when a
        #: reorder eviction removes a manager mid-campaign.
        self._retired_cache = {"hits": 0, "misses": 0, "evicted_entries": 0, "clears": 0}
        #: Arena counters of retired managers (same folding rule: the
        #: monotonic counters survive retirement; sizes do not).
        self._retired_arena = {"allocated_total": 0, "gc_runs": 0, "gc_reclaimed": 0}

    def acquire(self, signature: Tuple) -> BDDManager:
        """The pooled manager for ``signature`` (created on first use).

        Every pooled manager carries a reorder hook: the first dynamic
        order change retires it from the pool (see module docstring).
        """
        self._acquisitions += 1
        manager = self._managers.get(signature)
        if manager is None:
            manager = create_manager(
                cache_limit=self.cache_limit,
                backend=_signature_backend(signature),
            )
            self._managers[signature] = manager
            manager.add_reorder_hook(self._make_reorder_hook(signature))
        else:
            self._reuses += 1
        return manager

    def attach_store(self, store) -> None:
        """Attach (or with ``None`` detach) a persistent snapshot store."""
        self.snapshot_store = store

    def private_manager(self, signature: Optional[Tuple] = None) -> BDDManager:
        """A fresh manager outside the pool, under the pool's cache limit.

        Scenarios that must not share table state — thresholded
        reordering scenarios, whose sifting trigger compares the table
        size against a policy threshold and would otherwise depend on
        campaign history — run here; keeping the constructor on the
        pool keeps every manager the engine hands out configured in one
        place.  ``signature`` (the scenario's order signature, when the
        caller has one) carries the kernel-backend request.
        """
        return create_manager(
            cache_limit=self.cache_limit,
            backend=_signature_backend(signature),
        )

    def _make_reorder_hook(self, signature: Tuple):
        def evict(manager: BDDManager) -> None:
            if self._managers.get(signature) is manager:
                del self._managers[signature]
                self._reorder_evictions += 1
                self._retire_counters(manager)

        return evict

    def _retire_counters(self, manager: BDDManager) -> None:
        """Preserve a departing manager's cumulative cache/arena activity."""
        stats = manager.cache_statistics()
        for key in self._retired_cache:
            self._retired_cache[key] += stats[key]
        arena = manager.arena_statistics()
        for key in self._retired_arena:
            self._retired_arena[key] += arena.get(key, 0)
        # Backend-specific monotonic counters (the vector backend's
        # ``vector_*`` batch-path totals) survive retirement too.
        for key, value in arena.items():
            if key.startswith("vector_") and isinstance(value, (int, float)):
                self._retired_arena[key] = self._retired_arena.get(key, 0) + value

    def clear_caches(self) -> None:
        """Drop the operation caches of every pooled manager."""
        for manager in self._managers.values():
            manager.clear_caches()

    def clear(self) -> None:
        """Drop every pooled manager (and its unique table)."""
        for manager in self._managers.values():
            self._retire_counters(manager)
        self._managers.clear()

    def __len__(self) -> int:
        return len(self._managers)

    @property
    def reuse_count(self) -> int:
        """How many acquisitions were served by an existing manager."""
        return self._reuses

    @property
    def reorder_evictions(self) -> int:
        """How many managers were retired because their order changed."""
        return self._reorder_evictions

    def statistics(self) -> Dict[str, object]:
        """Aggregate pool statistics for campaign reports.

        Counters cover the currently pooled managers plus, for managers
        retired by a reorder eviction or :meth:`clear`, their activity
        up to the moment of retirement — enough to keep campaign deltas
        monotonic.  Activity a still-running scenario accrues on a
        retired manager afterwards is attributed to that scenario's own
        ``outcome.cache`` delta, not the pool.  Sizes (nodes, cache
        entries) describe only the managers currently pooled.

        Node accounting reads through the kernel's arena statistics:
        ``total_nodes`` is the pooled managers' *live* node total, and
        ``arena`` breaks the same managers down into live vs. allocated
        capacity vs. free-listed handles, with monotonic allocation/GC
        counters that fold in retired managers like the cache counters
        do.
        """
        arena = {
            "live": 0,
            "capacity": 0,
            "free": 0,
            "peak_live": 0,
        }
        for key, value in self._retired_arena.items():
            arena[key] = value
        total_nodes = 0
        for manager in self._managers.values():
            stats = manager.arena_statistics()
            # ``live`` counts the terminals; the pool's node total keeps
            # the historical unique-table meaning (non-terminals only).
            total_nodes += stats["live"] - 2
            arena["live"] += stats["live"]
            arena["capacity"] += stats["capacity"]
            arena["free"] += stats["free"]
            # Summed per-manager high-water marks: an upper bound on the
            # pool's simultaneous footprint (a size, so like the other
            # sizes it covers only the currently pooled managers).
            arena["peak_live"] += stats.get("peak_live", 0)
            arena["allocated_total"] += stats["allocated_total"]
            arena["gc_runs"] += stats["gc_runs"]
            arena["gc_reclaimed"] += stats["gc_reclaimed"]
            # Vector-backend batch counters, when any pooled manager
            # exposes them (telemetry mirrors them as pool.arena.* gauges).
            for key, value in stats.items():
                if key.startswith("vector_") and isinstance(value, (int, float)):
                    arena[key] = arena.get(key, 0) + value
        cache = {
            "hits": self._retired_cache["hits"],
            "misses": self._retired_cache["misses"],
            "evicted_entries": self._retired_cache["evicted_entries"],
            "clears": self._retired_cache["clears"],
            "total_entries": 0,
        }
        for manager in self._managers.values():
            stats = manager.cache_statistics()
            cache["hits"] += stats["hits"]
            cache["misses"] += stats["misses"]
            cache["evicted_entries"] += stats["evicted_entries"]
            cache["clears"] += stats["clears"]
            cache["total_entries"] += stats["total_entries"]
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = (cache["hits"] / lookups) if lookups else 0.0
        return {
            "managers": len(self._managers),
            "acquisitions": self._acquisitions,
            "reuses": self._reuses,
            "reorder_evictions": self._reorder_evictions,
            "total_nodes": total_nodes,
            "arena": arena,
            "cache": cache,
        }
