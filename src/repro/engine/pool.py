"""BDD manager pooling for the campaign engine.

Re-constructing a :class:`~repro.bdd.BDDManager` per verification run
throws away every hash-consed node and every warmed operation cache.
The pool keys managers by :meth:`Scenario.order_signature`, so all
scenarios that declare the same variables in the same order — a golden
run and its bug-injection variants, repeated runs of one workload —
share one manager and therefore one unique table: the specification
simulation of the second run re-derives the exact nodes of the first at
cache speed.

Sharing is deliberately *not* extended across different variable orders:
a pooled manager must declare variables in the same order a fresh one
would, which keeps every pooled result (including counterexample
assignments) bit-identical to an isolated run — the property the
parallel campaign mode relies on.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..bdd import BDDManager


class ManagerPool:
    """Managers keyed by variable-order signature, created on demand."""

    def __init__(self, cache_limit: Optional[int] = None) -> None:
        self.cache_limit = cache_limit
        self._managers: Dict[Tuple, BDDManager] = {}
        self._acquisitions = 0
        self._reuses = 0

    def acquire(self, signature: Tuple) -> BDDManager:
        """The pooled manager for ``signature`` (created on first use)."""
        self._acquisitions += 1
        manager = self._managers.get(signature)
        if manager is None:
            manager = BDDManager(cache_limit=self.cache_limit)
            self._managers[signature] = manager
        else:
            self._reuses += 1
        return manager

    def clear_caches(self) -> None:
        """Drop the operation caches of every pooled manager."""
        for manager in self._managers.values():
            manager.clear_caches()

    def clear(self) -> None:
        """Drop every pooled manager (and its unique table)."""
        self._managers.clear()

    def __len__(self) -> int:
        return len(self._managers)

    @property
    def reuse_count(self) -> int:
        """How many acquisitions were served by an existing manager."""
        return self._reuses

    def statistics(self) -> Dict[str, object]:
        """Aggregate pool statistics for campaign reports."""
        total_nodes = sum(manager.size() for manager in self._managers.values())
        cache = {
            "hits": 0,
            "misses": 0,
            "evicted_entries": 0,
            "clears": 0,
            "total_entries": 0,
        }
        for manager in self._managers.values():
            stats = manager.cache_statistics()
            cache["hits"] += stats["hits"]
            cache["misses"] += stats["misses"]
            cache["evicted_entries"] += stats["evicted_entries"]
            cache["clears"] += stats["clears"]
            cache["total_entries"] += stats["total_entries"]
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = (cache["hits"] / lookups) if lookups else 0.0
        return {
            "managers": len(self._managers),
            "acquisitions": self._acquisitions,
            "reuses": self._reuses,
            "total_nodes": total_nodes,
            "cache": cache,
        }
