"""Per-component content hashes of the code a verdict depends on.

The persistent :class:`~repro.engine.store.ResultStore` used to be
invalidated by one monolithic code-version salt: any bump (or any model
edit, since the salt was all-or-nothing) cold-invalidated every verdict
and snapshot in the store.  This module makes invalidation *surgical*
by splitting the code version into per-component content hashes:

* ``bdd`` — the BDD kernel (``src/repro/bdd/``): node representation,
  ITE core, GC, snapshots, reordering.
* ``relational`` — the relational subsystem (``src/repro/relational/``):
  beta-relation extraction, the relational product, policies.
* ``verifier`` — the verdict path itself: the executor, the core
  verification/observation/report modules, the filtering-string and
  logic layers, and the ISA definitions.
* ``model:vsm`` / ``model:alpha0`` / ``model:interrupts`` /
  ``model:superscalar`` / ``model:scoreboard`` — each architecture's
  symbolic (or concrete) processor models under ``src/repro/processors/``.

A component hash is a SHA-256 over the *source text* of the component's
module files, so it changes exactly when the code changes — no manual
salt bump needed.  :meth:`~repro.engine.scenario.Scenario.dependencies`
names the components a scenario's verdict depends on; the store records
the resulting ``{component: hash}`` dependency vector in every record
envelope and refuses a record only when one of *its own* components
changed.  A record therefore stays valid when an unrelated component
changed — the ~90% of scenarios whose inputs didn't change keep their
warm-store latency after a one-model edit.

Safety contract: the component map must be *conservative* — every
module whose behaviour can influence verdict bytes must be covered by
at least one component, and every scenario must depend on every
component that can influence its verdict.  Over-approximating a
dependency costs a recompute; under-approximating could serve a stale
verdict, which the store's rule ("stale degrades to recompute, never a
wrong verdict") forbids.  Engine-level record-format changes are still
covered by :data:`~repro.engine.store.STORE_VERSION` and
:data:`~repro.engine.store.CODE_SALT`.

Hashes are computed lazily from the files on disk and cached per
``(mtime_ns, size)`` stat signature, so an on-disk edit is picked up by
the next store handle without restarting the process (the running
module objects are of course unaffected — which is exactly why a
refused record can always be recomputed to byte-identical verdicts
until the process reloads).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

#: Root of the ``repro`` package (component paths below are relative to it).
PACKAGE_ROOT = Path(__file__).resolve().parent.parent

#: Component name -> package-relative module files / directories.
#: Directories are expanded to their sorted ``*.py`` files (one level).
COMPONENTS: Dict[str, Tuple[str, ...]] = {
    "bdd": ("bdd",),
    "relational": ("relational",),
    "verifier": (
        "engine/executor.py",
        "core",
        "strings",
        "logic",
        "isa",
    ),
    "model:vsm": (
        "processors/state.py",
        "processors/symbolic.py",
        "processors/sym_vsm.py",
        "processors/vsm_pipelined.py",
        "processors/vsm_unpipelined.py",
    ),
    "model:alpha0": (
        "processors/state.py",
        "processors/symbolic.py",
        "processors/sym_alpha0.py",
        "processors/alpha0_pipelined.py",
        "processors/alpha0_unpipelined.py",
    ),
    "model:interrupts": ("processors/interrupts.py",),
    "model:superscalar": ("processors/superscalar.py",),
    "model:scoreboard": ("processors/scoreboard.py",),
}

#: The architecture-model components (every ``model:*`` entry).
MODEL_COMPONENTS: Tuple[str, ...] = tuple(
    name for name in COMPONENTS if name.startswith("model:")
)

#: Test hook: extra content folded into a component's hash, simulating a
#: source edit without touching the working tree.  Keyed by component
#: name; install/remove via :func:`set_override` / :func:`clear_overrides`.
_OVERRIDES: Dict[str, str] = {}

#: Per-file digest cache: path -> ((mtime_ns, size), sha256 hex).
_FILE_DIGESTS: Dict[str, Tuple[Tuple[int, int], str]] = {}


def set_override(component: str, token: str) -> None:
    """Fold ``token`` into ``component``'s hash (tests: simulate an edit)."""
    if component not in COMPONENTS:
        raise KeyError(f"unknown component {component!r}; valid: {sorted(COMPONENTS)}")
    _OVERRIDES[component] = token


def clear_overrides() -> None:
    """Remove every test override installed via :func:`set_override`."""
    _OVERRIDES.clear()


def component_files(component: str) -> List[Path]:
    """The module files whose source text makes up ``component``'s hash."""
    try:
        entries = COMPONENTS[component]
    except KeyError:
        raise KeyError(
            f"unknown component {component!r}; valid: {sorted(COMPONENTS)}"
        ) from None
    files: List[Path] = []
    for entry in entries:
        path = PACKAGE_ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.py")))
        else:
            files.append(path)
    return files


def _file_digest(path: Path) -> str:
    """SHA-256 of one file's bytes, cached by its stat signature.

    A missing file hashes to a distinct marker instead of raising: the
    store must keep *working* (as a cold store) even when the source
    tree is partially absent — a wrong hash only ever costs a recompute.
    """
    key = str(path)
    try:
        stat = path.stat()
    except OSError:
        return "missing"
    signature = (stat.st_mtime_ns, stat.st_size)
    cached = _FILE_DIGESTS.get(key)
    if cached is not None and cached[0] == signature:
        return cached[1]
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    _FILE_DIGESTS[key] = (signature, digest)
    return digest


def component_hash(component: str) -> str:
    """SHA-256 hex content hash of one component's source text."""
    hasher = hashlib.sha256()
    for path in component_files(component):
        relative = path.relative_to(PACKAGE_ROOT).as_posix()
        hasher.update(f"{relative}\x00{_file_digest(path)}\n".encode("utf-8"))
    override = _OVERRIDES.get(component)
    if override is not None:
        hasher.update(f"override\x00{override}\n".encode("utf-8"))
    return hasher.hexdigest()


def component_vector(components: Iterable[str]) -> Dict[str, str]:
    """The ``{component: hash}`` dependency vector for ``components``.

    Sorted by component name so the vector has one canonical JSON form
    (record envelopes embed it; envelope comparison is dict equality,
    but a deterministic order keeps the stored bytes reproducible).
    """
    return {name: component_hash(name) for name in sorted(set(components))}


def components_for_architecture(architecture) -> Tuple[str, ...]:
    """The components a beta-relation *snapshot* for ``architecture`` depends on.

    An extracted relation is a pure function of the BDD kernel, the
    extraction protocol (the relational subsystem) and the architecture's
    symbolic models — not of the verifier core, which only consumes it.
    Unknown (custom) architectures conservatively depend on every model
    component: over-approximation costs a re-extraction, never a wrong
    relation.
    """
    from ..core.architectures import Alpha0Architecture, VSMArchitecture

    if isinstance(architecture, VSMArchitecture):
        model: Tuple[str, ...] = ("model:vsm",)
    elif isinstance(architecture, Alpha0Architecture):
        model = ("model:alpha0",)
    else:
        model = MODEL_COMPONENTS
    return ("bdd", "relational") + model
