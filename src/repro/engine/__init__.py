"""The verification campaign engine.

One orchestrator for every verification workload of the reproduction:

* :mod:`repro.engine.scenario` — declarative :class:`Scenario`
  descriptions, the :class:`ScenarioRegistry` and the standard
  catalogue (headline runs, bug sweeps, variable-k, interrupts).
* :mod:`repro.engine.pool` — per-variable-order
  :class:`~repro.bdd.BDDManager` pooling.
* :mod:`repro.engine.executor` — the single execution path behind
  :func:`repro.core.verifier.verify_beta_relation` and friends.
* :mod:`repro.engine.runner` — :class:`CampaignRunner`: serial
  campaigns over a shared pool, memoised re-runs, and a parallel mode
  with per-worker manager isolation and byte-identical verdicts.
* :mod:`repro.engine.report` — :class:`ScenarioOutcome` /
  :class:`CampaignReport`, JSON-serialisable with a deterministic
  verdict view.
* :mod:`repro.engine.codehash` — per-component content hashes of the
  code a verdict depends on; the store records them per record so a
  source edit invalidates only the records whose own components
  changed.

The engine is supervised by :mod:`repro.resilience`: a
:class:`~repro.resilience.SupervisionPolicy` configures bounded
scenario retries and worker respawn, a
:class:`~repro.resilience.CampaignJournal` checkpoint makes campaigns
resumable, and :mod:`repro.resilience.faults` injects deterministic
failures into the engine's seams for testing — re-exported here for
convenience.
"""

from ..relational.policy import RelationalPolicy
from ..resilience import CampaignJournal, FaultPlan, FaultSpec, SupervisionPolicy
from . import codehash
from .executor import execute_scenario, run_beta, run_events, run_superscalar
from .pool import ManagerPool
from .report import CampaignReport, ScenarioOutcome
from .runner import (
    SHARDING_AFFINITY,
    SHARDING_BLIND,
    CampaignRunner,
    run_campaign,
)
from .store import CODE_SALT, ResultStore, content_fingerprint
from .scenario import (
    ALPHA0,
    BETA,
    EVENTS,
    SUPERSCALAR,
    VSM,
    VSM_BUG_WORKLOADS,
    Alpha0Spec,
    Scenario,
    ScenarioRegistry,
    campaign_fingerprint,
    alpha0_bug_scenarios,
    alpha0_memory_scenario,
    alpha0_operate_scenario,
    default_registry,
    event_scenarios,
    mixed_campaign,
    superscalar_scenario,
    variable_k_scenarios,
    vsm_bug_scenarios,
    vsm_verification_scenario,
)

__all__ = [
    "ALPHA0",
    "Alpha0Spec",
    "BETA",
    "CODE_SALT",
    "CampaignJournal",
    "CampaignReport",
    "CampaignRunner",
    "EVENTS",
    "FaultPlan",
    "FaultSpec",
    "ManagerPool",
    "RelationalPolicy",
    "ResultStore",
    "SupervisionPolicy",
    "SHARDING_AFFINITY",
    "SHARDING_BLIND",
    "SUPERSCALAR",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioRegistry",
    "VSM",
    "codehash",
    "content_fingerprint",
    "VSM_BUG_WORKLOADS",
    "alpha0_bug_scenarios",
    "alpha0_memory_scenario",
    "alpha0_operate_scenario",
    "campaign_fingerprint",
    "default_registry",
    "event_scenarios",
    "execute_scenario",
    "mixed_campaign",
    "run_beta",
    "run_campaign",
    "run_events",
    "run_superscalar",
    "superscalar_scenario",
    "variable_k_scenarios",
    "vsm_bug_scenarios",
    "vsm_verification_scenario",
]
