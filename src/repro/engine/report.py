"""Structured results of campaign runs.

A :class:`ScenarioOutcome` is the engine's view of one scenario run; a
:class:`CampaignReport` aggregates a whole campaign.  Both are plain
data and JSON-serialisable.

Outcomes deliberately separate the *verdict* — everything that is a
deterministic function of the scenario (pass/fail, mismatch records,
decoded counterexamples, cycle counts, filter sequences) — from the
*measurement* (wall-clock times, node counts, cache hit rates), which
depends on pooling, process placement and hardware.  The campaign
engine's parallel mode is required to reproduce the serial verdicts
byte for byte; :meth:`CampaignReport.verdict_json` is that byte string.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Version of the :meth:`CampaignReport.to_dict` schema.  v2 added
#: ``schema_version``/``generated_at`` themselves plus the ``telemetry``
#: section (trace summary and metrics-registry snapshot).  v3 added the
#: ``resilience`` section (supervision policy and retry/respawn/
#: redispatch activity, checkpoint-journal state, fault-injection
#: statistics).
REPORT_SCHEMA_VERSION = 3


@dataclass
class ScenarioOutcome:
    """Result of executing one scenario."""

    scenario: str
    kind: str
    design: str
    passed: bool
    #: Deterministic mismatch records (sorted counterexample assignments,
    #: decoded instruction sequences and raw instruction words).
    mismatches: List[Dict[str, object]] = field(default_factory=list)
    #: Deterministic structural facts (cycle counts, filters, coverage).
    structure: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0
    #: Phase timings (measurement, not verdict): specification /
    #: implementation simulation and comparison seconds where applicable.
    timings: Dict[str, float] = field(default_factory=dict)
    bdd_nodes: int = 0
    bdd_variables: int = 0
    #: Operation-cache activity attributable to this run (delta).
    cache: Dict[str, object] = field(default_factory=dict)
    #: Dynamic-reordering activity (measurement, not verdict): present
    #: when the scenario's relational policy sifted the manager.
    reorder: Dict[str, object] = field(default_factory=dict)
    #: Relational-extraction cache activity (measurement, not verdict):
    #: hit/miss of the session-cached beta relations plus session
    #: totals; empty for non-relational scenarios.
    extraction_cache: Dict[str, object] = field(default_factory=dict)
    #: Which beta backend executed the scenario (measurement, not
    #: verdict — verdicts are byte-identical across backends): empty for
    #: non-beta scenarios.
    backend: str = ""
    #: Persistent-store activity for this scenario (measurement, not
    #: verdict): ``{"status": "hit"|"miss", "bytes_read"/"bytes_written",
    #: "seconds"}``; empty when the campaign ran without a store.
    store: Dict[str, object] = field(default_factory=dict)
    #: Arena-snapshot activity (measurement, not verdict): per-role
    #: relation restore/save timings from the persistent store; empty
    #: without a store or for non-relational scenarios.
    snapshot: Dict[str, object] = field(default_factory=dict)
    #: Whether the outcome was served from the campaign memo.
    memoized: bool = False
    #: Error string when the scenario raised instead of completing.
    error: Optional[str] = None
    #: Full traceback of the error (measurement, not verdict: traceback
    #: text carries file paths and line numbers that vary by machine and
    #: code version, so it must never enter the byte-identical verdict;
    #: it exists so a crashed scenario is diagnosable from the report).
    traceback: Optional[str] = None

    def verdict(self) -> Dict[str, object]:
        """The deterministic portion of the outcome.

        Identical between serial (pooled) and parallel (per-worker)
        execution, and between fresh and memoised runs.
        """
        return {
            "scenario": self.scenario,
            "kind": self.kind,
            "design": self.design,
            "passed": self.passed,
            "mismatches": self.mismatches,
            "structure": self.structure,
            "error": self.error,
        }

    def to_dict(self) -> Dict[str, object]:
        """Full JSON-serialisable outcome (verdict plus measurements)."""
        payload = self.verdict()
        payload.update(
            {
                "seconds": round(self.seconds, 4),
                "timings": {name: round(value, 4) for name, value in self.timings.items()},
                "bdd_nodes": self.bdd_nodes,
                "bdd_variables": self.bdd_variables,
                "cache": self.cache,
                "reorder": self.reorder,
                "extraction_cache": self.extraction_cache,
                "backend": self.backend,
                "store": self.store,
                "snapshot": self.snapshot,
                "memoized": self.memoized,
                "traceback": self.traceback,
            }
        )
        return payload


@dataclass
class CampaignReport:
    """Aggregated outcome of a campaign run."""

    outcomes: List[ScenarioOutcome]
    mode: str = "serial"
    pool: Dict[str, object] = field(default_factory=dict)
    memo_hits: int = 0
    total_seconds: float = 0.0
    #: Persistent-store activity over the whole campaign (hit/miss/
    #: stale/invalidated/corrupt counts, byte volumes and the component
    #: ``survival_rate`` for result records and relation snapshots);
    #: empty when the campaign ran without a store.
    store: Dict[str, object] = field(default_factory=dict)
    #: Telemetry section (measurement, not verdict): the campaign's
    #: trace summary (per-scenario phase breakdown, top spans by
    #: self-time, anomaly flags), the metrics-registry snapshot and —
    #: in affinity-parallel mode — per-worker registry snapshots.
    #: Empty when tracing was disabled for the run.
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: Resilience section (measurement, not verdict): the supervision
    #: policy in force, scenario retry / store-write retry counts,
    #: worker respawn/redispatch/hang activity, checkpoint-journal state
    #: and fault-injector statistics.  Empty for an unsupervised,
    #: unjournalled, fault-free campaign — the overwhelmingly common
    #: case pays nothing.
    resilience: Dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """Whether every scenario completed and passed."""
        return all(outcome.passed and outcome.error is None for outcome in self.outcomes)

    @property
    def scenario_count(self) -> int:
        return len(self.outcomes)

    def failures(self) -> List[ScenarioOutcome]:
        """Outcomes that failed verification or errored."""
        return [o for o in self.outcomes if not o.passed or o.error is not None]

    def outcome(self, scenario: str) -> ScenarioOutcome:
        """The outcome of a scenario by name."""
        for candidate in self.outcomes:
            if candidate.scenario == scenario:
                return candidate
        raise KeyError(f"no outcome for scenario {scenario!r}")

    def counterexamples(self) -> Dict[str, List[Dict[str, object]]]:
        """Mismatch records of every failing scenario, keyed by name."""
        return {o.scenario: o.mismatches for o in self.outcomes if o.mismatches}

    # ------------------------------------------------------------------
    # Deterministic verdicts
    # ------------------------------------------------------------------
    def verdicts(self) -> List[Dict[str, object]]:
        """Per-scenario verdicts in campaign order (deterministic)."""
        return [outcome.verdict() for outcome in self.outcomes]

    def verdict_json(self) -> str:
        """Canonical JSON of :meth:`verdicts` — byte-identical across modes."""
        return json.dumps(self.verdicts(), indent=2, sort_keys=True)

    # ------------------------------------------------------------------
    # Serialisation / presentation
    # ------------------------------------------------------------------
    def to_dict(self, generated_at: Optional[str] = None) -> Dict[str, object]:
        """Full JSON-serialisable report.

        ``generated_at`` is caller-injected (an ISO-8601 string or any
        opaque stamp) rather than sampled here: the report itself stays
        a pure function of the campaign, so two runs of the same
        campaign serialise identically unless the caller opts into a
        timestamp.
        """
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "generated_at": generated_at,
            "mode": self.mode,
            "passed": self.passed,
            "scenario_count": self.scenario_count,
            "failures": [o.scenario for o in self.failures()],
            "memo_hits": self.memo_hits,
            "total_seconds": round(self.total_seconds, 4),
            "pool": self.pool,
            "store": self.store,
            "telemetry": self.telemetry,
            "resilience": self.resilience,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def to_json(self, generated_at: Optional[str] = None) -> str:
        return json.dumps(
            self.to_dict(generated_at=generated_at), indent=2, sort_keys=True
        )

    def summary(self) -> str:
        """Multi-line human-readable campaign summary."""
        lines = [
            f"campaign: {self.scenario_count} scenario(s), mode={self.mode}, "
            f"{'PASSED' if self.passed else 'FAILED'} in {self.total_seconds:.2f} s"
        ]
        for outcome in self.outcomes:
            marker = "ok " if outcome.passed and outcome.error is None else "FAIL"
            note = " [memo]" if outcome.memoized else ""
            if outcome.error is not None:
                detail = f"error: {outcome.error}"
            elif outcome.mismatches:
                detail = f"{len(outcome.mismatches)} mismatching observable(s)"
            else:
                detail = "verified"
            lines.append(
                f"  [{marker}] {outcome.scenario} ({outcome.kind}/{outcome.design}): "
                f"{detail} in {outcome.seconds:.2f} s{note}"
            )
        pool = self.pool or {}
        if pool.get("managers") is not None:
            cache = pool.get("cache", {})
            lines.append(
                f"  pool: {pool.get('managers')} manager(s) for "
                f"{pool.get('acquisitions', 0)} acquisition(s) "
                f"({pool.get('reuses', 0)} reuse(s)), "
                f"{pool.get('total_nodes', 0)} live nodes, "
                f"cache hit rate {cache.get('hit_rate', 0.0):.1%}"
            )
        if self.memo_hits:
            lines.append(f"  memo: {self.memo_hits} scenario result(s) reused")
        store = self.store or {}
        results = store.get("results")
        if results:
            invalidated = results.get("invalidated", 0)
            invalidation = (
                f", {invalidated} invalidated by code changes" if invalidated else ""
            )
            lines.append(
                f"  store: {results.get('hits', 0)} hit(s) / "
                f"{results.get('misses', 0)} miss(es){invalidation} "
                f"({results.get('bytes_read', 0)} B read, "
                f"{results.get('bytes_written', 0)} B written), "
                f"snapshots {store.get('snapshots', {}).get('hits', 0)} hit(s)"
            )
        resilience = self.resilience or {}
        if resilience:
            parts = []
            if resilience.get("retries"):
                parts.append(f"{resilience['retries']} scenario retry(ies)")
            if resilience.get("write_failures"):
                parts.append(f"{resilience['write_failures']} store write(s) abandoned")
            workers = resilience.get("workers") or {}
            if workers.get("respawned"):
                parts.append(f"{workers['respawned']} worker(s) respawned")
            if workers.get("hung_terminated"):
                parts.append(f"{workers['hung_terminated']} hung worker(s) terminated")
            journal = resilience.get("journal") or {}
            if journal.get("resumed"):
                parts.append(
                    f"resumed at {journal.get('completed', 0)}/{journal.get('total', 0)}"
                )
            if parts:
                lines.append("  resilience: " + ", ".join(parts))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.summary()
